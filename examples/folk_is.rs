//! Folk-enabled Information Systems: an infrastructure-free deployment.
//!
//! A rural region with no network: administrative forms travel as
//! encrypted bundles carried by the population itself (delay-tolerant,
//! store-and-forward). The example sweeps population density and shows
//! delivery ratio and latency — the trade-off that makes Folk-IS viable
//! "at a few dollars" of incremental cost.
//!
//! Run with: `cargo run --release --example folk_is`

use pds::crypto::SymmetricKey;
use pds::sync::{FolkSim, FolkSimConfig};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn main() {
    println!("Folk-IS: 20 administrative forms, villages on a grid, no network\n");
    println!(
        "{:>12} {:>6} {:>10} {:>12} {:>10}",
        "participants", "grid", "delivered", "mean steps", "transfers"
    );
    for (participants, grid) in [(40usize, 25usize), (80, 25), (160, 25), (320, 25)] {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = FolkSim::new(
            FolkSimConfig {
                participants,
                grid,
                copy_budget: 0,
            },
            &mut rng,
        );
        // End-to-end encryption before anything travels: carriers haul
        // ciphertext only.
        let key = SymmetricKey::from_seed(b"folk-region-key");
        for i in 0..20 {
            let form = format!("birth-registration-form-{i}");
            let ct = key.encrypt_prob(form.as_bytes(), &mut rng);
            sim.send(i, participants - 1 - i, ct.as_bytes());
        }
        let stats = sim.run(4000, &mut rng);
        println!(
            "{:>12} {:>6} {:>9.0}% {:>12.1} {:>10}",
            participants,
            format!("{grid}²"),
            stats.delivery_ratio() * 100.0,
            stats.mean_latency(),
            stats.transfers
        );
    }
    println!("\ndensity buys latency: more carriers, faster epidemic spread.");

    // The copy budget trades delivery speed for carrying cost.
    println!("\ncopy-budget ablation (160 participants):");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "budget", "delivered", "mean steps", "transfers"
    );
    for budget in [2usize, 4, 8, 0] {
        let mut rng = StdRng::seed_from_u64(13);
        let mut sim = FolkSim::new(
            FolkSimConfig {
                participants: 160,
                grid: 25,
                copy_budget: budget,
            },
            &mut rng,
        );
        for i in 0..20 {
            sim.send(i, 159 - i, b"form");
        }
        let stats = sim.run(4000, &mut rng);
        println!(
            "{:>8} {:>9.0}% {:>12.1} {:>10}",
            if budget == 0 {
                "∞".to_string()
            } else {
                budget.to_string()
            },
            stats.delivery_ratio() * 100.0,
            stats.mean_latency(),
            stats.transfers
        );
    }
}

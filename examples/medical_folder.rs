//! The Personal Social-Medical Folder field experiment.
//!
//! "A personal folder available at home to ease care coordination. Each
//! patient owns her medical-social folder in a secure token … local and
//! central copies are synchronized without Internet connection" — a
//! nurse's smart badge carries encrypted deltas on her home-visit tour.
//!
//! Run with: `cargo run --example medical_folder`

use pds::sync::{Badge, CentralServer, MedicalFolder};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut server = CentralServer::new();

    // Three home-bound patients, each with a token at home.
    let mut folders: Vec<MedicalFolder> = ["marie", "paul", "jeanne"]
        .iter()
        .map(|p| MedicalFolder::new(p))
        .collect();

    // Week 1: the GP records consultations at the clinic (central
    // server); home visitors write locally on the patients' tokens.
    server.write("marie", "dr.gp", 1, "hypertension follow-up, adjust dosage");
    server.write("paul", "dr.gp", 1, "post-surgery check scheduled");
    folders[0].write("nurse.anna", 2, "BP 142/90 at home, medication taken");
    folders[1].write("physio.marc", 2, "mobility exercises completed");
    folders[2].write("jeanne", 2, "slept poorly, noted for the doctor");

    println!("before the tour:");
    for f in &folders {
        println!("  {} (home): {} entries", f.patient(), f.len());
        println!(
            "  {} (clinic): {} entries",
            f.patient(),
            server.entries(f.patient()).len()
        );
    }

    // The nurse's badge tour: load at the clinic, visit every home,
    // unload back at the clinic. No network anywhere.
    // Collect owned names and keys first: the badge mutates the folders
    // while it needs the patient list.
    let keys: Vec<_> = folders.iter().map(|f| f.key().clone()).collect();
    let names: Vec<String> = folders.iter().map(|f| f.patient().to_string()).collect();
    let patients: Vec<(&str, &pds::crypto::SymmetricKey)> =
        names.iter().map(String::as_str).zip(keys.iter()).collect();

    let mut badge = Badge::new();
    badge.load_central(&server, &patients, &mut rng);
    println!("\nbadge loaded: {} encrypted bytes", badge.carried_bytes());
    for f in &mut folders {
        badge.sync_with_folder(f, &mut rng);
    }
    badge.unload_central(&mut server, &patients);

    println!("\nafter the tour (both copies converged):");
    for f in &folders {
        let home = f.entries();
        let clinic = server.entries(f.patient());
        assert_eq!(home, clinic, "replicas must converge");
        println!("  {}: {} entries on both sides", f.patient(), home.len());
        for e in &home {
            println!("    day {} [{}] {}", e.day, e.author, e.text);
        }
    }
    println!("\ncare coordination achieved with zero network links and zero re-entry.");
}

//! Quickstart: one person, one Personal Data Server.
//!
//! Creates a PDS on a simulated secure token, aggregates heterogeneous
//! personal data into it, defines privacy rules, and shows the query
//! gateway enforcing them — including the audit trail that makes every
//! access accountable.
//!
//! Run with: `cargo run --example quickstart`

use pds::core::{AccessContext, Action, Collection, Pds, Purpose, Rule};
use pds::db::{Predicate, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Alice receives her secure portable token.
    let mut alice = Pds::new(1, "alice")?;
    println!("token {:?} issued to {}", alice.id(), alice.owner());

    // Her digital life flows in: emails, health records, transactions.
    alice.ingest_email(
        100,
        "dr.martin",
        "blood results",
        "all markers within range",
    )?;
    alice.ingest_email(101, "bank", "statement", "monthly account statement")?;
    alice.ingest_health(102, "blood-pressure", 128, "slightly elevated, recheck")?;
    alice.ingest_bank(102, "salary", 250_000, "employer")?;
    alice.ingest_bank(103, "groceries", 5_420, "market")?;
    alice.set_clock(110);

    // Alice queries her own data freely.
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    let hits = alice.search(&me, &["blood"], 10)?;
    println!("alice's search for 'blood': {} hits", hits.len());
    for h in &hits {
        let doc = alice.get_document(&me, h.doc)?;
        println!(
            "  doc {} (score {:.3}): {}",
            h.doc,
            h.score,
            String::from_utf8_lossy(&doc)
        );
    }

    // She grants her doctor care-purpose access to health records only.
    alice.grant(Rule::allow(
        "dr.martin",
        Collection::Table("HEALTH".into()),
        Action::Read,
        Some(Purpose::Care),
    ));
    let doctor = AccessContext::new("dr.martin", Purpose::Care);
    let bp = alice.select(
        &doctor,
        "HEALTH",
        &Predicate::eq("category", Value::str("blood-pressure")),
    )?;
    println!("dr.martin reads {} blood-pressure record(s)", bp.len());

    // The doctor cannot touch her bank data…
    let attempt = alice.select(
        &doctor,
        "BANK",
        &Predicate::eq("category", Value::str("salary")),
    );
    println!("dr.martin on BANK: {}", attempt.unwrap_err());

    // …and a marketer gets nothing at all.
    let marketer = AccessContext::new("adtech-inc", Purpose::Marketing);
    println!(
        "adtech-inc search: {}",
        alice.search(&marketer, &["salary"], 5).unwrap_err()
    );

    // Everything — grants and denials — is in the tamper-evident trail.
    println!("\naudit trail ({} denials):", alice.audit().denials());
    for e in alice.audit().entries() {
        println!(
            "  #{} {} {} on {} → {:?}",
            e.seq, e.subject, e.action, e.target, e.decision
        );
    }
    assert!(alice.audit().verify());
    println!(
        "audit chain verifies: head = {:02x?}…",
        &alice.audit().head()[..4]
    );
    Ok(())
}

//! Distributed secure sharing: proof of legitimacy before data flows.
//!
//! Part I's requirement in action: a patient's token and a doctor's
//! token that have never met establish mutual legitimacy (credential
//! verification + proof of possession), and only then does the patient's
//! PDS honor the doctor's care-purpose query. A rogue party with a
//! replayed credential gets nothing — and an accreditation check gates a
//! national statistics query the same way.
//!
//! Run with: `cargo run --release --example secure_sharing`

use pds::core::credentials::handshake;
use pds::core::{
    AccessContext, Action, Collection, HandshakeOutcome, Issuer, Pds, Purpose, Role, Rule,
};
use pds::db::{Predicate, Value};
use pds::global::authz::authorized_secure_aggregation;
use pds::global::{GroupByQuery, Population, Ssi};
use pds::mcu::TokenId;
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(9);
    // The health authority provisions credentials at token issuance.
    let authority = Issuer::new(b"national-health-authority");
    let vk = authority.verification_key();

    // Alice's PDS with a health record; her doctor's token.
    let mut alice = Pds::new(1, "alice")?;
    alice.ingest_health(10, "blood-pressure", 135, "slightly high")?;
    let alice_cred = authority.issue(alice.id(), "alice", Role::Individual, 3650);
    let doctor_cred = authority.issue(TokenId(2), "dr.martin", Role::Practitioner, 3650);

    // 1. Mutual legitimacy handshake.
    let outcome = handshake(&vk, &alice_cred, &doctor_cred, 100, &mut rng);
    println!("alice ⇄ dr.martin handshake: {outcome:?}");
    assert_eq!(outcome, HandshakeOutcome::Established);

    // 2. Only after the handshake does Alice grant (and the grant is
    //    still purpose- and collection-scoped).
    alice.grant(Rule::allow(
        "dr.martin",
        Collection::Table("HEALTH".into()),
        Action::Read,
        Some(Purpose::Care),
    ));
    let doctor = AccessContext::new("dr.martin", Purpose::Care);
    let rows = alice.select(
        &doctor,
        "HEALTH",
        &Predicate::eq("category", Value::str("blood-pressure")),
    )?;
    println!(
        "dr.martin reads {} health record(s) after the handshake",
        rows.len()
    );

    // 3. A rogue with an expired credential fails the handshake — no
    //    grant is ever considered.
    let stale = authority.issue(TokenId(3), "dr.gone", Role::Practitioner, 50);
    let outcome = handshake(&vk, &alice_cred, &stale, 100, &mut rng);
    println!("alice ⇄ dr.gone (expired): {outcome:?}");
    assert_eq!(outcome, HandshakeOutcome::BadCredential);

    // 4. The same machinery gates global queries: only an accredited
    //    statistics institute can make the population contribute.
    let q = GroupByQuery::bank_by_category();
    let mut pop = Population::synthetic(50, &q.domain, &mut rng)?;
    let insee = authority.issue(TokenId(1000), "insee", Role::StatisticsInstitute, 3650);
    let ssi = Ssi::honest(1);
    let (result, stats) =
        authorized_secure_aggregation(&vk, &insee, 100, &mut pop, &q, &ssi, 16, &mut rng)?;
    println!(
        "\naccredited institute ran the national survey: {} groups, {} token rounds",
        result.len(),
        stats.rounds
    );
    let marketer = authority.issue(TokenId(1001), "adtech", Role::Practitioner, 3650);
    let ssi2 = Ssi::honest(2);
    let err = authorized_secure_aggregation(&vk, &marketer, 100, &mut pop, &q, &ssi2, 16, &mut rng)
        .unwrap_err();
    println!(
        "mis-roled issuer: {err} (SSI saw {} tuples)",
        ssi2.leakage().tuples_seen
    );
    Ok(())
}

//! A national spending survey over a population of Personal Data
//! Servers — Part III end to end.
//!
//! A statistics institute wants `SELECT category, SUM(amount) FROM
//! everyone's BANK GROUP BY category` without any server ever seeing an
//! individual's records. The untrusted SSI orchestrates; the tokens
//! compute. All three [TNP14] protocols run and are checked against the
//! plaintext ground truth, and the SSI's observed leakage is printed.
//!
//! Run with: `cargo run --release --example global_survey`

use pds::global::histogram::{histogram_based, BucketMap};
use pds::global::noise::{noise_based, NoiseStrategy};
use pds::global::secure_agg::{secure_aggregation, OnTamper};
use pds::global::{plaintext_groupby, GroupByQuery, Population, Ssi};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let query = GroupByQuery::bank_by_category();
    println!("building a population of 300 PDSs…");
    let mut pop = Population::synthetic(300, &query.domain, &mut rng)?;

    let truth = plaintext_groupby(&mut pop, &query)?;
    println!("\nground truth (trusted-server fiction):");
    for (g, v) in &truth {
        println!("  {g:<12} {:>12} cents", v);
    }

    // Protocol 1: secure aggregation (probabilistic encryption).
    let ssi = Ssi::honest(1);
    let (r1, s1) = secure_aggregation(&mut pop, &query, &ssi, 32, OnTamper::Abort, &mut rng)?;
    assert_eq!(r1, truth);
    println!(
        "\n[secure-agg]   exact ✓  token tuples {:>6}  rounds {:>4}  SSI bytes {:>8}  SSI sees {} equality classes",
        s1.token_tuples, s1.rounds, s1.ssi_bytes,
        ssi.leakage().equality_class_sizes.len()
    );

    // Protocol 2a: noise-based, random fakes.
    let ssi = Ssi::honest(2);
    let (r2, s2) = noise_based(
        &mut pop,
        &query,
        &ssi,
        NoiseStrategy::Random { fakes_per_token: 4 },
        &mut rng,
    )?;
    assert_eq!(r2, truth);
    println!(
        "[noise-random] exact ✓  token tuples {:>6}  rounds {:>4}  SSI bytes {:>8}  frequency signal {:.3}",
        s2.token_tuples, s2.rounds, s2.ssi_bytes,
        ssi.leakage().frequency_signal()
    );

    // Protocol 2b: noise-based, complementary-domain fakes.
    let ssi = Ssi::honest(3);
    let (r3, s3) = noise_based(
        &mut pop,
        &query,
        &ssi,
        NoiseStrategy::Complementary,
        &mut rng,
    )?;
    assert_eq!(r3, truth);
    println!(
        "[noise-compl]  exact ✓  token tuples {:>6}  rounds {:>4}  SSI bytes {:>8}  frequency signal {:.3}",
        s3.token_tuples, s3.rounds, s3.ssi_bytes,
        ssi.leakage().frequency_signal()
    );

    // Protocol 3: histogram-based (3 buckets over the 6-category domain).
    let map = BucketMap::equi_width(&query.domain, 3);
    let ssi = Ssi::honest(4);
    let (r4, s4) = histogram_based(&mut pop, &query, &ssi, &map, &mut rng)?;
    assert_eq!(r4, truth);
    println!(
        "[histogram-3]  exact ✓  token tuples {:>6}  rounds {:>4}  SSI bytes {:>8}  SSI sees {} buckets",
        s4.token_tuples, s4.rounds, s4.ssi_bytes,
        ssi.leakage().equality_class_sizes.len()
    );

    println!("\nall three protocol families return the exact GROUP BY;");
    println!("they differ only in token work, rounds and what the SSI observes.");
    Ok(())
}

//! A quantified-self "life log" on one secure token — the extension data
//! models in action.
//!
//! The tutorial's closing challenge asks to extend the embedded framework
//! "to other data models: time series, noSQL & key-value stores". This
//! example runs both on one simulated token: a year of heart-rate
//! samples in the time-series store, and a preferences/profile key-value
//! store — each queried at summary-scan cost.
//!
//! Run with: `cargo run --release --example life_log`

use pds::db::{KvStore, TimeSeries};
use pds::flash::{Flash, FlashGeometry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flash = Flash::new(FlashGeometry::nand_2k(64));
    println!(
        "token flash: {} MB, {}-byte pages\n",
        flash.geometry().capacity() / (1024 * 1024),
        flash.geometry().page_size
    );

    // --- time series: a year of minutely heart-rate samples ------------
    let mut hr = TimeSeries::new(&flash);
    let minutes_per_year = 365 * 24 * 60u64;
    println!("ingesting {minutes_per_year} heart-rate samples…");
    for m in 0..minutes_per_year {
        // A plausible diurnal pattern: 55 resting, peaks at midday.
        let hour = (m / 60) % 24;
        let base = 55 + ((hour as i64 - 12).abs() - 12).unsigned_abs() as i64 * 2;
        hr.append(m * 60, base + (m % 7) as i64)?;
    }
    hr.flush()?;
    println!("time series occupies {} data pages", hr.num_data_pages());

    for (label, from_day, to_day) in [
        ("January", 0u64, 31u64),
        ("one week in June", 151, 158),
        ("Dec 31", 364, 365),
    ] {
        flash.reset_stats();
        let agg = hr.range_aggregate(from_day * 86_400, to_day * 86_400 - 1)?;
        println!(
            "{label:>18}: {} samples, mean {:.1} bpm, min {} max {} — {} page reads (vs {} full scan)",
            agg.count,
            agg.mean().unwrap(),
            agg.min,
            agg.max,
            flash.stats().page_reads,
            hr.num_data_pages()
        );
    }

    // --- key-value: mutable profile state on an append-only chip -------
    let mut prefs = KvStore::new(&flash);
    println!("\nwriting 10k profile updates over 500 keys…");
    for i in 0..10_000u32 {
        prefs.put(
            format!("pref-{}", i % 500).as_bytes(),
            format!("value-v{}", i / 500).as_bytes(),
        )?;
    }
    prefs.delete(b"pref-499")?;
    prefs.flush()?;
    flash.reset_stats();
    let v = prefs.get(b"pref-42")?.unwrap();
    println!(
        "get(pref-42) = {:?} in {} page reads ({} data pages, {} versions on flash)",
        String::from_utf8_lossy(&v),
        flash.stats().page_reads,
        prefs.num_data_pages(),
        prefs.num_versions()
    );
    assert_eq!(prefs.get(b"pref-499")?, None, "tombstoned");

    // Compaction reclaims the shadowed versions at block grain.
    let pages_before = prefs.num_data_pages();
    let prefs = prefs.compact()?;
    println!(
        "compaction: {} → {} data pages (only live versions survive)",
        pages_before,
        prefs.num_data_pages()
    );
    assert_eq!(
        prefs.get(b"pref-42")?.unwrap(),
        b"value-v19".to_vec(),
        "latest version preserved"
    );
    println!("\nsame framework, new data models — the tutorial's extension challenge, built.");
    Ok(())
}

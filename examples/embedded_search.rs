//! The embedded search engine under the microscope.
//!
//! Indexes a synthetic personal corpus on a simulated secure token and
//! shows the Part II story in numbers: bounded query RAM (one flash page
//! per keyword), page-I/O costs, and the effect of a background
//! reorganization of the chained hash buckets.
//!
//! Run with: `cargo run --release --example embedded_search`

use pds::flash::Flash;
use pds::mcu::{HardwareProfile, RamBudget};
use pds::search::gen::{generate_corpus, CorpusConfig};
use pds::search::{DfStrategy, NaiveSearch, SearchEngine};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = HardwareProfile::secure_token();
    println!(
        "device: {} — {} KB RAM, {} MB flash ({}-byte pages)",
        profile.name,
        profile.ram_bytes / 1024,
        profile.flash.capacity() / (1024 * 1024),
        profile.flash.page_size
    );
    let flash = Flash::new(profile.flash);
    let ram = RamBudget::new(profile.ram_bytes);
    let mut engine = SearchEngine::new(&flash, &ram, 128, 1024, DfStrategy::TwoPass)?;
    let mut oracle = NaiveSearch::new();

    let cfg = CorpusConfig {
        num_docs: 3000,
        vocabulary: 4000,
        doc_len: 25,
        zipf_s: 1.0,
    };
    let mut rng = StdRng::seed_from_u64(3);
    println!("indexing {} documents…", cfg.num_docs);
    for doc in generate_corpus(&cfg, &mut rng) {
        engine.index_document(&doc)?;
        oracle.index(&doc);
    }
    engine.flush()?;
    println!(
        "index: {} pages across {} buckets; insertion caused {} random writes",
        engine.num_index_pages(),
        128,
        flash.stats().non_sequential_programs
    );

    let queries: &[&[&str]] = &[&["w3"], &["w10", "w55"], &["w100", "w200", "w500"]];
    for q in queries {
        ram.reset_high_water();
        let base = ram.used();
        flash.reset_stats();
        let hits = engine.search(q, 10)?;
        let expected = oracle.search(q, 10);
        assert_eq!(
            hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            expected.iter().map(|h| h.doc).collect::<Vec<_>>(),
            "embedded engine must equal the unconstrained oracle"
        );
        println!(
            "query {q:?}: top-10 exact ✓ | {} page reads | peak query RAM {} B | naive would hold {} doc accumulators",
            flash.stats().page_reads,
            ram.high_water() - base,
            oracle.accumulators_for(q)
        );
    }

    // Background reorganization: pack the chains.
    let before = engine.num_index_pages();
    flash.reset_stats();
    engine.reorganize()?;
    println!(
        "\nreorganization: {} → {} index pages (cost: {} reads, {} writes)",
        before,
        engine.num_index_pages(),
        flash.stats().page_reads,
        flash.stats().page_programs
    );
    flash.reset_stats();
    let hits = engine.search(&["w10", "w55"], 10)?;
    println!(
        "same query after reorg: {} hits in {} page reads",
        hits.len(),
        flash.stats().page_reads
    );
    Ok(())
}

//! # pds-mcu — secure microcontroller model
//!
//! Part II of the EDBT'14 tutorial targets "secure MCUs" with *severe
//! hardware constraints*: "Small RAM (<128 KB) ⇒ favor pipeline query
//! evaluation ⇒ (many) indexes. Security is linked with size." The secure
//! portable token (SPT) couples such an MCU with a large NAND flash chip
//! behind a tamper-resistant boundary.
//!
//! Real tamper-resistant silicon cannot ship in a software reproduction, so
//! this crate substitutes the property that actually shapes the tutorial's
//! algorithms: the **RAM bound is enforced in software**. Every embedded
//! operator reserves its working set from a [`RamBudget`]; exceeding the
//! budget is a hard error, exactly as malloc failure would be on the MCU.
//! Algorithms that pass the test suite therefore run within the declared
//! RAM on the real device.
//!
//! Provided here:
//!
//! * [`RamBudget`] / [`Reservation`] — checked RAM accounting with
//!   high-water-mark measurement (reported by the benches).
//! * [`BoundedVec`], [`TopN`] — RAM-accounted collections; `TopN` is the
//!   bounded heap that keeps "the N docids with the highest score … in
//!   RAM" in the embedded search engine.
//! * [`HardwareProfile`] — calibrated device classes (smart token, sensor
//!   node, plug server) pairing a RAM size with a flash geometry.
//! * [`Token`] — a secure portable token: flash + RAM budget + identity +
//!   tamper state, the execution context every upper layer runs in.

pub mod bounded;
pub mod codesign;
pub mod profile;
pub mod ram;
pub mod token;

pub use bounded::{BoundedVec, TopN};
pub use profile::HardwareProfile;
pub use ram::{RamBudget, RamError, Reservation};
pub use token::{TamperState, Token, TokenId, TokenSleep};

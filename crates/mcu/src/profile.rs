//! Calibrated device classes.
//!
//! The tutorial's Part II slide "Target hardware" lists three families:
//! sensors with flash cards, secure personal devices (smart tokens, secure
//! MicroSD with 4 GB flash, contactless tokens with 8 GB), and the
//! FreedomBox-class plug server of Part I. Each profile pairs an MCU RAM
//! size with a NAND geometry so experiments can sweep across the spectrum.

use pds_flash::FlashGeometry;

/// A device class = RAM size + flash geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareProfile {
    /// Human-readable class name.
    pub name: &'static str,
    /// MCU RAM available to data management, in bytes.
    pub ram_bytes: usize,
    /// NAND geometry of the storage chip.
    pub flash: FlashGeometry,
}

impl HardwareProfile {
    /// A wireless sensor node: 8 KB RAM, 64 MB flash card.
    pub fn sensor() -> Self {
        HardwareProfile {
            name: "sensor",
            ram_bytes: 8 * 1024,
            flash: FlashGeometry::nand_2k(64),
        }
    }

    /// The tutorial's secure portable token: 64 KB RAM (below the 128 KB
    /// bound of the slides), 4 GB-class secure MicroSD. The simulated chip
    /// is scaled to 256 MB so experiments stay laptop-sized; the geometry
    /// (2 KB pages, 64 pages/block) is the real one.
    pub fn secure_token() -> Self {
        HardwareProfile {
            name: "secure-token",
            ram_bytes: 64 * 1024,
            flash: FlashGeometry::nand_2k(256),
        }
    }

    /// A small secure token at the very bottom of the range: 16 KB RAM.
    pub fn small_token() -> Self {
        HardwareProfile {
            name: "small-token",
            ram_bytes: 16 * 1024,
            flash: FlashGeometry::nand_2k(128),
        }
    }

    /// A FreedomBox-class plug server: 256 MB RAM (the tutorial's minimum
    /// base requirement), flash-backed file system. RAM is no longer the
    /// bottleneck on this class; it serves as the "unconstrained" baseline.
    pub fn plug_server() -> Self {
        HardwareProfile {
            name: "plug-server",
            ram_bytes: 256 * 1024 * 1024,
            flash: FlashGeometry::nand_2k(512),
        }
    }

    /// A minimal-footprint profile for simulating large populations of
    /// tokens (Part III runs thousands of PDSs in one process): 16 KB
    /// RAM, 2 MB flash. Same constraints, smaller canvas.
    pub fn population() -> Self {
        HardwareProfile {
            name: "population",
            ram_bytes: 16 * 1024,
            flash: FlashGeometry::new(512, 16, 256),
        }
    }

    /// A tiny profile for fast unit tests.
    pub fn test_profile() -> Self {
        HardwareProfile {
            name: "test",
            ram_bytes: 32 * 1024,
            flash: FlashGeometry::new(512, 16, 4096),
        }
    }

    /// RAM expressed in flash pages (how many page buffers fit in RAM),
    /// the unit the pipeline operators reason in.
    pub fn ram_in_pages(&self) -> usize {
        self.ram_bytes / self.flash.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_respects_the_tutorial_ram_bound() {
        let p = HardwareProfile::secure_token();
        assert!(p.ram_bytes < 128 * 1024, "slides: RAM < 128 KB");
        assert!(p.ram_in_pages() >= 8, "enough for a few page cursors");
    }

    #[test]
    fn profiles_are_ordered_by_ram() {
        let s = HardwareProfile::sensor();
        let t = HardwareProfile::secure_token();
        let p = HardwareProfile::plug_server();
        assert!(s.ram_bytes < t.ram_bytes);
        assert!(t.ram_bytes < p.ram_bytes);
    }
}

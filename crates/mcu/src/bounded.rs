//! RAM-accounted collections used by the embedded operators.

use crate::ram::{RamBudget, RamError, Reservation};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A growable vector whose heap footprint is charged to the MCU RAM
/// budget. Used by pipeline operators for their per-operator working sets
/// (e.g. one flash-page cursor per query keyword).
pub struct BoundedVec<T> {
    items: Vec<T>,
    reservation: Reservation,
    budget: RamBudget,
}

impl<T> BoundedVec<T> {
    /// An empty vector attached to `budget`.
    pub fn new(budget: &RamBudget) -> Result<Self, RamError> {
        let reservation = budget.reserve(0)?;
        Ok(BoundedVec {
            // pds-lint: allow(ram.raw_alloc) — this IS the accounted container: every push reserves through `budget` before growing.
            items: Vec::new(),
            reservation,
            budget: budget.clone(),
        })
    }

    fn unit() -> usize {
        std::mem::size_of::<T>().max(1)
    }

    /// Push one element, charging its size; fails when RAM is exhausted.
    pub fn push(&mut self, item: T) -> Result<(), RamError> {
        self.reservation.grow(Self::unit())?;
        self.items.push(item);
        Ok(())
    }

    /// Pop the last element, releasing its charge.
    pub fn pop(&mut self) -> Option<T> {
        let it = self.items.pop();
        if it.is_some() {
            self.reservation.shrink(Self::unit());
        }
        it
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Mutable access to the contents (size cannot change through this).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.items
    }

    /// Drop all elements, releasing their charge.
    pub fn clear(&mut self) {
        self.reservation.shrink(self.items.len() * Self::unit());
        self.items.clear();
    }

    /// Consume the vector, releasing the charge and returning the items.
    pub fn into_vec(self) -> Vec<T> {
        // Reservation drops with self.
        let BoundedVec { items, .. } = self;
        items
    }

    /// The budget this vector draws from.
    pub fn budget(&self) -> &RamBudget {
        &self.budget
    }
}

impl<T> std::ops::Index<usize> for BoundedVec<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.items[i]
    }
}

/// Bounded top-N selector: keeps the `n` largest items seen so far in a
/// min-heap of fixed RAM footprint.
///
/// This is exactly the structure of the tutorial's embedded search engine:
/// "The N docids with the highest score are kept in RAM" while the
/// inverted-index lists stream by in pipeline.
pub struct TopN<T: Ord> {
    heap: BinaryHeap<Reverse<T>>,
    n: usize,
    _reservation: Reservation,
}

impl<T: Ord> TopN<T> {
    /// A selector for the `n` largest items; its full RAM footprint is
    /// charged up front so that a query's RAM use is known before it runs.
    pub fn new(budget: &RamBudget, n: usize) -> Result<Self, RamError> {
        let bytes = n * std::mem::size_of::<T>().max(1);
        let reservation = budget.reserve(bytes)?;
        Ok(TopN {
            heap: BinaryHeap::with_capacity(n + 1),
            n,
            _reservation: reservation,
        })
    }

    /// Offer one item; it is retained only if it ranks in the current
    /// top `n`.
    pub fn offer(&mut self, item: T) {
        if self.n == 0 {
            return;
        }
        if self.heap.len() < self.n {
            self.heap.push(Reverse(item));
        } else if let Some(Reverse(min)) = self.heap.peek() {
            if item > *min {
                self.heap.pop();
                self.heap.push(Reverse(item));
            }
        }
    }

    /// Number of retained items (≤ n).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finish, returning the retained items in descending order.
    pub fn into_sorted_desc(self) -> Vec<T> {
        let mut v: Vec<T> = self.heap.into_iter().map(|Reverse(t)| t).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_vec_charges_and_releases() {
        let b = RamBudget::new(8 * 10);
        let mut v: BoundedVec<u64> = BoundedVec::new(&b).unwrap();
        for i in 0..10u64 {
            v.push(i).unwrap();
        }
        assert_eq!(b.used(), 80);
        assert!(v.push(11).is_err(), "11th u64 exceeds 80-byte budget");
        assert_eq!(v.len(), 10);
        assert_eq!(v.pop(), Some(9));
        assert_eq!(b.used(), 72);
        v.clear();
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn bounded_vec_into_vec_releases_budget() {
        let b = RamBudget::new(1024);
        let mut v: BoundedVec<u32> = BoundedVec::new(&b).unwrap();
        v.push(1).unwrap();
        v.push(2).unwrap();
        let plain = v.into_vec();
        assert_eq!(plain, vec![1, 2]);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn top_n_keeps_the_n_largest() {
        let b = RamBudget::new(1024);
        let mut t: TopN<i32> = TopN::new(&b, 3).unwrap();
        for x in [5, 1, 9, 3, 7, 2, 8] {
            t.offer(x);
        }
        assert_eq!(t.into_sorted_desc(), vec![9, 8, 7]);
    }

    #[test]
    fn top_n_with_fewer_items_than_n() {
        let b = RamBudget::new(1024);
        let mut t: TopN<i32> = TopN::new(&b, 10).unwrap();
        t.offer(2);
        t.offer(1);
        assert_eq!(t.into_sorted_desc(), vec![2, 1]);
    }

    #[test]
    fn top_n_charges_up_front() {
        let b = RamBudget::new(16);
        assert!(TopN::<u64>::new(&b, 3).is_err(), "3×8 B > 16 B");
        let t = TopN::<u64>::new(&b, 2).unwrap();
        assert_eq!(b.used(), 16);
        drop(t);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn top_n_zero_is_inert() {
        let b = RamBudget::new(1024);
        let mut t: TopN<i32> = TopN::new(&b, 0).unwrap();
        t.offer(42);
        assert!(t.is_empty());
        assert!(t.into_sorted_desc().is_empty());
    }

    #[test]
    fn top_n_handles_duplicates() {
        let b = RamBudget::new(1024);
        let mut t: TopN<i32> = TopN::new(&b, 3).unwrap();
        for x in [4, 4, 4, 4, 1] {
            t.offer(x);
        }
        assert_eq!(t.into_sorted_desc(), vec![4, 4, 4]);
    }
}

//! Hardware/software co-design calibration — the tutorial's second
//! "remaining challenge".
//!
//! "A general co-design approach is still missing: how to calibrate the
//! HW (RAM) to data-oriented treatments? How to adapt to dynamic
//! variations of the HW parameters?"
//!
//! This module provides the forward and inverse calibrations for the
//! operators of this repository, in closed form derived from their
//! RAM-reservation structure (each operator reserves its working set
//! explicitly — see the `RamBudget` discipline — so the formulas are
//! exact, and the tests pin them against the real operators):
//!
//! * search query: `keywords × page + page (df) + N × entry + residents`
//! * external sort/merge: `max(run_buffer, fan_in × page)`
//! * tree reorganization: `sort + 2 pages (level construction)`
//!
//! The inverse direction answers the co-design question: given a device
//! RAM size, what is the largest query/fan-in/run it can serve?

use crate::profile::HardwareProfile;

/// Fixed per-query slack (cursor bookkeeping, stack) budgeted by the
/// calibration. Generous relative to the real operators.
const SLACK: usize = 512;

/// Bytes per top-N heap entry in the search engine.
const TOPN_ENTRY: usize = 16;

/// The data-oriented treatments whose RAM needs are calibrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Treatment {
    /// A TF-IDF search with `keywords` query keywords and top-`n`.
    Search {
        /// Query keywords.
        keywords: usize,
        /// Result size.
        n: usize,
    },
    /// An external sort with a `run_bytes` run buffer and `fan_in`-way
    /// merge.
    Sort {
        /// RAM for run formation.
        run_bytes: usize,
        /// Merge fan-in (one page each).
        fan_in: usize,
    },
    /// An index reorganization (sort + sequential tree build).
    Reorganize {
        /// RAM for run formation.
        run_bytes: usize,
        /// Merge fan-in.
        fan_in: usize,
    },
}

/// Minimal RAM (bytes) the treatment needs on a device with `page_size`
/// pages, *excluding* engine residents (see
/// [`search_residents`]).
pub fn required_ram(t: &Treatment, page_size: usize) -> usize {
    match t {
        Treatment::Search { keywords, n } => {
            // cursors + df page (two-pass) + top-N heap + slack
            keywords * page_size + page_size + n * TOPN_ENTRY + SLACK
        }
        Treatment::Sort { run_bytes, fan_in } => (*run_bytes).max(fan_in * page_size) + SLACK,
        Treatment::Reorganize { run_bytes, fan_in } => {
            (*run_bytes).max(fan_in * page_size) + 2 * page_size + SLACK
        }
    }
}

/// Permanent RAM residents of a search engine with `buckets` buckets and
/// a `buffer_triples`-triple insertion buffer (14-byte triples plus Vec
/// headroom, conservatively 16).
pub fn search_residents(buckets: usize, buffer_triples: usize) -> usize {
    buckets * 4 + buffer_triples * 16
}

/// Inverse calibration: the largest keyword count a device can serve for
/// top-`n` search, after residents. `None` if even one keyword does not
/// fit.
pub fn max_search_keywords(profile: &HardwareProfile, residents: usize, n: usize) -> Option<usize> {
    let page = profile.flash.page_size;
    let avail = profile
        .ram_bytes
        .checked_sub(residents + page + n * TOPN_ENTRY + SLACK)?;
    let k = avail / page;
    (k >= 1).then_some(k)
}

/// Inverse calibration: the largest merge fan-in a device can afford.
pub fn max_sort_fan_in(profile: &HardwareProfile, residents: usize) -> usize {
    let page = profile.flash.page_size;
    profile.ram_bytes.saturating_sub(residents + SLACK) / page
}

/// A calibration report row for one device profile.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Device name.
    pub device: &'static str,
    /// RAM in bytes.
    pub ram: usize,
    /// Max search keywords (top-10, default engine residents).
    pub max_keywords: Option<usize>,
    /// Max sort fan-in.
    pub max_fan_in: usize,
}

/// Calibrate the standard device ladder.
pub fn calibrate_ladder() -> Vec<Calibration> {
    [
        HardwareProfile::sensor(),
        HardwareProfile::population(),
        HardwareProfile::small_token(),
        HardwareProfile::secure_token(),
        HardwareProfile::plug_server(),
    ]
    .iter()
    .map(|p| {
        let residents = search_residents(64, 256);
        Calibration {
            device: p.name,
            ram: p.ram_bytes,
            max_keywords: max_search_keywords(p, residents, 10),
            max_fan_in: max_sort_fan_in(p, residents),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_formulas_are_monotone() {
        let s1 = required_ram(&Treatment::Search { keywords: 1, n: 10 }, 2048);
        let s3 = required_ram(&Treatment::Search { keywords: 3, n: 10 }, 2048);
        assert!(s3 > s1);
        assert_eq!(s3 - s1, 2 * 2048);
        let sort = required_ram(
            &Treatment::Sort {
                run_bytes: 8192,
                fan_in: 8,
            },
            2048,
        );
        assert_eq!(sort, 8 * 2048 + SLACK, "fan-in dominates the 8 KB run");
        let reorg = required_ram(
            &Treatment::Reorganize {
                run_bytes: 8192,
                fan_in: 8,
            },
            2048,
        );
        assert_eq!(reorg, sort + 2 * 2048);
    }

    #[test]
    fn inverse_round_trips_forward() {
        let p = HardwareProfile::secure_token();
        let residents = search_residents(64, 256);
        let k = max_search_keywords(&p, residents, 10).unwrap();
        // k keywords fit…
        let need = required_ram(&Treatment::Search { keywords: k, n: 10 }, p.flash.page_size);
        assert!(need + residents <= p.ram_bytes);
        // …k+1 do not.
        let need1 = required_ram(
            &Treatment::Search {
                keywords: k + 1,
                n: 10,
            },
            p.flash.page_size,
        );
        assert!(need1 + residents > p.ram_bytes);
    }

    #[test]
    fn ladder_is_ordered_and_sensible() {
        let ladder = calibrate_ladder();
        assert_eq!(ladder.len(), 5);
        // More RAM never shrinks capability — comparable only at equal
        // page size (fan-in counts *pages*): sensor, small-token,
        // secure-token and plug-server all use 2 KB pages.
        let fan = |name: &str| ladder.iter().find(|c| c.device == name).unwrap().max_fan_in;
        assert!(fan("sensor") <= fan("small-token"));
        assert!(fan("small-token") <= fan("secure-token"));
        assert!(fan("secure-token") <= fan("plug-server"));
        let token = ladder.iter().find(|c| c.device == "secure-token").unwrap();
        assert!(
            token.max_keywords.unwrap() >= 8,
            "64 KB serves real queries"
        );
        let sensor = ladder.iter().find(|c| c.device == "sensor").unwrap();
        assert!(
            sensor.max_keywords.unwrap_or(0) <= 2,
            "8 KB sensors are single-keyword devices"
        );
    }

    /// The calibration formula must not under-estimate what the real
    /// engine consumes: run an actual query at the calibrated maximum.
    #[test]
    fn calibration_is_safe_against_the_real_engine() {
        use pds_flash::Flash;
        let p = HardwareProfile::test_profile();
        let flash = Flash::new(p.flash);
        let ram = crate::RamBudget::new(p.ram_bytes);
        // The engine itself lives in pds-search; here we exercise the
        // reservation pattern directly: residents + k cursors + df page
        // + heap must fit when the formula says so.
        let residents = search_residents(16, 64);
        let _resident_guard = ram.reserve(residents).unwrap();
        let k = max_search_keywords(&p, residents, 10).unwrap();
        let page = p.flash.page_size;
        let _cursors = ram.reserve(k * page).unwrap();
        let _df = ram.reserve(page).unwrap();
        let _heap = ram.reserve(10 * TOPN_ENTRY).unwrap();
        let _ = flash;
    }
}

//! The secure portable token: the execution context of a PDS.
//!
//! "Why trust personal secure HW solutions? Users store their own data …
//! self (user) managed platform … tamper-resistance + certified code +
//! single user ⇒ the ratio cost/benefit of an attack is very high."
//!
//! A [`Token`] bundles the two resources every embedded algorithm needs —
//! a NAND flash chip and a RAM budget — with an identity and a *tamper
//! state*. Tamper resistance itself cannot be reproduced in software; its
//! role in the tutorial's protocols is the **threat-model assumption**
//! (`Unbreakable` vs `Broken`), which Part III's adversary simulations set
//! explicitly per token.

use crate::profile::HardwareProfile;
use crate::ram::RamBudget;
use pds_flash::Flash;

/// Globally unique token identifier (one per individual).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u64);

/// Threat-model state of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperState {
    /// The tutorial's default assumption: tamper-resistant hardware and
    /// certified code hold; secrets never leave the chip.
    Unbreakable,
    /// The token has been physically compromised; its keys and data are
    /// known to the adversary. Part III's "weakly malicious" analyses
    /// require protocols to confine the damage of broken tokens.
    Broken,
}

/// A secure portable token: MCU + NAND + identity.
pub struct Token {
    id: TokenId,
    profile: HardwareProfile,
    flash: Flash,
    ram: RamBudget,
    tamper: TamperState,
}

impl Token {
    /// Manufacture a token of the given class.
    pub fn new(id: TokenId, profile: HardwareProfile) -> Self {
        Token {
            id,
            profile,
            flash: Flash::new(profile.flash),
            ram: RamBudget::new(profile.ram_bytes),
            tamper: TamperState::Unbreakable,
        }
    }

    /// A token with the standard secure-token profile.
    pub fn secure(id: u64) -> Self {
        Token::new(TokenId(id), HardwareProfile::secure_token())
    }

    /// A small token for fast tests.
    pub fn for_tests(id: u64) -> Self {
        Token::new(TokenId(id), HardwareProfile::test_profile())
    }

    /// A minimal-footprint token for population-scale simulations.
    pub fn slim(id: u64) -> Self {
        Token::new(TokenId(id), HardwareProfile::population())
    }

    /// The token identity.
    pub fn id(&self) -> TokenId {
        self.id
    }

    /// The hardware class.
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Handle on the token's flash chip.
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// Handle on the token's RAM budget.
    pub fn ram(&self) -> &RamBudget {
        &self.ram
    }

    /// Current threat-model state.
    pub fn tamper_state(&self) -> TamperState {
        self.tamper
    }

    /// True unless the adversary broke this token.
    pub fn is_trusted(&self) -> bool {
        self.tamper == TamperState::Unbreakable
    }

    /// Adversary action: physically break the token (Part III
    /// experiments).
    pub fn compromise(&mut self) {
        self.tamper = TamperState::Broken;
    }

    /// Simulate a power cycle: same identity, same silicon, but the flash
    /// controller rebuilds its state by cell scan ([`Flash::reboot`]) and
    /// the RAM budget starts empty — everything RAM-resident died with
    /// the power. Tamper state is physical and survives.
    pub fn reopen(&self) -> Token {
        Token {
            id: self.id,
            profile: self.profile,
            flash: self.flash.reboot(),
            ram: RamBudget::new(self.profile.ram_bytes),
            tamper: self.tamper,
        }
    }

    /// Power the token down to its persistent state: identity, hardware
    /// class, tamper state, and a sparse [`ChipSnapshot`] of the NAND
    /// cells. The returned [`TokenSleep`] is plain data (no `Rc` flash
    /// handle), so a scheduler can park thousands of idle tokens in a
    /// fraction of their live footprint. [`Token::wake`] is the inverse.
    pub fn hibernate(&self) -> TokenSleep {
        TokenSleep {
            id: self.id,
            profile: self.profile,
            tamper: self.tamper,
            chip: self.flash.snapshot(),
        }
    }

    /// Boot a token back from hibernated silicon: the flash controller
    /// rebuilds its state by cell scan and the RAM budget starts empty,
    /// exactly like [`Token::reopen`] after a power cycle.
    pub fn wake(sleep: TokenSleep) -> Token {
        Token {
            id: sleep.id,
            profile: sleep.profile,
            flash: Flash::reopen(sleep.chip),
            ram: RamBudget::new(sleep.profile.ram_bytes),
            tamper: sleep.tamper,
        }
    }
}

/// A powered-down token: everything that survives power loss, nothing
/// that doesn't. Unlike a live [`Token`] this is `Send` plain data.
pub struct TokenSleep {
    id: TokenId,
    profile: HardwareProfile,
    tamper: TamperState,
    chip: pds_flash::ChipSnapshot,
}

impl TokenSleep {
    /// The hibernated token's identity.
    pub fn id(&self) -> TokenId {
        self.id
    }

    /// Approximate persistent footprint: bytes the sparse chip snapshot
    /// holds (programmed blocks only).
    pub fn resident_bytes(&self) -> usize {
        self.chip.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_exposes_its_resources() {
        let t = Token::for_tests(7);
        assert_eq!(t.id(), TokenId(7));
        assert_eq!(t.ram().capacity(), t.profile().ram_bytes);
        assert_eq!(t.flash().geometry(), t.profile().flash);
        assert!(t.is_trusted());
    }

    #[test]
    fn compromise_flips_trust() {
        let mut t = Token::for_tests(1);
        t.compromise();
        assert_eq!(t.tamper_state(), TamperState::Broken);
        assert!(!t.is_trusted());
    }

    #[test]
    fn tokens_have_independent_budgets() {
        let a = Token::for_tests(1);
        let b = Token::for_tests(2);
        let _r = a.ram().reserve(a.ram().capacity()).unwrap();
        assert!(b.ram().reserve(1024).is_ok());
    }
}

//! Checked RAM accounting.
//!
//! On the tutorial's secure MCU "security is linked with size": RAM is a
//! few dozen KB and cannot grow. `RamBudget` models that wall. Operators
//! reserve bytes before materializing state; a reservation is an RAII
//! guard, so the accounting can never leak even on early returns.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Error raised when an operator would exceed the device RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RamError {
    /// Bytes requested by the failing reservation.
    pub requested: usize,
    /// Bytes still available at the time of the request.
    pub available: usize,
    /// Total device RAM.
    pub capacity: usize,
}

impl fmt::Display for RamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RAM budget exceeded: requested {} B, {} B free of {} B",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for RamError {}

struct Inner {
    capacity: usize,
    used: usize,
    high_water: usize,
    /// Process-wide gauges/counters (`mcu.ram.*` namespace): bytes
    /// reserved across every live budget, the worst single-budget peak
    /// (the per-*device* high-water mark — a max over budgets, so it is
    /// independent of how concurrently-live budgets interleave across
    /// threads), and reservations refused for want of RAM.
    obs_used: Arc<pds_obs::Gauge>,
    obs_high_water: Arc<pds_obs::Gauge>,
    obs_aborts: Arc<pds_obs::Counter>,
}

/// A shared, checked RAM budget for one MCU.
#[derive(Clone)]
pub struct RamBudget {
    inner: Rc<RefCell<Inner>>,
}

impl RamBudget {
    /// A budget of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        RamBudget {
            inner: Rc::new(RefCell::new(Inner {
                capacity,
                used: 0,
                high_water: 0,
                obs_used: pds_obs::gauge("mcu.ram.used_bytes"),
                obs_high_water: pds_obs::gauge("mcu.ram.high_water_bytes"),
                obs_aborts: pds_obs::counter("mcu.ram.budget_aborts"),
            })),
        }
    }

    /// Total device RAM.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.inner.borrow().used
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        let i = self.inner.borrow();
        i.capacity - i.used
    }

    /// Peak reservation observed since creation or the last
    /// [`reset_high_water`](Self::reset_high_water) — the number the
    /// benches report as "RAM consumption".
    pub fn high_water(&self) -> usize {
        self.inner.borrow().high_water
    }

    /// Reset the peak marker (between benchmark phases).
    pub fn reset_high_water(&self) {
        let mut i = self.inner.borrow_mut();
        i.high_water = i.used;
    }

    /// Attach this budget's high-water mark to a tracing span as
    /// `mcu.ram.peak_bytes` (the attribute [`pds_obs::QueryTrace`]
    /// reports as peak RAM). Pair with
    /// [`reset_high_water`](Self::reset_high_water) at request start to
    /// get a per-request peak.
    pub fn attach_peak_to_span(&self, span: &pds_obs::SpanGuard) {
        span.set("mcu.ram.peak_bytes", self.high_water() as u64);
    }

    /// Reserve `bytes`; fails (like malloc on the MCU) when the budget is
    /// exhausted. The returned guard releases on drop.
    pub fn reserve(&self, bytes: usize) -> Result<Reservation, RamError> {
        let mut i = self.inner.borrow_mut();
        if i.used + bytes > i.capacity {
            i.obs_aborts.inc();
            return Err(RamError {
                requested: bytes,
                available: i.capacity - i.used,
                capacity: i.capacity,
            });
        }
        i.used += bytes;
        i.high_water = i.high_water.max(i.used);
        i.obs_used.add(bytes as u64);
        i.obs_high_water.record_max(i.high_water as u64);
        drop(i);
        Ok(Reservation {
            budget: self.clone(),
            bytes,
        })
    }
}

/// RAII guard for a RAM reservation.
pub struct Reservation {
    budget: RamBudget,
    bytes: usize,
}

impl fmt::Debug for Reservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reservation")
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Reservation {
    /// Size of this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grow the reservation in place (e.g. a buffer that doubles).
    pub fn grow(&mut self, extra: usize) -> Result<(), RamError> {
        let g = self.budget.reserve(extra)?;
        // Merge the guard into self instead of letting it release.
        self.bytes += g.bytes;
        std::mem::forget(g);
        Ok(())
    }

    /// Shrink the reservation in place.
    pub fn shrink(&mut self, less: usize) {
        let less = less.min(self.bytes);
        self.bytes -= less;
        let mut i = self.budget.inner.borrow_mut();
        i.used -= less;
        i.obs_used.sub(less as u64);
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        let mut i = self.budget.inner.borrow_mut();
        i.used -= self.bytes;
        i.obs_used.sub(self.bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = RamBudget::new(100);
        let r = b.reserve(60).unwrap();
        assert_eq!(b.used(), 60);
        assert_eq!(b.available(), 40);
        drop(r);
        assert_eq!(b.used(), 0);
        assert_eq!(b.high_water(), 60);
    }

    #[test]
    fn over_budget_is_rejected_with_details() {
        let b = RamBudget::new(100);
        let _r = b.reserve(80).unwrap();
        let e = b.reserve(30).unwrap_err();
        assert_eq!(e.requested, 30);
        assert_eq!(e.available, 20);
        assert_eq!(e.capacity, 100);
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn grow_and_shrink_track_exactly() {
        let b = RamBudget::new(100);
        let mut r = b.reserve(10).unwrap();
        r.grow(40).unwrap();
        assert_eq!(b.used(), 50);
        assert!(r.grow(60).is_err());
        assert_eq!(b.used(), 50, "failed grow must not leak");
        r.shrink(25);
        assert_eq!(b.used(), 25);
        drop(r);
        assert_eq!(b.used(), 0);
        assert_eq!(b.high_water(), 50);
    }

    #[test]
    fn high_water_resets_to_current_usage() {
        let b = RamBudget::new(100);
        let _keep = b.reserve(10).unwrap();
        {
            let _tmp = b.reserve(70).unwrap();
        }
        assert_eq!(b.high_water(), 80);
        b.reset_high_water();
        assert_eq!(b.high_water(), 10);
    }

    #[test]
    fn shared_clones_account_together() {
        let b = RamBudget::new(100);
        let b2 = b.clone();
        let _r = b.reserve(90).unwrap();
        assert!(b2.reserve(20).is_err());
    }
}

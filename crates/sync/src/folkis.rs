//! Folk-enabled Information Systems: a delay-tolerant network of people.
//!
//! The tutorial's requirements for least-developed-country deployments:
//! "1. Privacy: self-enforcement of privacy principles; 2.
//! Self-sufficiency: must not rely on a hypothetical improvement of the
//! infrastructure; 3. Very low and incremental deployment cost (a few
//! dollars)". The transport is the population itself: tokens exchange
//! encrypted bundles whenever their carriers meet, and bundles hop
//! epidemically toward their destinations.
//!
//! The simulation: participants random-walk on a grid; co-located
//! participants exchange bundles (store-and-forward with a copy budget);
//! delivery ratio and latency vs. density are the E12 measurements.

use pds_obs::rng::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FolkSimConfig {
    /// Number of participants.
    pub participants: usize,
    /// Grid side length (cells).
    pub grid: usize,
    /// Maximum bundle replicas alive at once (epidemic budget; `0` =
    /// unlimited flooding).
    pub copy_budget: usize,
}

impl Default for FolkSimConfig {
    fn default() -> Self {
        FolkSimConfig {
            participants: 100,
            grid: 20,
            copy_budget: 0,
        }
    }
}

/// One encrypted bundle in flight.
#[derive(Debug, Clone)]
struct Bundle {
    id: u64,
    dst: usize,
    created_at: u64,
    /// Opaque payload (already encrypted end-to-end by the sender's
    /// token; the carriers can read nothing).
    payload: Vec<u8>,
}

/// Delivery metrics of a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FolkStats {
    /// Bundles injected.
    pub sent: u64,
    /// Bundles that reached their destination.
    pub delivered: u64,
    /// Sum of delivery latencies (steps), for averaging.
    pub total_latency: u64,
    /// Total bundle copies transferred between participants.
    pub transfers: u64,
}

impl FolkStats {
    /// Fraction of bundles delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Mean delivery latency in steps.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }
}

/// The delay-tolerant network simulation.
pub struct FolkSim {
    cfg: FolkSimConfig,
    /// Participant positions.
    pos: Vec<(usize, usize)>,
    /// Per-participant carried bundles.
    carried: Vec<Vec<Bundle>>,
    /// Bundle id → replica count (for the copy budget).
    replicas: BTreeMap<u64, usize>,
    /// Delivered bundle ids (suppresses further replication).
    delivered_ids: BTreeSet<u64>,
    step: u64,
    next_id: u64,
    stats: FolkStats,
}

impl FolkSim {
    /// Place participants uniformly at random.
    pub fn new(cfg: FolkSimConfig, rng: &mut impl Rng) -> Self {
        let pos = (0..cfg.participants)
            .map(|_| (rng.gen_range(0..cfg.grid), rng.gen_range(0..cfg.grid)))
            .collect();
        FolkSim {
            pos,
            carried: vec![Vec::new(); cfg.participants],
            replicas: BTreeMap::new(),
            delivered_ids: BTreeSet::new(),
            step: 0,
            next_id: 0,
            stats: FolkStats::default(),
            cfg,
        }
    }

    /// Inject a bundle from `src` to `dst`.
    pub fn send(&mut self, src: usize, dst: usize, payload: &[u8]) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.carried[src].push(Bundle {
            id,
            dst,
            created_at: self.step,
            payload: payload.to_vec(),
        });
        self.replicas.insert(id, 1);
        self.stats.sent += 1;
        pds_obs::counter("sync.bundles_sent").inc();
        id
    }

    /// Current metrics.
    pub fn stats(&self) -> FolkStats {
        self.stats
    }

    /// Whether a bundle has been delivered.
    pub fn is_delivered(&self, id: u64) -> bool {
        self.delivered_ids.contains(&id)
    }

    /// Advance one step: everyone random-walks one cell, co-located
    /// participants exchange, destinations absorb their bundles.
    pub fn tick(&mut self, rng: &mut impl Rng) {
        self.step += 1;
        // Move.
        for p in &mut self.pos {
            let (dx, dy) =
                [(0i32, 1i32), (0, -1), (1, 0), (-1, 0), (0, 0)][rng.gen_range(0..5usize)];
            p.0 = (p.0 as i32 + dx).clamp(0, self.cfg.grid as i32 - 1) as usize;
            p.1 = (p.1 as i32 + dy).clamp(0, self.cfg.grid as i32 - 1) as usize;
        }
        // Deliver bundles already held by (or now meeting) their target.
        self.absorb();
        // Contact exchange: group by cell.
        let mut by_cell: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (i, &p) in self.pos.iter().enumerate() {
            by_cell.entry(p).or_default().push(i);
        }
        for members in by_cell.values() {
            if members.len() < 2 {
                continue;
            }
            // Epidemic exchange within the cell: everyone offers copies
            // of what the others miss (subject to the copy budget).
            for &a in members {
                let offers: Vec<Bundle> = self.carried[a].clone();
                for bundle in offers {
                    if self.delivered_ids.contains(&bundle.id) {
                        continue;
                    }
                    for &b in members {
                        if b == a {
                            continue;
                        }
                        let already = self.carried[b].iter().any(|x| x.id == bundle.id);
                        if already {
                            continue;
                        }
                        // Handing the bundle to its destination is a
                        // delivery, not a replication: it is always
                        // allowed regardless of the copy budget.
                        let count = self.replicas.entry(bundle.id).or_insert(0);
                        if b != bundle.dst
                            && self.cfg.copy_budget > 0
                            && *count >= self.cfg.copy_budget
                        {
                            continue;
                        }
                        *count += 1;
                        self.stats.transfers += 1;
                        self.carried[b].push(bundle.clone());
                    }
                }
            }
        }
        self.absorb();
    }

    fn absorb(&mut self) {
        for i in 0..self.cfg.participants {
            let mut kept = Vec::new();
            for bundle in std::mem::take(&mut self.carried[i]) {
                if bundle.dst == i && !self.delivered_ids.contains(&bundle.id) {
                    self.delivered_ids.insert(bundle.id);
                    self.stats.delivered += 1;
                    self.stats.total_latency += self.step - bundle.created_at;
                    pds_obs::counter("sync.bundles_delivered").inc();
                    pds_obs::histogram("sync.delivery_latency_steps")
                        .observe(self.step - bundle.created_at);
                } else if !self.delivered_ids.contains(&bundle.id) {
                    kept.push(bundle);
                } // delivered copies evaporate
            }
            self.carried[i] = kept;
        }
    }

    /// Run until every bundle is delivered or `max_steps` elapse.
    pub fn run(&mut self, max_steps: u64, rng: &mut impl Rng) -> FolkStats {
        for _ in 0..max_steps {
            if self.stats.delivered == self.stats.sent && self.stats.sent > 0 {
                break;
            }
            self.tick(rng);
        }
        self.stats
    }

    /// Total payload bytes currently being carried (all opaque).
    pub fn carried_bytes(&self) -> usize {
        self.carried.iter().flatten().map(|b| b.payload.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    #[test]
    fn dense_network_delivers_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FolkSimConfig {
            participants: 80,
            grid: 8,
            copy_budget: 0,
        };
        let mut sim = FolkSim::new(cfg, &mut rng);
        for i in 0..20 {
            sim.send(i, 79 - i, b"encrypted-form");
        }
        let stats = sim.run(2000, &mut rng);
        assert_eq!(stats.delivery_ratio(), 1.0, "dense flooding delivers");
        assert!(stats.mean_latency() > 0.0);
    }

    #[test]
    fn sparse_network_is_slower_than_dense() {
        let mut latencies = Vec::new();
        for (participants, grid) in [(100usize, 8usize), (20, 30)] {
            let mut rng = StdRng::seed_from_u64(2);
            let cfg = FolkSimConfig {
                participants,
                grid,
                copy_budget: 0,
            };
            let mut sim = FolkSim::new(cfg, &mut rng);
            for i in 0..10 {
                sim.send(i, participants - 1 - i, b"x");
            }
            let stats = sim.run(5000, &mut rng);
            latencies.push(if stats.delivered > 0 {
                stats.mean_latency()
            } else {
                f64::INFINITY
            });
        }
        assert!(
            latencies[0] < latencies[1],
            "dense {} vs sparse {}",
            latencies[0],
            latencies[1]
        );
    }

    #[test]
    fn copy_budget_caps_transfers() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = FolkSimConfig {
            participants: 60,
            grid: 10,
            copy_budget: 4,
        };
        let mut sim = FolkSim::new(cfg, &mut rng);
        let id = sim.send(0, 59, b"capped");
        sim.run(3000, &mut rng);
        // The budget caps *replication*; the final handoff to the
        // destination is a delivery and may add one more holder.
        let max_replicas = sim.replicas.get(&id).copied().unwrap_or(0);
        assert!(max_replicas <= 5, "budget respected, got {max_replicas}");
    }

    #[test]
    fn delivery_to_self_is_immediate() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = FolkSim::new(FolkSimConfig::default(), &mut rng);
        let id = sim.send(5, 5, b"note-to-self");
        sim.tick(&mut rng);
        assert!(sim.is_delivered(id));
        assert_eq!(sim.stats().delivered, 1);
    }

    #[test]
    fn delivered_bundles_stop_replicating() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = FolkSimConfig {
            participants: 40,
            grid: 6,
            copy_budget: 0,
        };
        let mut sim = FolkSim::new(cfg, &mut rng);
        let id = sim.send(0, 1, b"quick");
        sim.run(500, &mut rng);
        assert!(sim.is_delivered(id));
        let transfers_at_delivery = sim.stats().transfers;
        for _ in 0..50 {
            sim.tick(&mut rng);
        }
        // Copies evaporate after delivery; carried payload drains to 0.
        assert_eq!(sim.carried_bytes(), 0);
        let _ = transfers_at_delivery;
    }
}

//! The Personal Social-Medical Folder.
//!
//! "Each patient owns her medical-social folder in a secure token. The
//! folder is archived (encrypted) on a central server. Local and central
//! copies are synchronized without Internet connection" — via smart
//! badges carried by the practitioners: "sync via smart badges, no data
//! re-entered, no network link required."
//!
//! Entries are identified by `(author, seq)` with per-author sequence
//! numbers, so the replica state is a grow-only set and synchronization
//! is a convergent union exchange (author-indexed version vectors tell
//! each side exactly what the other is missing). Everything that leaves
//! a token or the central server travels encrypted under the patient's
//! folder key.

use std::collections::BTreeMap;

use pds_crypto::SymmetricKey;
use pds_obs::rng::RngCore;

/// One EHR/social entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EhrEntry {
    /// Author ("patient", "dr.martin", "nurse-2" …).
    pub author: String,
    /// Author-local sequence number (dense from 0).
    pub seq: u64,
    /// Care day.
    pub day: u64,
    /// Entry text.
    pub text: String,
}

impl EhrEntry {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.author.len() as u16).to_le_bytes());
        out.extend_from_slice(self.author.as_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.day.to_le_bytes());
        out.extend_from_slice(self.text.as_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<EhrEntry> {
        let alen = u16::from_le_bytes(bytes.get(0..2)?.try_into().ok()?) as usize;
        let author = std::str::from_utf8(bytes.get(2..2 + alen)?)
            .ok()?
            .to_string();
        let mut off = 2 + alen;
        let seq = u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?);
        off += 8;
        let day = u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?);
        off += 8;
        let text = std::str::from_utf8(bytes.get(off..)?).ok()?.to_string();
        Some(EhrEntry {
            author,
            seq,
            day,
            text,
        })
    }
}

/// A replica: per-author entry chains + the version vector they induce.
#[derive(Debug, Clone, Default)]
struct Replica {
    /// author → entries ordered by seq (dense).
    entries: BTreeMap<String, Vec<EhrEntry>>,
}

impl Replica {
    /// Version vector: author → next expected seq.
    fn version(&self) -> BTreeMap<String, u64> {
        self.entries
            .iter()
            .map(|(a, v)| (a.clone(), v.len() as u64))
            .collect()
    }

    /// Entries the holder of `their` version is missing.
    fn missing_for(&self, their: &BTreeMap<String, u64>) -> Vec<EhrEntry> {
        let mut out = Vec::new();
        for (author, list) in &self.entries {
            let have = their.get(author).copied().unwrap_or(0) as usize;
            out.extend(list.iter().skip(have).cloned());
        }
        out
    }

    /// Integrate entries (idempotent; gaps are rejected).
    fn integrate(&mut self, entries: Vec<EhrEntry>) {
        let mut sorted = entries;
        sorted.sort();
        for e in sorted {
            let list = self.entries.entry(e.author.clone()).or_default();
            if e.seq as usize == list.len() {
                list.push(e);
            }
            // seq < len ⇒ duplicate (ignore); seq > len ⇒ gap (ignore —
            // a later exchange with the missing prefix will carry it).
        }
    }

    fn append(&mut self, author: &str, day: u64, text: &str) -> EhrEntry {
        let list = self.entries.entry(author.to_string()).or_default();
        let e = EhrEntry {
            author: author.to_string(),
            seq: list.len() as u64,
            day,
            text: text.to_string(),
        };
        list.push(e.clone());
        e
    }

    fn all(&self) -> Vec<EhrEntry> {
        let mut out: Vec<EhrEntry> = self.entries.values().flatten().cloned().collect();
        out.sort();
        out
    }

    fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }
}

/// The patient's folder on her home token.
pub struct MedicalFolder {
    patient: String,
    key: SymmetricKey,
    replica: Replica,
}

impl MedicalFolder {
    /// A folder for `patient` with its own folder key.
    pub fn new(patient: &str) -> Self {
        MedicalFolder {
            patient: patient.to_string(),
            key: SymmetricKey::from_seed(format!("folder:{patient}").as_bytes()),
            replica: Replica::default(),
        }
    }

    /// The patient id.
    pub fn patient(&self) -> &str {
        &self.patient
    }

    /// The folder key (shared with the care network's tokens).
    pub fn key(&self) -> &SymmetricKey {
        &self.key
    }

    /// Local write (a visitor at the patient's home, or the patient).
    pub fn write(&mut self, author: &str, day: u64, text: &str) -> EhrEntry {
        self.replica.append(author, day, text)
    }

    /// All entries, sorted.
    pub fn entries(&self) -> Vec<EhrEntry> {
        self.replica.all()
    }

    /// Total entry count.
    pub fn len(&self) -> usize {
        self.replica.len()
    }

    /// True when the folder is empty.
    pub fn is_empty(&self) -> bool {
        self.replica.len() == 0
    }
}

/// The central coordination server: one (encrypted-at-rest) replica per
/// patient, written by practitioners over the web.
#[derive(Default)]
pub struct CentralServer {
    folders: BTreeMap<String, Replica>,
}

impl CentralServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// A practitioner writes through the web interface.
    pub fn write(&mut self, patient: &str, author: &str, day: u64, text: &str) {
        self.folders
            .entry(patient.to_string())
            .or_default()
            .append(author, day, text);
    }

    /// Entries of a patient's central copy.
    pub fn entries(&self, patient: &str) -> Vec<EhrEntry> {
        self.folders
            .get(patient)
            .map(|r| r.all())
            .unwrap_or_default()
    }
}

/// The smart badge: carries encrypted deltas between the central server
/// and patients' homes. It holds ciphertext only — losing the badge
/// discloses nothing.
pub struct Badge {
    /// patient → (version vector snapshot, encrypted entries).
    cargo: BTreeMap<String, Cargo>,
}

/// What the badge carries for one patient: the central version-vector
/// snapshot and the encrypted entries.
type Cargo = (BTreeMap<String, u64>, Vec<Vec<u8>>);

impl Default for Badge {
    fn default() -> Self {
        Self::new()
    }
}

impl Badge {
    /// An empty badge.
    pub fn new() -> Self {
        Badge {
            cargo: BTreeMap::new(),
        }
    }

    /// At the clinic: load the central copies of the patients on today's
    /// tour (encrypted under each patient's folder key).
    pub fn load_central(
        &mut self,
        server: &CentralServer,
        patients: &[(&str, &SymmetricKey)],
        rng: &mut impl RngCore,
    ) {
        for (patient, key) in patients {
            let replica = server.folders.get(*patient).cloned().unwrap_or_default();
            let encrypted = replica
                .all()
                .into_iter()
                .map(|e| key.encrypt_prob(&e.encode(), rng).0)
                .collect();
            self.cargo
                .insert(patient.to_string(), (replica.version(), encrypted));
        }
    }

    /// At the patient's home: exchange deltas with the home token. The
    /// badge keeps (encrypted) what the central server is missing.
    pub fn sync_with_folder(&mut self, folder: &mut MedicalFolder, rng: &mut impl RngCore) {
        let key = folder.key.clone();
        let (carried_version, encrypted) = self
            .cargo
            .remove(folder.patient())
            .unwrap_or((BTreeMap::new(), Vec::new()));
        // Badge → folder.
        let mut carried_entries = Vec::new();
        for ct in encrypted {
            if let Some(plain) = key.decrypt(&pds_crypto::Ciphertext(ct)) {
                if let Some(e) = EhrEntry::decode(&plain) {
                    carried_entries.push(e);
                }
            }
        }
        let pulled = carried_entries.len() as u64;
        folder.replica.integrate(carried_entries);
        // Folder → badge: what the central copy (as snapshotted) misses.
        let back: Vec<Vec<u8>> = folder
            .replica
            .missing_for(&carried_version)
            .into_iter()
            .map(|e| key.encrypt_prob(&e.encode(), rng).0)
            .collect();
        pds_obs::counter("sync.folder_syncs").inc();
        pds_obs::counter("sync.entries_exchanged").add(pulled + back.len() as u64);
        pds_obs::counter("sync.bytes_carried").add(back.iter().map(|c| c.len() as u64).sum());
        self.cargo.insert(
            folder.patient().to_string(),
            (folder.replica.version(), back),
        );
    }

    /// Back at the clinic: unload the home-side deltas into the central
    /// server.
    pub fn unload_central(
        &mut self,
        server: &mut CentralServer,
        patients: &[(&str, &SymmetricKey)],
    ) {
        for (patient, key) in patients {
            let Some((_, encrypted)) = self.cargo.remove(*patient) else {
                continue;
            };
            let mut entries = Vec::new();
            for ct in encrypted {
                if let Some(plain) = key.decrypt(&pds_crypto::Ciphertext(ct)) {
                    if let Some(e) = EhrEntry::decode(&plain) {
                        entries.push(e);
                    }
                }
            }
            server
                .folders
                .entry(patient.to_string())
                .or_default()
                .integrate(entries);
        }
    }

    /// Bytes currently carried (all ciphertext).
    pub fn carried_bytes(&self) -> usize {
        self.cargo
            .values()
            .map(|(_, v)| v.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::{Rng, SeedableRng, StdRng};

    #[test]
    fn one_badge_tour_converges_both_replicas() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut server = CentralServer::new();
        let mut folder = MedicalFolder::new("alice");
        // Doctor writes at the clinic; nurse writes at home.
        server.write("alice", "dr.martin", 1, "prescribed beta blockers");
        server.write("alice", "dr.martin", 2, "follow-up in two weeks");
        folder.write("nurse-2", 2, "blood pressure 135/85 at home");
        folder.write("alice", 3, "felt dizzy in the morning");

        let key = folder.key().clone();
        let patients = [("alice", &key)];
        let mut badge = Badge::new();
        badge.load_central(&server, &patients, &mut rng);
        badge.sync_with_folder(&mut folder, &mut rng);
        badge.unload_central(&mut server, &patients);

        assert_eq!(folder.entries().len(), 4, "home sees everything");
        assert_eq!(server.entries("alice").len(), 4, "clinic sees everything");
        assert_eq!(folder.entries(), server.entries("alice"));
    }

    #[test]
    fn sync_is_idempotent_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut server = CentralServer::new();
        let mut folder = MedicalFolder::new("bob");
        server.write("bob", "dr.x", 1, "entry");
        let key = folder.key().clone();
        let patients = [("bob", &key)];
        for _ in 0..3 {
            let mut badge = Badge::new();
            badge.load_central(&server, &patients, &mut rng);
            badge.sync_with_folder(&mut folder, &mut rng);
            badge.unload_central(&mut server, &patients);
        }
        assert_eq!(folder.len(), 1);
        assert_eq!(server.entries("bob").len(), 1);
    }

    #[test]
    fn badge_carries_only_ciphertext() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut server = CentralServer::new();
        server.write("carol", "dr.y", 1, "HIV test negative");
        let folder = MedicalFolder::new("carol");
        let key = folder.key().clone();
        let mut badge = Badge::new();
        badge.load_central(&server, &[("carol", &key)], &mut rng);
        let carried: Vec<u8> = badge
            .cargo
            .values()
            .flat_map(|(_, v)| v.iter().flatten().copied())
            .collect();
        assert!(!carried.windows(3).any(|w| w == b"HIV"));
        assert!(badge.carried_bytes() > 0);
    }

    #[test]
    fn concurrent_writes_on_both_sides_all_survive() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut server = CentralServer::new();
        let mut folder = MedicalFolder::new("dan");
        let key = folder.key().clone();
        let patients = [("dan", &key)];
        for day in 0..10 {
            server.write("dan", "dr.z", day, &format!("clinic note {day}"));
            folder.write("dan", day, &format!("home note {day}"));
            let mut badge = Badge::new();
            badge.load_central(&server, &patients, &mut rng);
            badge.sync_with_folder(&mut folder, &mut rng);
            badge.unload_central(&mut server, &patients);
        }
        assert_eq!(folder.len(), 20);
        assert_eq!(folder.entries(), server.entries("dan"));
    }

    #[test]
    fn prop_random_schedules_always_converge() {
        for case in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(0x5F0D + case);
            let mut server = CentralServer::new();
            let mut folders: Vec<MedicalFolder> = (0..4)
                .map(|i| MedicalFolder::new(&format!("p{i}")))
                .collect();
            let keys: Vec<SymmetricKey> = folders.iter().map(|f| f.key().clone()).collect();
            let names: Vec<String> = folders.iter().map(|f| f.patient().to_string()).collect();
            // Arbitrary interleaving of clinic/home writes…
            for _ in 0..rng.gen_range(1usize..40) {
                let i = rng.gen_range(0usize..4);
                if rng.gen_bool(0.5) {
                    server.write(&names[i], "dr", 0, "c");
                } else {
                    folders[i].write("nurse", 0, "h");
                }
            }
            // …arbitrary partial tours…
            for _ in 0..rng.gen_range(0usize..6) {
                let mut visit: Vec<usize> = (0..rng.gen_range(0usize..4))
                    .map(|_| rng.gen_range(0usize..4))
                    .collect();
                visit.sort_unstable();
                visit.dedup();
                let patients: Vec<(&str, &SymmetricKey)> = visit
                    .iter()
                    .map(|&i| (names[i].as_str(), &keys[i]))
                    .collect();
                let mut badge = Badge::new();
                badge.load_central(&server, &patients, &mut rng);
                for &i in &visit {
                    badge.sync_with_folder(&mut folders[i], &mut rng);
                }
                badge.unload_central(&mut server, &patients);
            }
            // …and one final full tour must always converge every
            // pair, with no duplicates and no losses.
            let patients: Vec<(&str, &SymmetricKey)> =
                names.iter().map(String::as_str).zip(keys.iter()).collect();
            let mut badge = Badge::new();
            badge.load_central(&server, &patients, &mut rng);
            for f in &mut folders {
                badge.sync_with_folder(f, &mut rng);
            }
            badge.unload_central(&mut server, &patients);
            for (f, n) in folders.iter().zip(&names) {
                assert_eq!(f.entries(), server.entries(n), "case {case}");
            }
        }
    }

    #[test]
    fn multiple_patients_on_one_tour() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut server = CentralServer::new();
        let mut alice = MedicalFolder::new("alice");
        let mut bob = MedicalFolder::new("bob");
        server.write("alice", "dr", 1, "a-note");
        server.write("bob", "dr", 1, "b-note");
        alice.write("alice", 2, "a-home");
        let ka = alice.key().clone();
        let kb = bob.key().clone();
        let patients = [("alice", &ka), ("bob", &kb)];
        let mut badge = Badge::new();
        badge.load_central(&server, &patients, &mut rng);
        badge.sync_with_folder(&mut alice, &mut rng);
        badge.sync_with_folder(&mut bob, &mut rng);
        badge.unload_central(&mut server, &patients);
        assert_eq!(alice.len(), 2);
        assert_eq!(bob.len(), 1);
        assert_eq!(server.entries("alice").len(), 2);
    }
}

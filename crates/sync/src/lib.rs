//! # pds-sync — the tutorial's "Perspectives": deployed instances of the
//! asymmetric architecture
//!
//! The closing part of the EDBT'14 tutorial sketches three concrete
//! instances of "alternative global architectures relying on secure
//! hardware", all built here:
//!
//! * [`folder`] — the **Personal Social-Medical Folder** field
//!   experiment: each patient owns her medical-social folder in a secure
//!   token at home; practitioners work against a central server; the two
//!   are "synchronized *without Internet connection*" by smart badges
//!   physically carried between sites. Entries are author-sequenced, so
//!   synchronization is a convergent set union — no entry is ever
//!   re-entered, no network link required.
//! * [`folkis`] — **Folk-enabled Information Systems** for least
//!   developed countries: "no infrastructure required, a delay-tolerant
//!   network is established" — participants physically carry encrypted
//!   bundles and exchange them on contact (epidemic store-and-forward).
//!   The E12 experiment measures delivery ratio and latency against
//!   population density.
//! * [`cells`] — the **Trusted Cells** vision: the secure devices around
//!   one individual replicate their encrypted state through an untrusted
//!   cloud, which stores ciphertext and resolves nothing ("using the
//!   cloud as a storage service for encrypted data").

pub mod cells;
pub mod folder;
pub mod folkis;

pub use cells::{serve_cloud, CellMsg, CellSyncOutcome, CellSyncReport, TrustedCell};
pub use folder::{Badge, CentralServer, EhrEntry, MedicalFolder};
pub use folkis::{FolkSim, FolkSimConfig, FolkStats};

//! Trusted Cells: the devices around one individual, synchronized
//! through an untrusted cloud.
//!
//! "Trusted Cells: regulate personal data produced around an individual,
//! at home, using the cloud as a storage service for encrypted data."
//! Each cell (home gateway, set-top box, car, phone token …) holds a
//! versioned slice of the owner's state; cells publish encrypted,
//! version-stamped snapshots to the cloud and pull each other's updates.
//! The cloud sees ciphertext and version numbers only; conflict
//! resolution (last-writer-wins per slice) happens inside the cells.
//!
//! ## Message-based synchronization
//!
//! Synchronization is expressed as an exchange of [`CellMsg`] values so
//! that a transport can sit between a cell and the cloud: the fleet
//! runtime (`pds-fleet`) routes these messages over its store-and-forward
//! mailbox bus, where cells are online only a fraction of the time and
//! deliveries retry with backoff. [`TrustedCell::sync`] is the direct
//! in-process composition of the same messages against a local
//! [`CloudStore`] — one protocol, two transports. Messages have a compact
//! wire form ([`CellMsg::to_bytes`]) because bus payloads are opaque
//! byte strings.

use std::collections::BTreeMap;

use pds_core::{CloudStore, PdsError};
use pds_crypto::SymmetricKey;
use pds_obs::rng::RngCore;

/// One snapshot header: (version, ciphertext chunks).
type SnapshotBlob = (u64, Vec<u8>);

/// A cell↔cloud synchronization message. `blob` fields carry
/// `version (8 bytes LE) || ciphertext`: the version is the only
/// plaintext the cloud ever sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellMsg {
    /// Cell asks the cloud for its stored snapshot of `slice`.
    PullReq {
        /// Slice name.
        slice: String,
    },
    /// Cloud's reply: the stored versioned blob, if any.
    PullResp {
        /// Slice name.
        slice: String,
        /// `version || ciphertext`, or `None` when the cloud holds nothing.
        blob: Option<Vec<u8>>,
    },
    /// Cell publishes its (newer) encrypted snapshot.
    Push {
        /// Slice name.
        slice: String,
        /// `version || ciphertext`.
        blob: Vec<u8>,
    },
    /// Delta reconcile: "send `slice` only if the cloud holds something
    /// newer than version `since`" — the cell states what it already
    /// has, so an in-sync slice costs a handful of bytes instead of a
    /// full ciphertext round trip.
    PullSince {
        /// Slice name.
        slice: String,
        /// Newest version the requesting cell already holds.
        since: u64,
    },
    /// Cloud's delta reply when the cell is already current: no blob,
    /// just the version the cloud holds.
    NotModified {
        /// Slice name.
        slice: String,
        /// Version stored at the cloud (0 when it holds nothing).
        version: u64,
    },
}

impl CellMsg {
    const TAG_PULL_REQ: u8 = 1;
    const TAG_PULL_RESP: u8 = 2;
    const TAG_PUSH: u8 = 3;
    const TAG_PULL_SINCE: u8 = 4;
    const TAG_NOT_MODIFIED: u8 = 5;

    /// Slice this message is about.
    pub fn slice(&self) -> &str {
        match self {
            CellMsg::PullReq { slice }
            | CellMsg::PullResp { slice, .. }
            | CellMsg::Push { slice, .. }
            | CellMsg::PullSince { slice, .. }
            | CellMsg::NotModified { slice, .. } => slice,
        }
    }

    /// Compact wire form (bus payloads are opaque bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put(out: &mut Vec<u8>, bytes: &[u8]) {
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        let mut out = Vec::new();
        match self {
            CellMsg::PullReq { slice } => {
                out.push(Self::TAG_PULL_REQ);
                put(&mut out, slice.as_bytes());
            }
            CellMsg::PullResp { slice, blob } => {
                out.push(Self::TAG_PULL_RESP);
                put(&mut out, slice.as_bytes());
                out.push(u8::from(blob.is_some()));
                if let Some(b) = blob {
                    put(&mut out, b);
                }
            }
            CellMsg::Push { slice, blob } => {
                out.push(Self::TAG_PUSH);
                put(&mut out, slice.as_bytes());
                put(&mut out, blob);
            }
            CellMsg::PullSince { slice, since } => {
                out.push(Self::TAG_PULL_SINCE);
                put(&mut out, slice.as_bytes());
                out.extend_from_slice(&since.to_le_bytes());
            }
            CellMsg::NotModified { slice, version } => {
                out.push(Self::TAG_NOT_MODIFIED);
                put(&mut out, slice.as_bytes());
                out.extend_from_slice(&version.to_le_bytes());
            }
        }
        pds_obs::counter("sync.bytes_sent").add(out.len() as u64);
        out
    }

    /// Parse the wire form; `None` on any truncation or unknown tag.
    pub fn from_bytes(bytes: &[u8]) -> Option<CellMsg> {
        fn take<'a>(bytes: &mut &'a [u8]) -> Option<&'a [u8]> {
            if bytes.len() < 4 {
                return None;
            }
            let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            if bytes.len() < 4 + len {
                return None;
            }
            let out = &bytes[4..4 + len];
            *bytes = &bytes[4 + len..];
            Some(out)
        }
        fn take_u64(bytes: &mut &[u8]) -> Option<u64> {
            let v = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
            *bytes = &bytes[8..];
            Some(v)
        }
        let (&tag, mut rest) = bytes.split_first()?;
        let slice = String::from_utf8(take(&mut rest)?.to_vec()).ok()?;
        let msg = match tag {
            Self::TAG_PULL_REQ => Some(CellMsg::PullReq { slice }),
            Self::TAG_PULL_RESP => {
                let (&present, mut rest2) = rest.split_first()?;
                let blob = if present == 1 {
                    Some(take(&mut rest2)?.to_vec())
                } else {
                    None
                };
                Some(CellMsg::PullResp { slice, blob })
            }
            Self::TAG_PUSH => Some(CellMsg::Push {
                slice,
                blob: take(&mut rest)?.to_vec(),
            }),
            Self::TAG_PULL_SINCE => Some(CellMsg::PullSince {
                slice,
                since: take_u64(&mut rest)?,
            }),
            Self::TAG_NOT_MODIFIED => Some(CellMsg::NotModified {
                slice,
                version: take_u64(&mut rest)?,
            }),
            _ => None,
        };
        if msg.is_some() {
            pds_obs::counter("sync.bytes_received").add(bytes.len() as u64);
        }
        msg
    }
}

/// What one [`CellMsg::PullResp`] did to the receiving cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSyncOutcome {
    /// The cloud was ahead: the cell adopted the remote snapshot.
    Pulled,
    /// The cell was ahead (or the cloud empty): it emitted a push.
    Pushed,
    /// Versions matched; nothing moved.
    Unchanged,
}

/// Serve one cell message at the cloud. Returns the response message to
/// route back, if the request calls for one. The cloud never decrypts:
/// it compares the 8-byte plaintext version prefix so a stale or
/// duplicated [`CellMsg::Push`] (the bus is at-least-once) can never
/// regress a newer snapshot. A push carrying the *stored* version but
/// different bytes is a write/write conflict (two cells bumped the same
/// slice to the same number): the cloud deterministically keeps what it
/// has and counts `sync.conflicts` — first-writer-wins at equal
/// version, so every replica converges on the copy that landed first.
pub fn serve_cloud(cloud: &mut CloudStore, msg: &CellMsg) -> Option<CellMsg> {
    match msg {
        CellMsg::PullReq { slice } => {
            let blob = cloud
                .get(&TrustedCell::blob_name(slice))
                .and_then(|chunks| chunks.first().cloned());
            Some(CellMsg::PullResp {
                slice: slice.clone(),
                blob,
            })
        }
        CellMsg::PullSince { slice, since } => {
            let stored = cloud
                .get(&TrustedCell::blob_name(slice))
                .and_then(|chunks| chunks.first().cloned());
            let version = stored.as_deref().map_or(0, blob_version);
            if version > *since {
                Some(CellMsg::PullResp {
                    slice: slice.clone(),
                    blob: stored,
                })
            } else {
                Some(CellMsg::NotModified {
                    slice: slice.clone(),
                    version,
                })
            }
        }
        CellMsg::Push { slice, blob } => {
            let name = TrustedCell::blob_name(slice);
            let incoming = blob_version(blob);
            let stored = cloud.get(&name).and_then(|chunks| chunks.first().cloned());
            let stored_v = stored.as_deref().map_or(0, blob_version);
            if incoming > stored_v {
                cloud.put(&name, vec![blob.clone()]);
            } else if incoming == stored_v && stored.as_deref() != Some(blob.as_slice()) {
                pds_obs::counter("sync.conflicts").inc();
            }
            None
        }
        CellMsg::PullResp { .. } | CellMsg::NotModified { .. } => None,
    }
}

/// Plaintext version prefix of a versioned blob (0 when malformed —
/// malformed pushes then lose to any real snapshot).
fn blob_version(blob: &[u8]) -> u64 {
    blob.get(0..8)
        .and_then(|b| b.try_into().ok())
        .map_or(0, u64::from_le_bytes)
}

/// A trusted cell holding named slices of the owner's state.
pub struct TrustedCell {
    /// Cell name ("home", "car", "phone").
    pub name: String,
    key: SymmetricKey,
    /// slice name → (version, plaintext state).
    slices: BTreeMap<String, (u64, Vec<u8>)>,
}

/// Outcome of one synchronization pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellSyncReport {
    /// Slices this cell pushed (it was ahead).
    pub pushed: u32,
    /// Slices this cell pulled (it was behind).
    pub pulled: u32,
    /// Slices already in sync.
    pub unchanged: u32,
}

impl CellSyncReport {
    /// Fold one message outcome into the pass report.
    pub fn record(&mut self, outcome: CellSyncOutcome) {
        match outcome {
            CellSyncOutcome::Pulled => self.pulled += 1,
            CellSyncOutcome::Pushed => self.pushed += 1,
            CellSyncOutcome::Unchanged => self.unchanged += 1,
        }
    }
}

impl TrustedCell {
    /// A cell of the owner identified by `owner_seed` (all of one
    /// owner's cells derive the same key — provisioned at pairing).
    pub fn new(name: &str, owner_seed: &[u8]) -> Self {
        TrustedCell {
            name: name.to_string(),
            key: SymmetricKey::from_seed(owner_seed),
            slices: BTreeMap::new(),
        }
    }

    /// Local write: bump the slice version.
    pub fn write(&mut self, slice: &str, data: &[u8]) {
        let v = self.slices.get(slice).map_or(0, |(v, _)| *v);
        self.slices
            .insert(slice.to_string(), (v + 1, data.to_vec()));
    }

    /// Read a slice.
    pub fn read(&self, slice: &str) -> Option<&[u8]> {
        self.slices.get(slice).map(|(_, d)| d.as_slice())
    }

    /// Version of a slice.
    pub fn version(&self, slice: &str) -> u64 {
        self.slices.get(slice).map_or(0, |(v, _)| *v)
    }

    /// Slice names this cell currently tracks.
    pub fn slice_names(&self) -> Vec<String> {
        self.slices.keys().cloned().collect()
    }

    /// Cloud blob name of a slice.
    pub fn blob_name(owner_slice: &str) -> String {
        format!("cell-slice:{owner_slice}")
    }

    /// One [`CellMsg::PullReq`] per slice this cell should reconcile:
    /// everything it tracks plus any `extra` slice names it has learned
    /// about (slice names are public cloud metadata).
    pub fn sync_requests(&self, extra: &[String]) -> Vec<CellMsg> {
        let mut names = self.slice_names();
        for e in extra {
            if !names.contains(e) {
                names.push(e.clone());
            }
        }
        names
            .into_iter()
            .map(|slice| CellMsg::PullReq { slice })
            .collect()
    }

    /// Delta form of [`sync_requests`](Self::sync_requests): one
    /// [`CellMsg::PullSince`] per slice, carrying the version this cell
    /// already holds. An in-sync slice then costs a
    /// [`CellMsg::NotModified`] instead of a full ciphertext — the
    /// version number is already public cloud metadata, so stating it in
    /// the request leaks nothing new.
    pub fn sync_requests_since(&self, extra: &[String]) -> Vec<CellMsg> {
        let mut names = self.slice_names();
        for e in extra {
            if !names.contains(e) {
                names.push(e.clone());
            }
        }
        names
            .into_iter()
            .map(|slice| {
                let since = self.version(&slice);
                CellMsg::PullSince { slice, since }
            })
            .collect()
    }

    /// Apply one [`CellMsg::PullResp`]: adopt the remote snapshot when the
    /// cloud is ahead, emit a [`CellMsg::Push`] when this cell is ahead.
    /// Duplicated responses (the bus is at-least-once) are harmless: a
    /// re-applied pull is version-equal and a re-emitted push is
    /// version-guarded at the cloud.
    pub fn handle_response(
        &mut self,
        resp: &CellMsg,
        rng: &mut impl RngCore,
    ) -> Result<(Option<CellMsg>, CellSyncOutcome), PdsError> {
        if let CellMsg::NotModified { slice, version } = resp {
            // Delta reply: the cloud holds nothing newer. If it is
            // *behind*, push; otherwise nothing moved (a version ahead of
            // ours would have come as a full PullResp — treat a
            // misrouted one as unchanged rather than guessing).
            let local_v = self.version(slice);
            if *version < local_v {
                if let Some((v, data)) = self.slices.get(slice) {
                    let blob = Self::encode_blob(&self.key, *v, data, rng);
                    return Ok((
                        Some(CellMsg::Push {
                            slice: slice.clone(),
                            blob,
                        }),
                        CellSyncOutcome::Pushed,
                    ));
                }
            }
            return Ok((None, CellSyncOutcome::Unchanged));
        }
        let CellMsg::PullResp { slice, blob } = resp else {
            return Err(PdsError::ArchiveCorrupt("cell expected a pull response"));
        };
        let local_v = self.version(slice);
        let remote = blob.as_deref().map(|b| Self::decode_blob(b, &self.key));
        match remote.transpose()? {
            Some((rv, data)) if rv > local_v => {
                self.slices.insert(slice.clone(), (rv, data));
                Ok((None, CellSyncOutcome::Pulled))
            }
            Some((rv, _)) if rv == local_v => Ok((None, CellSyncOutcome::Unchanged)),
            _ => match self.slices.get(slice) {
                // We are ahead (or the cloud has nothing): push.
                Some((v, data)) => {
                    let blob = Self::encode_blob(&self.key, *v, data, rng);
                    Ok((
                        Some(CellMsg::Push {
                            slice: slice.clone(),
                            blob,
                        }),
                        CellSyncOutcome::Pushed,
                    ))
                }
                // Neither side has it (a foreign slice not yet written).
                None => Ok((None, CellSyncOutcome::Unchanged)),
            },
        }
    }

    /// Synchronize with the cloud: the direct in-process run of the
    /// message protocol — push slices where this cell is ahead, pull
    /// where it is behind (version numbers are the only plaintext the
    /// cloud sees).
    pub fn sync(
        &mut self,
        cloud: &mut CloudStore,
        rng: &mut impl RngCore,
    ) -> Result<CellSyncReport, PdsError> {
        let mut report = CellSyncReport::default();
        for req in self.sync_requests(&[]) {
            let resp = serve_cloud(cloud, &req)
                .ok_or(PdsError::ArchiveCorrupt("cloud ignored a pull request"))?;
            let (push, outcome) = self.handle_response(&resp, rng)?;
            report.record(outcome);
            if let Some(push) = push {
                serve_cloud(cloud, &push);
            }
        }
        Ok(report)
    }

    /// Discover and pull a slice this cell has never seen.
    pub fn pull_new(&mut self, cloud: &CloudStore, slice: &str) -> Result<bool, PdsError> {
        let name = Self::blob_name(slice);
        let Some(blob) = cloud.get(&name).and_then(|chunks| chunks.first()) else {
            return Ok(false);
        };
        let (v, data) = Self::decode_blob(blob, &self.key)?;
        if v > self.version(slice) {
            self.slices.insert(slice.to_string(), (v, data));
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn encode_blob(
        key: &SymmetricKey,
        version: u64,
        data: &[u8],
        rng: &mut impl RngCore,
    ) -> Vec<u8> {
        let ct = key.encrypt_prob(data, rng);
        let mut blob = version.to_le_bytes().to_vec();
        blob.extend_from_slice(&ct.0);
        blob
    }

    fn decode_blob(blob: &[u8], key: &SymmetricKey) -> Result<SnapshotBlob, PdsError> {
        if blob.len() < 8 {
            return Err(PdsError::ArchiveCorrupt("short cell blob"));
        }
        let version = u64::from_le_bytes(blob[0..8].try_into().unwrap());
        let data = key
            .decrypt(&pds_crypto::Ciphertext(blob[8..].to_vec()))
            .ok_or(PdsError::ArchiveCorrupt("cell blob authentication"))?;
        Ok((version, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup() -> (TrustedCell, TrustedCell, CloudStore, StdRng) {
        (
            TrustedCell::new("home", b"owner-alice"),
            TrustedCell::new("phone", b"owner-alice"),
            CloudStore::new(),
            StdRng::seed_from_u64(9),
        )
    }

    #[test]
    fn state_propagates_between_cells() {
        let (mut home, mut phone, mut cloud, mut rng) = setup();
        home.write("energy-profile", b"heating schedule v1");
        home.sync(&mut cloud, &mut rng).unwrap();
        assert!(phone.pull_new(&cloud, "energy-profile").unwrap());
        assert_eq!(
            phone.read("energy-profile").unwrap(),
            b"heating schedule v1"
        );
    }

    #[test]
    fn newer_version_wins() {
        let (mut home, mut phone, mut cloud, mut rng) = setup();
        home.write("prefs", b"v1");
        home.sync(&mut cloud, &mut rng).unwrap();
        phone.pull_new(&cloud, "prefs").unwrap();
        // Phone writes twice (v2, v3), home once more (v2): phone wins.
        phone.write("prefs", b"phone-v2");
        phone.write("prefs", b"phone-v3");
        phone.sync(&mut cloud, &mut rng).unwrap();
        home.write("prefs", b"home-v2");
        let report = home.sync(&mut cloud, &mut rng).unwrap();
        assert_eq!(report.pulled, 1, "home was behind (v2 < v3)");
        assert_eq!(home.read("prefs").unwrap(), b"phone-v3");
    }

    #[test]
    fn cloud_never_sees_plaintext() {
        let (mut home, _, mut cloud, mut rng) = setup();
        home.write("medical", b"diagnosis: asthma");
        home.sync(&mut cloud, &mut rng).unwrap();
        let blob: Vec<u8> = cloud
            .get("cell-slice:medical")
            .unwrap()
            .iter()
            .flatten()
            .copied()
            .collect();
        assert!(!blob.windows(6).any(|w| w == b"asthma"));
    }

    #[test]
    fn foreign_cell_cannot_read() {
        let (mut home, _, mut cloud, mut rng) = setup();
        home.write("medical", b"private");
        home.sync(&mut cloud, &mut rng).unwrap();
        let mut intruder = TrustedCell::new("evil", b"owner-mallory");
        assert!(intruder.pull_new(&cloud, "medical").is_err());
    }

    #[test]
    fn tampered_blob_is_rejected() {
        let (mut home, mut phone, mut cloud, mut rng) = setup();
        home.write("slice", b"data");
        home.sync(&mut cloud, &mut rng).unwrap();
        cloud.tamper("cell-slice:slice", 0, 12);
        assert!(matches!(
            phone.pull_new(&cloud, "slice"),
            Err(PdsError::ArchiveCorrupt(_))
        ));
    }

    #[test]
    fn sync_report_counts() {
        let (mut home, _, mut cloud, mut rng) = setup();
        home.write("a", b"1");
        home.write("b", b"2");
        let r1 = home.sync(&mut cloud, &mut rng).unwrap();
        assert_eq!(r1.pushed, 2);
        let r2 = home.sync(&mut cloud, &mut rng).unwrap();
        assert_eq!(r2.unchanged, 2);
    }

    #[test]
    fn messages_round_trip_the_wire_form() {
        let msgs = vec![
            CellMsg::PullReq {
                slice: "prefs".into(),
            },
            CellMsg::PullResp {
                slice: "prefs".into(),
                blob: None,
            },
            CellMsg::PullResp {
                slice: "prefs".into(),
                blob: Some(vec![1, 2, 3]),
            },
            CellMsg::Push {
                slice: "médical".into(),
                blob: vec![0; 40],
            },
        ];
        for m in msgs {
            assert_eq!(CellMsg::from_bytes(&m.to_bytes()), Some(m.clone()));
        }
        assert_eq!(CellMsg::from_bytes(&[]), None);
        assert_eq!(CellMsg::from_bytes(&[9, 0, 0, 0, 0]), None);
        let truncated = CellMsg::PullReq {
            slice: "long-name".into(),
        }
        .to_bytes();
        assert_eq!(CellMsg::from_bytes(&truncated[..truncated.len() - 2]), None);
    }

    #[test]
    fn message_protocol_equals_direct_sync() {
        // The same exchange through explicit messages reaches the same
        // state as TrustedCell::sync.
        let (mut home, mut phone, mut cloud, mut rng) = setup();
        home.write("slice", b"from-home");
        for req in home.sync_requests(&[]) {
            let resp = serve_cloud(&mut cloud, &req).unwrap();
            let (push, outcome) = home.handle_response(&resp, &mut rng).unwrap();
            assert_eq!(outcome, CellSyncOutcome::Pushed);
            serve_cloud(&mut cloud, &push.unwrap());
        }
        for req in phone.sync_requests(&["slice".into()]) {
            let resp = serve_cloud(&mut cloud, &req).unwrap();
            let (push, outcome) = phone.handle_response(&resp, &mut rng).unwrap();
            assert!(push.is_none());
            assert_eq!(outcome, CellSyncOutcome::Pulled);
        }
        assert_eq!(phone.read("slice").unwrap(), b"from-home");
    }

    #[test]
    fn delta_variants_round_trip_the_wire_form() {
        let msgs = vec![
            CellMsg::PullSince {
                slice: "prefs".into(),
                since: 7,
            },
            CellMsg::NotModified {
                slice: "prefs".into(),
                version: u64::MAX,
            },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(CellMsg::from_bytes(&bytes), Some(m.clone()));
            assert_eq!(CellMsg::from_bytes(&bytes[..bytes.len() - 2]), None);
        }
    }

    #[test]
    fn delta_reconcile_reaches_the_same_state_as_full_pulls() {
        let (mut home, mut phone, mut cloud, mut rng) = setup();
        home.write("prefs", b"v1");
        home.sync(&mut cloud, &mut rng).unwrap();
        // Phone reconciles via PullSince: behind → full blob arrives.
        for req in phone.sync_requests_since(&["prefs".into()]) {
            let resp = serve_cloud(&mut cloud, &req).unwrap();
            assert!(matches!(resp, CellMsg::PullResp { .. }));
            let (push, outcome) = phone.handle_response(&resp, &mut rng).unwrap();
            assert!(push.is_none());
            assert_eq!(outcome, CellSyncOutcome::Pulled);
        }
        assert_eq!(phone.read("prefs").unwrap(), b"v1");
        // Second round: in sync → a byte-cheap NotModified, nothing moves.
        for req in phone.sync_requests_since(&[]) {
            let resp = serve_cloud(&mut cloud, &req).unwrap();
            assert!(matches!(resp, CellMsg::NotModified { version: 1, .. }));
            let (push, outcome) = phone.handle_response(&resp, &mut rng).unwrap();
            assert!(push.is_none());
            assert_eq!(outcome, CellSyncOutcome::Unchanged);
        }
        // Phone writes: ahead → NotModified answers the PullSince, and
        // the cell responds by pushing.
        phone.write("prefs", b"v2-from-phone");
        for req in phone.sync_requests_since(&[]) {
            let resp = serve_cloud(&mut cloud, &req).unwrap();
            assert!(matches!(resp, CellMsg::NotModified { .. }));
            let (push, outcome) = phone.handle_response(&resp, &mut rng).unwrap();
            assert_eq!(outcome, CellSyncOutcome::Pushed);
            serve_cloud(&mut cloud, &push.unwrap());
        }
        let report = home.sync(&mut cloud, &mut rng).unwrap();
        assert_eq!(report.pulled, 1);
        assert_eq!(home.read("prefs").unwrap(), b"v2-from-phone");
    }

    #[test]
    fn equal_version_different_bytes_is_a_conflict_not_a_clobber() {
        // Two cells bump the same slice to the same version number and
        // race their pushes: the cloud must keep the first arrival, not
        // silently clobber it with the second.
        let (home, _, mut cloud, mut rng) = setup();
        let first = TrustedCell::encode_blob(&home.key, 2, b"from-home", &mut rng);
        let second = TrustedCell::encode_blob(&home.key, 2, b"from-phone", &mut rng);
        assert_ne!(first, second);
        serve_cloud(
            &mut cloud,
            &CellMsg::Push {
                slice: "s".into(),
                blob: first.clone(),
            },
        );
        serve_cloud(
            &mut cloud,
            &CellMsg::Push {
                slice: "s".into(),
                blob: second,
            },
        );
        let stored = cloud.get("cell-slice:s").unwrap().first().unwrap().clone();
        assert_eq!(stored, first, "first writer wins at equal version");
        // A byte-identical duplicate (at-least-once bus) is no conflict.
        serve_cloud(
            &mut cloud,
            &CellMsg::Push {
                slice: "s".into(),
                blob: first.clone(),
            },
        );
        let stored = cloud.get("cell-slice:s").unwrap().first().unwrap().clone();
        assert_eq!(stored, first);
    }

    #[test]
    fn stale_or_duplicated_push_cannot_regress_the_cloud() {
        let (mut home, _, mut cloud, mut rng) = setup();
        home.write("s", b"v1-data");
        let v1 = TrustedCell::encode_blob(&home.key, 1, b"v1-data", &mut rng);
        let v2 = TrustedCell::encode_blob(&home.key, 2, b"v2-data", &mut rng);
        serve_cloud(
            &mut cloud,
            &CellMsg::Push {
                slice: "s".into(),
                blob: v2.clone(),
            },
        );
        // A delayed duplicate of the older push arrives afterwards.
        serve_cloud(
            &mut cloud,
            &CellMsg::Push {
                slice: "s".into(),
                blob: v1,
            },
        );
        let stored = cloud.get("cell-slice:s").unwrap().first().unwrap().clone();
        assert_eq!(stored, v2, "newer snapshot survives the stale duplicate");
    }
}

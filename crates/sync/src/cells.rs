//! Trusted Cells: the devices around one individual, synchronized
//! through an untrusted cloud.
//!
//! "Trusted Cells: regulate personal data produced around an individual,
//! at home, using the cloud as a storage service for encrypted data."
//! Each cell (home gateway, set-top box, car, phone token …) holds a
//! versioned slice of the owner's state; cells publish encrypted,
//! version-stamped snapshots to the cloud and pull each other's updates.
//! The cloud sees ciphertext and version numbers only; conflict
//! resolution (last-writer-wins per slice) happens inside the cells.

use std::collections::BTreeMap;

use pds_core::{CloudStore, PdsError};
use pds_crypto::SymmetricKey;
use pds_obs::rng::RngCore;

/// One snapshot header: (version, ciphertext chunks).
type SnapshotBlob = (u64, Vec<u8>);

/// A trusted cell holding named slices of the owner's state.
pub struct TrustedCell {
    /// Cell name ("home", "car", "phone").
    pub name: String,
    key: SymmetricKey,
    /// slice name → (version, plaintext state).
    slices: BTreeMap<String, (u64, Vec<u8>)>,
}

/// Outcome of one synchronization pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellSyncReport {
    /// Slices this cell pushed (it was ahead).
    pub pushed: u32,
    /// Slices this cell pulled (it was behind).
    pub pulled: u32,
    /// Slices already in sync.
    pub unchanged: u32,
}

impl TrustedCell {
    /// A cell of the owner identified by `owner_seed` (all of one
    /// owner's cells derive the same key — provisioned at pairing).
    pub fn new(name: &str, owner_seed: &[u8]) -> Self {
        TrustedCell {
            name: name.to_string(),
            key: SymmetricKey::from_seed(owner_seed),
            slices: BTreeMap::new(),
        }
    }

    /// Local write: bump the slice version.
    pub fn write(&mut self, slice: &str, data: &[u8]) {
        let v = self.slices.get(slice).map(|(v, _)| *v).unwrap_or(0);
        self.slices
            .insert(slice.to_string(), (v + 1, data.to_vec()));
    }

    /// Read a slice.
    pub fn read(&self, slice: &str) -> Option<&[u8]> {
        self.slices.get(slice).map(|(_, d)| d.as_slice())
    }

    /// Version of a slice.
    pub fn version(&self, slice: &str) -> u64 {
        self.slices.get(slice).map(|(v, _)| *v).unwrap_or(0)
    }

    fn blob_name(owner_slice: &str) -> String {
        format!("cell-slice:{owner_slice}")
    }

    /// Synchronize with the cloud: push slices where this cell is ahead,
    /// pull where it is behind (version numbers are the only plaintext
    /// the cloud sees).
    pub fn sync(
        &mut self,
        cloud: &mut CloudStore,
        rng: &mut impl RngCore,
    ) -> Result<CellSyncReport, PdsError> {
        let mut report = CellSyncReport::default();
        // Pull phase: check every slice the cloud knows about that we
        // also track, plus push our own.
        let slice_names: Vec<String> = self.slices.keys().cloned().collect();
        for slice in slice_names {
            let name = Self::blob_name(&slice);
            let remote = Self::fetch(cloud, &name, &self.key)?;
            let local_v = self.version(&slice);
            match remote {
                Some((rv, data)) if rv > local_v => {
                    self.slices.insert(slice.clone(), (rv, data));
                    report.pulled += 1;
                }
                Some((rv, _)) if rv == local_v => report.unchanged += 1,
                _ => {
                    // We are ahead (or the cloud has nothing): push.
                    let (v, data) = &self.slices[&slice];
                    Self::store(cloud, &name, &self.key, *v, data, rng);
                    report.pushed += 1;
                }
            }
        }
        Ok(report)
    }

    /// Discover and pull a slice this cell has never seen.
    pub fn pull_new(&mut self, cloud: &CloudStore, slice: &str) -> Result<bool, PdsError> {
        let name = Self::blob_name(slice);
        match Self::fetch(cloud, &name, &self.key)? {
            Some((v, data)) => {
                let local_v = self.version(slice);
                if v > local_v {
                    self.slices.insert(slice.to_string(), (v, data));
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            None => Ok(false),
        }
    }

    fn store(
        cloud: &mut CloudStore,
        name: &str,
        key: &SymmetricKey,
        version: u64,
        data: &[u8],
        rng: &mut impl RngCore,
    ) {
        let ct = key.encrypt_prob(data, rng);
        let mut blob = version.to_le_bytes().to_vec();
        blob.extend_from_slice(&ct.0);
        cloud.put(name, vec![blob]);
    }

    fn fetch(
        cloud: &CloudStore,
        name: &str,
        key: &SymmetricKey,
    ) -> Result<Option<SnapshotBlob>, PdsError> {
        let Some(chunks) = cloud.get(name) else {
            return Ok(None);
        };
        let blob = chunks
            .first()
            .ok_or(PdsError::ArchiveCorrupt("empty cell blob"))?;
        if blob.len() < 8 {
            return Err(PdsError::ArchiveCorrupt("short cell blob"));
        }
        let version = u64::from_le_bytes(blob[0..8].try_into().unwrap());
        let data = key
            .decrypt(&pds_crypto::Ciphertext(blob[8..].to_vec()))
            .ok_or(PdsError::ArchiveCorrupt("cell blob authentication"))?;
        Ok(Some((version, data)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup() -> (TrustedCell, TrustedCell, CloudStore, StdRng) {
        (
            TrustedCell::new("home", b"owner-alice"),
            TrustedCell::new("phone", b"owner-alice"),
            CloudStore::new(),
            StdRng::seed_from_u64(9),
        )
    }

    #[test]
    fn state_propagates_between_cells() {
        let (mut home, mut phone, mut cloud, mut rng) = setup();
        home.write("energy-profile", b"heating schedule v1");
        home.sync(&mut cloud, &mut rng).unwrap();
        assert!(phone.pull_new(&cloud, "energy-profile").unwrap());
        assert_eq!(
            phone.read("energy-profile").unwrap(),
            b"heating schedule v1"
        );
    }

    #[test]
    fn newer_version_wins() {
        let (mut home, mut phone, mut cloud, mut rng) = setup();
        home.write("prefs", b"v1");
        home.sync(&mut cloud, &mut rng).unwrap();
        phone.pull_new(&cloud, "prefs").unwrap();
        // Phone writes twice (v2, v3), home once more (v2): phone wins.
        phone.write("prefs", b"phone-v2");
        phone.write("prefs", b"phone-v3");
        phone.sync(&mut cloud, &mut rng).unwrap();
        home.write("prefs", b"home-v2");
        let report = home.sync(&mut cloud, &mut rng).unwrap();
        assert_eq!(report.pulled, 1, "home was behind (v2 < v3)");
        assert_eq!(home.read("prefs").unwrap(), b"phone-v3");
    }

    #[test]
    fn cloud_never_sees_plaintext() {
        let (mut home, _, mut cloud, mut rng) = setup();
        home.write("medical", b"diagnosis: asthma");
        home.sync(&mut cloud, &mut rng).unwrap();
        let blob: Vec<u8> = cloud
            .get("cell-slice:medical")
            .unwrap()
            .iter()
            .flatten()
            .copied()
            .collect();
        assert!(!blob.windows(6).any(|w| w == b"asthma"));
    }

    #[test]
    fn foreign_cell_cannot_read() {
        let (mut home, _, mut cloud, mut rng) = setup();
        home.write("medical", b"private");
        home.sync(&mut cloud, &mut rng).unwrap();
        let mut intruder = TrustedCell::new("evil", b"owner-mallory");
        assert!(intruder.pull_new(&cloud, "medical").is_err());
    }

    #[test]
    fn tampered_blob_is_rejected() {
        let (mut home, mut phone, mut cloud, mut rng) = setup();
        home.write("slice", b"data");
        home.sync(&mut cloud, &mut rng).unwrap();
        cloud.tamper("cell-slice:slice", 0, 12);
        assert!(matches!(
            phone.pull_new(&cloud, "slice"),
            Err(PdsError::ArchiveCorrupt(_))
        ));
    }

    #[test]
    fn sync_report_counts() {
        let (mut home, _, mut cloud, mut rng) = setup();
        home.write("a", b"1");
        home.write("b", b"2");
        let r1 = home.sync(&mut cloud, &mut rng).unwrap();
        assert_eq!(r1.pushed, 2);
        let r2 = home.sync(&mut cloud, &mut rng).unwrap();
        assert_eq!(r2.unchanged, 2);
    }
}

//! The noise-based protocols (deterministic encryption + fake tuples).
//!
//! [TNP14\]'s second family: the grouping key is encrypted
//! **deterministically**, so the SSI can do the GROUP BY itself on opaque
//! values — one token visit per group instead of a whole reduction tree.
//! The price is frequency leakage: equal groups form visible equality
//! classes whose sizes mirror the true distribution. The fix is **fake
//! tuples** that only tokens can tell apart:
//!
//! * **Random (white) noise** — each token adds fakes drawn uniformly
//!   from the public domain, flattening the observed histogram towards
//!   uniform as the noise ratio grows.
//! * **Noise controlled by the complementary domain** — each token adds
//!   one fake for every domain value it does *not* hold, so every token
//!   appears to contribute to every group and class sizes become exactly
//!   equal: zero frequency signal, at a fake volume of `|domain|` per
//!   token.

use std::collections::BTreeMap;

use pds_obs::rng::Rng;

use crate::error::GlobalError;
use crate::query::{GroupByQuery, Population};
use crate::ssi::Ssi;
use crate::stats::ProtocolStats;
use crate::tuple::{ProtocolTuple, TupleKind};

/// Deterministically encrypt the grouping key and probabilistically
/// encrypt the payload of one tuple (the per-tuple token work of the
/// collection phase).
fn emit(
    key: &pds_crypto::SymmetricKey,
    t: &ProtocolTuple,
    stats: &mut ProtocolStats,
    wire: &mut Vec<(Vec<u8>, Vec<u8>)>,
    rng: &mut impl Rng,
) {
    let det = key.encrypt_det(t.group.as_bytes());
    let payload = key.encrypt_prob(&t.encode(), rng);
    stats.token_crypto_ops += 2;
    wire.push((det.0, payload.0));
}

/// Which fake-tuple strategy to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseStrategy {
    /// `fakes_per_token` fakes drawn uniformly from the domain.
    Random {
        /// Fakes each token adds.
        fakes_per_token: usize,
    },
    /// One fake for every domain value the token does not hold.
    Complementary,
}

/// Run a noise-based protocol.
pub fn noise_based(
    population: &mut Population,
    query: &GroupByQuery,
    ssi: &Ssi,
    strategy: NoiseStrategy,
    rng: &mut impl Rng,
) -> Result<(Vec<(String, u64)>, ProtocolStats), GlobalError> {
    let key = population.protocol_key.clone();
    let mut stats = ProtocolStats::default();
    let mut seq = 0u64;

    // Collection: (det(group), prob(payload)) pairs, reals + fakes.
    let mut wire: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let contribs = population.contributions(query)?;
    // Group contributions per token to compute complements.
    let mut per_token: BTreeMap<usize, Vec<(String, u64)>> = BTreeMap::new();
    for (i, g, v) in contribs {
        per_token.entry(i).or_default().push((g, v));
    }
    for i in 0..population.len() {
        let own = per_token.remove(&i).unwrap_or_default();
        for (g, v) in &own {
            emit(
                &key,
                &ProtocolTuple::real(g, *v, seq),
                &mut stats,
                &mut wire,
                rng,
            );
            seq += 1;
        }
        match strategy {
            NoiseStrategy::Random { fakes_per_token } => {
                for _ in 0..fakes_per_token {
                    let g = query.domain[rng.gen_range(0..query.domain.len())].clone();
                    emit(
                        &key,
                        &ProtocolTuple::fake(&g, seq),
                        &mut stats,
                        &mut wire,
                        rng,
                    );
                    seq += 1;
                    stats.fake_tuples += 1;
                }
            }
            NoiseStrategy::Complementary => {
                for g in &query.domain {
                    if !own.iter().any(|(og, _)| og == g) {
                        emit(
                            &key,
                            &ProtocolTuple::fake(g, seq),
                            &mut stats,
                            &mut wire,
                            rng,
                        );
                        seq += 1;
                        stats.fake_tuples += 1;
                    }
                }
            }
        }
    }

    // The SSI groups by deterministic ciphertext equality — this is the
    // information it gets to see, recorded as leakage.
    let mut classes: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
    for (det, payload) in wire {
        stats.ssi_bytes += (det.len() + payload.len()) as u64;
        classes.entry(det).or_default().push(payload);
    }
    let sizes: Vec<u64> = classes.values().map(|v| v.len() as u64).collect();
    ssi.observe_classes(&sizes);

    // One token visit per class: decrypt, drop fakes, sum.
    let mut result: Vec<(String, u64)> = Vec::new();
    for payloads in classes.into_values() {
        stats.rounds += 1;
        let mut group: Option<String> = None;
        let mut sum = 0u64;
        let mut has_real = false;
        for ct in payloads {
            stats.token_tuples += 1;
            stats.token_crypto_ops += 1;
            let plain = key
                .decrypt(&pds_crypto::Ciphertext(ct))
                .ok_or(GlobalError::TamperingDetected("unauthentic payload"))?;
            let t =
                ProtocolTuple::decode(&plain).ok_or(GlobalError::Protocol("undecodable tuple"))?;
            if group.as_deref().is_some_and(|g| g != t.group) {
                return Err(GlobalError::TamperingDetected(
                    "class mixes groups: SSI mis-grouped",
                ));
            }
            group = Some(t.group.clone());
            if t.kind == TupleKind::Real {
                has_real = true;
                sum += t.value;
            }
        }
        if has_real {
            result.push((group.expect("non-empty class"), sum));
        }
    }
    result.sort();
    stats.publish("noise_based");
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::plaintext_groupby;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup(n: usize, seed: u64) -> (Population, GroupByQuery, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = GroupByQuery::bank_by_category();
        let pop = Population::synthetic(n, &q.domain, &mut rng).unwrap();
        (pop, q, rng)
    }

    #[test]
    fn random_noise_is_exact() {
        let (mut pop, q, mut rng) = setup(40, 1);
        let expected = plaintext_groupby(&mut pop, &q).unwrap();
        let ssi = Ssi::honest(5);
        let (result, stats) = noise_based(
            &mut pop,
            &q,
            &ssi,
            NoiseStrategy::Random { fakes_per_token: 3 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(result, expected, "fakes never distort the result");
        assert_eq!(stats.fake_tuples, 40 * 3);
    }

    #[test]
    fn complementary_noise_is_exact_and_flat() {
        let (mut pop, q, mut rng) = setup(50, 2);
        let expected = plaintext_groupby(&mut pop, &q).unwrap();
        let ssi = Ssi::honest(6);
        let (result, _) =
            noise_based(&mut pop, &q, &ssi, NoiseStrategy::Complementary, &mut rng).unwrap();
        assert_eq!(result, expected);
        // Every token contributes (really or fake) to every domain value
        // at least once ⇒ class sizes are nearly equal ⇒ almost no
        // frequency signal.
        let signal = ssi.leakage().frequency_signal();
        assert!(
            signal < 0.25,
            "complementary noise must flatten classes, signal={signal}"
        );
    }

    #[test]
    fn no_noise_leaks_the_true_skew() {
        let (mut pop, q, mut rng) = setup(80, 3);
        let flat_ssi = Ssi::honest(7);
        noise_based(
            &mut pop,
            &q,
            &flat_ssi,
            NoiseStrategy::Random { fakes_per_token: 0 },
            &mut rng,
        )
        .unwrap();
        let raw_signal = flat_ssi.leakage().frequency_signal();
        // The synthetic population is skewed toward early categories, so
        // the undisguised classes show a strong signal.
        assert!(
            raw_signal > 0.3,
            "without noise the SSI sees the skew, signal={raw_signal}"
        );
        // More noise ⇒ weaker signal.
        let noisy_ssi = Ssi::honest(8);
        noise_based(
            &mut pop,
            &q,
            &noisy_ssi,
            NoiseStrategy::Random {
                fakes_per_token: 20,
            },
            &mut rng,
        )
        .unwrap();
        assert!(noisy_ssi.leakage().frequency_signal() < raw_signal);
    }

    #[test]
    fn one_round_per_group_not_per_tuple() {
        let (mut pop, q, mut rng) = setup(60, 4);
        let ssi = Ssi::honest(9);
        let (result, stats) = noise_based(
            &mut pop,
            &q,
            &ssi,
            NoiseStrategy::Random { fakes_per_token: 0 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(stats.rounds as usize, result.len());
        assert!(stats.rounds as usize <= q.domain.len());
    }
}

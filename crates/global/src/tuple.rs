//! Wire format of protocol tuples.
//!
//! Every [TNP14\] protocol moves `(group, value)` contributions between
//! tokens through the SSI. The plaintext payload carries a kind marker
//! (real vs fake — the noise protocols drown frequencies in fakes that
//! only tokens can recognize) and a sequence number (the handle of the
//! spot-checking defense against a weakly malicious SSI).

/// Real contribution or protocol-generated noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleKind {
    /// A genuine contribution.
    Real,
    /// A fake tuple injected to hide frequencies.
    Fake,
}

/// One protocol tuple in plaintext form (only ever visible inside a
/// token).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolTuple {
    /// Grouping key.
    pub group: String,
    /// Aggregated measure.
    pub value: u64,
    /// Real or fake.
    pub kind: TupleKind,
    /// Collection-time sequence number (unique per run).
    pub seq: u64,
}

impl ProtocolTuple {
    /// A real tuple.
    pub fn real(group: &str, value: u64, seq: u64) -> Self {
        ProtocolTuple {
            group: group.to_string(),
            value,
            kind: TupleKind::Real,
            seq,
        }
    }

    /// A fake tuple for `group`.
    pub fn fake(group: &str, seq: u64) -> Self {
        ProtocolTuple {
            group: group.to_string(),
            value: 0,
            kind: TupleKind::Fake,
            seq,
        }
    }

    /// Serialize: `kind ‖ seq ‖ value ‖ group`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17 + self.group.len());
        out.push(match self.kind {
            TupleKind::Real => 0,
            TupleKind::Fake => 1,
        });
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.value.to_le_bytes());
        out.extend_from_slice(self.group.as_bytes());
        out
    }

    /// Deserialize; `None` on malformed input (e.g. a forged ciphertext
    /// that somehow authenticated — it cannot, but defense in depth).
    pub fn decode(bytes: &[u8]) -> Option<ProtocolTuple> {
        if bytes.len() < 17 {
            return None;
        }
        let kind = match bytes[0] {
            0 => TupleKind::Real,
            1 => TupleKind::Fake,
            _ => return None,
        };
        let seq = u64::from_le_bytes(bytes[1..9].try_into().ok()?);
        let value = u64::from_le_bytes(bytes[9..17].try_into().ok()?);
        let group = std::str::from_utf8(&bytes[17..]).ok()?.to_string();
        Some(ProtocolTuple {
            group,
            value,
            kind,
            seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for t in [
            ProtocolTuple::real("salary", 250_000, 7),
            ProtocolTuple::fake("rent", 8),
            ProtocolTuple::real("", 0, 0),
        ] {
            assert_eq!(ProtocolTuple::decode(&t.encode()), Some(t));
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(ProtocolTuple::decode(&[]).is_none());
        assert!(ProtocolTuple::decode(&[9; 20]).is_none(), "bad kind tag");
        assert!(ProtocolTuple::decode(&[0; 10]).is_none(), "truncated");
    }
}

//! The histogram-based protocol (Hacigumus-style bucketization).
//!
//! [TNP14\]'s third solution, "based on Hacigumus' equi-depth histogram
//! approach" [HILM02, HIM04]: the public domain of the grouping attribute
//! is partitioned into `B` buckets; each tuple travels with its **bucket
//! id in clear** plus a probabilistically encrypted payload. The SSI
//! groups by bucket (coarse, public information); one token per bucket
//! decrypts the members and splits them into exact groups.
//!
//! The dial is `B`: more buckets ⇒ fewer tuples per token visit (cheaper
//! tokens) but a finer histogram at the SSI (more leakage); `B = 1`
//! degenerates to "ship everything to one token" with zero leakage.
//! Equi-depth assignment uses the public *domain frequency prior* when
//! one is supplied, plain equi-width otherwise.

use std::collections::BTreeMap;

use pds_obs::rng::Rng;

use crate::error::GlobalError;
use crate::query::{GroupByQuery, Population};
use crate::ssi::Ssi;
use crate::stats::ProtocolStats;
use crate::tuple::{ProtocolTuple, TupleKind};

/// The public bucket map of the grouping domain.
#[derive(Debug, Clone)]
pub struct BucketMap {
    /// domain value → bucket id.
    assignment: BTreeMap<String, u32>,
    /// Number of buckets.
    pub buckets: u32,
}

impl BucketMap {
    /// Equi-width assignment: consecutive domain values share buckets.
    pub fn equi_width(domain: &[String], buckets: u32) -> Self {
        assert!(buckets >= 1);
        let per = domain.len().div_ceil(buckets as usize).max(1);
        let assignment = domain
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), (i / per) as u32))
            .collect();
        BucketMap {
            assignment,
            buckets,
        }
    }

    /// Equi-depth assignment from a public frequency prior: greedily
    /// fills buckets to equal probability mass (Hacigumus' histogram).
    pub fn equi_depth(domain: &[String], weights: &[f64], buckets: u32) -> Self {
        assert_eq!(domain.len(), weights.len());
        assert!(buckets >= 1);
        let total: f64 = weights.iter().sum();
        let target = total / buckets as f64;
        let mut assignment = BTreeMap::new();
        let mut bucket = 0u32;
        let mut mass = 0.0;
        for (v, w) in domain.iter().zip(weights) {
            assignment.insert(v.clone(), bucket);
            mass += w;
            if mass >= target && bucket + 1 < buckets {
                bucket += 1;
                mass = 0.0;
            }
        }
        BucketMap {
            assignment,
            buckets,
        }
    }

    /// Bucket of a domain value (unknown values map to bucket 0 — they
    /// cannot occur when the domain is truly public).
    pub fn bucket_of(&self, value: &str) -> u32 {
        self.assignment.get(value).copied().unwrap_or(0)
    }
}

/// Run the histogram-based protocol.
#[allow(clippy::explicit_counter_loop)] // seq is a protocol sequence number
pub fn histogram_based(
    population: &mut Population,
    query: &GroupByQuery,
    ssi: &Ssi,
    map: &BucketMap,
    rng: &mut impl Rng,
) -> Result<(Vec<(String, u64)>, ProtocolStats), GlobalError> {
    let key = population.protocol_key.clone();
    let mut stats = ProtocolStats::default();
    let mut seq = 0u64;

    // Collection: (bucket-in-clear, encrypted payload).
    let mut wire: Vec<(u32, Vec<u8>)> = Vec::new();
    for (_, g, v) in population.contributions(query)? {
        let t = ProtocolTuple::real(&g, v, seq);
        seq += 1;
        let ct = key.encrypt_prob(&t.encode(), rng);
        stats.token_crypto_ops += 1;
        wire.push((map.bucket_of(&g), ct.0));
    }

    // SSI buckets the tuples; the bucket histogram is its leakage.
    let mut buckets: BTreeMap<u32, Vec<Vec<u8>>> = BTreeMap::new();
    for (b, payload) in wire {
        stats.ssi_bytes += payload.len() as u64 + 4;
        buckets.entry(b).or_default().push(payload);
    }
    let sizes: Vec<u64> = buckets.values().map(|v| v.len() as u64).collect();
    ssi.observe_classes(&sizes);

    // One token visit per bucket: decrypt, split into exact groups.
    let mut result: BTreeMap<String, u64> = BTreeMap::new();
    for members in buckets.into_values() {
        stats.rounds += 1;
        for ct in members {
            stats.token_tuples += 1;
            stats.token_crypto_ops += 1;
            let plain = key
                .decrypt(&pds_crypto::Ciphertext(ct))
                .ok_or(GlobalError::TamperingDetected("unauthentic payload"))?;
            let t =
                ProtocolTuple::decode(&plain).ok_or(GlobalError::Protocol("undecodable tuple"))?;
            if t.kind == TupleKind::Real {
                *result.entry(t.group).or_insert(0) += t.value;
            }
        }
    }
    stats.publish("histogram_based");
    Ok((result.into_iter().collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::plaintext_groupby;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup(n: usize, seed: u64) -> (Population, GroupByQuery, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = GroupByQuery::bank_by_category();
        let pop = Population::synthetic(n, &q.domain, &mut rng).unwrap();
        (pop, q, rng)
    }

    #[test]
    fn exact_for_any_bucket_count() {
        let (mut pop, q, mut rng) = setup(40, 1);
        let expected = plaintext_groupby(&mut pop, &q).unwrap();
        for buckets in [1u32, 2, 3, 6] {
            let map = BucketMap::equi_width(&q.domain, buckets);
            let ssi = Ssi::honest(buckets as u64);
            let (result, stats) = histogram_based(&mut pop, &q, &ssi, &map, &mut rng).unwrap();
            assert_eq!(result, expected, "buckets={buckets}");
            assert!(stats.rounds <= buckets);
        }
    }

    #[test]
    fn leakage_grows_with_bucket_count() {
        let (mut pop, q, mut rng) = setup(100, 2);
        let coarse = Ssi::honest(1);
        let map1 = BucketMap::equi_width(&q.domain, 1);
        histogram_based(&mut pop, &q, &coarse, &map1, &mut rng).unwrap();
        assert_eq!(
            coarse.leakage().equality_class_sizes.len(),
            1,
            "one bucket: the SSI sees only the total count"
        );
        let fine = Ssi::honest(2);
        let map6 = BucketMap::equi_width(&q.domain, 6);
        histogram_based(&mut pop, &q, &fine, &map6, &mut rng).unwrap();
        assert!(fine.leakage().equality_class_sizes.len() > 1);
    }

    #[test]
    fn equi_depth_balances_bucket_sizes() {
        let domain: Vec<String> = (0..8).map(|i| format!("g{i}")).collect();
        // Heavy skew on the first value.
        let weights = [70.0, 10.0, 5.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let depth = BucketMap::equi_depth(&domain, &weights, 4);
        // The heavy value gets its own bucket; light values share.
        assert_eq!(depth.bucket_of("g0"), 0);
        assert_ne!(depth.bucket_of("g1"), 0);
        let last_bucket = depth.bucket_of("g7");
        assert!(last_bucket < 4);
        // Equi-width would have put g0 and g1 together.
        let width = BucketMap::equi_width(&domain, 4);
        assert_eq!(width.bucket_of("g0"), width.bucket_of("g1"));
    }

    #[test]
    fn bucket_map_covers_whole_domain() {
        let domain: Vec<String> = (0..10).map(|i| format!("v{i}")).collect();
        let map = BucketMap::equi_width(&domain, 3);
        for v in &domain {
            assert!(map.bucket_of(v) < 3);
        }
    }
}

//! The Supporting Server Infrastructure — untrusted, available, curious.
//!
//! Threat models from the tutorial's slide:
//!
//! * **Honest-but-Curious (semi-honest)** — follows the protocol but
//!   "records everything"; the [`Leakage`] ledger captures exactly what
//!   it could observe, and the E6 experiment reports it per protocol.
//! * **Weakly Malicious (covert adversary)** — deviates (drops, forges)
//!   but "does not want to be detected"; [`crate::detection`] quantifies
//!   the deterrent.
//!
//! ## Concurrency model
//!
//! The fleet runtime (`pds-fleet`) shares one SSI across many worker
//! threads, so every observation path uses interior mutability that is
//! safe to call through `&self`: leakage tallies are relaxed atomics,
//! the equality-class ledger is a mutex-guarded vector, and the SSI
//! holds **no RNG state at all**. Weakly-malicious drop/forge decisions
//! are pure functions of `(seed, message id)` — two runs that deliver
//! the same message ids reach the same verdicts no matter how many
//! threads raced, in which order messages arrived, or how many other
//! random decisions happened in between.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pds_obs::rng::{RngCore, SeedableRng, SplitMix64, StdRng};

/// Domain-separation tags for the per-message decision streams.
const TAG_DROP: u64 = 0x5353_4944_524F_5001; // "SSIDROP"
const TAG_FORGE: u64 = 0x5353_4946_4F52_4702; // "SSIFORG"

/// SSI behavior model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SsiThreat {
    /// Follows the protocol; records observations.
    HonestButCurious,
    /// Covert deviation: drops each collected tuple with `drop_rate`,
    /// injects `forge_rate`·N forged ciphertexts.
    WeaklyMalicious {
        /// Probability of silently dropping a tuple.
        drop_rate: f64,
        /// Forged tuples injected per genuine tuple.
        forge_rate: f64,
    },
}

/// Everything an honest-but-curious SSI managed to observe during a run.
/// This is the *measured leakage* of experiment E6. Snapshot value —
/// obtained from [`Ssi::leakage`], comparable across runs with `==`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Leakage {
    /// Total ciphertext tuples it handled.
    pub tuples_seen: u64,
    /// Total ciphertext bytes it handled.
    pub bytes_seen: u64,
    /// Sizes of the equality classes it could form (deterministic
    /// encryption or clear bucket tags make these visible; probabilistic
    /// encryption leaves this empty).
    pub equality_class_sizes: Vec<u64>,
}

impl Leakage {
    /// Coefficient of variation of the observed equality-class sizes —
    /// a scalar proxy for how much of the true frequency distribution
    /// leaks: ≈0 when classes look uniform (nothing to learn), high when
    /// the true skew shows through.
    pub fn frequency_signal(&self) -> f64 {
        let n = self.equality_class_sizes.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.equality_class_sizes.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .equality_class_sizes
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// The untrusted infrastructure. `Send + Sync`: all observation paths go
/// through `&self` and commute, so worker threads can share one instance
/// behind an `Arc` without a lock around the whole struct.
pub struct Ssi {
    threat: SsiThreat,
    seed: u64,
    tuples_seen: AtomicU64,
    bytes_seen: AtomicU64,
    equality_classes: Mutex<Vec<u64>>,
    /// Message-id source for untagged [`Ssi::collect`] calls.
    next_msg_id: AtomicU64,
    dropped: AtomicU64,
    forged: AtomicU64,
}

/// Mix `(seed, tag, id)` into one well-avalanched u64 (two SplitMix64
/// rounds — the same mixer the workspace RNG seeds with).
fn mix(seed: u64, tag: u64, id: u64) -> u64 {
    let a = SplitMix64::new(seed ^ tag).next_u64();
    SplitMix64::new(a ^ id).next_u64()
}

/// Map a mixed u64 to the unit interval (canonical 53-bit construction).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Ssi {
    /// An SSI with the given behavior, seeded deterministically.
    pub fn new(threat: SsiThreat, seed: u64) -> Self {
        Ssi {
            threat,
            seed,
            tuples_seen: AtomicU64::new(0),
            bytes_seen: AtomicU64::new(0),
            equality_classes: Mutex::new(Vec::new()),
            next_msg_id: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            forged: AtomicU64::new(0),
        }
    }

    /// An honest SSI.
    pub fn honest(seed: u64) -> Self {
        Self::new(SsiThreat::HonestButCurious, seed)
    }

    /// Current behavior model.
    pub fn threat(&self) -> SsiThreat {
        self.threat
    }

    /// Snapshot of what it observed so far.
    pub fn leakage(&self) -> Leakage {
        Leakage {
            tuples_seen: self.tuples_seen.load(Ordering::Relaxed),
            bytes_seen: self.bytes_seen.load(Ordering::Relaxed),
            equality_class_sizes: self.equality_classes.lock().unwrap().clone(),
        }
    }

    /// Tuples dropped by a weakly malicious run (ground truth for tests).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Forged tuples injected (ground truth for tests).
    pub fn forged(&self) -> u64 {
        self.forged.load(Ordering::Relaxed)
    }

    /// The covert drop verdict for one message id — a pure function of
    /// `(seed, msg_id)`, independent of call order and thread count.
    pub fn drops_message(&self, msg_id: u64) -> bool {
        match self.threat {
            SsiThreat::HonestButCurious => false,
            SsiThreat::WeaklyMalicious { drop_rate, .. } => {
                unit(mix(self.seed, TAG_DROP, msg_id)) < drop_rate
            }
        }
    }

    /// Collect ciphertext tuples from the population, applying the threat
    /// behavior. Ids are assigned from an internal sequence; callers that
    /// already have stable message ids (the fleet bus) should prefer
    /// [`Ssi::collect_tagged`].
    pub fn collect(&self, tuples: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let base = self
            .next_msg_id
            .fetch_add(tuples.len() as u64, Ordering::Relaxed);
        let tagged = tuples
            .into_iter()
            .enumerate()
            .map(|(k, t)| (base + k as u64, t))
            .collect();
        self.collect_tagged(tagged)
    }

    /// Collect `(message id, ciphertext)` pairs, applying the threat
    /// behavior with per-message-id decisions. Returns the tuple list as
    /// the SSI will present it to the aggregating tokens.
    pub fn collect_tagged(&self, msgs: Vec<(u64, Vec<u8>)>) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(msgs.len());
        let genuine = msgs.len();
        for (id, t) in msgs {
            self.tuples_seen.fetch_add(1, Ordering::Relaxed);
            self.bytes_seen.fetch_add(t.len() as u64, Ordering::Relaxed);
            if self.drops_message(id) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                out.push(t);
            }
        }
        if let SsiThreat::WeaklyMalicious { forge_rate, .. } = self.threat {
            let forgeries = (genuine as f64 * forge_rate).round() as u64;
            let base = self.forged.fetch_add(forgeries, Ordering::Relaxed);
            for k in 0..forgeries {
                // Random bytes: without the protocol key the adversary
                // cannot produce an authentic ciphertext. Each forgery's
                // content is its own derived stream, so forged traffic is
                // reproducible per (seed, forgery index).
                let mut g = StdRng::seed_from_u64(mix(self.seed, TAG_FORGE, base + k));
                let len = 64 + (g.next_u64() % 32) as usize;
                let mut fake = vec![0u8; len];
                g.fill_bytes(&mut fake);
                out.push(fake);
            }
        }
        out
    }

    /// Record the equality classes the SSI could form (called by
    /// protocols whose wire format makes grouping observable).
    pub fn observe_classes(&self, class_sizes: &[u64]) {
        self.equality_classes
            .lock()
            .unwrap()
            .extend_from_slice(class_sizes);
    }

    /// Partition `items` into chunks of at most `size` — the SSI's job in
    /// the secure aggregation protocol ("the SSI constructs the
    /// partitions"). Content-oblivious by construction.
    pub fn partition(&self, items: Vec<Vec<u8>>, size: usize) -> Vec<Vec<Vec<u8>>> {
        assert!(size >= 1);
        let mut chunks = Vec::new();
        let mut it = items.into_iter().peekable();
        while it.peek().is_some() {
            chunks.push(it.by_ref().take(size).collect());
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssi_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Ssi>();
    }

    #[test]
    fn honest_ssi_passes_everything_and_counts() {
        let ssi = Ssi::honest(1);
        let tuples = vec![vec![1u8; 10], vec![2u8; 20]];
        let out = ssi.collect(tuples);
        assert_eq!(out.len(), 2);
        assert_eq!(ssi.leakage().tuples_seen, 2);
        assert_eq!(ssi.leakage().bytes_seen, 30);
        assert_eq!(ssi.dropped() + ssi.forged(), 0);
    }

    #[test]
    fn weakly_malicious_drops_and_forges() {
        let ssi = Ssi::new(
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.5,
                forge_rate: 0.1,
            },
            2,
        );
        let tuples: Vec<Vec<u8>> = (0..1000).map(|i| vec![i as u8; 8]).collect();
        let out = ssi.collect(tuples);
        assert!(
            ssi.dropped() > 400 && ssi.dropped() < 600,
            "≈50% dropped, got {}",
            ssi.dropped()
        );
        assert_eq!(ssi.forged(), 100);
        assert_eq!(out.len() as u64, 1000 - ssi.dropped() + ssi.forged());
    }

    #[test]
    fn drop_verdict_depends_only_on_message_id() {
        let a = Ssi::new(
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.4,
                forge_rate: 0.0,
            },
            7,
        );
        let b = Ssi::new(
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.4,
                forge_rate: 0.0,
            },
            7,
        );
        // b consumes unrelated decisions first — verdicts must not shift.
        for noise_id in 5000..5100 {
            b.drops_message(noise_id);
        }
        for id in 0..500 {
            assert_eq!(a.drops_message(id), b.drops_message(id), "id {id}");
        }
        // A different seed decides differently somewhere.
        let c = Ssi::new(
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.4,
                forge_rate: 0.0,
            },
            8,
        );
        assert!((0..500).any(|id| a.drops_message(id) != c.drops_message(id)));
    }

    #[test]
    fn tagged_collect_is_order_independent() {
        let mk = || {
            Ssi::new(
                SsiThreat::WeaklyMalicious {
                    drop_rate: 0.3,
                    forge_rate: 0.0,
                },
                11,
            )
        };
        let msgs: Vec<(u64, Vec<u8>)> = (0..200u64).map(|i| (i, vec![i as u8; 4])).collect();
        let mut reversed = msgs.clone();
        reversed.reverse();
        let a = mk();
        let fwd = a.collect_tagged(msgs);
        let b = mk();
        let mut rev = b.collect_tagged(reversed);
        rev.reverse();
        assert_eq!(fwd, rev, "same survivors regardless of arrival order");
        assert_eq!(a.dropped(), b.dropped());
    }

    #[test]
    fn partitioning_is_exact_and_oblivious() {
        let ssi = Ssi::honest(3);
        let items: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        let parts = ssi.partition(items, 4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[2].len(), 2);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn frequency_signal_reflects_skew() {
        let uniform = Leakage {
            equality_class_sizes: vec![10, 10, 10, 10],
            ..Default::default()
        };
        let skewed = Leakage {
            equality_class_sizes: vec![37, 1, 1, 1],
            ..Default::default()
        };
        assert!(uniform.frequency_signal() < 0.01);
        assert!(skewed.frequency_signal() > 1.0);
        assert_eq!(Leakage::default().frequency_signal(), 0.0);
    }

    #[test]
    fn concurrent_observation_loses_nothing() {
        let ssi = std::sync::Arc::new(Ssi::honest(5));
        std::thread::scope(|s| {
            for t in 0..4 {
                let ssi = ssi.clone();
                s.spawn(move || {
                    let msgs: Vec<(u64, Vec<u8>)> =
                        (0..250u64).map(|i| (t * 1000 + i, vec![0u8; 16])).collect();
                    ssi.collect_tagged(msgs);
                    ssi.observe_classes(&[t]);
                });
            }
        });
        let leak = ssi.leakage();
        assert_eq!(leak.tuples_seen, 1000);
        assert_eq!(leak.bytes_seen, 16_000);
        assert_eq!(leak.equality_class_sizes.len(), 4);
    }
}

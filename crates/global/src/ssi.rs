//! The Supporting Server Infrastructure — untrusted, available, curious.
//!
//! Threat models from the tutorial's slide:
//!
//! * **Honest-but-Curious (semi-honest)** — follows the protocol but
//!   "records everything"; the [`Leakage`] ledger captures exactly what
//!   it could observe, and the E6 experiment reports it per protocol.
//! * **Weakly Malicious (covert adversary)** — deviates (drops, forges)
//!   but "does not want to be detected"; [`crate::detection`] quantifies
//!   the deterrent.

use pds_obs::rng::StdRng;
use pds_obs::rng::{Rng, SeedableRng};

/// SSI behavior model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SsiThreat {
    /// Follows the protocol; records observations.
    HonestButCurious,
    /// Covert deviation: drops each collected tuple with `drop_rate`,
    /// injects `forge_rate`·N forged ciphertexts.
    WeaklyMalicious {
        /// Probability of silently dropping a tuple.
        drop_rate: f64,
        /// Forged tuples injected per genuine tuple.
        forge_rate: f64,
    },
}

/// Everything an honest-but-curious SSI managed to observe during a run.
/// This is the *measured leakage* of experiment E6.
#[derive(Debug, Clone, Default)]
pub struct Leakage {
    /// Total ciphertext tuples it handled.
    pub tuples_seen: u64,
    /// Total ciphertext bytes it handled.
    pub bytes_seen: u64,
    /// Sizes of the equality classes it could form (deterministic
    /// encryption or clear bucket tags make these visible; probabilistic
    /// encryption leaves this empty).
    pub equality_class_sizes: Vec<u64>,
}

impl Leakage {
    /// Coefficient of variation of the observed equality-class sizes —
    /// a scalar proxy for how much of the true frequency distribution
    /// leaks: ≈0 when classes look uniform (nothing to learn), high when
    /// the true skew shows through.
    pub fn frequency_signal(&self) -> f64 {
        let n = self.equality_class_sizes.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.equality_class_sizes.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .equality_class_sizes
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// The untrusted infrastructure.
pub struct Ssi {
    threat: SsiThreat,
    leakage: Leakage,
    rng: StdRng,
    /// Tuples dropped by a weakly malicious run (ground truth for tests).
    pub dropped: u64,
    /// Forged tuples injected (ground truth for tests).
    pub forged: u64,
}

impl Ssi {
    /// An SSI with the given behavior, seeded deterministically.
    pub fn new(threat: SsiThreat, seed: u64) -> Self {
        Ssi {
            threat,
            leakage: Leakage::default(),
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
            forged: 0,
        }
    }

    /// An honest SSI.
    pub fn honest(seed: u64) -> Self {
        Self::new(SsiThreat::HonestButCurious, seed)
    }

    /// Current behavior model.
    pub fn threat(&self) -> SsiThreat {
        self.threat
    }

    /// What it observed so far.
    pub fn leakage(&self) -> &Leakage {
        &self.leakage
    }

    /// Collect ciphertext tuples from the population, applying the threat
    /// behavior. Returns the tuple list as the SSI will present it to the
    /// aggregating tokens.
    pub fn collect(&mut self, tuples: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(tuples.len());
        let genuine = tuples.len();
        for t in tuples {
            self.leakage.tuples_seen += 1;
            self.leakage.bytes_seen += t.len() as u64;
            match self.threat {
                SsiThreat::HonestButCurious => out.push(t),
                SsiThreat::WeaklyMalicious { drop_rate, .. } => {
                    if self.rng.gen_bool(drop_rate) {
                        self.dropped += 1;
                    } else {
                        out.push(t);
                    }
                }
            }
        }
        if let SsiThreat::WeaklyMalicious { forge_rate, .. } = self.threat {
            let forgeries = (genuine as f64 * forge_rate).round() as usize;
            for _ in 0..forgeries {
                // Random bytes: without the protocol key the adversary
                // cannot produce an authentic ciphertext.
                let len = 64 + self.rng.gen_range(0..32usize);
                let mut fake = vec![0u8; len];
                self.rng.fill(&mut fake[..]);
                out.push(fake);
                self.forged += 1;
            }
        }
        out
    }

    /// Record the equality classes the SSI could form (called by
    /// protocols whose wire format makes grouping observable).
    pub fn observe_classes(&mut self, class_sizes: &[u64]) {
        self.leakage
            .equality_class_sizes
            .extend_from_slice(class_sizes);
    }

    /// Partition `items` into chunks of at most `size` — the SSI's job in
    /// the secure aggregation protocol ("the SSI constructs the
    /// partitions"). Content-oblivious by construction.
    pub fn partition(&self, items: Vec<Vec<u8>>, size: usize) -> Vec<Vec<Vec<u8>>> {
        assert!(size >= 1);
        let mut chunks = Vec::new();
        let mut it = items.into_iter().peekable();
        while it.peek().is_some() {
            chunks.push(it.by_ref().take(size).collect());
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_ssi_passes_everything_and_counts() {
        let mut ssi = Ssi::honest(1);
        let tuples = vec![vec![1u8; 10], vec![2u8; 20]];
        let out = ssi.collect(tuples);
        assert_eq!(out.len(), 2);
        assert_eq!(ssi.leakage().tuples_seen, 2);
        assert_eq!(ssi.leakage().bytes_seen, 30);
        assert_eq!(ssi.dropped + ssi.forged, 0);
    }

    #[test]
    fn weakly_malicious_drops_and_forges() {
        let mut ssi = Ssi::new(
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.5,
                forge_rate: 0.1,
            },
            2,
        );
        let tuples: Vec<Vec<u8>> = (0..1000).map(|i| vec![i as u8; 8]).collect();
        let out = ssi.collect(tuples);
        assert!(ssi.dropped > 400 && ssi.dropped < 600, "≈50% dropped");
        assert_eq!(ssi.forged, 100);
        assert_eq!(out.len() as u64, 1000 - ssi.dropped + ssi.forged);
    }

    #[test]
    fn partitioning_is_exact_and_oblivious() {
        let ssi = Ssi::honest(3);
        let items: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        let parts = ssi.partition(items, 4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[2].len(), 2);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn frequency_signal_reflects_skew() {
        let uniform = Leakage {
            equality_class_sizes: vec![10, 10, 10, 10],
            ..Default::default()
        };
        let skewed = Leakage {
            equality_class_sizes: vec![37, 1, 1, 1],
            ..Default::default()
        };
        assert!(uniform.frequency_signal() < 0.01);
        assert!(skewed.frequency_signal() > 1.0);
        assert_eq!(Leakage::default().frequency_signal(), 0.0);
    }
}

//! The query class, the population, and the plaintext reference.
//!
//! [TNP14\] targets "SQL (aggregate) queries" over all PDSs: the canonical
//! form is `SELECT g, SUM(m) FROM <table over every PDS> GROUP BY g`.
//! The grouping attribute has a *public domain* (city lists, spending
//! categories, diagnosis codes …) — public knowledge the noise and
//! histogram protocols both exploit.

use pds_core::{AccessContext, Pds, Purpose};
use pds_crypto::SymmetricKey;
use pds_obs::rng::Rng;

use crate::error::GlobalError;

/// The aggregate computed per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// `SUM(measure_column)`.
    Sum,
    /// `COUNT(*)` (the measure column is ignored).
    Count,
}

/// A global GROUP-BY aggregate query.
#[derive(Debug, Clone)]
pub struct GroupByQuery {
    /// Table queried on every PDS.
    pub table: String,
    /// Grouping attribute.
    pub group_column: String,
    /// Summed attribute (ignored for COUNT).
    pub measure_column: String,
    /// Which aggregate to compute.
    pub measure: Measure,
    /// Public domain of the grouping attribute.
    pub domain: Vec<String>,
}

impl GroupByQuery {
    /// The running example of the experiments: national spending per
    /// category over everyone's BANK table.
    pub fn bank_by_category() -> Self {
        GroupByQuery {
            table: "BANK".to_string(),
            group_column: "category".to_string(),
            measure_column: "amount_cents".to_string(),
            measure: Measure::Sum,
            domain: pds_core::data::BANK_CATEGORIES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// `SELECT category, COUNT(*) … GROUP BY category` over everyone's
    /// BANK table.
    pub fn bank_count_by_category() -> Self {
        GroupByQuery {
            measure: Measure::Count,
            ..Self::bank_by_category()
        }
    }

    /// Derive the AVG per group from a SUM run and a COUNT run of the
    /// same grouping — the standard decomposition the [TNP14\] protocols
    /// use for algebraic aggregates (both runs are exact, so the average
    /// is too). Groups missing from the count are dropped.
    pub fn average_from(sums: &[(String, u64)], counts: &[(String, u64)]) -> Vec<(String, f64)> {
        sums.iter()
            .filter_map(|(g, s)| {
                counts
                    .iter()
                    .find(|(cg, _)| cg == g)
                    .filter(|(_, c)| *c > 0)
                    .map(|(_, c)| (g.clone(), *s as f64 / *c as f64))
            })
            .collect()
    }

    /// The access context a global query presents to each PDS: an
    /// anonymous statistics request (granted by the default policy for
    /// `Aggregate` only).
    pub fn context(&self) -> AccessContext {
        AccessContext::new("global-query", Purpose::Statistics)
    }
}

/// A population of enrolled PDSs sharing one protocol key.
pub struct Population {
    /// The tokens.
    pub tokens: Vec<Pds>,
    /// The shared protocol key (issued at manufacture; never at the SSI).
    pub protocol_key: SymmetricKey,
}

impl Population {
    /// Build `n` slim PDSs, each holding a few synthetic bank records
    /// with categories drawn (with a skew: earlier domain entries are
    /// more frequent) from `domain`.
    pub fn synthetic(
        n: usize,
        domain: &[String],
        rng: &mut impl Rng,
    ) -> Result<Population, GlobalError> {
        let protocol_key = SymmetricKey::random(rng);
        let mut tokens = Vec::with_capacity(n);
        for i in 0..n {
            let mut pds = Pds::slim(i as u64, &format!("user-{i}"))?;
            let records = rng.gen_range(1..=3);
            for day in 0..records {
                // Skewed category choice: index ~ min of two uniforms.
                let a = rng.gen_range(0..domain.len());
                let b = rng.gen_range(0..domain.len());
                let cat = &domain[a.min(b)];
                pds.ingest_bank(day, cat, rng.gen_range(100..10_000), "shop")?;
            }
            pds.enroll(protocol_key.clone());
            tokens.push(pds);
        }
        Ok(Population {
            tokens,
            protocol_key,
        })
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Every token's policy-gated contribution to `query`, flattened as
    /// `(token index, group, value)`.
    pub fn contributions(
        &mut self,
        query: &GroupByQuery,
    ) -> Result<Vec<(usize, String, u64)>, GlobalError> {
        let ctx = query.context();
        let mut out = Vec::new();
        for (i, pds) in self.tokens.iter_mut().enumerate() {
            let groups = match query.measure {
                Measure::Sum => pds.group_contribution(
                    &ctx,
                    &query.table,
                    &query.group_column,
                    &query.measure_column,
                )?,
                Measure::Count => pds.group_count(&ctx, &query.table, &query.group_column)?,
            };
            for (g, v) in groups {
                out.push((i, g, v));
            }
        }
        Ok(out)
    }
}

/// The ground truth every protocol must reproduce exactly: the GROUP BY
/// computed with full visibility (what a trusted centralized server
/// would return).
pub fn plaintext_groupby(
    population: &mut Population,
    query: &GroupByQuery,
) -> Result<Vec<(String, u64)>, GlobalError> {
    let mut groups: std::collections::BTreeMap<String, u64> = Default::default();
    for (_, g, v) in population.contributions(query)? {
        *groups.entry(g).or_insert(0) += v;
    }
    Ok(groups.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    #[test]
    fn synthetic_population_contributes() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = GroupByQuery::bank_by_category();
        let mut pop = Population::synthetic(20, &q.domain, &mut rng).unwrap();
        assert_eq!(pop.len(), 20);
        let contribs = pop.contributions(&q).unwrap();
        assert!(contribs.len() >= 20);
        assert!(contribs.iter().all(|(_, g, _)| q.domain.contains(g)));
    }

    #[test]
    fn plaintext_reference_sums_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = GroupByQuery::bank_by_category();
        let mut pop = Population::synthetic(30, &q.domain, &mut rng).unwrap();
        let contribs = pop.contributions(&q).unwrap();
        let total: u64 = contribs.iter().map(|(_, _, v)| v).sum();
        let result = plaintext_groupby(&mut pop, &q).unwrap();
        let result_total: u64 = result.iter().map(|(_, v)| v).sum();
        assert_eq!(total, result_total);
        // Sorted unique groups.
        assert!(result.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn count_and_avg_decompose_correctly() {
        use crate::secure_agg::{secure_aggregation, OnTamper};
        use crate::ssi::Ssi;
        let mut rng = StdRng::seed_from_u64(9);
        let sum_q = GroupByQuery::bank_by_category();
        let count_q = GroupByQuery::bank_count_by_category();
        let mut pop = Population::synthetic(40, &sum_q.domain, &mut rng).unwrap();
        // COUNT through a real protocol equals the plaintext count.
        let expected_counts = plaintext_groupby(&mut pop, &count_q).unwrap();
        let ssi = Ssi::honest(1);
        let (counts, _) =
            secure_aggregation(&mut pop, &count_q, &ssi, 16, OnTamper::Abort, &mut rng).unwrap();
        assert_eq!(counts, expected_counts);
        // COUNT counts rows (each token ingested 1–3), not per-token
        // group contributions.
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        assert!(total as usize >= pop.len() && total as usize <= 3 * pop.len());
        // AVG = SUM/COUNT, exact on both inputs.
        let sums = plaintext_groupby(&mut pop, &sum_q).unwrap();
        let avgs = GroupByQuery::average_from(&sums, &counts);
        assert_eq!(avgs.len(), sums.len());
        for (g, a) in &avgs {
            let s = sums.iter().find(|(sg, _)| sg == g).unwrap().1 as f64;
            let c = counts.iter().find(|(cg, _)| cg == g).unwrap().1 as f64;
            assert!((a - s / c).abs() < 1e-9);
            assert!(*a >= 100.0 && *a < 10_000.0, "avg within the amount range");
        }
    }

    #[test]
    fn contribution_is_policy_gated() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = GroupByQuery::bank_by_category();
        let mut pop = Population::synthetic(3, &q.domain, &mut rng).unwrap();
        // One user opts out of statistics entirely.
        pop.tokens[1].grant(pds_core::Rule::deny_all(
            pds_core::Collection::Table("BANK".into()),
            pds_core::Action::Aggregate,
            Some(Purpose::Statistics),
        ));
        let err = pop.contributions(&q).unwrap_err();
        assert!(matches!(err, GlobalError::Pds(_)), "opt-out surfaces");
    }
}

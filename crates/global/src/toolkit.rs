//! The [CKV+02] toolkit: "Tools for privacy-preserving distributed data
//! mining".
//!
//! Part III presents the toolkit as the *specific-algorithm* route to
//! secure computation — cheap but not generic. Its four primitives, each
//! implemented here with the costs the E7 experiment reports:
//!
//! * **Secure sum** — ring protocol with a random mask: the initiator
//!   adds a random `R (mod m)`, each party adds its value, the initiator
//!   subtracts `R`. One message per party.
//! * **Secure set union** — commutative encryption
//!   ([`pds_crypto::commutative`]): every party's items are encrypted
//!   under *all* keys; equal items collide and deduplicate without ever
//!   being exposed; all layers are then peeled.
//! * **Secure set-intersection size** — same machinery, counting the
//!   fully-encrypted values present in every party's set (cardinality
//!   only, items never decrypted).
//! * **Secure scalar product** — Paillier-based: Alice sends
//!   `E(x_i)`, Bob returns `Π E(x_i)^{y_i} = E(Σ x_i·y_i)`.

use pds_crypto::{BigUint, CommutativeGroup, CommutativeKey, Paillier};
use pds_obs::rng::Rng;

/// Cost counters of one toolkit run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ToolkitStats {
    /// Point-to-point messages exchanged.
    pub messages: u64,
    /// Public-key / group-exponentiation operations.
    pub crypto_ops: u64,
}

/// Secure sum over a ring of parties: returns `Σ values mod modulus`
/// without any party seeing another's value.
///
/// The initiator masks with a uniform random `R`; every intermediate
/// party only ever sees a uniformly-distributed partial sum.
pub fn secure_sum(values: &[u64], modulus: u64, rng: &mut impl Rng) -> (u64, ToolkitStats) {
    assert!(!values.is_empty() && modulus > 0);
    let mut stats = ToolkitStats::default();
    let r = rng.gen_range(0..modulus);
    // Initiator starts the ring with value + R.
    let mut running = (r + values[0] % modulus) % modulus;
    stats.messages += 1;
    for &v in &values[1..] {
        running = (running + v % modulus) % modulus;
        stats.messages += 1; // pass to the next party
    }
    // Back at the initiator: remove the mask.
    let total = (running + modulus - r) % modulus;
    (total, stats)
}

/// Secure set union: each party holds a set of byte-string items; the
/// output is the deduplicated union, with no party learning who
/// contributed what.
pub fn secure_set_union(
    sets: &[Vec<Vec<u8>>],
    group: &CommutativeGroup,
    rng: &mut impl Rng,
) -> (Vec<BigUint>, ToolkitStats) {
    let mut stats = ToolkitStats::default();
    let keys: Vec<CommutativeKey> = sets
        .iter()
        .map(|_| CommutativeKey::random(group, rng))
        .collect();
    // Each party encrypts its own items once, then the batch circulates
    // through every other party for the remaining layers.
    let mut all: Vec<BigUint> = Vec::new();
    for (i, set) in sets.iter().enumerate() {
        let mut batch: Vec<BigUint> = set
            .iter()
            .map(|item| {
                stats.crypto_ops += 1;
                keys[i].encrypt_value(item)
            })
            .collect();
        for (j, key) in keys.iter().enumerate() {
            if j == i {
                continue;
            }
            stats.messages += 1;
            for x in &mut batch {
                stats.crypto_ops += 1;
                *x = key.encrypt(x);
            }
        }
        stats.messages += 1; // hand the fully-encrypted batch to the combiner
        all.extend(batch);
    }
    // Fully-encrypted equal items are identical: dedupe blindly.
    all.sort();
    all.dedup();
    (all, stats)
}

/// Decrypt a union result back to group elements (run jointly by all key
/// holders — provided for tests to confirm the cardinality maps back to
/// the true union).
pub fn peel_union(encrypted: &[BigUint], keys: &[&CommutativeKey]) -> Vec<BigUint> {
    let mut out: Vec<BigUint> = encrypted.to_vec();
    for key in keys {
        for x in &mut out {
            *x = key.decrypt(x);
        }
    }
    out.sort();
    out
}

/// Secure set-intersection **size**: how many items appear in *every*
/// party's set — without revealing the items.
pub fn secure_intersection_size(
    sets: &[Vec<Vec<u8>>],
    group: &CommutativeGroup,
    rng: &mut impl Rng,
) -> (usize, ToolkitStats) {
    let mut stats = ToolkitStats::default();
    let keys: Vec<CommutativeKey> = sets
        .iter()
        .map(|_| CommutativeKey::random(group, rng))
        .collect();
    // Fully encrypt every set under all keys.
    let mut encrypted_sets: Vec<Vec<BigUint>> = Vec::with_capacity(sets.len());
    for (i, set) in sets.iter().enumerate() {
        let mut batch: Vec<BigUint> = set
            .iter()
            .map(|item| {
                stats.crypto_ops += 1;
                keys[i].encrypt_value(item)
            })
            .collect();
        for (j, key) in keys.iter().enumerate() {
            if j == i {
                continue;
            }
            stats.messages += 1;
            for x in &mut batch {
                stats.crypto_ops += 1;
                *x = key.encrypt(x);
            }
        }
        batch.sort();
        batch.dedup();
        encrypted_sets.push(batch);
    }
    // Count values present everywhere.
    let (first, rest) = encrypted_sets.split_first().expect("non-empty");
    let size = first
        .iter()
        .filter(|x| rest.iter().all(|s| s.binary_search(x).is_ok()))
        .count();
    (size, stats)
}

/// Secure scalar product `Σ xᵢ·yᵢ` between two parties via Paillier:
/// Alice learns the product, Bob learns nothing about `x`, Alice learns
/// nothing about `y` beyond the product.
pub fn secure_scalar_product(
    x: &[u64],
    y: &[u64],
    modulus_bits: usize,
    rng: &mut impl Rng,
) -> (u64, ToolkitStats) {
    assert_eq!(x.len(), y.len());
    let mut stats = ToolkitStats::default();
    let (pk, sk) = Paillier::keygen(modulus_bits, rng);
    // Alice → Bob: E(x_i).
    let cts: Vec<_> = x
        .iter()
        .map(|&v| {
            stats.crypto_ops += 1;
            pk.encrypt_u64(v, rng)
        })
        .collect();
    stats.messages += 1;
    // Bob: Π E(x_i)^{y_i} = E(Σ x_i y_i).
    let mut acc = pk.neutral();
    for (ct, &w) in cts.iter().zip(y) {
        stats.crypto_ops += 1;
        let term = pk.scalar_mul(ct, &BigUint::from_u64(w));
        acc = pk.add(&acc, &term);
    }
    stats.messages += 1; // Bob → Alice: the blinded product.
    (sk.decrypt_u64(&acc), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    #[test]
    fn secure_sum_is_exact_mod_m() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let n = rng.gen_range(2..20);
            let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let m = 1_000_003;
            let (sum, stats) = secure_sum(&values, m, &mut rng);
            assert_eq!(sum, values.iter().sum::<u64>() % m);
            assert_eq!(stats.messages, values.len() as u64);
        }
    }

    #[test]
    fn union_cardinality_and_content() {
        let mut rng = StdRng::seed_from_u64(2);
        let group = CommutativeGroup::test_params();
        let sets = vec![
            vec![b"flu".to_vec(), b"cold".to_vec()],
            vec![b"cold".to_vec(), b"asthma".to_vec()],
            vec![b"flu".to_vec()],
        ];
        let (union, _) = secure_set_union(&sets, &group, &mut rng);
        assert_eq!(union.len(), 3, "flu, cold, asthma");
        // Joint decryption maps back to the hashed plaintext union.
        let keys: Vec<CommutativeKey> = sets
            .iter()
            .map(|_| CommutativeKey::random(&group, &mut rng))
            .collect();
        let _ = keys; // (peel tested through intersection flow below)
        let mut expected: Vec<BigUint> = ["flu", "cold", "asthma"]
            .iter()
            .map(|s| group.hash_to_group(s.as_bytes()))
            .collect();
        expected.sort();
        // Re-run union with known keys to peel.
        let keys: Vec<CommutativeKey> = (0..3)
            .map(|_| CommutativeKey::random(&group, &mut rng))
            .collect();
        let mut all = Vec::new();
        for (i, set) in sets.iter().enumerate() {
            for item in set {
                let mut x = keys[i].encrypt_value(item);
                for (j, k) in keys.iter().enumerate() {
                    if j != i {
                        x = k.encrypt(&x);
                    }
                }
                all.push(x);
            }
        }
        all.sort();
        all.dedup();
        let peeled = peel_union(&all, &keys.iter().collect::<Vec<_>>());
        assert_eq!(peeled, expected);
    }

    #[test]
    fn intersection_size_counts_common_items_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let group = CommutativeGroup::test_params();
        let sets = vec![
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()],
            vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()],
            vec![b"c".to_vec(), b"b".to_vec(), b"x".to_vec()],
        ];
        let (size, stats) = secure_intersection_size(&sets, &group, &mut rng);
        assert_eq!(size, 2, "b and c");
        assert!(stats.crypto_ops >= 9 * 3, "every item gets every layer");
    }

    #[test]
    fn disjoint_sets_intersect_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        let group = CommutativeGroup::test_params();
        let sets = vec![vec![b"a".to_vec()], vec![b"b".to_vec()]];
        let (size, _) = secure_intersection_size(&sets, &group, &mut rng);
        assert_eq!(size, 0);
    }

    #[test]
    fn scalar_product_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = [3u64, 0, 7, 2];
        let y = [10u64, 99, 1, 5];
        let (p, stats) = secure_scalar_product(&x, &y, 256, &mut rng);
        assert_eq!(p, 30 + 7 + 10);
        assert_eq!(stats.messages, 2);
    }
}

//! # pds-global — secure global computation on the asymmetric architecture
//!
//! Part III of the EDBT'14 tutorial: "how to perform global computations
//! using data from many/all PDSs?" The architecture is *asymmetric*: a
//! large population of low-powered, highly-disconnected trusted tokens on
//! one side, and an untrusted but available **Supporting Server
//! Infrastructure (SSI)** on the other. "We have not one, but many
//! elements of trust … data is located within the elements of trust."
//!
//! This crate implements the whole Part III programme:
//!
//! * [`query`] — the `SELECT group, SUM(measure) … GROUP BY` query class
//!   of [TNP14\], a synthetic token [`query::Population`], and the
//!   plaintext reference executor every protocol is checked against.
//! * [`ssi`] — the SSI with both threat models of the tutorial's slide:
//!   *honest-but-curious* (records everything it can observe — the
//!   leakage the experiments measure) and *weakly malicious* (a covert
//!   adversary that drops/forges tuples but "does not want to be
//!   detected").
//! * [`secure_agg`] — the **secure aggregation** solution (probabilistic
//!   encryption; the SSI moves opaque blobs between tokens through a
//!   reduction tree and learns only cardinalities).
//! * [`noise`] — the **noise-based** solutions (deterministic encryption
//!   of the grouping key + fake tuples): *random white noise* and *noise
//!   controlled by the complementary domain*.
//! * [`histogram`] — the **histogram-based** solution (Hacigumus-style
//!   domain bucketization revealed in clear, exact groups recovered
//!   inside tokens).
//! * [`toolkit`] — the [CKV+02] privacy-preserving data-mining toolkit:
//!   secure sum, secure set union, secure set-intersection size, secure
//!   scalar product.
//! * [`detection`] — the security primitives against a weakly malicious
//!   SSI: MAC-authenticated tuples and probabilistic spot-checking, with
//!   the detection-probability model of experiment E9.
//! * [`ppdp`] — privacy-preserving data publishing (MetaP): k-anonymity
//!   by Mondrian-style generalization executed by tokens, with
//!   information-loss metrics and an l-diversity check.

pub mod authz;
pub mod detection;
pub mod error;
pub mod histogram;
pub mod noise;
pub mod ppdp;
pub mod query;
pub mod secure_agg;
pub mod ssi;
pub mod stats;
pub mod toolkit;
pub mod tuple;

pub use error::GlobalError;
pub use query::{plaintext_groupby, GroupByQuery, Population};
pub use ssi::{Leakage, Ssi, SsiThreat};
pub use stats::ProtocolStats;

//! Cost accounting shared by the protocol implementations.

/// Work and traffic of one protocol run — the columns of the E6 table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Tuples decrypted/processed inside tokens (the scarce resource:
    /// tokens are "low powered, highly disconnected").
    pub token_tuples: u64,
    /// Symmetric crypto operations performed by tokens.
    pub token_crypto_ops: u64,
    /// Ciphertext bytes that transited through the SSI.
    pub ssi_bytes: u64,
    /// Sequential token rounds (the latency driver: each round needs a
    /// connected token).
    pub rounds: u32,
    /// Fake tuples generated (noise protocols).
    pub fake_tuples: u64,
}

impl ProtocolStats {
    /// Mirror one finished run into the process-wide `global.*` metrics
    /// and record a per-run event, so protocol traffic shows up in the
    /// same registry export as flash I/O and RAM accounting.
    pub fn publish(&self, protocol: &str) {
        pds_obs::counter("global.protocol_runs").inc();
        pds_obs::counter("global.token_tuples").add(self.token_tuples);
        pds_obs::counter("global.token_crypto_ops").add(self.token_crypto_ops);
        pds_obs::counter("global.ssi_bytes").add(self.ssi_bytes);
        pds_obs::counter("global.rounds").add(u64::from(self.rounds));
        pds_obs::counter("global.fake_tuples").add(self.fake_tuples);
        pds_obs::histogram("global.ssi_bytes_per_round").observe(if self.rounds == 0 {
            self.ssi_bytes
        } else {
            self.ssi_bytes / u64::from(self.rounds)
        });
        pds_obs::event(
            &format!("global.protocol_run.{protocol}"),
            &[
                ("rounds", u64::from(self.rounds)),
                ("ssi_bytes", self.ssi_bytes),
                ("token_tuples", self.token_tuples),
                ("token_crypto_ops", self.token_crypto_ops),
                ("fake_tuples", self.fake_tuples),
            ],
        );
    }

    /// Attach this run's traffic to a tracing span as `global.*` attrs.
    pub fn attach_to_span(&self, span: &pds_obs::SpanGuard) {
        span.set("global.rounds", u64::from(self.rounds));
        span.set("global.ssi_bytes", self.ssi_bytes);
        span.set("global.token_tuples", self.token_tuples);
        span.set("global.token_crypto_ops", self.token_crypto_ops);
        span.set("global.fake_tuples", self.fake_tuples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = ProtocolStats::default();
        assert_eq!(s.token_tuples + s.token_crypto_ops + s.ssi_bytes, 0);
        assert_eq!(s.rounds, 0);
    }
}

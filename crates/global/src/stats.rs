//! Cost accounting shared by the protocol implementations.

/// Work and traffic of one protocol run — the columns of the E6 table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Tuples decrypted/processed inside tokens (the scarce resource:
    /// tokens are "low powered, highly disconnected").
    pub token_tuples: u64,
    /// Symmetric crypto operations performed by tokens.
    pub token_crypto_ops: u64,
    /// Ciphertext bytes that transited through the SSI.
    pub ssi_bytes: u64,
    /// Sequential token rounds (the latency driver: each round needs a
    /// connected token).
    pub rounds: u32,
    /// Fake tuples generated (noise protocols).
    pub fake_tuples: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = ProtocolStats::default();
        assert_eq!(s.token_tuples + s.token_crypto_ops + s.ssi_bytes, 0);
        assert_eq!(s.rounds, 0);
    }
}

//! Query authorization: only accredited issuers may run global queries.
//!
//! Part I's "distributed secure sharing" requirement applies to Part III
//! too: before a token contributes to a global computation it demands a
//! **proof of legitimacy** from the query issuer — a
//! [`pds_core::Credential`] binding the issuer to the
//! `StatisticsInstitute` role, verified inside every token against the
//! provisioned issuer key. An expired, forged or mis-roled credential
//! stops the query *before any data leaves any token*.

use pds_core::{Credential, Role, VerificationKey};
use pds_obs::rng::Rng;

use crate::error::GlobalError;
use crate::query::{GroupByQuery, Population};
use crate::secure_agg::{secure_aggregation, OnTamper};
use crate::ssi::Ssi;
use crate::stats::ProtocolStats;

/// Per-token verification of the issuer's legitimacy. In deployment each
/// token runs this check on connection; the simulation runs it once per
/// token up front, which is observationally identical for a shared
/// verification key.
pub fn tokens_accept_issuer(
    population: &Population,
    vk: &VerificationKey,
    issuer: &Credential,
    today: u64,
) -> bool {
    if issuer.role != Role::StatisticsInstitute {
        return false;
    }
    // Every enrolled token performs the same MAC verification.
    (0..population.len()).all(|_| vk.verify(issuer, today))
}

/// Run a secure aggregation only if the issuer proves legitimacy to the
/// token population.
#[allow(clippy::too_many_arguments)] // protocol + authorization context
pub fn authorized_secure_aggregation(
    vk: &VerificationKey,
    issuer: &Credential,
    today: u64,
    population: &mut Population,
    query: &GroupByQuery,
    ssi: &Ssi,
    partition_size: usize,
    rng: &mut impl Rng,
) -> Result<(Vec<(String, u64)>, ProtocolStats), GlobalError> {
    if !tokens_accept_issuer(population, vk, issuer, today) {
        return Err(GlobalError::Unauthorized(
            "issuer credential rejected by the token population",
        ));
    }
    secure_aggregation(population, query, ssi, partition_size, OnTamper::Abort, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::Issuer;
    use pds_mcu::TokenId;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup() -> (Population, GroupByQuery, StdRng, Issuer, VerificationKey) {
        let mut rng = StdRng::seed_from_u64(1);
        let q = GroupByQuery::bank_by_category();
        let pop = Population::synthetic(20, &q.domain, &mut rng).unwrap();
        let authority = Issuer::new(b"statistics-accreditation-board");
        let vk = authority.verification_key();
        (pop, q, rng, authority, vk)
    }

    #[test]
    fn accredited_institute_runs_the_query() {
        let (mut pop, q, mut rng, authority, vk) = setup();
        let cred = authority.issue(TokenId(1000), "insee", Role::StatisticsInstitute, 365);
        let ssi = Ssi::honest(1);
        let (result, _) =
            authorized_secure_aggregation(&vk, &cred, 100, &mut pop, &q, &ssi, 16, &mut rng)
                .unwrap();
        assert!(!result.is_empty());
    }

    #[test]
    fn wrong_role_is_refused_before_any_data_moves() {
        let (mut pop, q, mut rng, authority, vk) = setup();
        let cred = authority.issue(TokenId(1000), "dr.curious", Role::Practitioner, 365);
        let ssi = Ssi::honest(2);
        let err = authorized_secure_aggregation(&vk, &cred, 100, &mut pop, &q, &ssi, 16, &mut rng)
            .unwrap_err();
        assert!(matches!(err, GlobalError::Unauthorized(_)));
        assert_eq!(ssi.leakage().tuples_seen, 0, "nothing left the tokens");
    }

    #[test]
    fn expired_or_forged_credentials_are_refused() {
        let (mut pop, q, mut rng, authority, vk) = setup();
        let expired = authority.issue(TokenId(1000), "insee", Role::StatisticsInstitute, 50);
        let ssi = Ssi::honest(3);
        assert!(authorized_secure_aggregation(
            &vk, &expired, 100, &mut pop, &q, &ssi, 16, &mut rng
        )
        .is_err());

        let rogue = Issuer::new(b"rogue");
        let forged = rogue.issue(TokenId(1000), "insee", Role::StatisticsInstitute, 365);
        assert!(
            authorized_secure_aggregation(&vk, &forged, 100, &mut pop, &q, &ssi, 16, &mut rng)
                .is_err()
        );
    }
}

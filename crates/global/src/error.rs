//! Error type of the global-computation layer.

use pds_core::PdsError;
use std::fmt;

/// Failures of a global protocol run.
#[derive(Debug)]
pub enum GlobalError {
    /// A participating PDS failed (or its policy refused to contribute).
    Pds(PdsError),
    /// A token detected tampering (invalid authentication, forged tuple,
    /// failed spot check) — the protocol aborts loudly, which is the
    /// deterrent against the covert adversary.
    TamperingDetected(&'static str),
    /// Structural protocol failure.
    Protocol(&'static str),
    /// The query issuer failed the legitimacy check — no token
    /// contributes anything.
    Unauthorized(&'static str),
}

impl From<PdsError> for GlobalError {
    fn from(e: PdsError) -> Self {
        GlobalError::Pds(e)
    }
}

impl fmt::Display for GlobalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalError::Pds(e) => write!(f, "participant: {e}"),
            GlobalError::TamperingDetected(w) => write!(f, "tampering detected: {w}"),
            GlobalError::Protocol(w) => write!(f, "protocol failure: {w}"),
            GlobalError::Unauthorized(w) => write!(f, "unauthorized query: {w}"),
        }
    }
}

impl std::error::Error for GlobalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(GlobalError::TamperingDetected("forged tuple")
            .to_string()
            .contains("forged"));
    }
}

//! Privacy-preserving data publishing on the asymmetric architecture.
//!
//! "PDS must allow users to anonymously participate in global
//! treatments" (Part I), implemented in Part III as MetaP [ANP13\]:
//! tokens contribute encrypted records to the SSI; a trusted token pool
//! decrypts them *inside the secure boundary*, computes a k-anonymous
//! generalization, and only the generalized release ever leaves. The SSI
//! stores ciphertexts and learns nothing; the recipient of the release
//! gets k-anonymity (and optionally l-diversity) guarantees.
//!
//! The generalization algorithm is Mondrian (greedy median
//! multidimensional partitioning) over the quasi-identifiers `(age,
//! zip)`; the sensitive attribute is the diagnosis. Experiment E10
//! reports the information-loss metrics (discernibility penalty, average
//! class-size ratio `C_avg`) as `k` grows.

use pds_crypto::SymmetricKey;
use pds_obs::rng::Rng;

use crate::error::GlobalError;

/// One microdata record: quasi-identifiers + sensitive attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PpdpRecord {
    /// Quasi-identifier: age in years.
    pub age: u32,
    /// Quasi-identifier: zip code.
    pub zip: u32,
    /// Sensitive attribute.
    pub diagnosis: String,
}

impl PpdpRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.diagnosis.len());
        out.extend_from_slice(&self.age.to_le_bytes());
        out.extend_from_slice(&self.zip.to_le_bytes());
        out.extend_from_slice(self.diagnosis.as_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<PpdpRecord> {
        if bytes.len() < 8 {
            return None;
        }
        Some(PpdpRecord {
            age: u32::from_le_bytes(bytes[0..4].try_into().ok()?),
            zip: u32::from_le_bytes(bytes[4..8].try_into().ok()?),
            diagnosis: std::str::from_utf8(&bytes[8..]).ok()?.to_string(),
        })
    }
}

/// One equivalence class of the anonymized release: generalized
/// quasi-identifier ranges + the (unlinkable) sensitive values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnonClass {
    /// Generalized age interval (inclusive).
    pub age_range: (u32, u32),
    /// Generalized zip interval (inclusive).
    pub zip_range: (u32, u32),
    /// The sensitive values of the class (order scrambled by sorting).
    pub diagnoses: Vec<String>,
}

impl AnonClass {
    /// Class cardinality.
    pub fn len(&self) -> usize {
        self.diagnoses.len()
    }

    /// True when empty (never produced by the algorithm).
    pub fn is_empty(&self) -> bool {
        self.diagnoses.is_empty()
    }

    /// Number of distinct sensitive values (the `l` of l-diversity).
    pub fn distinct_sensitive(&self) -> usize {
        let mut d = self.diagnoses.clone();
        d.sort();
        d.dedup();
        d.len()
    }
}

/// Mondrian k-anonymization: greedy median splits on the widest
/// (normalized) quasi-identifier dimension while both halves keep ≥ k
/// records.
pub fn mondrian(records: &[PpdpRecord], k: usize) -> Vec<AnonClass> {
    assert!(k >= 1);
    if records.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut work: Vec<Vec<PpdpRecord>> = vec![records.to_vec()];
    // Normalization spans of the full dataset.
    let age_span = span(records.iter().map(|r| r.age)).max(1);
    let zip_span = span(records.iter().map(|r| r.zip)).max(1);
    while let Some(mut part) = work.pop() {
        let a = span(part.iter().map(|r| r.age)) as f64 / age_span as f64;
        let z = span(part.iter().map(|r| r.zip)) as f64 / zip_span as f64;
        let split_on_age = a >= z;
        // Try the median split on the wider dimension, then the other.
        let split = try_split(&mut part, split_on_age, k)
            .or_else(|| try_split(&mut part, !split_on_age, k));
        match split {
            Some((left, right)) => {
                work.push(left);
                work.push(right);
            }
            None => out.push(finalize(part)),
        }
    }
    out
}

fn span(vals: impl Iterator<Item = u32>) -> u32 {
    let (mut lo, mut hi) = (u32::MAX, 0u32);
    for v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    hi.saturating_sub(lo)
}

fn try_split(
    part: &mut [PpdpRecord],
    on_age: bool,
    k: usize,
) -> Option<(Vec<PpdpRecord>, Vec<PpdpRecord>)> {
    if part.len() < 2 * k {
        return None;
    }
    if on_age {
        part.sort_by_key(|r| r.age);
    } else {
        part.sort_by_key(|r| r.zip);
    }
    let mid = part.len() / 2;
    // Move the cut to a value boundary so equal QI values stay together.
    let keyf = |r: &PpdpRecord| if on_age { r.age } else { r.zip };
    let cut_val = keyf(&part[mid]);
    let cut = part.iter().position(|r| keyf(r) == cut_val).unwrap();
    let cut = if cut >= k { cut } else { mid };
    if cut < k || part.len() - cut < k {
        return None;
    }
    // A strict boundary must hold: left values < right values on the cut
    // dimension (otherwise the "generalization" would overlap).
    if keyf(&part[cut - 1]) == keyf(&part[cut]) {
        return None;
    }
    let right = part[cut..].to_vec();
    let left = part[..cut].to_vec();
    Some((left, right))
}

fn finalize(part: Vec<PpdpRecord>) -> AnonClass {
    let age_lo = part.iter().map(|r| r.age).min().unwrap();
    let age_hi = part.iter().map(|r| r.age).max().unwrap();
    let zip_lo = part.iter().map(|r| r.zip).min().unwrap();
    let zip_hi = part.iter().map(|r| r.zip).max().unwrap();
    let mut diagnoses: Vec<String> = part.into_iter().map(|r| r.diagnosis).collect();
    diagnoses.sort(); // scrambles within-class order
    AnonClass {
        age_range: (age_lo, age_hi),
        zip_range: (zip_lo, zip_hi),
        diagnoses,
    }
}

/// Information-loss metrics of a release.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfoLoss {
    /// Discernibility penalty `Σ |class|²` (lower is better).
    pub discernibility: u64,
    /// `C_avg = (N / #classes) / k` — 1.0 is the optimum.
    pub avg_class_ratio: f64,
    /// Smallest class (must be ≥ k).
    pub min_class: usize,
    /// Minimum distinct sensitive values over classes (the achieved `l`).
    pub min_l: usize,
}

/// Compute the metrics of a release produced for parameter `k`.
pub fn info_loss(classes: &[AnonClass], k: usize) -> InfoLoss {
    let n: usize = classes.iter().map(AnonClass::len).sum();
    InfoLoss {
        discernibility: classes.iter().map(|c| (c.len() * c.len()) as u64).sum(),
        avg_class_ratio: if classes.is_empty() {
            0.0
        } else {
            (n as f64 / classes.len() as f64) / k as f64
        },
        min_class: classes.iter().map(AnonClass::len).min().unwrap_or(0),
        min_l: classes
            .iter()
            .map(AnonClass::distinct_sensitive)
            .min()
            .unwrap_or(0),
    }
}

/// The MetaP flow: the SSI holds probabilistically encrypted records; a
/// token decrypts inside the secure boundary, anonymizes, and releases
/// only the generalized classes.
pub fn publish_anonymized(
    encrypted_records: &[Vec<u8>],
    key: &SymmetricKey,
    k: usize,
) -> Result<Vec<AnonClass>, GlobalError> {
    let mut records = Vec::with_capacity(encrypted_records.len());
    for ct in encrypted_records {
        let plain = key
            .decrypt(&pds_crypto::Ciphertext(ct.clone()))
            .ok_or(GlobalError::TamperingDetected("unauthentic PPDP record"))?;
        records
            .push(PpdpRecord::decode(&plain).ok_or(GlobalError::Protocol("undecodable record"))?);
    }
    Ok(mondrian(&records, k))
}

/// Encrypt records for collection (what each contributing token does).
pub fn encrypt_records(
    records: &[PpdpRecord],
    key: &SymmetricKey,
    rng: &mut impl Rng,
) -> Vec<Vec<u8>> {
    records
        .iter()
        .map(|r| key.encrypt_prob(&r.encode(), rng).0)
        .collect()
}

/// Synthetic EHR microdata for the E10 experiment.
pub fn synthetic_records(n: usize, rng: &mut impl Rng) -> Vec<PpdpRecord> {
    let diagnoses = [
        "flu",
        "hypertension",
        "diabetes",
        "asthma",
        "migraine",
        "allergy",
    ];
    (0..n)
        .map(|_| PpdpRecord {
            age: rng.gen_range(18..95),
            zip: 75_000 + rng.gen_range(0..200u32),
            diagnosis: diagnoses[rng.gen_range(0..diagnoses.len())].to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    #[test]
    fn every_class_has_at_least_k_records() {
        let mut rng = StdRng::seed_from_u64(1);
        let records = synthetic_records(500, &mut rng);
        for k in [2usize, 5, 10, 25] {
            let classes = mondrian(&records, k);
            let loss = info_loss(&classes, k);
            assert!(loss.min_class >= k, "k={k}: min class {}", loss.min_class);
            let total: usize = classes.iter().map(AnonClass::len).sum();
            assert_eq!(total, 500, "no record lost");
        }
    }

    #[test]
    fn information_loss_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(2);
        let records = synthetic_records(400, &mut rng);
        let d2 = info_loss(&mondrian(&records, 2), 2).discernibility;
        let d20 = info_loss(&mondrian(&records, 20), 20).discernibility;
        assert!(d20 > d2, "larger k ⇒ larger classes ⇒ more penalty");
    }

    #[test]
    fn class_ranges_cover_their_records() {
        let mut rng = StdRng::seed_from_u64(3);
        let records = synthetic_records(120, &mut rng);
        let classes = mondrian(&records, 5);
        for c in &classes {
            assert!(c.age_range.0 <= c.age_range.1);
            assert!(c.zip_range.0 <= c.zip_range.1);
            assert!(!c.is_empty());
        }
        // Classes partition on non-overlapping QI regions is not
        // guaranteed by Mondrian with boundary adjustment, but coverage
        // and cardinality are — which is what k-anonymity needs.
    }

    #[test]
    fn k_larger_than_n_yields_one_class() {
        let mut rng = StdRng::seed_from_u64(4);
        let records = synthetic_records(30, &mut rng);
        let classes = mondrian(&records, 100);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 30);
    }

    #[test]
    fn metap_flow_round_trips_through_encryption() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = SymmetricKey::from_seed(b"metap");
        let records = synthetic_records(200, &mut rng);
        let encrypted = encrypt_records(&records, &key, &mut rng);
        // The SSI sees only ciphertexts; the release is computed in-token.
        let classes = publish_anonymized(&encrypted, &key, 10).unwrap();
        let loss = info_loss(&classes, 10);
        assert!(loss.min_class >= 10);
        // Tampered ciphertext aborts.
        let mut bad = encrypted.clone();
        bad[0][5] ^= 1;
        assert!(matches!(
            publish_anonymized(&bad, &key, 10),
            Err(GlobalError::TamperingDetected(_))
        ));
    }

    #[test]
    fn l_diversity_is_measured() {
        let classes = vec![
            AnonClass {
                age_range: (20, 30),
                zip_range: (75_000, 75_010),
                diagnoses: vec!["flu".into(), "flu".into(), "asthma".into()],
            },
            AnonClass {
                age_range: (31, 40),
                zip_range: (75_000, 75_010),
                diagnoses: vec!["flu".into(), "flu".into()],
            },
        ];
        let loss = info_loss(&classes, 2);
        assert_eq!(loss.min_l, 1, "second class has a single diagnosis");
    }

    #[test]
    fn empty_input() {
        assert!(mondrian(&[], 5).is_empty());
        let loss = info_loss(&[], 5);
        assert_eq!(loss.discernibility, 0);
    }
}

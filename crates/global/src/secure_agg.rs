//! The secure aggregation protocol (non-deterministic encryption).
//!
//! [TNP14\]'s first solution: contributions are encrypted
//! **probabilistically**, so the SSI sees only opaque, unlinkable blobs.
//! Its whole role is to *partition* the ciphertext set and route each
//! partition to some connected token; the token decrypts, partially
//! aggregates per group, re-encrypts the partial sums, and hands them
//! back. Partitions shrink the tuple set geometrically, so the run is a
//! reduction tree of depth `log_partition_size(N)`; the final token
//! releases only the authorized aggregate.
//!
//! Security: the SSI learns cardinalities and byte counts — nothing else
//! (verified by the leakage tests and reported in E6). Forged or
//! tampered ciphertexts fail authenticated decryption inside tokens and
//! abort the run with [`GlobalError::TamperingDetected`].

use std::collections::BTreeMap;

use pds_obs::rng::Rng;

use crate::error::GlobalError;
use crate::query::{GroupByQuery, Population};
use crate::ssi::Ssi;
use crate::stats::ProtocolStats;
use crate::tuple::{ProtocolTuple, TupleKind};

/// Tolerance policy for unauthentic ciphertexts during aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnTamper {
    /// Abort the run loudly (the deterrent the tutorial requires).
    Abort,
    /// Skip silently (used by experiments that measure the *damage* a
    /// covert adversary can do when tokens don't check).
    Skip,
}

/// Run the secure aggregation protocol.
///
/// `partition_size` is the number of tuples a single token can absorb in
/// one connection (bounded by its RAM/bandwidth).
pub fn secure_aggregation(
    population: &mut Population,
    query: &GroupByQuery,
    ssi: &Ssi,
    partition_size: usize,
    on_tamper: OnTamper,
    rng: &mut impl Rng,
) -> Result<(Vec<(String, u64)>, ProtocolStats), GlobalError> {
    assert!(partition_size >= 2);
    let key = population.protocol_key.clone();
    let mut stats = ProtocolStats::default();

    // Collection phase: every PDS encrypts its contributions.
    let mut seq = 0u64;
    let mut wire: Vec<Vec<u8>> = Vec::new();
    for (_, g, v) in population.contributions(query)? {
        let t = ProtocolTuple::real(&g, v, seq);
        seq += 1;
        let ct = key.encrypt_prob(&t.encode(), rng);
        stats.token_crypto_ops += 1;
        wire.push(ct.0);
    }
    let mut tuples = ssi.collect(wire);
    stats.ssi_bytes += tuples.iter().map(|t| t.len() as u64).sum::<u64>();

    // Reduction tree: tokens aggregate partitions until one remains.
    //
    // Convergence guard: a partition of p tuples re-emits up to
    // min(p, |groups|) partials, so a partition size at or below the
    // group count can fail to shrink the tuple set. When a round makes
    // no progress the SSI doubles the partition size — tuples are opaque,
    // so this adaptation needs no knowledge of the data.
    let mut partition_size = partition_size;
    let mut next_token = 0usize;
    loop {
        let before_round = tuples.len();
        let partitions = ssi.partition(std::mem::take(&mut tuples), partition_size);
        let last_round = partitions.len() <= 1;
        for part in partitions {
            // Any enrolled token can serve; round-robin models "whichever
            // token happens to connect".
            next_token = (next_token + 1) % population.len().max(1);
            stats.rounds += 1;
            let mut groups: BTreeMap<String, u64> = BTreeMap::new();
            for ct in part {
                stats.token_tuples += 1;
                stats.token_crypto_ops += 1;
                let Some(plain) = key.decrypt(&pds_crypto::Ciphertext(ct)) else {
                    match on_tamper {
                        OnTamper::Abort => {
                            return Err(GlobalError::TamperingDetected(
                                "unauthentic ciphertext in partition",
                            ))
                        }
                        OnTamper::Skip => continue,
                    }
                };
                let t = ProtocolTuple::decode(&plain)
                    .ok_or(GlobalError::Protocol("undecodable tuple"))?;
                if t.kind == TupleKind::Real {
                    *groups.entry(t.group).or_insert(0) += t.value;
                }
            }
            if last_round {
                // The final token releases the authorized result.
                stats.publish("secure_aggregation");
                return Ok((groups.into_iter().collect(), stats));
            }
            // Re-encrypt partial aggregates back to the SSI.
            for (g, v) in groups {
                let t = ProtocolTuple::real(&g, v, seq);
                seq += 1;
                let ct = key.encrypt_prob(&t.encode(), rng);
                stats.token_crypto_ops += 1;
                stats.ssi_bytes += ct.0.len() as u64;
                tuples.push(ct.0);
            }
        }
        if tuples.is_empty() {
            // Population contributed nothing at all.
            stats.publish("secure_aggregation");
            return Ok((Vec::new(), stats));
        }
        if tuples.len() >= before_round {
            partition_size *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::plaintext_groupby;
    use crate::ssi::SsiThreat;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup(n: usize, seed: u64) -> (Population, GroupByQuery, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = GroupByQuery::bank_by_category();
        let pop = Population::synthetic(n, &q.domain, &mut rng).unwrap();
        (pop, q, rng)
    }

    #[test]
    fn result_matches_plaintext_reference() {
        let (mut pop, q, mut rng) = setup(40, 1);
        let expected = plaintext_groupby(&mut pop, &q).unwrap();
        let ssi = Ssi::honest(7);
        let (result, stats) =
            secure_aggregation(&mut pop, &q, &ssi, 8, OnTamper::Abort, &mut rng).unwrap();
        assert_eq!(result, expected);
        assert!(stats.rounds >= 2, "reduction tree has depth");
        assert!(stats.token_tuples > 0);
    }

    #[test]
    fn ssi_learns_no_equality_classes() {
        let (mut pop, q, mut rng) = setup(25, 2);
        let ssi = Ssi::honest(8);
        secure_aggregation(&mut pop, &q, &ssi, 8, OnTamper::Abort, &mut rng).unwrap();
        assert!(
            ssi.leakage().equality_class_sizes.is_empty(),
            "probabilistic encryption leaks no grouping information"
        );
        assert!(ssi.leakage().tuples_seen > 0);
    }

    #[test]
    fn forged_ciphertexts_abort_loudly() {
        let (mut pop, q, mut rng) = setup(20, 3);
        let ssi = Ssi::new(
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.0,
                forge_rate: 0.2,
            },
            9,
        );
        let err = secure_aggregation(&mut pop, &q, &ssi, 8, OnTamper::Abort, &mut rng).unwrap_err();
        assert!(matches!(err, GlobalError::TamperingDetected(_)));
    }

    #[test]
    fn silent_drops_corrupt_the_result_when_unchecked() {
        // The motivation for the detection primitives: without checks a
        // covert adversary biases the statistics undetected.
        let (mut pop, q, mut rng) = setup(60, 4);
        let expected = plaintext_groupby(&mut pop, &q).unwrap();
        let ssi = Ssi::new(
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.5,
                forge_rate: 0.0,
            },
            10,
        );
        let (result, _) =
            secure_aggregation(&mut pop, &q, &ssi, 8, OnTamper::Skip, &mut rng).unwrap();
        let sum = |r: &[(String, u64)]| r.iter().map(|(_, v)| *v).sum::<u64>();
        assert!(
            sum(&result) < sum(&expected),
            "half the contributions silently vanished"
        );
    }

    #[test]
    fn single_partition_degenerates_to_one_round() {
        let (mut pop, q, mut rng) = setup(5, 5);
        let expected = plaintext_groupby(&mut pop, &q).unwrap();
        let ssi = Ssi::honest(11);
        let (result, stats) =
            secure_aggregation(&mut pop, &q, &ssi, 1000, OnTamper::Abort, &mut rng).unwrap();
        assert_eq!(result, expected);
        assert_eq!(stats.rounds, 1);
    }
}

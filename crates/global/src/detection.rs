//! Security primitives against the weakly malicious SSI.
//!
//! "Weakly-Malicious (covert adversary = does not want to be detected) →
//! must be prevented! (via security primitives) see [ANP13\]." Two
//! mechanisms, composed:
//!
//! 1. **MAC-authenticated tuples** — the SSI cannot *forge or alter*
//!    tuples: authenticated decryption fails inside the first token that
//!    touches a forgery (probability 1 detection for alterations that
//!    reach a token).
//! 2. **Probabilistic spot-checking** — the SSI can still *drop* tuples.
//!    Contributions carry dense sequence numbers; a verifying token
//!    samples a fraction `s` of the expected sequence range and demands
//!    the matching tuples. Dropping a fraction `f` of N tuples escapes
//!    detection only if no dropped tuple is sampled:
//!    `P[detect] = 1 − (1−s)^{fN}` — overwhelming even for small `s`,
//!    which is the *deterrent*: a covert adversary that "does not want
//!    to be detected" simply stops cheating.
//!
//! Experiment E9 sweeps `(f, s)` and compares measured detection to the
//! analytic curve.

use std::collections::BTreeMap;

use pds_crypto::{hmac_sha256, verify_hmac, SymmetricKey};
use pds_obs::rng::Rng;

/// One spot-check trial outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// No anomaly found in the sample.
    Clean,
    /// A sampled tuple was missing or failed authentication.
    Detected,
}

/// A store-and-forward SSI for the detection experiment: it holds the
/// authenticated tuples by sequence number and may cheat.
pub struct CheckedChannel {
    tuples: BTreeMap<u64, Vec<u8>>,
    expected: u64,
}

impl CheckedChannel {
    /// Collect `n` MAC-authenticated tuples from the population.
    pub fn collect(key: &SymmetricKey, n: u64) -> Self {
        let mut tuples = BTreeMap::new();
        for seq in 0..n {
            let body = format!("contribution-{seq}").into_bytes();
            let mut msg = seq.to_le_bytes().to_vec();
            msg.extend_from_slice(&body);
            let tag = hmac_sha256(key.mac_key_bytes(), &msg);
            let mut wire = msg;
            wire.extend_from_slice(&tag);
            tuples.insert(seq, wire);
        }
        CheckedChannel {
            tuples,
            expected: n,
        }
    }

    /// Expected tuple count (committed at collection time).
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Adversary: silently drop a fraction `f` of the tuples.
    pub fn drop_fraction(&mut self, f: f64, rng: &mut impl Rng) -> u64 {
        let victims: Vec<u64> = self
            .tuples
            .keys()
            .copied()
            .filter(|_| rng.gen_bool(f))
            .collect();
        for v in &victims {
            self.tuples.remove(v);
        }
        victims.len() as u64
    }

    /// Adversary: alter a fraction `f` of the tuples (flip a byte).
    pub fn alter_fraction(&mut self, f: f64, rng: &mut impl Rng) -> u64 {
        let mut altered = 0;
        for wire in self.tuples.values_mut() {
            if rng.gen_bool(f) {
                let idx = rng.gen_range(0..wire.len());
                wire[idx] ^= 1;
                altered += 1;
            }
        }
        altered
    }

    /// Verifier token: sample each sequence number with probability
    /// `sample_rate` and demand + authenticate the tuple.
    pub fn spot_check(
        &self,
        key: &SymmetricKey,
        sample_rate: f64,
        rng: &mut impl Rng,
    ) -> CheckOutcome {
        for seq in 0..self.expected {
            if !rng.gen_bool(sample_rate) {
                continue;
            }
            match self.tuples.get(&seq) {
                None => return CheckOutcome::Detected, // dropped
                Some(wire) => {
                    if wire.len() < 32 {
                        return CheckOutcome::Detected;
                    }
                    let (msg, tag) = wire.split_at(wire.len() - 32);
                    if !verify_hmac(key.mac_key_bytes(), msg, tag) {
                        return CheckOutcome::Detected; // altered/forged
                    }
                }
            }
        }
        CheckOutcome::Clean
    }
}

/// Analytic detection probability of dropping `dropped` tuples under
/// sampling rate `s`: `1 − (1−s)^dropped`.
pub fn analytic_detection(dropped: u64, sample_rate: f64) -> f64 {
    1.0 - (1.0 - sample_rate).powi(dropped as i32)
}

/// Run `trials` independent drop-and-check experiments; returns the
/// measured detection frequency.
pub fn measure_detection(
    n_tuples: u64,
    drop_rate: f64,
    sample_rate: f64,
    trials: u32,
    key: &SymmetricKey,
    rng: &mut impl Rng,
) -> f64 {
    let mut detected = 0u32;
    for _ in 0..trials {
        let mut ch = CheckedChannel::collect(key, n_tuples);
        ch.drop_fraction(drop_rate, rng);
        if ch.spot_check(key, sample_rate, rng) == CheckOutcome::Detected {
            detected += 1;
        }
    }
    detected as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn key() -> SymmetricKey {
        SymmetricKey::from_seed(b"detection")
    }

    #[test]
    fn honest_channel_always_checks_clean() {
        let mut rng = StdRng::seed_from_u64(1);
        let ch = CheckedChannel::collect(&key(), 200);
        for _ in 0..10 {
            assert_eq!(ch.spot_check(&key(), 0.2, &mut rng), CheckOutcome::Clean);
        }
    }

    #[test]
    fn alterations_fail_authentication() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = CheckedChannel::collect(&key(), 100);
        let altered = ch.alter_fraction(1.0, &mut rng);
        assert_eq!(altered, 100);
        assert_eq!(ch.spot_check(&key(), 0.1, &mut rng), CheckOutcome::Detected);
    }

    #[test]
    fn heavy_dropping_is_detected_with_high_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = measure_detection(500, 0.2, 0.05, 40, &key(), &mut rng);
        // Analytic: 1-(1-0.05)^100 ≈ 0.994.
        assert!(p > 0.9, "measured {p}");
    }

    #[test]
    fn tiny_dropping_with_tiny_sampling_often_escapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = measure_detection(100, 0.01, 0.01, 60, &key(), &mut rng);
        assert!(p < 0.5, "≈1 drop sampled at 1% mostly escapes, got {p}");
    }

    #[test]
    fn measured_matches_analytic_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        // f·N = 50 dropped; analytic at s=0.02: 1-0.98^50 ≈ 0.64.
        let measured = measure_detection(500, 0.1, 0.02, 120, &key(), &mut rng);
        let analytic = analytic_detection(50, 0.02);
        assert!(
            (measured - analytic).abs() < 0.2,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn analytic_boundaries() {
        assert_eq!(analytic_detection(0, 0.5), 0.0);
        assert!((analytic_detection(1000, 0.01) - 1.0).abs() < 1e-4);
    }
}

//! HMAC-SHA256 (RFC 2104).
//!
//! The "security primitives" of Part III: when the supporting server
//! infrastructure is *weakly malicious* (a covert adversary that "does not
//! want to be detected"), tokens attach MACs to the tuples they emit so
//! that any forgery, duplication or alteration by the SSI is detectable on
//! spot-check.

use crate::hash::{sha256, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad).update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner_digest);
    outer.finalize()
}

/// Constant-time-ish tag comparison (length + accumulated XOR).
pub fn verify_hmac(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    if tag.len() != 32 {
        return false;
    }
    let expected = hmac_sha256(key, message);
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Test case 6: 131-byte key (forces the key-hash path).
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verification_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"msg");
        assert!(verify_hmac(b"k", b"msg", &tag));
        assert!(!verify_hmac(b"k", b"msg2", &tag));
        assert!(!verify_hmac(b"k2", b"msg", &tag));
        let mut bad = tag;
        bad[31] ^= 1;
        assert!(!verify_hmac(b"k", b"msg", &bad));
        assert!(!verify_hmac(b"k", b"msg", &tag[..31]));
    }
}

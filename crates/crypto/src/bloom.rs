//! Bloom filters — the probabilistic summaries of the PBFilter index.
//!
//! Part II: "Log2: «Bloom Filters» — 1 BF built for each page in «Keys»;
//! BF is a probabilistic summary (~2 B/key)". At ~2 bytes (16 bits) per
//! key the optimal number of hash functions is `k = 16·ln2 ≈ 11`, giving a
//! false-positive rate of about 0.05 % — which is why the tutorial's
//! summary scan costs "|Log2| I/O + 1 IO/result" with almost no wasted
//! page probes.
//!
//! Hashes are derived by double hashing (Kirsch–Mitzenmacher) from two
//! halves of a SHA-256 digest, so a filter is a plain bit array that can
//! be stored in, and reloaded from, a flash page.

use crate::hash::sha256;

/// A fixed-size Bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    num_bits: usize,
    num_hashes: u32,
    items: usize,
}

impl BloomFilter {
    /// A filter with `num_bits` bits and `num_hashes` hash functions.
    pub fn new(num_bits: usize, num_hashes: u32) -> Self {
        // Degenerate shapes are clamped rather than rejected: this
        // constructor runs on the unattended token (PBFilter page
        // flushes), where a panic is unrecoverable.
        let num_bits = num_bits.max(1);
        let num_hashes = num_hashes.max(1);
        BloomFilter {
            bits: vec![0; num_bits.div_ceil(8)],
            num_bits,
            num_hashes,
            items: 0,
        }
    }

    /// The tutorial's configuration: ~2 bytes (16 bits) per expected key,
    /// with the optimal `k = round(16·ln 2) = 11` hash functions.
    pub fn per_key_16bits(expected_keys: usize) -> Self {
        let num_bits = (expected_keys.max(1)) * 16;
        BloomFilter::new(num_bits, 11)
    }

    fn bit_positions(&self, key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let digest = sha256(key);
        let h1 = u64::from_le_bytes(digest[0..8].try_into().unwrap_or([0; 8]));
        let h2 = u64::from_le_bytes(digest[8..16].try_into().unwrap_or([0; 8])) | 1;
        let m = self.num_bits as u64;
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<usize> = self.bit_positions(key).collect();
        for p in positions {
            self.bits[p / 8] |= 1 << (p % 8);
        }
        self.items += 1;
    }

    /// Membership test: false ⇒ definitely absent (no false negatives);
    /// true ⇒ probably present.
    pub fn maybe_contains(&self, key: &[u8]) -> bool {
        self.bit_positions(key)
            .all(|p| self.bits[p / 8] & (1 << (p % 8)) != 0)
    }

    /// Number of inserted keys.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True if no key was inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Size of the bit array in bytes (what a summary page stores).
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    /// Serialize: `num_bits (u32) ‖ num_hashes (u32) ‖ items (u32) ‖ bits`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len());
        out.extend_from_slice(&(self.num_bits as u32).to_le_bytes());
        out.extend_from_slice(&self.num_hashes.to_le_bytes());
        out.extend_from_slice(&(self.items as u32).to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserialize a filter previously produced by
    /// [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 12 {
            return None;
        }
        let num_bits = u32::from_le_bytes(data[0..4].try_into().ok()?) as usize;
        let num_hashes = u32::from_le_bytes(data[4..8].try_into().ok()?);
        let items = u32::from_le_bytes(data[8..12].try_into().ok()?) as usize;
        let bits = data[12..].to_vec();
        if bits.len() != num_bits.div_ceil(8) || num_bits == 0 || num_hashes == 0 {
            return None;
        }
        Some(BloomFilter {
            bits,
            num_bits,
            num_hashes,
            items,
        })
    }

    /// Theoretical false-positive rate at the current load:
    /// `(1 - e^{-kn/m})^k`.
    pub fn expected_fpr(&self) -> f64 {
        let k = self.num_hashes as f64;
        let n = self.items as f64;
        let m = self.num_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::{Rng, RngCore, SeedableRng, StdRng};

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::per_key_16bits(100);
        for i in 0..100u32 {
            bf.insert(&i.to_le_bytes());
        }
        for i in 0..100u32 {
            assert!(bf.maybe_contains(&i.to_le_bytes()), "false negative on {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_design_load() {
        let mut bf = BloomFilter::per_key_16bits(1000);
        for i in 0..1000u32 {
            bf.insert(&i.to_le_bytes());
        }
        let mut fp = 0;
        let probes = 20_000u32;
        for i in 1000..1000 + probes {
            if bf.maybe_contains(&i.to_le_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(
            rate < 0.01,
            "expected ≲0.1% FPR at 16 bits/key, measured {rate}"
        );
        assert!(bf.expected_fpr() < 0.001);
    }

    #[test]
    fn serialization_round_trips() {
        let mut bf = BloomFilter::per_key_16bits(50);
        for i in 0..50u32 {
            bf.insert(&i.to_le_bytes());
        }
        let bytes = bf.to_bytes();
        let back = BloomFilter::from_bytes(&bytes).unwrap();
        assert_eq!(back, bf);
        assert!(BloomFilter::from_bytes(&bytes[..5]).is_none());
        assert!(BloomFilter::from_bytes(&[0; 12]).is_none());
    }

    #[test]
    fn footprint_is_two_bytes_per_key() {
        let bf = BloomFilter::per_key_16bits(1000);
        assert_eq!(bf.byte_len(), 2000);
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = BloomFilter::per_key_16bits(10);
        assert!(bf.is_empty());
        assert!(!bf.maybe_contains(b"anything"));
    }

    #[test]
    fn prop_inserted_keys_always_found() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0xB100 + case);
            let keys: Vec<Vec<u8>> = (0..rng.gen_range(1usize..200))
                .map(|_| {
                    let mut k = vec![0u8; rng.gen_range(1usize..16)];
                    rng.fill_bytes(&mut k);
                    k
                })
                .collect();
            let mut bf = BloomFilter::per_key_16bits(keys.len());
            for k in &keys {
                bf.insert(k);
            }
            for k in &keys {
                assert!(bf.maybe_contains(k), "case {case}");
            }
        }
    }
}

//! Symmetric encryption — deterministic and probabilistic.
//!
//! The [TNP14\] protocol family of Part III hinges on this distinction:
//!
//! * **Probabilistic (non-deterministic) encryption** reveals *nothing* to
//!   the SSI — two encryptions of the same value differ. Used by the
//!   *secure aggregation* protocol, where the SSI can only move opaque
//!   blobs between tokens.
//! * **Deterministic encryption** maps equal plaintexts to equal
//!   ciphertexts, letting the SSI group/partition tuples by equality
//!   without learning the values. Used by the *noise-based* protocols
//!   (with fake tuples to drown the frequency leakage).
//!
//! Construction: a SHA-256-based counter-mode stream cipher. The
//! deterministic mode derives the IV from the plaintext (SIV style), the
//! probabilistic mode draws it at random. An HMAC tag gives authenticated
//! encryption — the tokens of Part III must detect ciphertext forgery by a
//! weakly malicious SSI.

use crate::hash::Sha256;
use crate::mac::hmac_sha256;
use pds_obs::rng::RngCore;

/// Length of the IV / tag prefix.
const IV_LEN: usize = 16;
const TAG_LEN: usize = 16;

/// Encryption mode marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncMode {
    /// Equal plaintexts ⇒ equal ciphertexts (SIV).
    Deterministic,
    /// Fresh randomness per encryption.
    Probabilistic,
}

/// A self-describing ciphertext: `mode ‖ iv ‖ body ‖ tag`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ciphertext(pub Vec<u8>);

impl Ciphertext {
    /// Serialized length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false — ciphertexts carry at least the header.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw bytes (what travels to the SSI).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// A symmetric key shared by the token population.
///
/// In the tutorial's architecture every PDS is issued the same protocol
/// key by the trusted manufacturer (tokens are "elements of trust" that
/// trust each other); the SSI never sees it.
#[derive(Clone, PartialEq, Eq)]
pub struct SymmetricKey {
    /// Encryption subkey.
    enc: [u8; 32],
    /// MAC subkey (key separation).
    mac: [u8; 32],
}

impl SymmetricKey {
    /// Derive a key pair from seed material.
    pub fn from_seed(seed: &[u8]) -> Self {
        SymmetricKey {
            enc: hmac_sha256(b"pds-enc", seed),
            mac: hmac_sha256(b"pds-mac", seed),
        }
    }

    /// The MAC subkey, for protocols that authenticate plaintext tuples
    /// directly (spot-checking). Only tokens ever hold a `SymmetricKey`,
    /// so exposing the subkey does not widen the trust boundary.
    pub fn mac_key_bytes(&self) -> &[u8; 32] {
        &self.mac
    }

    /// A fresh random key.
    pub fn random(rng: &mut impl RngCore) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::from_seed(&seed)
    }

    fn keystream_xor(&self, iv: &[u8; IV_LEN], data: &mut [u8]) {
        let mut counter: u64 = 0;
        let mut offset = 0;
        while offset < data.len() {
            let mut h = Sha256::new();
            h.update(&self.enc)
                .update(iv)
                .update(&counter.to_le_bytes());
            let block = h.finalize();
            let take = (data.len() - offset).min(32);
            for i in 0..take {
                data[offset + i] ^= block[i];
            }
            offset += take;
            counter += 1;
        }
    }

    fn seal(&self, mode: EncMode, iv: [u8; IV_LEN], plaintext: &[u8]) -> Ciphertext {
        let mode_byte = match mode {
            EncMode::Deterministic => 0u8,
            EncMode::Probabilistic => 1u8,
        };
        let mut out = Vec::with_capacity(1 + IV_LEN + plaintext.len() + TAG_LEN);
        out.push(mode_byte);
        out.extend_from_slice(&iv);
        let body_start = out.len();
        out.extend_from_slice(plaintext);
        self.keystream_xor(&iv, &mut out[body_start..]);
        let tag = hmac_sha256(&self.mac, &out);
        out.extend_from_slice(&tag[..TAG_LEN]);
        Ciphertext(out)
    }

    /// Deterministic (SIV) encryption: the IV is a PRF of the plaintext,
    /// so equal plaintexts produce byte-identical ciphertexts.
    pub fn encrypt_det(&self, plaintext: &[u8]) -> Ciphertext {
        let siv_full = hmac_sha256(&self.mac, plaintext);
        let mut iv = [0u8; IV_LEN];
        iv.copy_from_slice(&siv_full[..IV_LEN]);
        self.seal(EncMode::Deterministic, iv, plaintext)
    }

    /// Probabilistic encryption: fresh random IV per call.
    pub fn encrypt_prob(&self, plaintext: &[u8], rng: &mut impl RngCore) -> Ciphertext {
        let mut iv = [0u8; IV_LEN];
        rng.fill_bytes(&mut iv);
        self.seal(EncMode::Probabilistic, iv, plaintext)
    }

    /// Decrypt and authenticate; `None` on any tampering or truncation.
    pub fn decrypt(&self, ct: &Ciphertext) -> Option<Vec<u8>> {
        let raw = &ct.0;
        if raw.len() < 1 + IV_LEN + TAG_LEN {
            return None;
        }
        let (payload, tag) = raw.split_at(raw.len() - TAG_LEN);
        let expected = hmac_sha256(&self.mac, payload);
        let mut diff = 0u8;
        for (a, b) in expected[..TAG_LEN].iter().zip(tag) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return None;
        }
        let mode = payload[0];
        let mut iv = [0u8; IV_LEN];
        iv.copy_from_slice(&payload[1..=IV_LEN]);
        let mut body = payload[1 + IV_LEN..].to_vec();
        self.keystream_xor(&iv, &mut body);
        // SIV re-check: the deterministic IV must match the plaintext.
        if mode == 0 {
            let siv = hmac_sha256(&self.mac, &body);
            if siv[..IV_LEN] != iv {
                return None;
            }
        }
        Some(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::StdRng;
    use pds_obs::rng::{Rng, SeedableRng};

    fn key() -> SymmetricKey {
        SymmetricKey::from_seed(b"test-seed")
    }

    #[test]
    fn det_round_trip_and_equality() {
        let k = key();
        let c1 = k.encrypt_det(b"Lyon");
        let c2 = k.encrypt_det(b"Lyon");
        let c3 = k.encrypt_det(b"Paris");
        assert_eq!(c1, c2, "deterministic: equal plaintexts, equal ciphertexts");
        assert_ne!(c1, c3);
        assert_eq!(k.decrypt(&c1).unwrap(), b"Lyon");
    }

    #[test]
    fn prob_round_trip_and_inequality() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(9);
        let c1 = k.encrypt_prob(b"Lyon", &mut rng);
        let c2 = k.encrypt_prob(b"Lyon", &mut rng);
        assert_ne!(c1, c2, "probabilistic: fresh randomness each time");
        assert_eq!(k.decrypt(&c1).unwrap(), b"Lyon");
        assert_eq!(k.decrypt(&c2).unwrap(), b"Lyon");
    }

    #[test]
    fn tampering_is_detected() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(10);
        let mut c = k.encrypt_prob(b"secret", &mut rng);
        let last = c.0.len() - 1;
        c.0[last] ^= 1; // flip tag bit
        assert!(k.decrypt(&c).is_none());
        let mut c2 = k.encrypt_prob(b"secret", &mut rng);
        c2.0[20] ^= 1; // flip body bit
        assert!(k.decrypt(&c2).is_none());
        assert!(k.decrypt(&Ciphertext(vec![0; 5])).is_none(), "truncated");
    }

    #[test]
    fn wrong_key_fails() {
        let k = key();
        let other = SymmetricKey::from_seed(b"other");
        let c = k.encrypt_det(b"data");
        assert!(other.decrypt(&c).is_none());
    }

    #[test]
    fn empty_plaintext_works() {
        let k = key();
        let c = k.encrypt_det(b"");
        assert_eq!(k.decrypt(&c).unwrap(), Vec::<u8>::new());
    }

    fn rand_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
        let mut v = vec![0u8; rng.gen_range(0..max_len)];
        rng.fill(&mut v);
        v
    }

    #[test]
    fn prop_round_trips() {
        let mut meta = StdRng::seed_from_u64(0x5E55);
        for case in 0..64u64 {
            let data = rand_bytes(&mut meta, 200);
            let k = key();
            let mut rng = StdRng::seed_from_u64(meta.gen());
            let cd = k.encrypt_det(&data);
            assert_eq!(k.decrypt(&cd).unwrap(), data.clone(), "case {case}");
            let cp = k.encrypt_prob(&data, &mut rng);
            assert_eq!(k.decrypt(&cp).unwrap(), data, "case {case}");
        }
    }

    #[test]
    fn prop_det_is_injective_on_samples() {
        let mut rng = StdRng::seed_from_u64(0x171);
        for _ in 0..64 {
            let a = rand_bytes(&mut rng, 50);
            let b = rand_bytes(&mut rng, 50);
            let k = key();
            if a != b {
                assert_ne!(k.encrypt_det(&a), k.encrypt_det(&b));
            }
        }
    }
}

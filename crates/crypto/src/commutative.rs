//! A commutative cipher (SRA / Pohlig–Hellman exponentiation).
//!
//! Engine of the [CKV+02] toolkit primitives of Part III: *secure set
//! union* and *secure size of set intersection* both rely on every party
//! encrypting the circulating values under its own key such that the
//! composition order does not matter:
//!
//! `E_a(E_b(x)) = E_b(E_a(x))`
//!
//! Construction: all parties agree on a public safe prime `p = 2q + 1`.
//! Values are hashed into the order-`q` subgroup of `Z*_p`; party `i`
//! encrypts by raising to its secret exponent `e_i` (odd, `< q`, coprime
//! with `q`) and decrypts with `d_i = e_i⁻¹ mod q`. Commutativity is just
//! commutativity of exponent multiplication.

use crate::hash::sha256;
use crate::num::BigUint;
use pds_obs::rng::RngCore;

/// Shared group parameters: a safe prime `p` and its subgroup order `q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommutativeGroup {
    p: BigUint,
    q: BigUint,
}

impl CommutativeGroup {
    /// Generate fresh parameters: a safe prime of `bits` bits.
    pub fn generate(bits: usize, rng: &mut impl RngCore) -> Self {
        loop {
            let q = BigUint::gen_prime(bits - 1, rng);
            let p = q.shl(1).add(&BigUint::one());
            if p.is_probable_prime(20, rng) {
                return CommutativeGroup { p, q };
            }
        }
    }

    /// Fixed 256-bit parameters for tests and deterministic experiments
    /// (generated once with seed 0xC0FFEE; verified prime in tests).
    pub fn test_params() -> Self {
        use pds_obs::rng::SeedableRng;
        use pds_obs::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        Self::generate(256, &mut rng)
    }

    /// Hash an arbitrary value into the order-`q` subgroup
    /// (quadratic residues of `Z*_p`): `H(v)² mod p`.
    pub fn hash_to_group(&self, value: &[u8]) -> BigUint {
        let h = BigUint::from_bytes_be(&sha256(value));
        let x = h.rem(&self.p);
        // Square to land in QR(p); map 0 (probability ~2^-256) to 4.
        let sq = x.mod_mul(&x, &self.p);
        if sq.is_zero() {
            BigUint::from_u64(4)
        } else {
            sq
        }
    }
}

/// One party's commutative encryption key.
#[derive(Debug, Clone)]
pub struct CommutativeKey {
    group: CommutativeGroup,
    e: BigUint,
    d: BigUint,
}

impl CommutativeKey {
    /// Draw a fresh key pair in the shared group.
    pub fn random(group: &CommutativeGroup, rng: &mut impl RngCore) -> Self {
        loop {
            let e = BigUint::rand_below(&group.q, rng);
            if e.is_zero() {
                continue;
            }
            if let Some(d) = e.mod_inverse(&group.q) {
                return CommutativeKey {
                    group: group.clone(),
                    e,
                    d,
                };
            }
        }
    }

    /// The shared group parameters.
    pub fn group(&self) -> &CommutativeGroup {
        &self.group
    }

    /// Encrypt a group element (a previous layer's output or
    /// [`CommutativeGroup::hash_to_group`] of a raw value).
    pub fn encrypt(&self, x: &BigUint) -> BigUint {
        x.mod_exp(&self.e, &self.group.p)
    }

    /// Remove this party's layer.
    pub fn decrypt(&self, x: &BigUint) -> BigUint {
        x.mod_exp(&self.d, &self.group.p)
    }

    /// Convenience: hash a raw value into the group, then encrypt.
    pub fn encrypt_value(&self, value: &[u8]) -> BigUint {
        self.encrypt(&self.group.hash_to_group(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup() -> (CommutativeGroup, CommutativeKey, CommutativeKey) {
        let g = CommutativeGroup::test_params();
        let mut rng = StdRng::seed_from_u64(11);
        let a = CommutativeKey::random(&g, &mut rng);
        let b = CommutativeKey::random(&g, &mut rng);
        (g, a, b)
    }

    #[test]
    fn test_params_are_a_safe_prime() {
        let g = CommutativeGroup::test_params();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(g.p.is_probable_prime(20, &mut rng));
        assert!(g.q.is_probable_prime(20, &mut rng));
        assert_eq!(g.q.shl(1).add(&BigUint::one()), g.p);
    }

    #[test]
    fn encryption_commutes() {
        let (g, a, b) = setup();
        let x = g.hash_to_group(b"diagnosis:flu");
        let ab = b.encrypt(&a.encrypt(&x));
        let ba = a.encrypt(&b.encrypt(&x));
        assert_eq!(ab, ba);
    }

    #[test]
    fn layers_peel_in_any_order() {
        let (g, a, b) = setup();
        let x = g.hash_to_group(b"value");
        let wrapped = b.encrypt(&a.encrypt(&x));
        assert_eq!(b.decrypt(&a.decrypt(&wrapped)), x);
        assert_eq!(a.decrypt(&b.decrypt(&wrapped)), x);
    }

    #[test]
    fn equal_values_collide_distinct_values_do_not() {
        let (_, a, b) = setup();
        // Double-encrypted equal values are equal — the property secure
        // set union exploits to deduplicate without decrypting.
        let x1 = b.encrypt(&a.encrypt_value(b"item"));
        let x2 = b.encrypt(&a.encrypt_value(b"item"));
        let y = b.encrypt(&a.encrypt_value(b"other"));
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn single_layer_hides_equality_from_third_parties_keys() {
        let (g, a, b) = setup();
        // a's encryption of a value differs from b's — no cross-party
        // linkage without both layers.
        let x = g.hash_to_group(b"item");
        assert_ne!(a.encrypt(&x), b.encrypt(&x));
    }
}

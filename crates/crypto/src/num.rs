//! Arbitrary-precision unsigned integers.
//!
//! A self-contained bignum sized for the cryptography of Part III:
//! 1024-bit Paillier moduli (2048-bit squares) and 512–768-bit
//! commutative-cipher primes. Limbs are little-endian `u32`, which keeps
//! Knuth's Algorithm D readable while `u64` intermediates keep it fast
//! enough for the FHE-cost experiment (E8).

use pds_obs::rng::RngCore;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing zero limb; zero is the empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// From a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut n = BigUint {
            limbs: vec![
                v as u32,
                (v >> 32) as u32,
                (v >> 64) as u32,
                (v >> 96) as u32,
            ],
        };
        n.normalize();
        n
    }

    /// From big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut chunk_start = bytes.len();
        while chunk_start > 0 {
            let lo = chunk_start.saturating_sub(4);
            let mut limb: u32 = 0;
            for &b in &bytes[lo..chunk_start] {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
            chunk_start = lo;
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// To big-endian bytes (no leading zeros; zero ⇒ empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Lowercase hex, no leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, &limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    /// Convert to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Convert to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (32 * i);
        }
        Some(v)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (LSB = bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        self.limbs
            .get(limb)
            .is_some_and(|l| (l >> (i % 32)) & 1 == 1)
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut limbs = Vec::with_capacity(a.limbs.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..a.limbs.len() {
            let sum = a.limbs[i] as u64 + b.limbs.get(i).copied().unwrap_or(0) as u64 + carry;
            limbs.push(sum as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            limbs.push(carry as u32);
        }
        BigUint { limbs }
    }

    /// `self - other`, `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let mut diff =
                self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs };
        n.normalize();
        Some(n)
    }

    /// `self - other`, panicking on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other).expect("BigUint underflow")
    }

    /// `self * other` (schoolbook; quadratic but ample for 2048-bit
    /// operands).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u64 + a as u64 * b as u64 + carry;
                limbs[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = limbs[k] as u64 + carry;
                limbs[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let mut limbs: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let mut carry: u32 = 0;
            for l in limbs.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (32 - bit_shift);
                *l = new;
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Quotient and remainder (`Knuth TAOCP 4.3.1 Algorithm D`).
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        // Short divisor: simple long division.
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut rem: u64 = 0;
            let mut q = vec![0u32; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem));
        }
        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let v_top = vn[n - 1] as u64;
        let v_next = vn[n - 2] as u64;
        let mut q = vec![0u32; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs.
            let num = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = num / v_top;
            let mut rhat = num % v_top;
            while qhat >= 1 << 32 || qhat * v_next > ((rhat << 32) | un[j + n - 2] as u64) {
                qhat -= 1;
                rhat += v_top;
                if rhat >= 1 << 32 {
                    break;
                }
            }
            // Multiply-subtract qhat * v from un[j .. j+n].
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[j + i] as i64 - (p as u32) as i64 - borrow;
                if t < 0 {
                    un[j + i] = (t + (1 << 32)) as u32;
                    borrow = 1;
                } else {
                    un[j + i] = t as u32;
                    borrow = 0;
                }
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // q̂ was one too large: add back.
                un[j + n] = (t + (1 << 32)) as u32;
                qhat -= 1;
                let mut carry2: u64 = 0;
                for i in 0..n {
                    let s = un[j + i] as u64 + vn[i] as u64 + carry2;
                    un[j + i] = s as u32;
                    carry2 = s >> 32;
                }
                un[j + n] = un[j + n].wrapping_add(carry2 as u32);
            } else {
                un[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.divrem(m).1
    }

    /// `(self + other) mod m` (operands must already be `< m`).
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(other);
        if &s >= m {
            s.sub(m)
        } else {
            s
        }
    }

    /// `(self - other) mod m` (operands must already be `< m`).
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        if self >= other {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// `(self * other) mod m`.
    pub fn mod_mul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m` by square-and-multiply.
    pub fn mod_exp(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero());
        if m == &BigUint::one() {
            return BigUint::zero();
        }
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mod_mul(&base, m);
            }
            if i + 1 < exp.bits() {
                base = base.mod_mul(&base, m);
            }
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid; division is cheap
    /// enough at our sizes).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        self.mul(other).divrem(&self.gcd(other)).0
    }

    /// Modular inverse: `x` with `self·x ≡ 1 (mod m)`, `None` when
    /// `gcd(self, m) ≠ 1`.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        // Extended Euclid with signed Bézout coefficient tracked as
        // (magnitude, is_negative).
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = (BigUint::zero(), false);
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            // t2 = t0 - q * t1 (signed)
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != BigUint::one() {
            return None;
        }
        let (mag, neg) = t0;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// Uniform random value with exactly `bits` bits (top bit set).
    pub fn rand_bits(bits: usize, rng: &mut impl RngCore) -> BigUint {
        assert!(bits > 0);
        let limbs_needed = bits.div_ceil(32);
        let mut limbs = vec![0u32; limbs_needed];
        for l in &mut limbs {
            *l = rng.next_u32();
        }
        // Mask excess bits, then force the top bit.
        let top_bits = bits - (limbs_needed - 1) * 32;
        let mask = if top_bits == 32 {
            u32::MAX
        } else {
            (1u32 << top_bits) - 1
        };
        let last = limbs_needed - 1;
        limbs[last] &= mask;
        limbs[last] |= 1 << (top_bits - 1);
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Uniform random value in `[0, bound)` by rejection sampling.
    pub fn rand_below(bound: &BigUint, rng: &mut impl RngCore) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bits();
        loop {
            let limbs_needed = bits.div_ceil(32);
            let mut limbs = vec![0u32; limbs_needed];
            for l in &mut limbs {
                *l = rng.next_u32();
            }
            let top_bits = bits - (limbs_needed - 1) * 32;
            if top_bits < 32 {
                let last = limbs_needed - 1;
                limbs[last] &= (1u32 << top_bits) - 1;
            }
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random
    /// bases (error probability ≤ 4^-rounds).
    pub fn is_probable_prime(&self, rounds: usize, rng: &mut impl RngCore) -> bool {
        let two = BigUint::from_u64(2);
        let three = BigUint::from_u64(3);
        if self < &two {
            return false;
        }
        if self == &two || self == &three {
            return true;
        }
        if self.is_even() {
            return false;
        }
        // Trial division by small primes first.
        for &p in SMALL_PRIMES {
            let pb = BigUint::from_u64(p);
            if self == &pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // self - 1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        'witness: for _ in 0..rounds {
            // Random base in [2, n-2].
            let range = self.sub(&three);
            let a = BigUint::rand_below(&range, rng).add(&two);
            let mut x = a.mod_exp(&d, self);
            if x == BigUint::one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mod_mul(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime of exactly `bits` bits.
    pub fn gen_prime(bits: usize, rng: &mut impl RngCore) -> BigUint {
        assert!(bits >= 4);
        loop {
            let mut candidate = BigUint::rand_bits(bits, rng);
            if candidate.is_even() {
                candidate = candidate.add(&BigUint::one());
            }
            if candidate.bits() != bits {
                continue;
            }
            if candidate.is_probable_prime(20, rng) {
                return candidate;
            }
        }
    }
}

/// `a - b` on signed values represented as (magnitude, is_negative).
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a+b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

const SMALL_PRIMES: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::StdRng;
    use pds_obs::rng::{Rng, RngCore, SeedableRng};

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn construction_round_trips() {
        for v in [0u64, 1, 42, u32::MAX as u64, u64::MAX] {
            assert_eq!(BigUint::from_u64(v).to_u64(), Some(v));
        }
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
        let bytes = [0x01, 0x02, 0x03, 0x04, 0x05];
        let n = BigUint::from_bytes_be(&bytes);
        assert_eq!(n.to_u64(), Some(0x0102030405));
        assert_eq!(n.to_bytes_be(), bytes);
    }

    #[test]
    fn hex_rendering() {
        assert_eq!(BigUint::zero().to_hex(), "0");
        assert_eq!(big(0xdeadbeef).to_hex(), "deadbeef");
        assert_eq!(big(0x1_0000_0000).to_hex(), "100000000");
    }

    #[test]
    fn bits_and_bit_access() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(big(1).bits(), 1);
        assert_eq!(big(0x8000_0000).bits(), 32);
        assert_eq!(big(0x1_0000_0000).bits(), 33);
        let n = big(0b1010);
        assert!(!n.bit(0) && n.bit(1) && !n.bit(2) && n.bit(3));
        assert!(!n.bit(500));
    }

    #[test]
    fn divrem_matches_u128() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let a = rng.next_u64() as u128 * rng.next_u64() as u128;
            let b = (rng.next_u64() as u128).max(1);
            let (q, r) = big(a).divrem(&big(b));
            assert_eq!(q.to_u128(), Some(a / b));
            assert_eq!(r.to_u128(), Some(a % b));
        }
    }

    #[test]
    fn knuth_d_addback_case() {
        // Crafted operands that exercise the rare "add back" branch:
        // u = 2^96 - 2^64, v = 2^64 - 1 (classic trigger family).
        let u = big(1u128 << 96).sub(&big(1u128 << 64));
        let v = big((1u128 << 64) - 1);
        let (q, r) = u.divrem(&v);
        let recomposed = q.mul(&v).add(&r);
        assert_eq!(recomposed, u);
        assert!(r < v);
    }

    #[test]
    fn mod_exp_small_cases() {
        assert_eq!(
            big(4).mod_exp(&big(13), &big(497)).to_u64(),
            Some(445) // 4^13 mod 497
        );
        assert_eq!(big(5).mod_exp(&BigUint::zero(), &big(7)), BigUint::one());
        assert_eq!(big(5).mod_exp(&big(100), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn fermat_little_theorem_holds() {
        let p = big(1_000_000_007);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a = BigUint::rand_below(&p, &mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mod_exp(&p.sub(&BigUint::one()), &p), BigUint::one());
        }
    }

    #[test]
    fn gcd_lcm_inverse() {
        assert_eq!(big(48).gcd(&big(18)).to_u64(), Some(6));
        assert_eq!(big(4).lcm(&big(6)).to_u64(), Some(12));
        let inv = big(3).mod_inverse(&big(11)).unwrap();
        assert_eq!(inv.to_u64(), Some(4)); // 3·4 = 12 ≡ 1 mod 11
        assert!(big(6).mod_inverse(&big(9)).is_none(), "gcd 3 ≠ 1");
        // Inverse of a large residue.
        let m = big(1_000_000_007);
        let a = big(123_456_789);
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!(a.mod_mul(&inv, &m), BigUint::one());
    }

    #[test]
    fn miller_rabin_agrees_with_known_values() {
        let mut rng = StdRng::seed_from_u64(3);
        for p in [2u64, 3, 5, 104729, 1_000_000_007, 2_147_483_647] {
            assert!(BigUint::from_u64(p).is_probable_prime(20, &mut rng), "{p}");
        }
        for c in [1u64, 4, 561 /* Carmichael */, 104730, 1_000_000_008] {
            assert!(!BigUint::from_u64(c).is_probable_prime(20, &mut rng), "{c}");
        }
    }

    #[test]
    fn prime_generation_produces_primes_of_right_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = BigUint::gen_prime(96, &mut rng);
        assert_eq!(p.bits(), 96);
        assert!(p.is_probable_prime(30, &mut rng));
    }

    #[test]
    fn shifts() {
        let n = big(0b1011);
        assert_eq!(n.shl(3).to_u64(), Some(0b1011000));
        assert_eq!(n.shl(32).to_u128(), Some(0b1011u128 << 32));
        assert_eq!(n.shl(33).shr(33), n);
        assert_eq!(n.shr(2).to_u64(), Some(0b10));
        assert_eq!(n.shr(64), BigUint::zero());
    }

    #[test]
    fn mod_add_sub() {
        let m = big(97);
        assert_eq!(big(90).mod_add(&big(20), &m).to_u64(), Some(13));
        assert_eq!(big(5).mod_sub(&big(20), &m).to_u64(), Some(82));
    }

    #[test]
    fn prop_add_sub_round_trip() {
        let mut rng = StdRng::seed_from_u64(0xADD5);
        for _ in 0..256 {
            let a: u128 = rng.gen::<u128>() / 2;
            let b: u128 = rng.gen::<u128>() / 2;
            let s = big(a).add(&big(b));
            assert_eq!(s.to_u128(), Some(a + b));
            assert_eq!(s.sub(&big(b)), big(a));
        }
    }

    #[test]
    fn prop_mul_matches_u128() {
        let mut rng = StdRng::seed_from_u64(0x4A1);
        for _ in 0..256 {
            let (a, b) = (rng.next_u64(), rng.next_u64());
            assert_eq!(
                big(a as u128).mul(&big(b as u128)).to_u128(),
                Some(a as u128 * b as u128)
            );
        }
    }

    #[test]
    fn prop_divrem_recomposes() {
        let mut rng = StdRng::seed_from_u64(0xD1F);
        for _ in 0..256 {
            let a: u128 = rng.gen();
            let b: u128 = rng.gen::<u128>().max(1);
            let (q, r) = big(a).divrem(&big(b));
            assert!(r < big(b));
            assert_eq!(q.mul(&big(b)).add(&r), big(a));
        }
    }

    #[test]
    fn prop_mod_exp_matches_naive() {
        let mut rng = StdRng::seed_from_u64(0x3A9);
        for _ in 0..256 {
            let b = rng.gen_range(0u64..1000);
            let e = rng.gen_range(0u64..64);
            let m = rng.gen_range(2u64..10_000);
            let mut expected: u128 = 1;
            for _ in 0..e {
                expected = expected * b as u128 % m as u128;
            }
            assert_eq!(
                big(b as u128)
                    .mod_exp(&big(e as u128), &big(m as u128))
                    .to_u128(),
                Some(expected)
            );
        }
    }

    #[test]
    fn prop_bytes_round_trip() {
        let mut rng = StdRng::seed_from_u64(0xB17E5);
        for _ in 0..256 {
            let mut bytes = vec![0u8; rng.gen_range(0usize..64)];
            rng.fill_bytes(&mut bytes);
            let n = BigUint::from_bytes_be(&bytes);
            let back = n.to_bytes_be();
            // Equal up to leading zeros.
            let trimmed: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(back, trimmed);
        }
    }

    #[test]
    fn prop_inverse_is_inverse() {
        let mut rng = StdRng::seed_from_u64(0x14);
        for _ in 0..256 {
            let a = rng.next_u64().max(1);
            let m = rng.next_u64().max(2);
            let am = big(a as u128);
            let mm = big(m as u128);
            if am.gcd(&mm) == BigUint::one() {
                let inv = am.mod_inverse(&mm).unwrap();
                assert_eq!(am.mod_mul(&inv, &mm), BigUint::one());
            } else {
                assert!(am.mod_inverse(&mm).is_none());
            }
        }
    }

    #[test]
    fn large_operand_divrem_recomposes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let a = BigUint::rand_bits(700, &mut rng);
            let b = BigUint::rand_bits(300, &mut rng);
            let (q, r) = a.divrem(&b);
            assert!(r < b);
            assert_eq!(q.mul(&b).add(&r), a);
        }
    }
}

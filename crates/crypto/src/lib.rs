//! # pds-crypto — cryptographic substrate of the PDS ecosystem
//!
//! Part III of the EDBT'14 tutorial compares three routes to secure global
//! computation: generic SMC / fully homomorphic encryption ("cost is
//! (incredibly) high"), per-application toolkits ([CKV+02]), and trusted
//! hardware with conventional cryptography. Reproducing those comparisons
//! requires *working implementations* of every primitive involved, built
//! from scratch on the sanctioned dependency set:
//!
//! * [`BigUint`] — arbitrary-precision unsigned arithmetic (schoolbook and
//!   Knuth-D division, modular exponentiation, Miller–Rabin, extended
//!   Euclid) sized for 1024–2048-bit moduli.
//! * [`paillier`] — the additively homomorphic cryptosystem the tutorial
//!   uses as its homomorphic-encryption exemplar
//!   (`E(p1)·E(p2) = E(p1+p2)`).
//! * [`hash`] — SHA-256, the hash behind MACs, Merkle trees and Bloom
//!   filters.
//! * [`sym`] — symmetric encryption in the two flavors the [TNP14\]
//!   protocols distinguish: *deterministic* (equal plaintexts ⇒ equal
//!   ciphertexts, enabling the SSI to group opaque values) and
//!   *probabilistic* (non-deterministic, revealing nothing).
//! * [`mac`] — HMAC-SHA256 message authentication (the "security
//!   primitives" that turn a weakly malicious SSI into a detectable one).
//! * [`merkle`] — Merkle trees and hash chains for tamper-evident audit
//!   logs.
//! * [`bloom`] — the ~2 bytes/key Bloom filters of the PBFilter index.
//! * [`commutative`] — an SRA/Pohlig–Hellman-style commutative cipher, the
//!   engine of the toolkit's secure set union / set intersection size.
//!
//! ## Security disclaimer
//!
//! These are *functional reproductions* for a systems paper, implemented
//! honestly but neither constant-time nor side-channel hardened. Do not
//! protect real personal data with them.

pub mod bloom;
pub mod commutative;
pub mod hash;
pub mod mac;
pub mod merkle;
pub mod num;
pub mod paillier;
pub mod sym;

pub use bloom::BloomFilter;
pub use commutative::{CommutativeGroup, CommutativeKey};
pub use hash::{sha256, Sha256};
pub use mac::{hmac_sha256, verify_hmac};
pub use merkle::{HashChain, MerkleTree};
pub use num::BigUint;
pub use paillier::{Paillier, PaillierCiphertext, PaillierPrivateKey, PaillierPublicKey};
pub use sym::{Ciphertext, SymmetricKey};

//! Merkle trees and hash chains — the integrity substrate.
//!
//! Part I requires that personal data be "protected against confidentiality
//! and integrity attacks" even when archived on untrusted storage (the
//! Trusted Cells vision uses "the cloud as a storage service for encrypted
//! data"), and Part III's accountability requirement ("users must not lose
//! control over their data through data sharing") needs a tamper-evident
//! audit trail. [`MerkleTree`] authenticates an archived collection with
//! logarithmic proofs; [`HashChain`] makes an append-only audit log
//! tamper-evident.

use crate::hash::{sha256, Sha256};

/// Domain-separation prefixes (leaf vs node), preventing second-preimage
/// tree splicing.
const LEAF_PREFIX: &[u8] = b"\x00";
const NODE_PREFIX: &[u8] = b"\x01";

fn leaf_hash(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(LEAF_PREFIX).update(data);
    h.finalize()
}

fn node_hash(l: &[u8; 32], r: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(NODE_PREFIX).update(l).update(r);
    h.finalize()
}

/// A binary Merkle tree over a list of byte strings.
pub struct MerkleTree {
    /// levels[0] = leaf hashes, last level = [root].
    levels: Vec<Vec<[u8; 32]>>,
}

/// One step of an inclusion proof: the sibling hash and its side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling node hash.
    pub sibling: [u8; 32],
    /// True if the sibling is on the right of the path node.
    pub sibling_is_right: bool,
}

impl MerkleTree {
    /// Build a tree over `items` (odd levels duplicate the last node).
    /// Empty input yields a tree whose root is the hash of the empty
    /// string, so every collection has a commitment.
    pub fn build<T: AsRef<[u8]>>(items: &[T]) -> Self {
        if items.is_empty() {
            return MerkleTree {
                levels: vec![vec![sha256(b"")]],
            };
        }
        let mut cur: Vec<[u8; 32]> = items.iter().map(|i| leaf_hash(i.as_ref())).collect();
        let mut levels = Vec::new();
        while cur.len() > 1 {
            let mut next = Vec::with_capacity(cur.len().div_ceil(2));
            for pair in cur.chunks(2) {
                let l = &pair[0];
                let r = pair.get(1).unwrap_or(l);
                next.push(node_hash(l, r));
            }
            levels.push(std::mem::replace(&mut cur, next));
        }
        levels.push(cur);
        MerkleTree { levels }
    }

    /// The root commitment.
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True if built over the empty collection.
    pub fn is_empty(&self) -> bool {
        self.levels.len() == 1 && self.levels[0].len() == 1
    }

    /// Inclusion proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Option<Vec<ProofStep>> {
        if index >= self.levels[0].len() {
            return None;
        }
        let mut proof = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = *level.get(sibling_idx).unwrap_or(&level[idx]);
            proof.push(ProofStep {
                sibling,
                sibling_is_right: sibling_idx > idx,
            });
            idx /= 2;
        }
        Some(proof)
    }

    /// Verify an inclusion proof against a root.
    pub fn verify(root: &[u8; 32], item: &[u8], proof: &[ProofStep]) -> bool {
        let mut acc = leaf_hash(item);
        for step in proof {
            acc = if step.sibling_is_right {
                node_hash(&acc, &step.sibling)
            } else {
                node_hash(&step.sibling, &acc)
            };
        }
        &acc == root
    }
}

/// A tamper-evident append-only hash chain, for audit logs:
/// `head_i = H(head_{i-1} ‖ entry_i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashChain {
    head: [u8; 32],
    entries: u64,
}

impl Default for HashChain {
    fn default() -> Self {
        Self::new()
    }
}

impl HashChain {
    /// A fresh chain with a fixed genesis head.
    pub fn new() -> Self {
        HashChain {
            head: sha256(b"pds-audit-genesis"),
            entries: 0,
        }
    }

    /// Append one entry, advancing the head.
    pub fn append(&mut self, entry: &[u8]) {
        let mut h = Sha256::new();
        h.update(&self.head).update(entry);
        self.head = h.finalize();
        self.entries += 1;
    }

    /// Current head (commit to this externally to detect truncation).
    pub fn head(&self) -> [u8; 32] {
        self.head
    }

    /// Number of appended entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True if nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Recompute a chain over `entries` and check it matches this head —
    /// the audit verification a user (or judge) performs.
    pub fn verify_entries<T: AsRef<[u8]>>(&self, entries: &[T]) -> bool {
        let mut replay = HashChain::new();
        for e in entries {
            replay.append(e.as_ref());
        }
        replay.head == self.head && replay.entries == self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::{Rng, RngCore, SeedableRng, StdRng};

    #[test]
    fn proofs_verify_for_every_leaf() {
        for n in [1usize, 2, 3, 4, 5, 8, 13] {
            let items: Vec<Vec<u8>> = (0..n).map(|i| format!("item-{i}").into_bytes()).collect();
            let tree = MerkleTree::build(&items);
            for (i, item) in items.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(
                    MerkleTree::verify(&tree.root(), item, &proof),
                    "n={n}, i={i}"
                );
            }
        }
    }

    #[test]
    fn wrong_item_or_proof_fails() {
        let items = [b"a".to_vec(), b"b".to_vec(), b"c".to_vec()];
        let tree = MerkleTree::build(&items);
        let proof = tree.prove(1).unwrap();
        assert!(!MerkleTree::verify(&tree.root(), b"x", &proof));
        let mut bad = proof.clone();
        bad[0].sibling[0] ^= 1;
        assert!(!MerkleTree::verify(&tree.root(), b"b", &bad));
        assert!(tree.prove(3).is_none());
    }

    #[test]
    fn roots_differ_on_any_change() {
        let t1 = MerkleTree::build(&[b"a".to_vec(), b"b".to_vec()]);
        let t2 = MerkleTree::build(&[b"a".to_vec(), b"c".to_vec()]);
        let t3 = MerkleTree::build(&[b"a".to_vec()]);
        assert_ne!(t1.root(), t2.root());
        assert_ne!(t1.root(), t3.root());
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let t = MerkleTree::build::<Vec<u8>>(&[]);
        assert!(t.is_empty());
        assert_eq!(t.root(), MerkleTree::build::<Vec<u8>>(&[]).root());
    }

    #[test]
    fn hash_chain_detects_tampering() {
        let entries = vec![b"grant".to_vec(), b"read".to_vec(), b"share".to_vec()];
        let mut chain = HashChain::new();
        for e in &entries {
            chain.append(e);
        }
        assert!(chain.verify_entries(&entries));
        let mut altered = entries.clone();
        altered[1] = b"READ".to_vec();
        assert!(!chain.verify_entries(&altered));
        let truncated = &entries[..2];
        assert!(!chain.verify_entries(truncated));
    }

    #[test]
    fn prop_all_proofs_verify() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0x3E61 + case);
            let items: Vec<Vec<u8>> = (0..rng.gen_range(1usize..40))
                .map(|_| {
                    let mut it = vec![0u8; rng.gen_range(0usize..20)];
                    rng.fill_bytes(&mut it);
                    it
                })
                .collect();
            let tree = MerkleTree::build(&items);
            for (i, item) in items.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(
                    MerkleTree::verify(&tree.root(), item, &proof),
                    "case {case}, leaf {i}"
                );
            }
        }
    }
}

//! The Paillier additively homomorphic cryptosystem.
//!
//! Part III's "Homomorphic Encryption Example" slide demonstrates the
//! multiplicative homomorphism of RSA and then motivates *additive*
//! homomorphism for aggregate queries. Paillier is the canonical
//! additively homomorphic scheme and serves here as the honest baseline
//! for experiment E8: computing `SUM` over N encrypted values without any
//! trusted hardware — correct, but orders of magnitude more expensive than
//! the token-based secure aggregation, which is exactly the tutorial's
//! argument ("the cost to have good security is (incredibly) high").
//!
//! Scheme (with the standard `g = n + 1` simplification):
//! * keygen: primes `p, q`; `n = pq`; `λ = lcm(p-1, q-1)`;
//!   `μ = λ⁻¹ mod n`.
//! * encrypt: `c = (1 + m·n) · rⁿ mod n²` for random `r ∈ Z*_n`.
//! * decrypt: `m = L(c^λ mod n²) · μ mod n` with `L(x) = (x-1)/n`.
//! * homomorphism: `E(m₁)·E(m₂) mod n² = E(m₁+m₂)`,
//!   `E(m)^k mod n² = E(k·m)`.

use crate::num::BigUint;
use pds_obs::rng::RngCore;

/// Public key: the modulus `n` (and cached `n²`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
}

/// Private key: `λ` and `μ`.
#[derive(Debug, Clone)]
pub struct PaillierPrivateKey {
    lambda: BigUint,
    mu: BigUint,
    public: PaillierPublicKey,
}

/// A Paillier ciphertext (element of `Z*_{n²}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierCiphertext(BigUint);

impl PaillierCiphertext {
    /// Serialized size in bytes (for communication-cost accounting).
    pub fn byte_len(&self) -> usize {
        self.0.to_bytes_be().len()
    }
}

/// Key pair generator / convenience namespace.
pub struct Paillier;

impl Paillier {
    /// Generate a key pair with an `n` of roughly `modulus_bits` bits.
    ///
    /// 1024-bit `n` reproduces the paper-era security level; the tests use
    /// smaller keys for speed, which changes nothing structurally.
    pub fn keygen(
        modulus_bits: usize,
        rng: &mut impl RngCore,
    ) -> (PaillierPublicKey, PaillierPrivateKey) {
        let half = modulus_bits / 2;
        let one = BigUint::one();
        loop {
            let p = BigUint::gen_prime(half, rng);
            let q = BigUint::gen_prime(half, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            // gcd(n, (p-1)(q-1)) must be 1 — guaranteed for same-size
            // primes, but check anyway.
            if n.gcd(&p1.mul(&q1)) != one {
                continue;
            }
            let lambda = p1.lcm(&q1);
            let n_squared = n.mul(&n);
            // μ = (L(g^λ mod n²))⁻¹ mod n; with g = n+1 this is λ⁻¹? No:
            // L((n+1)^λ mod n²) = λ mod n, so μ = λ⁻¹ mod n.
            let Some(mu) = lambda.rem(&n).mod_inverse(&n) else {
                continue;
            };
            let public = PaillierPublicKey { n, n_squared };
            let private = PaillierPrivateKey {
                lambda,
                mu,
                public: public.clone(),
            };
            return (public, private);
        }
    }
}

impl PaillierPublicKey {
    /// The modulus `n` (messages live in `Z_n`).
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Encrypt `m` (taken mod `n`).
    pub fn encrypt(&self, m: &BigUint, rng: &mut impl RngCore) -> PaillierCiphertext {
        let m = m.rem(&self.n);
        // r uniform in [1, n) with gcd(r, n) = 1 (overwhelming for an RSA
        // modulus; retry regardless).
        let r = loop {
            let r = BigUint::rand_below(&self.n, rng);
            if !r.is_zero() && r.gcd(&self.n) == BigUint::one() {
                break r;
            }
        };
        // c = (1 + m·n) · r^n mod n²
        let gm = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let rn = r.mod_exp(&self.n, &self.n_squared);
        PaillierCiphertext(gm.mod_mul(&rn, &self.n_squared))
    }

    /// Encrypt a `u64` convenience wrapper.
    pub fn encrypt_u64(&self, m: u64, rng: &mut impl RngCore) -> PaillierCiphertext {
        self.encrypt(&BigUint::from_u64(m), rng)
    }

    /// Homomorphic addition: `E(m₁) ⊕ E(m₂) = E(m₁ + m₂ mod n)`.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mod_mul(&b.0, &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `E(m)^k = E(k·m mod n)`.
    pub fn scalar_mul(&self, a: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mod_exp(k, &self.n_squared))
    }

    /// The encryption of zero with fixed randomness 1 — the neutral
    /// element for folds. (Not semantically hiding; used only as an
    /// accumulator seed, immediately absorbed by real ciphertexts.)
    pub fn neutral(&self) -> PaillierCiphertext {
        PaillierCiphertext(BigUint::one())
    }
}

impl PaillierPrivateKey {
    /// The matching public key.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypt.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        let n = &self.public.n;
        let n2 = &self.public.n_squared;
        let x = c.0.mod_exp(&self.lambda, n2);
        // L(x) = (x - 1) / n
        let l = x.sub(&BigUint::one()).divrem(n).0;
        l.mod_mul(&self.mu, n)
    }

    /// Decrypt to `u64` (panics if the plaintext overflows — test aid).
    pub fn decrypt_u64(&self, c: &PaillierCiphertext) -> u64 {
        self.decrypt(c).to_u64().expect("plaintext exceeds u64")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn keys() -> (PaillierPublicKey, PaillierPrivateKey) {
        let mut rng = StdRng::seed_from_u64(42);
        Paillier::keygen(256, &mut rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (pk, sk) = keys();
        let mut rng = StdRng::seed_from_u64(1);
        for m in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let c = pk.encrypt_u64(m, &mut rng);
            assert_eq!(sk.decrypt_u64(&c), m);
        }
    }

    #[test]
    fn encryption_is_probabilistic() {
        let (pk, _) = keys();
        let mut rng = StdRng::seed_from_u64(2);
        let c1 = pk.encrypt_u64(7, &mut rng);
        let c2 = pk.encrypt_u64(7, &mut rng);
        assert_ne!(c1, c2);
    }

    #[test]
    fn additive_homomorphism() {
        let (pk, sk) = keys();
        let mut rng = StdRng::seed_from_u64(3);
        let a = pk.encrypt_u64(1234, &mut rng);
        let b = pk.encrypt_u64(8766, &mut rng);
        assert_eq!(sk.decrypt_u64(&pk.add(&a, &b)), 10_000);
    }

    #[test]
    fn scalar_homomorphism() {
        let (pk, sk) = keys();
        let mut rng = StdRng::seed_from_u64(4);
        let a = pk.encrypt_u64(111, &mut rng);
        let c = pk.scalar_mul(&a, &BigUint::from_u64(9));
        assert_eq!(sk.decrypt_u64(&c), 999);
    }

    #[test]
    fn fold_many_values() {
        let (pk, sk) = keys();
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<u64> = (1..=50).collect();
        let sum_ct = values
            .iter()
            .map(|&v| pk.encrypt_u64(v, &mut rng))
            .fold(pk.neutral(), |acc, c| pk.add(&acc, &c));
        assert_eq!(sk.decrypt_u64(&sum_ct), values.iter().sum::<u64>());
    }

    #[test]
    fn addition_wraps_mod_n() {
        let (pk, sk) = keys();
        let mut rng = StdRng::seed_from_u64(6);
        let n = pk.modulus().clone();
        let m = n.sub(&BigUint::one()); // n-1
        let a = pk.encrypt(&m, &mut rng);
        let b = pk.encrypt_u64(2, &mut rng);
        // (n-1) + 2 ≡ 1 (mod n)
        assert_eq!(sk.decrypt(&pk.add(&a, &b)), BigUint::one());
    }
}

//! # pds — the Personal Data Server ecosystem, in one crate
//!
//! Umbrella crate of the reproduction of *Managing Personal Data with
//! Strong Privacy Guarantees* (EDBT 2014 tutorial). It re-exports every
//! subsystem under a stable module path and hosts the runnable examples
//! and cross-crate integration tests.
//!
//! ## Quick start
//!
//! ```
//! use pds::core::{AccessContext, Pds, Purpose};
//!
//! let mut my_pds = Pds::for_tests(1, "alice").unwrap();
//! my_pds
//!     .ingest_email(0, "dr.martin", "results", "blood test all clear")
//!     .unwrap();
//! let me = AccessContext::new("alice", Purpose::PersonalUse);
//! let hits = my_pds.search(&me, &["blood"], 5).unwrap();
//! assert_eq!(hits.len(), 1);
//! ```
//!
//! ## Layer map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`flash`] | `pds-flash` | NAND simulator + log-structured storage |
//! | [`mcu`] | `pds-mcu` | RAM-budgeted secure-MCU model, tokens |
//! | [`crypto`] | `pds-crypto` | bignum, Paillier, symmetric enc, Merkle, Bloom |
//! | [`search`] | `pds-search` | embedded full-text engine (Part II) |
//! | [`db`] | `pds-db` | embedded relational DB (Part II) |
//! | [`core`] | `pds-core` | the Personal Data Server (Part I) |
//! | [`global`] | `pds-global` | secure global computation (Part III) |
//! | [`sync`] | `pds-sync` | folder sync, Folk-IS, trusted cells (Perspectives) |
//! | [`fleet`] | `pds-fleet` | multi-token fleet runtime + store-and-forward bus |

pub use pds_core as core;
pub use pds_crypto as crypto;
pub use pds_db as db;
pub use pds_flash as flash;
pub use pds_fleet as fleet;
pub use pds_global as global;
pub use pds_mcu as mcu;
pub use pds_obs as obs;
pub use pds_search as search;
pub use pds_sync as sync;

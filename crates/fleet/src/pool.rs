//! The fleet worker pool: parallel phases over `!Send` tokens.
//!
//! A [`pds_core::Pds`] is deliberately `!Send` — it models one secure
//! microcontroller with `Rc`-shared flash and RAM. The pool therefore
//! never moves a token between threads: each long-lived worker thread
//! *builds and owns* a contiguous shard of tokens (the factory closure
//! runs inside the worker), and phases are shipped to the shards as
//! boxed jobs. [`TokenPool::map`] is a **phase barrier**: it runs one
//! closure over every token in parallel and returns the results merged
//! in token-index order, so the output is identical no matter how many
//! workers the fleet was sharded across.
//!
//! Determinism contract: the phase closure must derive any randomness
//! it needs from the token index (per-token RNG streams), never from
//! shared mutable state — then `map(f)` at 1, 2, and 8 workers is
//! bit-for-bit identical.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::sched::FleetError;

type Job<T> = Box<dyn FnOnce(&mut Vec<(usize, T)>) + Send>;

/// A pool of worker threads, each owning one shard of tokens.
pub struct TokenPool<T> {
    txs: Vec<Sender<Job<T>>>,
    handles: Vec<JoinHandle<()>>,
    n_tokens: usize,
}

impl<T: 'static> TokenPool<T> {
    /// Build `n_tokens` tokens sharded over `workers` threads. The
    /// factory runs inside the owning worker (tokens may be `!Send`);
    /// shards are contiguous index ranges, but since every per-token
    /// computation is a pure function of the token index, the shard
    /// layout is unobservable in any result.
    ///
    /// A refused thread spawn (rlimits on a big fleet) surfaces as
    /// [`FleetError::SpawnFailed`] instead of aborting the process; the
    /// workers already started are hung up and joined before returning.
    pub fn build<F>(n_tokens: usize, workers: usize, factory: F) -> Result<Self, FleetError>
    where
        F: Fn(usize) -> T + Send + Clone + 'static,
    {
        let workers = workers.max(1).min(n_tokens.max(1));
        let mut txs = Vec::with_capacity(workers);
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(workers);
        let chunk = n_tokens.div_ceil(workers);
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n_tokens);
            let factory = factory.clone();
            let (tx, rx): (Sender<Job<T>>, Receiver<Job<T>>) = channel();
            let spawned = std::thread::Builder::new()
                .name(format!("fleet-worker-{w}"))
                .spawn(move || {
                    let mut shard: Vec<(usize, T)> = (lo..hi).map(|i| (i, factory(i))).collect();
                    for job in rx {
                        job(&mut shard);
                    }
                });
            match spawned {
                Ok(handle) => {
                    txs.push(tx);
                    handles.push(handle);
                }
                Err(source) => {
                    txs.clear();
                    for h in handles.drain(..) {
                        let _ = h.join();
                    }
                    return Err(FleetError::SpawnFailed { worker: w, source });
                }
            }
        }
        Ok(TokenPool {
            txs,
            handles,
            n_tokens,
        })
    }

    /// Number of tokens hosted.
    pub fn len(&self) -> usize {
        self.n_tokens
    }

    /// True when the pool hosts no tokens.
    pub fn is_empty(&self) -> bool {
        self.n_tokens == 0
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Phase barrier: run `f` on every token in parallel, then return
    /// the results ordered by token index.
    pub fn map<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, &mut T) -> R + Send + Clone + 'static,
    {
        self.map_in_trace(None, f)
    }

    /// [`TokenPool::map`] inside a distributed-trace phase: each worker
    /// sets `ctx` as its thread's trace context for the duration of the
    /// shard, so root spans the phase closure opens (and every
    /// instrumented layer underneath) are contributed to the shared
    /// trace sink, then flushed *before* the barrier releases — by the
    /// time this returns, the driver can drain the whole phase. With
    /// `ctx: None` this is exactly `map`.
    pub fn map_in_trace<R, F>(&self, ctx: Option<pds_obs::TraceContext>, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, &mut T) -> R + Send + Clone + 'static,
    {
        let (out_tx, out_rx) = channel::<Vec<(usize, R)>>();
        for tx in &self.txs {
            let f = f.clone();
            let out_tx = out_tx.clone();
            let job: Job<T> = Box::new(move |shard| {
                if ctx.is_some() {
                    pds_obs::trace::set_context(ctx);
                }
                let results = shard.iter_mut().map(|(i, t)| (*i, f(*i, t))).collect();
                if ctx.is_some() {
                    pds_obs::trace::set_context(None);
                    pds_obs::trace::flush_contributions();
                }
                // The driver only hangs up after every send; ignore its
                // early death (a panic elsewhere already unwinds us).
                let _ = out_tx.send(results);
            });
            tx.send(job).expect("fleet worker alive");
        }
        drop(out_tx);
        let mut merged: Vec<(usize, R)> = Vec::with_capacity(self.n_tokens);
        for batch in &out_rx {
            merged.extend(batch);
        }
        assert_eq!(merged.len(), self.n_tokens, "a fleet worker panicked");
        merged.sort_by_key(|(i, _)| *i);
        merged.into_iter().map(|(_, r)| r).collect()
    }
}

impl<T> Drop for TokenPool<T> {
    fn drop(&mut self) {
        self.txs.clear(); // hang up: workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    // A deliberately !Send token stand-in.
    struct NotSendToken {
        idx: usize,
        state: Rc<std::cell::RefCell<u64>>,
    }

    fn factory(i: usize) -> NotSendToken {
        NotSendToken {
            idx: i,
            state: Rc::new(std::cell::RefCell::new(i as u64 * 10)),
        }
    }

    #[test]
    fn map_returns_token_index_order() {
        let pool = TokenPool::build(17, 4, factory).unwrap();
        let out = pool.map(|i, t| {
            assert_eq!(i, t.idx);
            *t.state.borrow_mut() += 1;
            *t.state.borrow()
        });
        assert_eq!(out.len(), 17);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 10 + 1);
        }
    }

    #[test]
    fn state_persists_across_phases() {
        let pool = TokenPool::build(8, 3, factory).unwrap();
        pool.map(|_, t| *t.state.borrow_mut() += 5);
        let out = pool.map(|_, t| *t.state.borrow());
        assert_eq!(out[2], 25);
    }

    #[test]
    fn result_is_identical_across_worker_counts() {
        let run = |workers| {
            let pool = TokenPool::build(23, workers, factory).unwrap();
            pool.map(|i, _| i as u64 * 3 + 1)
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn map_in_trace_contributes_every_token_span() {
        let ctx = pds_obs::TraceContext {
            trace_id: 0x9000_0001,
            parent_span: 3,
        };
        let pool = TokenPool::build(6, 3, factory).unwrap();
        let out = pool.map_in_trace(Some(ctx), |i, _| {
            let g = pds_obs::trace::span("token.work");
            g.set("token", i);
            i
        });
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        // The barrier already released ⇒ everything is in the sink.
        let mut got = pds_obs::trace::drain_trace(0x9000_0001);
        assert_eq!(got.len(), 6);
        got.sort_by_key(|(_, s)| s.attr_u64("token"));
        assert!(got.iter().all(|(p, _)| *p == 3));
        assert_eq!(got[5].1.attr_u64("token"), Some(5));
    }

    #[test]
    fn more_workers_than_tokens_is_fine() {
        let pool = TokenPool::build(2, 16, factory).unwrap();
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.map(|i, _| i).len(), 2);
    }
}

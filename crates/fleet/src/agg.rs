//! [TNP14] secure aggregation re-hosted as a phased fleet job.
//!
//! The single-threaded reference (`pds_global::secure_agg`) iterates a
//! `Population` in one loop. Here the same protocol runs the way the
//! tutorial describes the ecosystem: N tokens sharded over a worker
//! pool, every token↔SSI exchange carried by the store-and-forward
//! [`MailboxBus`](crate::bus::MailboxBus), and the run organized as
//! three phases with barriers between them:
//!
//! 1. **Collection** — every token computes its policy-gated
//!    contributions, encrypts them probabilistically and uploads the
//!    ciphertexts (one bus message per tuple). The SSI ingests whatever
//!    arrives through `Ssi::collect_tagged`, keyed by the bus message
//!    ids, so a weakly-malicious SSI's drop verdicts are per-message
//!    and thread-count independent.
//! 2. **Reduction** — the SSI partitions the opaque ciphertext set and
//!    mails each partition to whichever token the round-robin schedule
//!    picks ("whichever token happens to connect"); serving tokens
//!    decrypt, partially aggregate, re-encrypt and mail the partials
//!    back, shrinking the set geometrically until one partition remains.
//! 3. **Distribution** — the final token's released result is mailed to
//!    every token in the fleet.
//!
//! Determinism: all randomness is derived by hashing `(seed, domain
//! tag, index)` — per-token encryption streams, per-partition
//! re-encryption streams, bus delivery schedule, SSI verdicts. Workers
//! only ever compute pure per-token functions between barriers and the
//! driver merges their outputs in token/partition order, so a run's
//! every observable (result, leakage ledger, bus stats) is identical at
//! any worker count.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pds_core::Pds;
use pds_crypto::{Ciphertext, SymmetricKey};
use pds_global::query::Measure;
use pds_global::ssi::{Leakage, Ssi, SsiThreat};
use pds_global::tuple::{ProtocolTuple, TupleKind};
use pds_global::{GlobalError, GroupByQuery, ProtocolStats};
use pds_obs::rng::{Rng, SeedableRng, StdRng};

use pds_obs::{FleetTrace, MetricsDelta};

use crate::bus::{mix, Addr, BusConfig, BusStats, MailboxBus};
use crate::pool::TokenPool;
use crate::telemetry::{
    Collector, CollectorStats, FleetHealth, HealthEngine, TelemetryConfig, TelemetryMsg,
};
use crate::trace::FleetTraceBuilder;
pub use pds_global::secure_agg::OnTamper;

const TAG_TOKEN: u64 = 0x464C_5454_4F4B_4E01; // per-token data stream
const TAG_ENC: u64 = 0x464C_5445_4E43_5202; // per-token encryption stream
const TAG_REDUCE: u64 = 0x464C_5452_4544_5503; // per-partition re-encryption

/// An RNG stream derived from `(seed, tag, index)` — statistically
/// independent per index, identical across runs and worker counts.
pub fn derived_rng(seed: u64, tag: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(mix(seed, tag, index, 0))
}

/// Shape of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet size.
    pub tokens: usize,
    /// Worker threads hosting the token shards.
    pub workers: usize,
    /// Master seed: token data, crypto streams, bus schedule, SSI
    /// verdicts all derive from it.
    pub seed: u64,
    /// Tuples one token can absorb per connection (reduction fan-in).
    pub partition_size: usize,
    /// Simulated link latency per token connection, in microseconds
    /// (the cost a worker pays to talk to one weakly-connected token —
    /// overlapped across workers, which is where fleet speedup comes
    /// from).
    pub link_latency_us: u64,
    /// Safety valve for bus draining (virtual ticks per phase).
    pub max_bus_ticks: u64,
    /// Stitch a causal [`FleetTrace`] of the run (per-token spans, per
    /// message hop histories, critical path in bus ticks).
    pub trace: bool,
    /// Run the in-band telemetry plane: every token mails its metric
    /// deltas over this same bus to the collector role, which folds
    /// them into tick-indexed rollups and a [`FleetHealth`] verdict
    /// (see [`crate::telemetry`]). `None` leaves the bus schedule
    /// exactly as it would be without telemetry.
    pub telemetry: Option<TelemetryConfig>,
    /// Fabric profile.
    pub bus: BusConfig,
}

impl FleetConfig {
    /// A fleet with the default weak-connectivity fabric.
    pub fn new(tokens: usize, workers: usize, seed: u64) -> Self {
        FleetConfig {
            tokens,
            workers,
            seed,
            partition_size: 64,
            link_latency_us: 0,
            max_bus_ticks: 1_000_000,
            trace: false,
            telemetry: None,
            bus: BusConfig {
                seed,
                ..BusConfig::default()
            },
        }
    }

    /// The shared protocol key of this fleet (issued at manufacture,
    /// derived here from the seed so every run agrees on it).
    pub fn protocol_key(&self) -> SymmetricKey {
        SymmetricKey::from_seed(&self.seed.to_le_bytes())
    }
}

/// Build token `i` of the fleet: a slim PDS with 1–3 synthetic bank
/// records whose categories follow the same skewed draw as
/// `Population::synthetic`, from a per-token derived stream.
pub fn build_token(cfg: &FleetConfig, domain: &[String], i: usize) -> Pds {
    let mut rng = derived_rng(cfg.seed, TAG_TOKEN, i as u64);
    let mut pds = Pds::slim(i as u64, &format!("user-{i}")).expect("slim token");
    let records = rng.gen_range(1..=3);
    for day in 0..records {
        let a = rng.gen_range(0..domain.len());
        let b = rng.gen_range(0..domain.len());
        let cat = &domain[a.min(b)];
        pds.ingest_bank(day, cat, rng.gen_range(100..10_000), "shop")
            .expect("synthetic ingest");
    }
    pds.enroll(cfg.protocol_key());
    pds
}

/// Build the fleet's worker pool (setup cost — excluded from protocol
/// timing, exactly like manufacturing tokens is excluded from query
/// latency).
pub fn build_fleet(cfg: &FleetConfig, query: &GroupByQuery) -> TokenPool<Pds> {
    let cfg = cfg.clone();
    let domain = query.domain.clone();
    TokenPool::build(cfg.tokens, cfg.workers, move |i| {
        build_token(&cfg, &domain, i)
    })
}

/// Everything one fleet aggregation run produced.
#[derive(Debug, Clone)]
pub struct FleetAggReport {
    /// The released `(group, aggregate)` result.
    pub result: Vec<(String, u64)>,
    /// Plaintext reference over the same fleet (what a trusted
    /// centralized server would have computed).
    pub expected: Vec<(String, u64)>,
    /// Protocol work/traffic accounting.
    pub stats: ProtocolStats,
    /// Bus delivery counters.
    pub bus: BusStats,
    /// What the SSI observed.
    pub leakage: Leakage,
    /// Tokens that received the final result in the distribution phase.
    pub result_coverage: usize,
    /// The stitched causal trace of the run ([`FleetConfig::trace`]).
    pub trace: Option<FleetTrace>,
    /// What the in-band telemetry plane observed
    /// ([`FleetConfig::telemetry`]).
    pub telemetry: Option<TelemetrySummary>,
    /// Wall-clock of the timed protocol phases (collection + reduction
    /// + distribution; excludes pool construction).
    pub elapsed: Duration,
}

/// What one run's telemetry plane collected — every field a pure
/// function of the seed and config, bit-identical at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// The collector's cumulative rollup (evicted history + live ring).
    pub rollup: MetricsDelta,
    /// The standard SLO set evaluated over the rollup.
    pub health: FleetHealth,
    /// Bus ticks the final telemetry flush took to converge (the lag
    /// between the last protocol phase and a complete rollup).
    pub convergence_ticks: u64,
    /// Telemetry envelopes mailed over the bus.
    pub msgs: u64,
    /// Telemetry payload bytes mailed over the bus.
    pub bytes: u64,
    /// Live tick buckets in the collector's ring.
    pub buckets: usize,
    /// Distinct endpoints that reported.
    pub sources: usize,
    /// Collector fold accounting.
    pub stats: CollectorStats,
}

/// Driver-side half of the telemetry plane: cuts per-token deltas into
/// bus envelopes and folds the driver's own bus-stats observations
/// (SSI-side, collector co-located — no bus hop for those).
struct TelemetryDriver {
    collector: Collector,
    msgs: u64,
    bytes: u64,
    last_bus: BusStats,
}

impl TelemetryDriver {
    fn new(cfg: TelemetryConfig) -> Self {
        TelemetryDriver {
            collector: Collector::new(cfg),
            msgs: 0,
            bytes: 0,
            last_bus: BusStats::default(),
        }
    }

    /// Mail one endpoint's delta to the collector (skips empty deltas).
    fn emit(&mut self, bus: &mut MailboxBus, source: Addr, delta: MetricsDelta) {
        if delta.is_empty() {
            return;
        }
        let payload = TelemetryMsg {
            source: source.code(),
            tick: bus.now(),
            delta,
        }
        .encode();
        self.msgs += 1;
        self.bytes += payload.len() as u64;
        bus.send(source, Addr::Collector, payload);
    }

    /// Drain delivered envelopes and fold the bus's own counters since
    /// the previous fold (so the rollup sees the fabric itself).
    fn observe_phase(&mut self, bus: &mut MailboxBus) {
        self.collector.drain_bus(bus);
        let cur = bus.stats();
        let delta = cur.since(&self.last_bus).as_delta();
        self.last_bus = cur;
        if !delta.is_empty() {
            self.collector.fold(&TelemetryMsg {
                source: Addr::Ssi.code(),
                tick: bus.now(),
                delta,
            });
        }
    }
}

impl FleetAggReport {
    /// Protocol throughput: fleet size over the timed phases.
    pub fn tokens_per_sec(&self, tokens: usize) -> f64 {
        tokens as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// One token's collection-phase output: `(ciphertexts, crypto ops)`.
type CollectOut = Result<(Vec<Vec<u8>>, u64), GlobalError>;

/// Reduction work shipped per serving token: `(partition idx, chunks)`.
type PartitionWork = BTreeMap<usize, Vec<(u32, Vec<Vec<u8>>)>>;

fn sleep_link(us: u64) {
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
}

/// Open this token's phase-work span — only when the worker is inside a
/// traced phase, so untraced runs pay nothing. Instrumented layers the
/// closure calls into (flash IO counters, RAM high-water) attach their
/// spans underneath it.
fn token_span(i: usize) -> Option<pds_obs::SpanGuard> {
    pds_obs::trace::context().is_some().then(|| {
        let g = pds_obs::trace::span(&format!("token.{i}"));
        g.set("token", i);
        g
    })
}

/// What a serving token mails back for one partition.
enum ReduceOut {
    Final(Vec<(String, u64)>),
    Partials(Vec<Vec<u8>>),
}

struct TokenReduce {
    parts: Vec<(u32, ReduceOut)>,
    tuples: u64,
    crypto_ops: u64,
}

/// `round ‖ partition index ‖ chunk count ‖ chunks` — the work unit the
/// SSI mails to a serving token.
fn encode_partition(round: u32, pi: u32, chunks: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&pi.to_le_bytes());
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    for c in chunks {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(c);
    }
    out
}

fn decode_partition(bytes: &[u8]) -> Option<(u32, u32, Vec<Vec<u8>>)> {
    let round = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?);
    let pi = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    let n = u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
    let mut off = 12;
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        let len = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        chunks.push(bytes.get(off..off + len)?.to_vec());
        off += len;
    }
    Some((round, pi, chunks))
}

/// Run the [TNP14] secure aggregation protocol over an already-built
/// fleet. The pool must have been built by [`build_fleet`] with the
/// same `cfg` and `query`.
pub fn fleet_secure_aggregation(
    cfg: &FleetConfig,
    query: &GroupByQuery,
    pool: &TokenPool<Pds>,
    threat: SsiThreat,
    on_tamper: OnTamper,
) -> Result<FleetAggReport, GlobalError> {
    assert!(cfg.partition_size >= 2);
    assert_eq!(pool.len(), cfg.tokens);
    let key = cfg.protocol_key();
    let ssi = Ssi::new(threat, cfg.seed);
    let mut bus = MailboxBus::new(cfg.bus);
    let mut tele = cfg.telemetry.map(TelemetryDriver::new);
    let mut stats = ProtocolStats::default();
    let mut ftb = cfg.trace.then(|| {
        let mut b = FleetTraceBuilder::new("fleet.agg");
        // No worker-count attribute: the stitched trace must be
        // bit-identical no matter how the fleet was sharded.
        b.set("tokens", cfg.tokens);
        b.set("seed", cfg.seed);
        b
    });

    // Plaintext reference over the same fleet (untimed; used by tests
    // and E14 to check exactness).
    let q = query.clone();
    let expected: Vec<(String, u64)> = {
        let per_token = pool.map(move |_, pds| contributions_of(pds, &q));
        let mut groups: BTreeMap<String, u64> = BTreeMap::new();
        for r in per_token {
            for (g, v) in r? {
                *groups.entry(g).or_insert(0) += v;
            }
        }
        groups.into_iter().collect()
    };

    // pds-lint: allow(det.time) — wall-clock feeds only the reported
    // throughput stat; no protocol value derives from it
    let t0 = Instant::now();

    // Phase 1: collection. Each token encrypts its contributions with
    // its own derived stream; sequence numbers are (token << 24 | k),
    // unique fleet-wide without any shared counter.
    // pds-lint: allow(det.time) — stats-only phase timing (pds-obs histogram)
    let phase0 = Instant::now();
    let ctx = ftb.as_mut().map(|b| b.begin_phase("phase.collect", &bus));
    let q = query.clone();
    let latency = cfg.link_latency_us;
    let enc_key = key.clone();
    let seed = cfg.seed;
    let wire: Vec<CollectOut> = pool.map_in_trace(ctx, move |i, pds| {
        let _span = token_span(i);
        sleep_link(latency);
        let mut rng = derived_rng(seed, TAG_ENC, i as u64);
        let mut cts = Vec::new();
        let mut ops = 0u64;
        for (k, (g, v)) in contributions_of(pds, &q)?.into_iter().enumerate() {
            let t = ProtocolTuple::real(&g, v, ((i as u64) << 24) | k as u64);
            cts.push(enc_key.encrypt_prob(&t.encode(), &mut rng).0);
            ops += 1;
        }
        Ok((cts, ops))
    });
    for (i, r) in wire.into_iter().enumerate() {
        let (cts, ops) = r?;
        stats.token_crypto_ops += ops;
        let mut delta = tele.as_ref().map(|_| MetricsDelta::new());
        for ct in cts {
            if let Some(d) = delta.as_mut() {
                d.add("tok.contributions", 1);
                d.observe("tok.payload_bytes", ct.len() as u64);
            }
            bus.send_in(Addr::Token(i), Addr::Ssi, ct, ctx);
        }
        if let (Some(td), Some(mut d)) = (tele.as_mut(), delta) {
            if ops > 0 {
                d.add("tok.crypto_ops", ops);
            }
            td.emit(&mut bus, Addr::Token(i), d);
        }
    }
    bus.run_until_quiet(cfg.max_bus_ticks);
    if let Some(td) = tele.as_mut() {
        td.observe_phase(&mut bus);
    }
    if let Some(b) = ftb.as_mut() {
        b.end_phase(&mut bus);
    }
    let arrived: Vec<(u64, Vec<u8>)> = bus
        .drain_inbox(Addr::Ssi)
        .into_iter()
        .map(|m| (m.id, m.payload))
        .collect();
    let mut tuples = ssi.collect_tagged(arrived);
    stats.ssi_bytes += tuples.iter().map(|t| t.len() as u64).sum::<u64>();
    pds_obs::histogram("fleet.phase.collect_us").observe(phase0.elapsed().as_micros() as u64);

    // Phase 2: reduction tree, partitions mailed to round-robin serving
    // tokens. Same convergence guard as the reference implementation:
    // when a round fails to shrink the set, the SSI doubles the
    // partition size.
    // pds-lint: allow(det.time) — stats-only phase timing (pds-obs histogram)
    let phase0 = Instant::now();
    let mut partition_size = cfg.partition_size;
    let mut next_token = 0usize;
    let mut round = 0u32;
    let result = 'reduce: loop {
        let before_round = tuples.len();
        let parts = ssi.partition(std::mem::take(&mut tuples), partition_size);
        if parts.is_empty() {
            break Vec::new(); // population contributed nothing at all
        }
        let ctx = ftb
            .as_mut()
            .map(|b| b.begin_phase(&format!("phase.reduce.{round}"), &bus));
        let last_round = parts.len() <= 1;
        let mut serving: Vec<usize> = Vec::with_capacity(parts.len());
        for (pi, part) in parts.iter().enumerate() {
            next_token = (next_token + 1) % cfg.tokens.max(1);
            serving.push(next_token);
            stats.rounds += 1;
            bus.send_in(
                Addr::Ssi,
                Addr::Token(next_token),
                encode_partition(round, pi as u32, part),
                ctx,
            );
        }
        bus.run_until_quiet(cfg.max_bus_ticks);
        let mut work: PartitionWork = BTreeMap::new();
        for &t in serving.iter().collect::<BTreeSet<_>>() {
            for m in bus.drain_inbox(Addr::Token(t)) {
                if let Some((r, pi, chunks)) = decode_partition(&m.payload) {
                    if r == round {
                        work.entry(t).or_default().push((pi, chunks));
                    }
                }
            }
        }
        let work = Arc::new(work);
        let red_key = key.clone();
        let seed = cfg.seed;
        let this_round = round;
        let reduced: Vec<Result<TokenReduce, GlobalError>> = pool.map_in_trace(ctx, move |i, _| {
            let _span = token_span(i);
            let mut out = TokenReduce {
                parts: Vec::new(),
                tuples: 0,
                crypto_ops: 0,
            };
            let Some(mine) = work.get(&i) else {
                return Ok(out);
            };
            for (pi, chunks) in mine {
                sleep_link(latency); // one connection per served partition
                let mut groups: BTreeMap<String, u64> = BTreeMap::new();
                for ct in chunks {
                    out.tuples += 1;
                    out.crypto_ops += 1;
                    let Some(plain) = red_key.decrypt(&Ciphertext(ct.clone())) else {
                        match on_tamper {
                            OnTamper::Abort => {
                                return Err(GlobalError::TamperingDetected(
                                    "unauthentic ciphertext in partition",
                                ))
                            }
                            OnTamper::Skip => continue,
                        }
                    };
                    let t = ProtocolTuple::decode(&plain)
                        .ok_or(GlobalError::Protocol("undecodable tuple"))?;
                    if t.kind == TupleKind::Real {
                        *groups.entry(t.group).or_insert(0) += t.value;
                    }
                }
                if last_round {
                    out.parts
                        .push((*pi, ReduceOut::Final(groups.into_iter().collect())));
                } else {
                    let mut rng = derived_rng(
                        seed,
                        TAG_REDUCE,
                        (u64::from(this_round) << 32) | u64::from(*pi),
                    );
                    let mut partials = Vec::with_capacity(groups.len());
                    for (k, (g, v)) in groups.into_iter().enumerate() {
                        let seq = (1u64 << 60)
                            | (u64::from(this_round) << 40)
                            | (u64::from(*pi) << 20)
                            | k as u64;
                        let t = ProtocolTuple::real(&g, v, seq);
                        out.crypto_ops += 1;
                        partials.push(red_key.encrypt_prob(&t.encode(), &mut rng).0);
                    }
                    out.parts.push((*pi, ReduceOut::Partials(partials)));
                }
            }
            Ok(out)
        });
        // Ordered merge: partial results re-enter the SSI store in
        // partition order, so the next round's tuple list is identical
        // at any worker count.
        let mut merged: Vec<(u32, usize, ReduceOut)> = Vec::new();
        for (t, r) in reduced.into_iter().enumerate() {
            let r = r?;
            stats.token_tuples += r.tuples;
            stats.token_crypto_ops += r.crypto_ops;
            if let Some(td) = tele.as_mut() {
                // The serving token reports its reduction work before
                // the round's outcome moves — so even the final round
                // (which breaks out below) is observed.
                let mut d = MetricsDelta::new();
                if r.tuples > 0 {
                    d.add("tok.tuples_served", r.tuples);
                }
                if r.crypto_ops > 0 {
                    d.add("tok.crypto_ops", r.crypto_ops);
                }
                td.emit(&mut bus, Addr::Token(t), d);
            }
            for (pi, o) in r.parts {
                merged.push((pi, t, o));
            }
        }
        merged.sort_by_key(|(pi, _, _)| *pi);
        for (_, t, o) in merged {
            match o {
                ReduceOut::Final(groups) => {
                    if let Some(b) = ftb.as_mut() {
                        b.end_phase(&mut bus);
                    }
                    break 'reduce groups;
                }
                ReduceOut::Partials(cts) => {
                    for ct in cts {
                        stats.ssi_bytes += ct.len() as u64;
                        bus.send_in(Addr::Token(t), Addr::Ssi, ct, ctx);
                    }
                }
            }
        }
        bus.run_until_quiet(cfg.max_bus_ticks);
        if let Some(b) = ftb.as_mut() {
            b.end_phase(&mut bus);
        }
        if let Some(td) = tele.as_mut() {
            td.observe_phase(&mut bus);
        }
        // Reduction partials bypass `collect_tagged` (parity with the
        // reference implementation: the threat behavior applies to the
        // collection phase; afterwards the SSI must keep the reduction
        // moving or be caught by the missing result).
        tuples = bus
            .drain_inbox(Addr::Ssi)
            .into_iter()
            .map(|m| m.payload)
            .collect();
        if tuples.is_empty() && !last_round {
            break Vec::new();
        }
        if tuples.len() >= before_round {
            partition_size *= 2;
        }
        round += 1;
    };
    pds_obs::histogram("fleet.phase.reduce_us").observe(phase0.elapsed().as_micros() as u64);

    // Phase 3: result distribution — the released aggregate is mailed
    // to every token.
    // pds-lint: allow(det.time) — stats-only phase timing (pds-obs histogram)
    let phase0 = Instant::now();
    let ctx = ftb
        .as_mut()
        .map(|b| b.begin_phase("phase.distribute", &bus));
    let result_wire: Vec<u8> = result
        .iter()
        .flat_map(|(g, v)| {
            let mut row = (g.len() as u32).to_le_bytes().to_vec();
            row.extend_from_slice(g.as_bytes());
            row.extend_from_slice(&v.to_le_bytes());
            row
        })
        .collect();
    for i in 0..cfg.tokens {
        bus.send_in(Addr::Ssi, Addr::Token(i), result_wire.clone(), ctx);
    }
    bus.run_until_quiet(cfg.max_bus_ticks);
    let mut got_result: Vec<bool> = Vec::with_capacity(cfg.tokens);
    for i in 0..cfg.tokens {
        got_result.push(!bus.drain_inbox(Addr::Token(i)).is_empty());
    }
    let got = Arc::new(got_result);
    let got2 = got.clone();
    let downloads: Vec<bool> = pool.map_in_trace(ctx, move |i, _| {
        let _span = token_span(i);
        if got2[i] {
            sleep_link(latency); // the download connection
            true
        } else {
            false
        }
    });
    let result_coverage = downloads.iter().filter(|b| **b).count();
    if let Some(b) = ftb.as_mut() {
        b.end_phase(&mut bus);
    }
    pds_obs::histogram("fleet.phase.distribute_us").observe(phase0.elapsed().as_micros() as u64);

    // Final telemetry flush: every token that downloaded the result
    // confirms it in-band, the last envelopes converge on the collector,
    // and the standard SLO set is evaluated over the rollup.
    let mut telemetry = None;
    if let Some(mut td) = tele.take() {
        for (i, got) in downloads.iter().enumerate() {
            if *got {
                let mut d = MetricsDelta::new();
                d.add("tok.result_received", 1);
                td.emit(&mut bus, Addr::Token(i), d);
            }
        }
        let convergence_ticks = bus.run_until_quiet(cfg.max_bus_ticks);
        td.observe_phase(&mut bus);
        let mut selfd = MetricsDelta::new();
        selfd.add("telemetry.msgs", td.msgs);
        selfd.add("telemetry.bytes", td.bytes);
        if td.collector.stats().decode_errors > 0 {
            selfd.add(
                "telemetry.decode_errors",
                td.collector.stats().decode_errors,
            );
        }
        td.collector.fold(&TelemetryMsg {
            source: Addr::Collector.code(),
            tick: bus.now(),
            delta: selfd,
        });
        let rollup = td.collector.total();
        let health = HealthEngine::standard().evaluate(&rollup);
        pds_obs::counter("telemetry.msgs").add(td.msgs);
        pds_obs::counter("telemetry.bytes").add(td.bytes);
        pds_obs::counter("telemetry.deltas_folded").add(td.collector.stats().deltas_folded);
        pds_obs::counter("telemetry.convergence_ticks").add(convergence_ticks);
        pds_obs::gauge("telemetry.sources").record_max(td.collector.sources() as u64);
        pds_obs::gauge("telemetry.healthy").set(u64::from(health.healthy));
        telemetry = Some(TelemetrySummary {
            rollup,
            health,
            convergence_ticks,
            msgs: td.msgs,
            bytes: td.bytes,
            buckets: td.collector.buckets().len(),
            sources: td.collector.sources(),
            stats: td.collector.stats(),
        });
    }

    let elapsed = t0.elapsed();
    stats.publish("fleet_secure_aggregation");
    bus.publish();
    pds_obs::counter("fleet.runs").inc();
    pds_obs::gauge("fleet.tokens").set(cfg.tokens as u64);
    pds_obs::gauge("fleet.workers").set(cfg.workers as u64);
    pds_obs::gauge("fleet.result_coverage").set(result_coverage as u64);

    Ok(FleetAggReport {
        result,
        expected,
        stats,
        bus: bus.stats(),
        leakage: ssi.leakage(),
        result_coverage,
        trace: ftb.map(FleetTraceBuilder::finish),
        telemetry,
        elapsed,
    })
}

/// One token's policy-gated contributions to `query`.
fn contributions_of(
    pds: &mut Pds,
    query: &GroupByQuery,
) -> Result<Vec<(String, u64)>, GlobalError> {
    let ctx = query.context();
    let groups = match query.measure {
        Measure::Sum => pds.group_contribution(
            &ctx,
            &query.table,
            &query.group_column,
            &query.measure_column,
        )?,
        Measure::Count => pds.group_count(&ctx, &query.table, &query.group_column)?,
    };
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(workers: usize) -> (FleetConfig, GroupByQuery) {
        let mut cfg = FleetConfig::new(24, workers, 42);
        cfg.partition_size = 8;
        (cfg, GroupByQuery::bank_by_category())
    }

    #[test]
    fn fleet_result_matches_plaintext_reference() {
        let (cfg, q) = small_cfg(3);
        let pool = build_fleet(&cfg, &q);
        let rep = fleet_secure_aggregation(
            &cfg,
            &q,
            &pool,
            SsiThreat::HonestButCurious,
            OnTamper::Abort,
        )
        .unwrap();
        assert_eq!(rep.result, rep.expected);
        assert!(!rep.result.is_empty());
        assert!(rep.stats.rounds >= 2, "reduction tree has depth");
        assert_eq!(rep.result_coverage, 24, "everyone got the result");
        assert_eq!(rep.bus.expired, 0);
    }

    #[test]
    fn traced_run_stitches_phases_and_keeps_the_result() {
        let (mut cfg, q) = small_cfg(3);
        cfg.trace = true;
        let pool = build_fleet(&cfg, &q);
        let rep = fleet_secure_aggregation(
            &cfg,
            &q,
            &pool,
            SsiThreat::HonestButCurious,
            OnTamper::Abort,
        )
        .unwrap();
        assert_eq!(rep.result, rep.expected);
        let t = rep.trace.expect("trace requested");
        let phases = t.phases();
        assert!(phases.len() >= 3, "collect + reduce rounds + distribute");
        assert_eq!(phases[0].name, "phase.collect");
        assert_eq!(phases.last().unwrap().name, "phase.distribute");
        assert_eq!(t.critical_path().len(), phases.len());
        assert!(t.total_ticks() > 0);
        // Every token worked in the collection phase and its RAM
        // high-water rode along on the stitched token span.
        assert_eq!(
            t.per_token_in_phase("phase.collect", "mcu.ram.peak_bytes")
                .len(),
            24
        );
    }

    #[test]
    fn probabilistic_encryption_leaks_no_equality_classes() {
        let (cfg, q) = small_cfg(2);
        let pool = build_fleet(&cfg, &q);
        let rep = fleet_secure_aggregation(
            &cfg,
            &q,
            &pool,
            SsiThreat::HonestButCurious,
            OnTamper::Abort,
        )
        .unwrap();
        assert!(rep.leakage.equality_class_sizes.is_empty());
        assert!(rep.leakage.tuples_seen > 0);
    }

    #[test]
    fn forged_ciphertexts_abort_loudly() {
        let (cfg, q) = small_cfg(2);
        let pool = build_fleet(&cfg, &q);
        let err = fleet_secure_aggregation(
            &cfg,
            &q,
            &pool,
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.0,
                forge_rate: 0.2,
            },
            OnTamper::Abort,
        )
        .unwrap_err();
        assert!(matches!(err, GlobalError::TamperingDetected(_)));
    }

    #[test]
    fn covert_drops_shrink_the_unchecked_result() {
        let mut cfg = FleetConfig::new(48, 2, 7);
        cfg.partition_size = 8;
        let q = GroupByQuery::bank_by_category();
        let pool = build_fleet(&cfg, &q);
        let rep = fleet_secure_aggregation(
            &cfg,
            &q,
            &pool,
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.5,
                forge_rate: 0.0,
            },
            OnTamper::Skip,
        )
        .unwrap();
        let sum = |r: &[(String, u64)]| r.iter().map(|(_, v)| *v).sum::<u64>();
        assert!(sum(&rep.result) < sum(&rep.expected));
    }

    #[test]
    fn partition_wire_format_round_trips() {
        let chunks = vec![vec![1u8, 2], vec![], vec![9; 70]];
        let enc = encode_partition(3, 11, &chunks);
        assert_eq!(decode_partition(&enc), Some((3, 11, chunks)));
        assert_eq!(decode_partition(&enc[..enc.len() - 1]), None);
        assert_eq!(decode_partition(&[]), None);
    }
}

//! [TNP14] secure aggregation re-hosted as an event-driven fleet job.
//!
//! The single-threaded reference (`pds_global::secure_agg`) iterates a
//! `Population` in one loop. Here the same protocol runs the way the
//! tutorial describes the ecosystem: N tokens sharded over the
//! event-driven [`FleetScheduler`](crate::sched::FleetScheduler), every
//! token↔SSI exchange carried by the store-and-forward
//! [`MailboxBus`](crate::bus::MailboxBus), and the run organized as
//! three phases driven by one logical tick loop:
//!
//! 1. **Collection** — a whole-fleet phase obligation: every token is
//!    woken (in bounded waves under the resident cap), computes its
//!    policy-gated contributions, encrypts them probabilistically and
//!    uploads the ciphertexts (one bus message per tuple). The SSI
//!    ingests whatever arrives through `Ssi::collect_tagged`, keyed by
//!    the bus message ids, so a weakly-malicious SSI's drop verdicts
//!    are per-message and thread-count independent.
//! 2. **Reduction** — the SSI partitions the opaque ciphertext set and
//!    mails each partition to whichever token the round-robin schedule
//!    picks ("whichever token happens to connect"); the tick loop wakes
//!    *only* the serving tokens, each as its partition mail lands —
//!    decrypt, partially aggregate, re-encrypt, mail the partials back
//!    within the same loop — shrinking the set geometrically until one
//!    partition remains.
//! 3. **Distribution** — the final released result is mailed to every
//!    token; tokens wake batch-by-batch as the weak fabric delivers.
//!
//! Between wakes a token's state can be evicted to a sparse flash
//! snapshot (or dropped and deterministically rebuilt), so resident RAM
//! is bounded by [`FleetConfig::resident_cap`], not by fleet size.
//!
//! Determinism: all randomness is derived by hashing `(seed, domain
//! tag, index)` — per-token encryption streams, per-partition
//! re-encryption streams, bus delivery schedule, SSI verdicts. The tick
//! loop, batch boundaries and eviction schedule live on the
//! single-threaded driver, and workers only ever compute pure per-token
//! functions on dispatched batches merged in token order — so a run's
//! every observable (result, leakage ledger, bus and scheduler stats)
//! is identical at any worker or shard count.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use pds_core::{Pds, PdsHibernation};
use pds_crypto::{Ciphertext, SymmetricKey};
use pds_global::query::Measure;
use pds_global::ssi::{Leakage, Ssi, SsiThreat};
use pds_global::tuple::{ProtocolTuple, TupleKind};
use pds_global::{GlobalError, GroupByQuery, ProtocolStats};
use pds_obs::rng::{Rng, SeedableRng, StdRng};

use pds_obs::{FleetTrace, MetricsDelta};

use crate::bus::{mix, Addr, BusConfig, BusStats, MailboxBus};
use crate::sched::{pump, FleetError, FleetScheduler, SchedStats, TokenHost};
use crate::telemetry::{
    Collector, CollectorStats, FleetHealth, HealthEngine, TelemetryConfig, TelemetryMsg,
};
use crate::trace::FleetTraceBuilder;
pub use pds_global::secure_agg::OnTamper;

const TAG_TOKEN: u64 = 0x464C_5454_4F4B_4E01; // per-token data stream
const TAG_ENC: u64 = 0x464C_5445_4E43_5202; // per-token encryption stream
const TAG_REDUCE: u64 = 0x464C_5452_4544_5503; // per-partition re-encryption

/// An RNG stream derived from `(seed, tag, index)` — statistically
/// independent per index, identical across runs and worker counts.
pub fn derived_rng(seed: u64, tag: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(mix(seed, tag, index, 0))
}

/// What happens to a token's state when the scheduler evicts it to stay
/// under [`FleetConfig::resident_cap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictPolicy {
    /// Hibernate to persistent state (sparse flash snapshot + recovery
    /// manifests) and revive losslessly on the next wake.
    Hibernate,
    /// Drop entirely and rebuild from the deterministic factory on the
    /// next wake — sound because every fleet token is a pure function
    /// of `(seed, index)`, and the cheapest way to park 100k+ idle
    /// tokens.
    Rebuild,
}

/// Shape of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet size.
    pub tokens: usize,
    /// Worker threads hosting the token shards.
    pub workers: usize,
    /// Master seed: token data, crypto streams, bus schedule, SSI
    /// verdicts all derive from it.
    pub seed: u64,
    /// Tuples one token can absorb per connection (reduction fan-in).
    pub partition_size: usize,
    /// Simulated link latency per token connection, in microseconds
    /// (the cost a worker pays to talk to one weakly-connected token —
    /// overlapped across workers, which is where fleet speedup comes
    /// from).
    pub link_latency_us: u64,
    /// Safety valve for bus draining (virtual ticks per phase).
    pub max_bus_ticks: u64,
    /// Most tokens live at once; `None` keeps the whole fleet resident
    /// (the pool-era behavior). A bounded cap is what lets a 100k–1M
    /// fleet run in bounded RAM — watch the `fleet.resident_tokens`
    /// gauge and `sched.*` counters.
    pub resident_cap: Option<usize>,
    /// What eviction does to a token's state (ignored while the fleet
    /// fits under the cap).
    pub evict: EvictPolicy,
    /// Ticks the event loop accumulates deliveries before dispatching a
    /// wake batch (1 = wake the moment mail lands; larger values
    /// amortize shard round-trips on a slow fabric).
    pub batch_ticks: u64,
    /// Stitch a causal [`FleetTrace`] of the run (per-token spans, per
    /// message hop histories, critical path in bus ticks).
    pub trace: bool,
    /// Run the in-band telemetry plane: every token mails its metric
    /// deltas over this same bus to the collector role, which folds
    /// them into tick-indexed rollups and a [`FleetHealth`] verdict
    /// (see [`crate::telemetry`]). `None` leaves the bus schedule
    /// exactly as it would be without telemetry.
    pub telemetry: Option<TelemetryConfig>,
    /// Fabric profile.
    pub bus: BusConfig,
}

impl FleetConfig {
    /// A fleet with the default weak-connectivity fabric.
    pub fn new(tokens: usize, workers: usize, seed: u64) -> Self {
        FleetConfig {
            tokens,
            workers,
            seed,
            partition_size: 64,
            link_latency_us: 0,
            max_bus_ticks: 1_000_000,
            resident_cap: None,
            evict: EvictPolicy::Hibernate,
            batch_ticks: 4,
            trace: false,
            telemetry: None,
            bus: BusConfig {
                seed,
                ..BusConfig::default()
            },
        }
    }

    /// The shared protocol key of this fleet (issued at manufacture,
    /// derived here from the seed so every run agrees on it).
    pub fn protocol_key(&self) -> SymmetricKey {
        SymmetricKey::from_seed(&self.seed.to_le_bytes())
    }

    /// The effective resident-token ceiling.
    pub fn cap(&self) -> usize {
        self.resident_cap.unwrap_or(self.tokens).max(1)
    }
}

/// Build token `i` of the fleet: a slim PDS with 1–3 synthetic bank
/// records whose categories follow the same skewed draw as
/// `Population::synthetic`, from a per-token derived stream.
pub fn build_token(cfg: &FleetConfig, domain: &[String], i: usize) -> Pds {
    let mut rng = derived_rng(cfg.seed, TAG_TOKEN, i as u64);
    let mut pds = Pds::slim(i as u64, &format!("user-{i}")).expect("slim token");
    let records = rng.gen_range(1..=3);
    for day in 0..records {
        let a = rng.gen_range(0..domain.len());
        let b = rng.gen_range(0..domain.len());
        let cat = &domain[a.min(b)];
        pds.ingest_bank(day, cat, rng.gen_range(100..10_000), "shop")
            .expect("synthetic ingest");
    }
    pds.enroll(cfg.protocol_key());
    pds
}

/// The [`TokenHost`] of a [TNP14] fleet: builds tokens from the derived
/// per-index streams and parks evicted ones according to
/// [`FleetConfig::evict`].
#[derive(Clone)]
pub struct PdsHost {
    cfg: FleetConfig,
    domain: Vec<String>,
}

impl TokenHost for PdsHost {
    type Token = Pds;
    type Sleep = PdsHibernation;

    fn create(&self, i: usize) -> Pds {
        build_token(&self.cfg, &self.domain, i)
    }

    fn hibernate(&self, _i: usize, token: Pds) -> Option<PdsHibernation> {
        match self.cfg.evict {
            EvictPolicy::Rebuild => None,
            EvictPolicy::Hibernate => token.hibernate().ok(),
        }
    }

    fn wake(&self, i: usize, sleep: PdsHibernation) -> Pds {
        // A clean hibernation always wakes; a corrupt one degrades to a
        // deterministic factory rebuild rather than sinking the run.
        match Pds::wake(sleep) {
            Ok((pds, _)) => pds,
            Err(_) => self.create(i),
        }
    }
}

/// The scheduler hosting one [TNP14] fleet.
pub type Fleet = FleetScheduler<PdsHost>;

/// Build the fleet's scheduler (setup cost — excluded from protocol
/// timing, exactly like manufacturing tokens is excluded from query
/// latency). With an unbounded cap the fleet is manufactured up-front;
/// under a bounded cap tokens materialize lazily on first wake.
pub fn build_fleet(cfg: &FleetConfig, query: &GroupByQuery) -> Result<Fleet, FleetError> {
    let host = PdsHost {
        cfg: cfg.clone(),
        domain: query.domain.clone(),
    };
    let cap = cfg.cap();
    let mut fleet = FleetScheduler::build(cfg.tokens, cfg.workers, cap, host)?;
    if cap >= cfg.tokens {
        fleet.warm();
    }
    Ok(fleet)
}

/// Everything one fleet aggregation run produced.
#[derive(Debug, Clone)]
pub struct FleetAggReport {
    /// The released `(group, aggregate)` result.
    pub result: Vec<(String, u64)>,
    /// Plaintext reference over the same fleet (what a trusted
    /// centralized server would have computed), folded from the same
    /// collection-phase contributions the tokens encrypt.
    pub expected: Vec<(String, u64)>,
    /// Protocol work/traffic accounting.
    pub stats: ProtocolStats,
    /// Bus delivery counters.
    pub bus: BusStats,
    /// Scheduler accounting for this run (wakes, evictions, rebuilds,
    /// peak residency).
    pub sched: SchedStats,
    /// Bus ticks each protocol phase took (`collect`, `reduce.N`…,
    /// `distribute`) — the causal length of the run on the virtual
    /// fabric, cheap to record at any scale (unlike a full trace).
    pub phase_ticks: Vec<(String, u64)>,
    /// What the SSI observed.
    pub leakage: Leakage,
    /// Tokens that received the final result in the distribution phase.
    pub result_coverage: usize,
    /// The stitched causal trace of the run ([`FleetConfig::trace`]).
    pub trace: Option<FleetTrace>,
    /// What the in-band telemetry plane observed
    /// ([`FleetConfig::telemetry`]).
    pub telemetry: Option<TelemetrySummary>,
    /// Wall-clock of the timed protocol phases (collection + reduction
    /// + distribution; excludes scheduler construction).
    pub elapsed: Duration,
}

/// What one run's telemetry plane collected — every field a pure
/// function of the seed and config, bit-identical at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// The collector's cumulative rollup (evicted history + live ring).
    pub rollup: MetricsDelta,
    /// The standard SLO set evaluated over the rollup.
    pub health: FleetHealth,
    /// Bus ticks the final telemetry flush took to converge (near zero
    /// now that envelopes drain inside the phases' own tick loops).
    pub convergence_ticks: u64,
    /// Telemetry envelopes mailed over the bus.
    pub msgs: u64,
    /// Telemetry payload bytes mailed over the bus.
    pub bytes: u64,
    /// Live tick buckets in the collector's ring.
    pub buckets: usize,
    /// Distinct endpoints that reported.
    pub sources: usize,
    /// Collector fold accounting.
    pub stats: CollectorStats,
}

/// Driver-side half of the telemetry plane: cuts per-token deltas into
/// bus envelopes and folds the driver's own bus-stats observations
/// (SSI-side, collector co-located — no bus hop for those).
struct TelemetryDriver {
    collector: Collector,
    msgs: u64,
    bytes: u64,
    last_bus: BusStats,
}

impl TelemetryDriver {
    fn new(cfg: TelemetryConfig) -> Self {
        TelemetryDriver {
            collector: Collector::new(cfg),
            msgs: 0,
            bytes: 0,
            last_bus: BusStats::default(),
        }
    }

    /// Mail one endpoint's delta to the collector (skips empty deltas).
    fn emit(&mut self, bus: &mut MailboxBus, source: Addr, delta: MetricsDelta) {
        if delta.is_empty() {
            return;
        }
        let payload = TelemetryMsg {
            source: source.code(),
            tick: bus.now(),
            delta,
        }
        .encode();
        self.msgs += 1;
        self.bytes += payload.len() as u64;
        bus.send(source, Addr::Collector, payload);
    }

    /// Drain delivered envelopes and fold the bus's own counters since
    /// the previous fold (so the rollup sees the fabric itself).
    fn observe_phase(&mut self, bus: &mut MailboxBus) {
        self.collector.drain_bus(bus);
        let cur = bus.stats();
        let delta = cur.since(&self.last_bus).as_delta();
        self.last_bus = cur;
        if !delta.is_empty() {
            self.collector.fold(&TelemetryMsg {
                source: Addr::Ssi.code(),
                tick: bus.now(),
                delta,
            });
        }
    }
}

impl FleetAggReport {
    /// Protocol throughput: fleet size over the timed phases.
    pub fn tokens_per_sec(&self, tokens: usize) -> f64 {
        tokens as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Total bus ticks across the protocol phases (the run's causal
    /// length on the virtual fabric).
    pub fn causal_ticks(&self) -> u64 {
        self.phase_ticks.iter().map(|(_, t)| *t).sum()
    }
}

/// One token's collection-phase output:
/// `(plaintext contributions, ciphertexts, crypto ops)`.
type CollectOut = Result<(Vec<(String, u64)>, Vec<Vec<u8>>, u64), GlobalError>;

fn sleep_link(us: u64) {
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
}

/// Open this token's phase-work span — only when the worker is inside a
/// traced phase, so untraced runs pay nothing. Instrumented layers the
/// closure calls into (flash IO counters, RAM high-water) attach their
/// spans underneath it.
fn token_span(i: usize) -> Option<pds_obs::SpanGuard> {
    pds_obs::trace::context().is_some().then(|| {
        let g = pds_obs::trace::span(&format!("token.{i}"));
        g.set("token", i);
        g
    })
}

/// What a serving token mails back for one partition.
enum ReduceOut {
    Final(Vec<(String, u64)>),
    Partials(Vec<Vec<u8>>),
}

struct TokenReduce {
    parts: Vec<(u32, ReduceOut)>,
    tuples: u64,
    crypto_ops: u64,
}

/// `round ‖ partition index ‖ chunk count ‖ chunks` — the work unit the
/// SSI mails to a serving token.
fn encode_partition(round: u32, pi: u32, chunks: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&pi.to_le_bytes());
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    for c in chunks {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(c);
    }
    out
}

fn decode_partition(bytes: &[u8]) -> Option<(u32, u32, Vec<Vec<u8>>)> {
    let round = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?);
    let pi = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    let n = u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
    let mut off = 12;
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        let len = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        chunks.push(bytes.get(off..off + len)?.to_vec());
        off += len;
    }
    Some((round, pi, chunks))
}

/// Run the [TNP14] secure aggregation protocol over an already-built
/// fleet. The scheduler must have been built by [`build_fleet`] with
/// the same `cfg` and `query`.
pub fn fleet_secure_aggregation(
    cfg: &FleetConfig,
    query: &GroupByQuery,
    fleet: &mut Fleet,
    threat: SsiThreat,
    on_tamper: OnTamper,
) -> Result<FleetAggReport, GlobalError> {
    assert!(cfg.partition_size >= 2);
    assert_eq!(fleet.len(), cfg.tokens);
    let key = cfg.protocol_key();
    let ssi = Ssi::new(threat, cfg.seed);
    let mut bus = MailboxBus::new(cfg.bus);
    let mut tele = cfg.telemetry.map(TelemetryDriver::new);
    let mut stats = ProtocolStats::default();
    let sched0 = fleet.stats();
    let mut phase_ticks: Vec<(String, u64)> = Vec::new();
    let mut ftb = cfg.trace.then(|| {
        let mut b = FleetTraceBuilder::new("fleet.agg");
        // No worker-count attribute: the stitched trace must be
        // bit-identical no matter how the fleet was sharded.
        b.set("tokens", cfg.tokens);
        b.set("seed", cfg.seed);
        b
    });

    // pds-lint: allow(det.time) — wall-clock feeds only the reported
    // throughput stat; no protocol value derives from it
    let t0 = Instant::now();

    // Phase 1: collection — the whole-fleet obligation, dispatched in
    // bounded waves under the resident cap. Each token encrypts its
    // contributions with its own derived stream; sequence numbers are
    // (token << 24 | k), unique fleet-wide without any shared counter.
    // The plaintext reference is folded from the very same per-token
    // contributions (no second pass over the fleet).
    // pds-lint: allow(det.time) — stats-only phase timing (pds-obs histogram)
    let phase0 = Instant::now();
    let tick0 = bus.now();
    let ctx = ftb.as_mut().map(|b| b.begin_phase("phase.collect", &bus));
    let q = query.clone();
    let latency = cfg.link_latency_us;
    let enc_key = key.clone();
    let seed = cfg.seed;
    let collected: Vec<(usize, CollectOut)> = fleet.dispatch_all(ctx, move |i, pds, _mail| {
        let _span = token_span(i);
        sleep_link(latency);
        let mut rng = derived_rng(seed, TAG_ENC, i as u64);
        let groups = contributions_of(pds, &q)?;
        let mut cts = Vec::with_capacity(groups.len());
        let mut ops = 0u64;
        for (k, (g, v)) in groups.iter().enumerate() {
            let t = ProtocolTuple::real(g, *v, ((i as u64) << 24) | k as u64);
            cts.push(enc_key.encrypt_prob(&t.encode(), &mut rng).0);
            ops += 1;
        }
        Ok((groups, cts, ops))
    });
    let mut reference: BTreeMap<String, u64> = BTreeMap::new();
    for (i, r) in collected {
        let (groups, cts, ops) = r?;
        for (g, v) in groups {
            *reference.entry(g).or_insert(0) += v;
        }
        stats.token_crypto_ops += ops;
        let mut delta = tele.as_ref().map(|_| MetricsDelta::new());
        for ct in cts {
            if let Some(d) = delta.as_mut() {
                d.add("tok.contributions", 1);
                d.observe("tok.payload_bytes", ct.len() as u64);
            }
            bus.send_in(Addr::Token(i), Addr::Ssi, ct, ctx);
        }
        if let (Some(td), Some(mut d)) = (tele.as_mut(), delta) {
            if ops > 0 {
                d.add("tok.crypto_ops", ops);
            }
            td.emit(&mut bus, Addr::Token(i), d);
        }
    }
    let expected: Vec<(String, u64)> = reference.into_iter().collect();
    bus.run_until_quiet(cfg.max_bus_ticks);
    if let Some(td) = tele.as_mut() {
        td.observe_phase(&mut bus);
    }
    if let Some(b) = ftb.as_mut() {
        b.end_phase(&mut bus);
    }
    phase_ticks.push(("collect".to_string(), bus.now() - tick0));
    let arrived: Vec<(u64, Vec<u8>)> = bus
        .drain_inbox(Addr::Ssi)
        .into_iter()
        .map(|m| (m.id, m.payload))
        .collect();
    let mut tuples = ssi.collect_tagged(arrived);
    stats.ssi_bytes += tuples.iter().map(|t| t.len() as u64).sum::<u64>();
    pds_obs::histogram("fleet.phase.collect_us").observe(phase0.elapsed().as_micros() as u64);

    // Phase 2: reduction tree, partitions mailed to round-robin serving
    // tokens. The tick loop wakes each serving token as its partition
    // mail lands and its partials re-enter the bus inside the same
    // loop; a round ends when nothing is in flight. Same convergence
    // guard as the reference implementation: when a round fails to
    // shrink the set, the SSI doubles the partition size.
    // pds-lint: allow(det.time) — stats-only phase timing (pds-obs histogram)
    let phase0 = Instant::now();
    let mut partition_size = cfg.partition_size;
    let mut next_token = 0usize;
    let mut round = 0u32;
    let result = 'reduce: loop {
        let before_round = tuples.len();
        let parts = ssi.partition(std::mem::take(&mut tuples), partition_size);
        if parts.is_empty() {
            break Vec::new(); // population contributed nothing at all
        }
        let tick0 = bus.now();
        let ctx = ftb
            .as_mut()
            .map(|b| b.begin_phase(&format!("phase.reduce.{round}"), &bus));
        let last_round = parts.len() <= 1;
        for (pi, part) in parts.iter().enumerate() {
            next_token = (next_token + 1) % cfg.tokens.max(1);
            stats.rounds += 1;
            bus.send_in(
                Addr::Ssi,
                Addr::Token(next_token),
                encode_partition(round, pi as u32, part),
                ctx,
            );
        }
        let red_key = key.clone();
        let seed = cfg.seed;
        let this_round = round;
        let reduce_f = move |i: usize,
                             _pds: &mut Pds,
                             mail: Vec<crate::bus::BusMsg>|
              -> Result<TokenReduce, GlobalError> {
            let _span = token_span(i);
            let mut out = TokenReduce {
                parts: Vec::new(),
                tuples: 0,
                crypto_ops: 0,
            };
            for m in mail {
                let Some((r, pi, chunks)) = decode_partition(&m.payload) else {
                    continue;
                };
                if r != this_round {
                    continue;
                }
                sleep_link(latency); // one connection per served partition
                let mut groups: BTreeMap<String, u64> = BTreeMap::new();
                for ct in &chunks {
                    out.tuples += 1;
                    out.crypto_ops += 1;
                    let Some(plain) = red_key.decrypt(&Ciphertext(ct.clone())) else {
                        match on_tamper {
                            OnTamper::Abort => {
                                return Err(GlobalError::TamperingDetected(
                                    "unauthentic ciphertext in partition",
                                ))
                            }
                            OnTamper::Skip => continue,
                        }
                    };
                    let t = ProtocolTuple::decode(&plain)
                        .ok_or(GlobalError::Protocol("undecodable tuple"))?;
                    if t.kind == TupleKind::Real {
                        *groups.entry(t.group).or_insert(0) += t.value;
                    }
                }
                if last_round {
                    out.parts
                        .push((pi, ReduceOut::Final(groups.into_iter().collect())));
                } else {
                    let mut rng = derived_rng(
                        seed,
                        TAG_REDUCE,
                        (u64::from(this_round) << 32) | u64::from(pi),
                    );
                    let mut partials = Vec::with_capacity(groups.len());
                    for (k, (g, v)) in groups.into_iter().enumerate() {
                        let seq = (1u64 << 60)
                            | (u64::from(this_round) << 40)
                            | (u64::from(pi) << 20)
                            | k as u64;
                        let t = ProtocolTuple::real(&g, v, seq);
                        out.crypto_ops += 1;
                        partials.push(red_key.encrypt_prob(&t.encode(), &mut rng).0);
                    }
                    out.parts.push((pi, ReduceOut::Partials(partials)));
                }
            }
            Ok(out)
        };
        // Ordered merge per wake batch: a batch's partial results
        // re-enter the SSI store in partition order, and batch
        // boundaries are a pure function of the seeded bus schedule —
        // identical at any worker count.
        let mut final_groups: Option<Vec<(String, u64)>> = None;
        pump(
            &mut bus,
            fleet,
            ctx,
            cfg.max_bus_ticks,
            cfg.batch_ticks,
            reduce_f,
            |bus,
             outs: Vec<(usize, Result<TokenReduce, GlobalError>)>|
             -> Result<(), GlobalError> {
                let mut merged: Vec<(u32, usize, ReduceOut)> = Vec::new();
                for (t, r) in outs {
                    let r = r?;
                    stats.token_tuples += r.tuples;
                    stats.token_crypto_ops += r.crypto_ops;
                    if let Some(td) = tele.as_mut() {
                        // The serving token reports its reduction work
                        // in-band, inside the same tick loop — so even
                        // the final round is observed.
                        let mut d = MetricsDelta::new();
                        if r.tuples > 0 {
                            d.add("tok.tuples_served", r.tuples);
                        }
                        if r.crypto_ops > 0 {
                            d.add("tok.crypto_ops", r.crypto_ops);
                        }
                        td.emit(bus, Addr::Token(t), d);
                    }
                    for (pi, o) in r.parts {
                        merged.push((pi, t, o));
                    }
                }
                merged.sort_by_key(|(pi, _, _)| *pi);
                for (_, t, o) in merged {
                    match o {
                        ReduceOut::Final(groups) => {
                            final_groups = Some(groups);
                        }
                        ReduceOut::Partials(cts) => {
                            for ct in cts {
                                stats.ssi_bytes += ct.len() as u64;
                                bus.send_in(Addr::Token(t), Addr::Ssi, ct, ctx);
                            }
                        }
                    }
                }
                Ok(())
            },
        )?;
        if let Some(b) = ftb.as_mut() {
            b.end_phase(&mut bus);
        }
        if let Some(td) = tele.as_mut() {
            td.observe_phase(&mut bus);
        }
        phase_ticks.push((format!("reduce.{round}"), bus.now() - tick0));
        if let Some(groups) = final_groups {
            break 'reduce groups;
        }
        // Reduction partials bypass `collect_tagged` (parity with the
        // reference implementation: the threat behavior applies to the
        // collection phase; afterwards the SSI must keep the reduction
        // moving or be caught by the missing result).
        tuples = bus
            .drain_inbox(Addr::Ssi)
            .into_iter()
            .map(|m| m.payload)
            .collect();
        if tuples.is_empty() && !last_round {
            break Vec::new();
        }
        if tuples.len() >= before_round {
            partition_size *= 2;
        }
        round += 1;
    };
    pds_obs::histogram("fleet.phase.reduce_us").observe(phase0.elapsed().as_micros() as u64);

    // Phase 3: result distribution — the released aggregate is mailed
    // to every token; tokens wake batch-by-batch as the weak fabric
    // delivers, confirm the download in-band, and go back to sleep.
    // pds-lint: allow(det.time) — stats-only phase timing (pds-obs histogram)
    let phase0 = Instant::now();
    let tick0 = bus.now();
    let ctx = ftb
        .as_mut()
        .map(|b| b.begin_phase("phase.distribute", &bus));
    let result_wire: Vec<u8> = result
        .iter()
        .flat_map(|(g, v)| {
            let mut row = (g.len() as u32).to_le_bytes().to_vec();
            row.extend_from_slice(g.as_bytes());
            row.extend_from_slice(&v.to_le_bytes());
            row
        })
        .collect();
    for i in 0..cfg.tokens {
        bus.send_in(Addr::Ssi, Addr::Token(i), result_wire.clone(), ctx);
    }
    let mut result_coverage = 0usize;
    pump(
        &mut bus,
        fleet,
        ctx,
        cfg.max_bus_ticks,
        cfg.batch_ticks,
        move |i, _pds: &mut Pds, mail: Vec<crate::bus::BusMsg>| {
            let _span = token_span(i);
            if mail.is_empty() {
                false
            } else {
                sleep_link(latency); // the download connection
                true
            }
        },
        |bus, outs: Vec<(usize, bool)>| -> Result<(), GlobalError> {
            for (i, got) in outs {
                if got {
                    result_coverage += 1;
                    if let Some(td) = tele.as_mut() {
                        let mut d = MetricsDelta::new();
                        d.add("tok.result_received", 1);
                        td.emit(bus, Addr::Token(i), d);
                    }
                }
            }
            Ok(())
        },
    )?;
    if let Some(b) = ftb.as_mut() {
        b.end_phase(&mut bus);
    }
    phase_ticks.push(("distribute".to_string(), bus.now() - tick0));
    pds_obs::histogram("fleet.phase.distribute_us").observe(phase0.elapsed().as_micros() as u64);

    // Final telemetry flush: the last envelopes (download confirmations
    // already rode the distribution loop) converge on the collector and
    // the standard SLO set is evaluated over the rollup.
    let mut telemetry = None;
    if let Some(mut td) = tele.take() {
        let convergence_ticks = bus.run_until_quiet(cfg.max_bus_ticks);
        td.observe_phase(&mut bus);
        let mut selfd = MetricsDelta::new();
        selfd.add("telemetry.msgs", td.msgs);
        selfd.add("telemetry.bytes", td.bytes);
        if td.collector.stats().decode_errors > 0 {
            selfd.add(
                "telemetry.decode_errors",
                td.collector.stats().decode_errors,
            );
        }
        td.collector.fold(&TelemetryMsg {
            source: Addr::Collector.code(),
            tick: bus.now(),
            delta: selfd,
        });
        let rollup = td.collector.total();
        let health = HealthEngine::standard().evaluate(&rollup);
        pds_obs::counter("telemetry.msgs").add(td.msgs);
        pds_obs::counter("telemetry.bytes").add(td.bytes);
        pds_obs::counter("telemetry.deltas_folded").add(td.collector.stats().deltas_folded);
        pds_obs::counter("telemetry.convergence_ticks").add(convergence_ticks);
        pds_obs::gauge("telemetry.sources").record_max(td.collector.sources() as u64);
        pds_obs::gauge("telemetry.healthy").set(u64::from(health.healthy));
        telemetry = Some(TelemetrySummary {
            rollup,
            health,
            convergence_ticks,
            msgs: td.msgs,
            bytes: td.bytes,
            buckets: td.collector.buckets().len(),
            sources: td.collector.sources(),
            stats: td.collector.stats(),
        });
    }

    let elapsed = t0.elapsed();
    let sched = fleet.stats().since(&sched0);
    stats.publish("fleet_secure_aggregation");
    bus.publish();
    sched.publish();
    pds_obs::counter("fleet.runs").inc();
    pds_obs::gauge("fleet.tokens").set(cfg.tokens as u64);
    pds_obs::gauge("fleet.workers").set(cfg.workers as u64);
    pds_obs::gauge("fleet.result_coverage").set(result_coverage as u64);

    Ok(FleetAggReport {
        result,
        expected,
        stats,
        bus: bus.stats(),
        sched,
        phase_ticks,
        leakage: ssi.leakage(),
        result_coverage,
        trace: ftb.map(FleetTraceBuilder::finish),
        telemetry,
        elapsed,
    })
}

/// One token's policy-gated contributions to `query`.
fn contributions_of(
    pds: &mut Pds,
    query: &GroupByQuery,
) -> Result<Vec<(String, u64)>, GlobalError> {
    let ctx = query.context();
    let groups = match query.measure {
        Measure::Sum => pds.group_contribution(
            &ctx,
            &query.table,
            &query.group_column,
            &query.measure_column,
        )?,
        Measure::Count => pds.group_count(&ctx, &query.table, &query.group_column)?,
    };
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(workers: usize) -> (FleetConfig, GroupByQuery) {
        let mut cfg = FleetConfig::new(24, workers, 42);
        cfg.partition_size = 8;
        (cfg, GroupByQuery::bank_by_category())
    }

    fn run(cfg: &FleetConfig, q: &GroupByQuery) -> FleetAggReport {
        let mut fleet = build_fleet(cfg, q).unwrap();
        fleet_secure_aggregation(
            cfg,
            q,
            &mut fleet,
            SsiThreat::HonestButCurious,
            OnTamper::Abort,
        )
        .unwrap()
    }

    #[test]
    fn fleet_result_matches_plaintext_reference() {
        let (cfg, q) = small_cfg(3);
        let rep = run(&cfg, &q);
        assert_eq!(rep.result, rep.expected);
        assert!(!rep.result.is_empty());
        assert!(rep.stats.rounds >= 2, "reduction tree has depth");
        assert_eq!(rep.result_coverage, 24, "everyone got the result");
        assert_eq!(rep.bus.expired, 0);
        assert!(rep.causal_ticks() > 0);
        assert_eq!(rep.sched.peak_resident, 24, "unbounded cap: all live");
        assert_eq!(rep.sched.evictions, 0);
    }

    #[test]
    fn bounded_cap_evicts_and_still_agrees() {
        let (mut cfg, q) = small_cfg(3);
        let unbounded = run(&cfg, &q);
        cfg.resident_cap = Some(6);
        for policy in [EvictPolicy::Hibernate, EvictPolicy::Rebuild] {
            cfg.evict = policy;
            let rep = run(&cfg, &q);
            assert_eq!(rep.result, unbounded.result, "{policy:?} result drifted");
            assert_eq!(rep.expected, unbounded.expected);
            assert_eq!(rep.result_coverage, unbounded.result_coverage);
            assert!(rep.sched.evictions > 0, "{policy:?}: cap never bit");
            assert!(rep.sched.peak_resident <= 6, "{policy:?}: cap exceeded");
            match policy {
                EvictPolicy::Hibernate => assert!(rep.sched.sleep_wakes > 0),
                EvictPolicy::Rebuild => assert!(rep.sched.rebuilds > 0),
            }
        }
    }

    #[test]
    fn traced_run_stitches_phases_and_keeps_the_result() {
        let (mut cfg, q) = small_cfg(3);
        cfg.trace = true;
        let rep = run(&cfg, &q);
        assert_eq!(rep.result, rep.expected);
        let t = rep.trace.expect("trace requested");
        let phases = t.phases();
        assert!(phases.len() >= 3, "collect + reduce rounds + distribute");
        assert_eq!(phases[0].name, "phase.collect");
        assert_eq!(phases.last().unwrap().name, "phase.distribute");
        assert_eq!(t.critical_path().len(), phases.len());
        assert!(t.total_ticks() > 0);
        // Every token worked in the collection phase and its RAM
        // high-water rode along on the stitched token span.
        assert_eq!(
            t.per_token_in_phase("phase.collect", "mcu.ram.peak_bytes")
                .len(),
            24
        );
    }

    #[test]
    fn probabilistic_encryption_leaks_no_equality_classes() {
        let (cfg, q) = small_cfg(2);
        let rep = run(&cfg, &q);
        assert!(rep.leakage.equality_class_sizes.is_empty());
        assert!(rep.leakage.tuples_seen > 0);
    }

    #[test]
    fn forged_ciphertexts_abort_loudly() {
        let (cfg, q) = small_cfg(2);
        let mut fleet = build_fleet(&cfg, &q).unwrap();
        let err = fleet_secure_aggregation(
            &cfg,
            &q,
            &mut fleet,
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.0,
                forge_rate: 0.2,
            },
            OnTamper::Abort,
        )
        .unwrap_err();
        assert!(matches!(err, GlobalError::TamperingDetected(_)));
    }

    #[test]
    fn covert_drops_shrink_the_unchecked_result() {
        let mut cfg = FleetConfig::new(48, 2, 7);
        cfg.partition_size = 8;
        let q = GroupByQuery::bank_by_category();
        let mut fleet = build_fleet(&cfg, &q).unwrap();
        let rep = fleet_secure_aggregation(
            &cfg,
            &q,
            &mut fleet,
            SsiThreat::WeaklyMalicious {
                drop_rate: 0.5,
                forge_rate: 0.0,
            },
            OnTamper::Skip,
        )
        .unwrap();
        let sum = |r: &[(String, u64)]| r.iter().map(|(_, v)| *v).sum::<u64>();
        assert!(sum(&rep.result) < sum(&rep.expected));
    }

    #[test]
    fn partition_wire_format_round_trips() {
        let chunks = vec![vec![1u8, 2], vec![], vec![9; 70]];
        let enc = encode_partition(3, 11, &chunks);
        assert_eq!(decode_partition(&enc), Some((3, 11, chunks)));
        assert_eq!(decode_partition(&enc[..enc.len() - 1]), None);
        assert_eq!(decode_partition(&[]), None);
    }
}

//! The store-and-forward mailbox bus.
//!
//! The tutorial's tokens are "low powered, highly disconnected": they
//! cannot talk to each other directly, and they cannot even be assumed
//! reachable at any given moment. The SSI supplies the missing
//! *availability*: every message travels token → SSI store → token in
//! two hops, parked in a mailbox until each side happens to be online.
//!
//! The bus simulates that fabric in virtual time:
//!
//! * **Store-and-forward** — a message is first *uploaded* (needs the
//!   sender online), then sits in the SSI store, then is *downloaded*
//!   (needs the receiver online). Messages to or from the SSI itself
//!   skip the hop the SSI plays no part in.
//! * **Connectivity model** — token `t` is online at tick `k` with
//!   probability [`BusConfig::connectivity`], decided by hashing
//!   `(seed, t, k)`. The SSI is always online ("untrusted but
//!   available"). Tests can pin a token offline with
//!   [`MailboxBus::force_offline`].
//! * **At-least-once delivery** — each transmission attempt can be lost
//!   ([`BusConfig::loss_rate`]); the bus retries with exponential
//!   backoff up to [`BusConfig::max_attempts`] per hop, then counts the
//!   message as expired. A delivered message's acknowledgement can
//!   itself be lost ([`BusConfig::dup_rate`]), in which case the SSI
//!   re-delivers and the receiver's **dedup-by-message-id** set absorbs
//!   the duplicate.
//! * **Determinism** — every decision (online, loss, ack-loss) is a pure
//!   hash of `(seed, message id, tick/attempt)`; the bus itself is
//!   driven single-threaded by the fleet driver, so a run's delivery
//!   schedule depends only on the seed and the send sequence — never on
//!   worker-thread interleaving.
//!
//! Message ids are `sender code << 24 | per-sender sequence`, globally
//! unique and stable across runs; the SSI threat model keys its
//! drop/forge verdicts off these same ids (`Ssi::collect_tagged`).

use std::collections::{BTreeMap, BTreeSet};

use pds_obs::rng::SplitMix64;
use pds_obs::TraceContext;

const TAG_ONLINE: u64 = 0x4255_534F_4E4C_4E01; // "BUSONLN"
const TAG_LOSS: u64 = 0x4255_534C_4F53_5302; // "BUSLOSS"
const TAG_ACK: u64 = 0x4255_5341_434B_4C03; // "BUSACKL"

/// Mix `(seed, tag, a, b)` into a well-avalanched u64.
pub(crate) fn mix(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    let x = SplitMix64::new(seed ^ tag).next_u64();
    let y = SplitMix64::new(x ^ a).next_u64();
    SplitMix64::new(y ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Map a mixed u64 to the unit interval (canonical 53-bit construction).
pub(crate) fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A bus endpoint: the SSI store, one token, or the telemetry collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Addr {
    /// The always-online SSI store.
    Ssi,
    /// Token (or trusted cell) number `i`.
    Token(usize),
    /// The telemetry collector role — SSI-hosted (always online, like
    /// the store itself) but with its own inbox, so telemetry envelopes
    /// never interleave with protocol traffic
    /// (see [`telemetry`](crate::telemetry)).
    Collector,
}

/// [`Addr::Collector`]'s numeric code: reserved far above any realistic
/// token count, below `2^24` so message ids keep their
/// `code << 24 | seq` shape.
pub(crate) const COLLECTOR_CODE: u64 = 0x00F0_0000;

impl Addr {
    /// Stable numeric code (SSI = 0, token i = i + 1, collector a
    /// reserved high code), used in message ids and connectivity hashes.
    pub fn code(self) -> u64 {
        match self {
            Addr::Ssi => 0,
            Addr::Token(i) => i as u64 + 1,
            Addr::Collector => COLLECTOR_CODE,
        }
    }

    /// Endpoints hosted at the SSI (always online, no upload hop).
    fn ssi_hosted(self) -> bool {
        matches!(self, Addr::Ssi | Addr::Collector)
    }
}

/// Connectivity / reliability profile of the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Seed of every connectivity/loss decision.
    pub seed: u64,
    /// Probability a token is online at any given tick.
    pub connectivity: f64,
    /// Probability one transmission attempt is lost.
    pub loss_rate: f64,
    /// Probability the delivery acknowledgement is lost (forcing a
    /// re-delivery the receiver must dedup).
    pub dup_rate: f64,
    /// First retry backoff, in ticks; doubles per failed attempt.
    pub backoff_base: u64,
    /// Backoff ceiling, in ticks.
    pub backoff_cap: u64,
    /// Transmission attempts per hop before the message expires.
    /// Waiting for an offline endpoint does not consume attempts.
    pub max_attempts: u32,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            seed: 0,
            connectivity: 0.3,
            loss_rate: 0.05,
            dup_rate: 0.02,
            backoff_base: 1,
            backoff_cap: 16,
            max_attempts: 24,
        }
    }
}

impl BusConfig {
    /// A fully-connected, lossless fabric (unit tests, plaintext refs).
    pub fn reliable(seed: u64) -> Self {
        BusConfig {
            seed,
            connectivity: 1.0,
            loss_rate: 0.0,
            dup_rate: 0.0,
            ..Default::default()
        }
    }
}

/// One message on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMsg {
    /// Globally unique, run-stable id: `sender code << 24 | seq`.
    pub id: u64,
    /// Sender endpoint.
    pub from: Addr,
    /// Receiver endpoint.
    pub to: Addr,
    /// Distributed-trace context this message belongs to, if the send
    /// happened inside a traced protocol phase ([`MailboxBus::send_in`]).
    pub ctx: Option<TraceContext>,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// Delivery history of one traced message: everything the stitcher needs
/// to render the send → (re)delivery → ack edges of a hop span. Recorded
/// only for messages sent with a [`TraceContext`]; all fields are pure
/// functions of the seed and the send sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Message id.
    pub msg: u64,
    /// The trace/phase the send belonged to.
    pub ctx: TraceContext,
    /// Sender endpoint.
    pub from: Addr,
    /// Receiver endpoint.
    pub to: Addr,
    /// Tick the message was accepted at.
    pub send_tick: u64,
    /// Tick of the first delivery to the receiver (0 if never delivered).
    pub deliver_tick: u64,
    /// Transmission attempts burned across both store-and-forward hops.
    pub attempts: u64,
    /// Duplicate re-deliveries absorbed by the receiver's dedup set.
    pub redeliveries: u64,
    /// True when the message ran out of attempts before delivery.
    pub expired: bool,
    /// Payload size of the message, in bytes (each hop's share of
    /// [`BusStats::payload_bytes`]).
    pub payload_bytes: u64,
}

/// Delivery hop a message is currently waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hop {
    /// Waiting for the sender to upload to the SSI store.
    Upload,
    /// Parked at the SSI store, waiting for the receiver to download.
    Download,
    /// Delivered, but the ack was lost: one re-delivery is pending.
    Redeliver,
}

#[derive(Debug)]
struct Flight {
    msg: BusMsg,
    hop: Hop,
    attempts: u32,
    next_try: u64,
}

/// Delivery counters of one bus (exported uniformly as `bus.*` metrics
/// by [`MailboxBus::publish`] / [`BusStats::as_delta`], so rollups and
/// the health engine see the bus itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Messages accepted from senders.
    pub sent: u64,
    /// Messages handed to their receiver (first delivery only).
    pub delivered: u64,
    /// Transmission attempts that were lost and rescheduled.
    pub retries: u64,
    /// Re-deliveries discarded by the receiver's dedup set.
    pub duplicates: u64,
    /// Messages that ran out of attempts on a hop.
    pub expired: u64,
    /// Virtual ticks elapsed.
    pub ticks: u64,
    /// Ack losses that scheduled a re-delivery from the store.
    pub redeliveries: u64,
    /// Lost attempts that were rescheduled with exponential backoff.
    pub backoff_events: u64,
    /// Payload bytes accepted from senders.
    pub payload_bytes: u64,
}

impl BusStats {
    /// Canonical `(name, value)` export of every counter — the single
    /// source of the uniform `bus.*` metric names.
    pub fn named(&self) -> [(&'static str, u64); 9] {
        [
            ("bus.sent", self.sent),
            ("bus.deliveries", self.delivered),
            ("bus.losses", self.retries),
            ("bus.dedup_hits", self.duplicates),
            ("bus.expired", self.expired),
            ("bus.ticks", self.ticks),
            ("bus.redeliveries", self.redeliveries),
            ("bus.backoff_events", self.backoff_events),
            ("bus.payload_bytes", self.payload_bytes),
        ]
    }

    /// These counters as a mergeable [`MetricsDelta`].
    pub fn as_delta(&self) -> pds_obs::MetricsDelta {
        let mut d = pds_obs::MetricsDelta::new();
        for (name, v) in self.named() {
            if v > 0 {
                d.add(name, v);
            }
        }
        d
    }

    /// Field-wise `self - earlier` (both snapshots of the same bus).
    /// Saturating: an out-of-order or post-reset snapshot pair yields
    /// zeros for the fields that moved backwards instead of panicking.
    pub fn since(&self, earlier: &BusStats) -> BusStats {
        BusStats {
            sent: self.sent.saturating_sub(earlier.sent),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            retries: self.retries.saturating_sub(earlier.retries),
            duplicates: self.duplicates.saturating_sub(earlier.duplicates),
            expired: self.expired.saturating_sub(earlier.expired),
            ticks: self.ticks.saturating_sub(earlier.ticks),
            redeliveries: self.redeliveries.saturating_sub(earlier.redeliveries),
            backoff_events: self.backoff_events.saturating_sub(earlier.backoff_events),
            payload_bytes: self.payload_bytes.saturating_sub(earlier.payload_bytes),
        }
    }
}

/// The store-and-forward fabric between one fleet and its SSI.
pub struct MailboxBus {
    cfg: BusConfig,
    tick: u64,
    flights: Vec<Flight>,
    inboxes: BTreeMap<u64, Vec<BusMsg>>,
    seen: BTreeMap<u64, BTreeSet<u64>>,
    next_seq: BTreeMap<u64, u64>,
    forced_offline: BTreeSet<usize>,
    stats: BusStats,
    hops: BTreeMap<u64, HopRecord>,
}

impl MailboxBus {
    /// An empty bus over the given fabric profile.
    pub fn new(cfg: BusConfig) -> Self {
        assert!(cfg.connectivity > 0.0, "a fully-dark fleet never drains");
        MailboxBus {
            cfg,
            tick: 0,
            flights: Vec::new(),
            inboxes: BTreeMap::new(),
            seen: BTreeMap::new(),
            next_seq: BTreeMap::new(),
            forced_offline: BTreeSet::new(),
            stats: BusStats::default(),
            hops: BTreeMap::new(),
        }
    }

    /// Current virtual tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Messages still in flight (un-delivered, un-expired).
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// Pin a token offline regardless of the connectivity hash (crash /
    /// long-disconnection scenarios). Delivery attempts to it wait
    /// without consuming attempts.
    pub fn force_offline(&mut self, token: usize, offline: bool) {
        if offline {
            self.forced_offline.insert(token);
        } else {
            self.forced_offline.remove(&token);
        }
    }

    /// Is `addr` reachable at tick `tick`? Pure in `(seed, addr, tick)`.
    pub fn online(&self, addr: Addr, tick: u64) -> bool {
        match addr {
            Addr::Ssi | Addr::Collector => true,
            Addr::Token(i) => {
                !self.forced_offline.contains(&i)
                    && unit(mix(self.cfg.seed, TAG_ONLINE, addr.code(), tick))
                        < self.cfg.connectivity
            }
        }
    }

    /// Accept a message for delivery; returns its stable id.
    pub fn send(&mut self, from: Addr, to: Addr, payload: Vec<u8>) -> u64 {
        self.send_in(from, to, payload, None)
    }

    /// Accept a message that belongs to a distributed-trace phase: its
    /// full delivery history is recorded as a [`HopRecord`] for the
    /// fleet-trace stitcher ([`MailboxBus::take_hops`]). With `ctx:
    /// None` this is exactly [`MailboxBus::send`] — no record is kept.
    pub fn send_in(
        &mut self,
        from: Addr,
        to: Addr,
        payload: Vec<u8>,
        ctx: Option<TraceContext>,
    ) -> u64 {
        let seq = self.next_seq.entry(from.code()).or_insert(0);
        let id = (from.code() << 24) | *seq;
        *seq += 1;
        self.stats.sent += 1;
        self.stats.payload_bytes += payload.len() as u64;
        if let Some(ctx) = ctx {
            self.hops.insert(
                id,
                HopRecord {
                    msg: id,
                    ctx,
                    from,
                    to,
                    send_tick: self.tick,
                    deliver_tick: 0,
                    attempts: 0,
                    redeliveries: 0,
                    expired: false,
                    payload_bytes: payload.len() as u64,
                },
            );
        }
        let hop = if from.ssi_hosted() {
            Hop::Download
        } else {
            Hop::Upload
        };
        self.flights.push(Flight {
            msg: BusMsg {
                id,
                from,
                to,
                ctx,
                payload,
            },
            hop,
            attempts: 0,
            next_try: self.tick,
        });
        id
    }

    fn backoff(&self, attempts: u32) -> u64 {
        // The doubling must saturate to the cap, not overflow: with a
        // large configured base, `base << attempts` wraps (debug panic,
        // release wrap-to-tiny-delay). The shift amount is clamped to
        // 16 so `1 << shift` is always valid; the multiply is what can
        // overflow, and an overflowed delay is by definition ≥ the cap.
        let cap = self.cfg.backoff_cap.max(1);
        match self.cfg.backoff_base.checked_mul(1u64 << attempts.min(16)) {
            Some(delay) => delay.min(cap),
            None => cap,
        }
    }

    /// Advance one virtual tick: every due flight whose gating endpoint
    /// is online makes a transmission attempt.
    pub fn tick(&mut self) {
        self.tick += 1;
        self.stats.ticks += 1;
        let tick = self.tick;
        let mut still = Vec::with_capacity(self.flights.len());
        for mut f in std::mem::take(&mut self.flights) {
            if f.next_try > tick {
                still.push(f);
                continue;
            }
            let gate = match f.hop {
                Hop::Upload => f.msg.from,
                Hop::Download | Hop::Redeliver => f.msg.to,
            };
            if !self.online(gate, tick) {
                // Endpoint unreachable: wait, don't burn an attempt.
                f.next_try = tick + 1;
                still.push(f);
                continue;
            }
            f.attempts += 1;
            if let Some(rec) = self.hops.get_mut(&f.msg.id) {
                rec.attempts += 1;
            }
            let lost = unit(mix(
                self.cfg.seed,
                TAG_LOSS,
                f.msg.id ^ ((f.hop as u64) << 62),
                u64::from(f.attempts),
            )) < self.cfg.loss_rate;
            if lost {
                self.stats.retries += 1;
                if f.hop == Hop::Redeliver {
                    // The original was already delivered; a lost
                    // re-delivery simply evaporates.
                    continue;
                }
                if f.attempts >= self.cfg.max_attempts {
                    self.stats.expired += 1;
                    if let Some(rec) = self.hops.get_mut(&f.msg.id) {
                        rec.expired = true;
                    }
                    continue;
                }
                self.stats.backoff_events += 1;
                f.next_try = tick + self.backoff(f.attempts);
                still.push(f);
                continue;
            }
            match f.hop {
                Hop::Upload => {
                    // Now parked at the SSI store; fresh attempt budget
                    // for the second hop.
                    f.hop = Hop::Download;
                    f.attempts = 0;
                    f.next_try = tick + 1;
                    still.push(f);
                }
                Hop::Download | Hop::Redeliver => {
                    let dedup = self.seen.entry(f.msg.to.code()).or_default();
                    if dedup.insert(f.msg.id) {
                        self.stats.delivered += 1;
                        if let Some(rec) = self.hops.get_mut(&f.msg.id) {
                            rec.deliver_tick = tick;
                        }
                        self.inboxes
                            .entry(f.msg.to.code())
                            .or_default()
                            .push(f.msg.clone());
                    } else {
                        self.stats.duplicates += 1;
                        if let Some(rec) = self.hops.get_mut(&f.msg.id) {
                            rec.redeliveries += 1;
                        }
                    }
                    // Lost ack ⇒ the store re-delivers exactly once more.
                    if f.hop == Hop::Download
                        && unit(mix(self.cfg.seed, TAG_ACK, f.msg.id, 0)) < self.cfg.dup_rate
                    {
                        self.stats.redeliveries += 1;
                        f.hop = Hop::Redeliver;
                        f.attempts = 0;
                        f.next_try = tick + self.backoff(1);
                        still.push(f);
                    }
                }
            }
        }
        self.flights = still;
    }

    /// Tick until no message is in flight, or `max_ticks` elapse.
    /// Returns the number of ticks spent.
    pub fn run_until_quiet(&mut self, max_ticks: u64) -> u64 {
        let start = self.tick;
        while !self.flights.is_empty() && self.tick - start < max_ticks {
            self.tick();
        }
        self.tick - start
    }

    /// Take everything delivered to *token* endpoints since the last
    /// drain, as `(token index, messages)` batches ordered by token
    /// index, each batch ordered by message id. The SSI and collector
    /// inboxes are untouched — this is the event-driven scheduler's
    /// "who has mail" poll, and those endpoints are driver-drained.
    pub fn take_token_mail(&mut self) -> Vec<(usize, Vec<BusMsg>)> {
        let token_codes: Vec<u64> = self
            .inboxes
            .range(1..COLLECTOR_CODE)
            .map(|(code, _)| *code)
            .collect();
        let mut out = Vec::with_capacity(token_codes.len());
        for code in token_codes {
            let mut msgs = self.inboxes.remove(&code).unwrap_or_default();
            msgs.sort_by_key(|m| m.id);
            out.push(((code - 1) as usize, msgs));
        }
        out
    }

    /// Take everything delivered to `addr`, ordered by message id (a
    /// canonical order independent of delivery timing).
    pub fn drain_inbox(&mut self, addr: Addr) -> Vec<BusMsg> {
        let mut msgs = self.inboxes.remove(&addr.code()).unwrap_or_default();
        msgs.sort_by_key(|m| m.id);
        msgs
    }

    /// Drain the delivery histories of every traced message, in message
    /// id order (run-stable, independent of delivery timing). Phases are
    /// barriers, so draining at a phase boundary yields exactly that
    /// phase's hops.
    pub fn take_hops(&mut self) -> Vec<HopRecord> {
        std::mem::take(&mut self.hops).into_values().collect()
    }

    /// Mirror the counters into the global registry under the uniform
    /// `bus.*` names (the same names [`BusStats::as_delta`] uses, so the
    /// health engine reads one vocabulary everywhere).
    pub fn publish(&self) {
        for (name, v) in self.stats.named() {
            pds_obs::counter(name).add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(bus: &mut MailboxBus, to: Addr) -> Vec<BusMsg> {
        bus.run_until_quiet(100_000);
        bus.drain_inbox(to)
    }

    #[test]
    fn reliable_bus_delivers_everything_in_id_order() {
        let mut bus = MailboxBus::new(BusConfig::reliable(1));
        for i in 0..10usize {
            bus.send(Addr::Token(i), Addr::Ssi, vec![i as u8]);
        }
        let got = drain_all(&mut bus, Addr::Ssi);
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0].id < w[1].id));
        let s = bus.stats();
        assert_eq!((s.delivered, s.retries, s.expired), (10, 0, 0));
    }

    #[test]
    fn weak_connectivity_still_converges() {
        let mut bus = MailboxBus::new(BusConfig {
            seed: 7,
            connectivity: 0.15,
            loss_rate: 0.2,
            dup_rate: 0.1,
            max_attempts: 64,
            ..Default::default()
        });
        for i in 0..50usize {
            bus.send(Addr::Ssi, Addr::Token(i), vec![0; 8]);
            bus.send(Addr::Token(i), Addr::Ssi, vec![1; 8]);
        }
        bus.run_until_quiet(1_000_000);
        let ssi_got = bus.drain_inbox(Addr::Ssi).len();
        let token_got: usize = (0..50).map(|i| bus.drain_inbox(Addr::Token(i)).len()).sum();
        let s = bus.stats();
        assert_eq!(ssi_got + token_got + s.expired as usize, 100);
        assert!(s.retries > 0, "losses happened and were retried");
    }

    #[test]
    fn duplicates_are_deduped_by_message_id() {
        let mut bus = MailboxBus::new(BusConfig {
            seed: 3,
            connectivity: 1.0,
            loss_rate: 0.0,
            dup_rate: 0.5,
            ..Default::default()
        });
        for i in 0..200usize {
            bus.send(Addr::Token(i), Addr::Ssi, vec![0; 4]);
        }
        let got = drain_all(&mut bus, Addr::Ssi);
        assert_eq!(got.len(), 200, "each message delivered exactly once");
        assert!(bus.stats().duplicates > 50, "ack losses re-delivered");
    }

    #[test]
    fn delivery_schedule_is_seed_deterministic() {
        let run = |seed| {
            let mut bus = MailboxBus::new(BusConfig {
                seed,
                connectivity: 0.4,
                loss_rate: 0.1,
                dup_rate: 0.05,
                ..Default::default()
            });
            for i in 0..40usize {
                bus.send(Addr::Token(i), Addr::Ssi, vec![i as u8; 3]);
            }
            bus.run_until_quiet(100_000);
            (bus.drain_inbox(Addr::Ssi), bus.stats())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1.ticks, run(10).1.ticks);
    }

    #[test]
    fn forced_offline_token_receives_after_coming_back() {
        let mut bus = MailboxBus::new(BusConfig::reliable(5));
        bus.force_offline(3, true);
        bus.send(Addr::Ssi, Addr::Token(3), b"parked".to_vec());
        for _ in 0..50 {
            bus.tick();
        }
        assert!(bus.drain_inbox(Addr::Token(3)).is_empty());
        assert_eq!(bus.in_flight(), 1, "message waits, never expires");
        bus.force_offline(3, false);
        bus.run_until_quiet(100);
        assert_eq!(bus.drain_inbox(Addr::Token(3)).len(), 1);
    }

    #[test]
    fn traced_sends_record_hop_histories() {
        let ctx = TraceContext {
            trace_id: 9,
            parent_span: 2,
        };
        let mut bus = MailboxBus::new(BusConfig {
            seed: 3,
            connectivity: 1.0,
            loss_rate: 0.0,
            dup_rate: 0.5,
            ..Default::default()
        });
        for i in 0..20usize {
            bus.send_in(Addr::Token(i), Addr::Ssi, vec![0; 4], Some(ctx));
        }
        bus.send(Addr::Token(99), Addr::Ssi, vec![1]); // untraced
        bus.run_until_quiet(100_000);
        let hops = bus.take_hops();
        assert_eq!(hops.len(), 20, "only traced sends are recorded");
        assert!(hops.windows(2).all(|w| w[0].msg < w[1].msg));
        assert!(hops.iter().all(|h| h.ctx == ctx && h.deliver_tick > 0));
        assert!(hops.iter().map(|h| h.redeliveries).sum::<u64>() > 0);
        assert!(bus.take_hops().is_empty(), "drain removes");
    }

    #[test]
    fn collector_is_always_online_with_its_own_inbox() {
        let mut bus = MailboxBus::new(BusConfig {
            seed: 4,
            connectivity: 0.2,
            ..Default::default()
        });
        assert!((0..10_000u64).all(|t| bus.online(Addr::Collector, t)));
        bus.send(Addr::Token(0), Addr::Ssi, vec![1; 8]);
        bus.send(Addr::Token(0), Addr::Collector, vec![2; 16]);
        bus.send(Addr::Collector, Addr::Token(0), vec![3; 4]);
        bus.run_until_quiet(100_000);
        assert_eq!(bus.drain_inbox(Addr::Ssi).len(), 1);
        assert_eq!(
            bus.drain_inbox(Addr::Collector).len(),
            1,
            "telemetry never lands in the protocol inbox"
        );
        assert_eq!(bus.drain_inbox(Addr::Token(0)).len(), 1);
        let s = bus.stats();
        assert_eq!(s.payload_bytes, 28);
        assert_eq!(s.as_delta().counter("bus.deliveries"), 3);
        assert_eq!(s.since(&s), BusStats::default());
    }

    #[test]
    fn huge_backoff_base_saturates_to_the_cap() {
        // Regression: `backoff_base << attempts` used to overflow for
        // large bases (debug panic, release wrap to a tiny delay).
        let mut bus = MailboxBus::new(BusConfig {
            seed: 11,
            connectivity: 1.0,
            loss_rate: 0.5,
            dup_rate: 0.0,
            backoff_base: u64::MAX / 2,
            backoff_cap: 8,
            max_attempts: 64,
        });
        for i in 0..20usize {
            bus.send(Addr::Token(i), Addr::Ssi, vec![i as u8]);
        }
        bus.run_until_quiet(100_000);
        let s = bus.stats();
        assert_eq!(s.delivered, 20, "every message still converges");
        assert!(s.retries > 0, "losses exercised the backoff path");
        assert_eq!(s.expired, 0);
        // Direct check at every attempt count, including the clamp.
        for attempts in 0..40u32 {
            let d = bus.backoff(attempts);
            assert!((1..=8).contains(&d), "attempt {attempts} gave delay {d}");
        }
    }

    #[test]
    fn since_saturates_on_out_of_order_snapshots() {
        let mut bus = MailboxBus::new(BusConfig::reliable(6));
        let early = bus.stats();
        for i in 0..5usize {
            bus.send(Addr::Token(i), Addr::Ssi, vec![0; 4]);
        }
        bus.run_until_quiet(1_000);
        let late = bus.stats();
        // Snapshots subtracted in the wrong order must yield zeros, not
        // a debug-build underflow panic.
        let wrong = early.since(&late);
        assert_eq!(wrong, BusStats::default());
        // The right order still reports the real movement.
        let right = late.since(&early);
        assert_eq!(right.sent, 5);
        assert_eq!(right.delivered, 5);
    }

    #[test]
    fn take_token_mail_batches_by_token_and_skips_ssi() {
        let mut bus = MailboxBus::new(BusConfig::reliable(8));
        bus.send(Addr::Ssi, Addr::Token(7), vec![1]);
        bus.send(Addr::Ssi, Addr::Token(2), vec![2]);
        bus.send(Addr::Ssi, Addr::Token(7), vec![3]);
        bus.send(Addr::Token(1), Addr::Ssi, vec![4]);
        bus.send(Addr::Ssi, Addr::Collector, vec![5]);
        bus.run_until_quiet(1_000);
        let mail = bus.take_token_mail();
        let shape: Vec<(usize, usize)> = mail.iter().map(|(i, m)| (*i, m.len())).collect();
        assert_eq!(shape, vec![(2, 1), (7, 2)]);
        assert!(mail[1].1.windows(2).all(|w| w[0].id < w[1].id));
        assert!(bus.take_token_mail().is_empty(), "drained");
        assert_eq!(bus.drain_inbox(Addr::Ssi).len(), 1, "SSI inbox intact");
        assert_eq!(bus.drain_inbox(Addr::Collector).len(), 1);
    }

    #[test]
    fn expiry_counts_only_transmission_attempts() {
        let mut bus = MailboxBus::new(BusConfig {
            seed: 2,
            connectivity: 1.0,
            loss_rate: 1.0, // every attempt lost
            dup_rate: 0.0,
            max_attempts: 4,
            ..Default::default()
        });
        bus.send(Addr::Token(0), Addr::Ssi, vec![1]);
        bus.run_until_quiet(10_000);
        let s = bus.stats();
        assert_eq!(s.expired, 1);
        assert_eq!(s.retries, 4);
        assert_eq!(bus.in_flight(), 0);
    }
}

//! The event-driven fleet scheduler: bounded-residency token hosting.
//!
//! [`TokenPool`](crate::pool::TokenPool) keeps every token alive for the
//! whole run and touches all of them at every phase barrier — fine for a
//! 64-token demo, impossible for the tutorial's "millions of users": a
//! live [`pds_core::Pds`] carries a search engine, table buffers and a
//! flash handle, and most of the fleet is idle at any given moment (on a
//! weakly-connected fabric, *almost all* of it). This module hosts the
//! fleet the way the paper describes it:
//!
//! * **Sharded ownership** — tokens are `!Send`, so each long-lived
//!   worker thread owns the slots of a contiguous index range and builds
//!   or wakes tokens in place. Work is shipped to shards as batches and
//!   merged back in token-index order.
//! * **Wake on mail or obligation** — the driver runs the single logical
//!   tick loop ([`pump`]): it ticks the [`MailboxBus`], drains newly
//!   delivered messages into per-token batches, and dispatches *only the
//!   tokens that have mail* (plus whole-fleet phase obligations, which
//!   [`FleetScheduler::dispatch_all`] runs as bounded waves).
//! * **Idle-state eviction** — the driver keeps a deterministic LRU over
//!   resident tokens; beyond [`FleetScheduler::resident_cap`] the oldest
//!   are evicted down to persistent state via the [`TokenHost`]: either
//!   hibernated to a sparse flash snapshot (`pds-flash`'s
//!   `ChipSnapshot`) or dropped entirely and rebuilt from the factory on
//!   the next wake (sound whenever a token is a pure function of its
//!   index, as every fleet token is).
//!
//! Determinism: the residency model — stamps, LRU order, eviction
//! victims, wave boundaries — lives entirely on the single-threaded
//! driver and is a pure function of the dispatch sequence, never of
//! shard layout or thread timing. Workers only ever execute pure
//! per-token closures on the slots the driver names. So every observable
//! (results, `sched.*` counters, the `fleet.resident_tokens` gauge) is
//! bit-identical at any worker count, exactly like the pool it replaces.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use pds_obs::TraceContext;

use crate::bus::{BusMsg, MailboxBus};

/// A typed fleet-runtime failure. Thread exhaustion on a big fleet
/// degrades into an error the caller can handle instead of a panic.
#[derive(Debug)]
pub enum FleetError {
    /// The OS refused to spawn a fleet worker thread.
    SpawnFailed {
        /// Worker index that failed to start.
        worker: usize,
        /// The underlying OS error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::SpawnFailed { worker, source } => {
                write!(f, "spawning fleet worker {worker} failed: {source}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::SpawnFailed { source, .. } => Some(source),
        }
    }
}

/// How a shard materializes, parks and revives one token. The host is
/// cloned into every worker thread; the tokens and sleep states it
/// produces never leave their shard (tokens may be `!Send`).
pub trait TokenHost: Send + Clone + 'static {
    /// The live (possibly `!Send`) token.
    type Token;
    /// The parked idle-state (a fraction of the live footprint).
    type Sleep;

    /// Build token `i` from scratch — a pure function of the index.
    fn create(&self, i: usize) -> Self::Token;

    /// Park token `i`: return its persistent state, or `None` to drop it
    /// entirely (it will be re-`create`d on the next wake).
    fn hibernate(&self, i: usize, token: Self::Token) -> Option<Self::Sleep>;

    /// Revive token `i` from its parked state.
    fn wake(&self, i: usize, sleep: Self::Sleep) -> Self::Token;
}

/// Deterministic scheduler accounting — driver-side model plus summed
/// worker reports, bit-identical at any worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tokens dispatched (mail batches + obligation waves).
    pub wakes: u64,
    /// First-ever materializations of a token.
    pub cold_builds: u64,
    /// Re-materializations of a token that was evicted without sleep
    /// state (drop-and-rebuild policy).
    pub rebuilds: u64,
    /// Revivals from hibernated sleep state.
    pub sleep_wakes: u64,
    /// Residents parked to make room under the cap.
    pub evictions: u64,
    /// Dispatch waves shipped (driver-side count, independent of how
    /// many shards each wave touched).
    pub batches: u64,
    /// High-water mark of simultaneously live tokens.
    pub peak_resident: u64,
}

impl SchedStats {
    /// Canonical `(name, value)` export (the `sched.*` vocabulary).
    pub fn named(&self) -> [(&'static str, u64); 6] {
        [
            ("sched.wakes", self.wakes),
            ("sched.cold_builds", self.cold_builds),
            ("sched.rebuilds", self.rebuilds),
            ("sched.sleep_wakes", self.sleep_wakes),
            ("sched.evictions", self.evictions),
            ("sched.batches", self.batches),
        ]
    }

    /// Counters accrued since `earlier` (field-wise saturating).
    /// `peak_resident` is a monotone high-water mark, not a counter, so
    /// the current peak is carried through unchanged.
    pub fn since(&self, earlier: &SchedStats) -> SchedStats {
        SchedStats {
            wakes: self.wakes.saturating_sub(earlier.wakes),
            cold_builds: self.cold_builds.saturating_sub(earlier.cold_builds),
            rebuilds: self.rebuilds.saturating_sub(earlier.rebuilds),
            sleep_wakes: self.sleep_wakes.saturating_sub(earlier.sleep_wakes),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            batches: self.batches.saturating_sub(earlier.batches),
            peak_resident: self.peak_resident,
        }
    }

    /// Mirror the counters into the global registry under the uniform
    /// `sched.*` names, plus the `fleet.resident_tokens` high-water
    /// gauge — the observable that proves eviction kept residency
    /// bounded.
    pub fn publish(&self) {
        for (name, v) in self.named() {
            pds_obs::counter(name).add(v);
        }
        pds_obs::gauge("fleet.resident_tokens").record_max(self.peak_resident);
    }
}

/// One shard slot: a live token or its parked state.
enum Slot<H: TokenHost> {
    Live(H::Token),
    Asleep(H::Sleep),
}

/// Worker-thread state: the host plus this shard's slots.
struct Shard<H: TokenHost> {
    host: H,
    slots: BTreeMap<usize, Slot<H>>,
}

type Job<H> = Box<dyn FnOnce(&mut Shard<H>) + Send>;

/// The event-driven fleet scheduler (see module docs).
pub struct FleetScheduler<H: TokenHost> {
    txs: Vec<Sender<Job<H>>>,
    handles: Vec<JoinHandle<()>>,
    n_tokens: usize,
    chunk: usize,
    cap: usize,
    /// Driver-side residency model: resident token → last-wake stamp.
    resident: BTreeMap<usize, u64>,
    /// Inverse index for LRU eviction: stamp → token.
    lru: BTreeMap<u64, usize>,
    ever_built: Vec<bool>,
    stamp: u64,
    stats: SchedStats,
}

impl<H: TokenHost> FleetScheduler<H> {
    /// Spawn `workers` shard threads hosting `n_tokens` slots with at
    /// most `resident_cap` tokens live at once. Nothing is built yet:
    /// tokens materialize lazily on their first dispatch.
    pub fn build(
        n_tokens: usize,
        workers: usize,
        resident_cap: usize,
        host: H,
    ) -> Result<Self, FleetError> {
        let workers = workers.max(1).min(n_tokens.max(1));
        let chunk = n_tokens.max(1).div_ceil(workers);
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let host = host.clone();
            let (tx, rx): (Sender<Job<H>>, Receiver<Job<H>>) = channel();
            let spawned = std::thread::Builder::new()
                .name(format!("fleet-shard-{w}"))
                .spawn(move || {
                    let mut shard = Shard {
                        host,
                        slots: BTreeMap::new(),
                    };
                    for job in rx {
                        job(&mut shard);
                    }
                });
            match spawned {
                Ok(handle) => {
                    txs.push(tx);
                    handles.push(handle);
                }
                Err(source) => {
                    // Hang up the shards we did start so they exit.
                    txs.clear();
                    for h in handles.drain(..) {
                        let _ = h.join();
                    }
                    return Err(FleetError::SpawnFailed { worker: w, source });
                }
            }
        }
        Ok(FleetScheduler {
            txs,
            handles,
            n_tokens,
            chunk,
            cap: resident_cap.max(1),
            resident: BTreeMap::new(),
            lru: BTreeMap::new(),
            ever_built: vec![false; n_tokens],
            stamp: 0,
            stats: SchedStats::default(),
        })
    }

    /// Number of token slots hosted.
    pub fn len(&self) -> usize {
        self.n_tokens
    }

    /// True when the scheduler hosts no tokens.
    pub fn is_empty(&self) -> bool {
        self.n_tokens == 0
    }

    /// Number of shard worker threads.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// The resident-token ceiling.
    pub fn resident_cap(&self) -> usize {
        self.cap
    }

    /// Tokens currently live across all shards (driver model).
    pub fn resident(&self) -> usize {
        self.resident.len()
    }

    /// Scheduler accounting so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Mirror the lifetime counters into the global registry (see
    /// [`SchedStats::publish`]).
    pub fn publish(&self) {
        self.stats.publish();
    }

    fn shard_of(&self, token: usize) -> usize {
        token / self.chunk.max(1)
    }

    /// Evict `victim` from the driver model and queue the park job on
    /// its shard.
    fn evict(&mut self, victim: usize) {
        let Some(stamp) = self.resident.remove(&victim) else {
            return;
        };
        self.lru.remove(&stamp);
        self.stats.evictions += 1;
        let job: Job<H> = Box::new(move |shard| {
            if let Some(Slot::Live(t)) = shard.slots.remove(&victim) {
                if let Some(sleep) = shard.host.hibernate(victim, t) {
                    shard.slots.insert(victim, Slot::Asleep(sleep));
                }
            }
        });
        // A dead worker already fails the run's phase dispatch loudly;
        // an eviction racing that teardown can only be dropped.
        let _ = self.txs[self.shard_of(victim)].send(job);
    }

    /// Dispatch `f` over `items` — `(token, mail)` pairs ordered by
    /// token index — waking each named token (build / revive as needed)
    /// and returning the outputs merged back in token-index order.
    ///
    /// The item list is processed in waves of at most `resident_cap`
    /// tokens; before each wave, least-recently-woken residents outside
    /// the wave are evicted so residency never exceeds the cap.
    pub fn dispatch<R, F>(
        &mut self,
        ctx: Option<TraceContext>,
        items: Vec<(usize, Vec<BusMsg>)>,
        f: F,
    ) -> Vec<(usize, R)>
    where
        R: Send + 'static,
        F: Fn(usize, &mut H::Token, Vec<BusMsg>) -> R + Send + Clone + 'static,
    {
        let mut out = Vec::with_capacity(items.len());
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(self.cap));
            let wave = std::mem::replace(&mut items, rest);
            out.extend(self.run_wave(ctx, wave, f.clone()));
        }
        out
    }

    /// Whole-fleet phase obligation: every token, no mail.
    pub fn dispatch_all<R, F>(&mut self, ctx: Option<TraceContext>, f: F) -> Vec<(usize, R)>
    where
        R: Send + 'static,
        F: Fn(usize, &mut H::Token, Vec<BusMsg>) -> R + Send + Clone + 'static,
    {
        let items = (0..self.n_tokens).map(|i| (i, Vec::new())).collect();
        self.dispatch(ctx, items, f)
    }

    /// Materialize every token once (manufacture up-front). Only useful
    /// when the cap covers the fleet; with a tight cap tokens would just
    /// be evicted again before use.
    pub fn warm(&mut self) {
        let _ = self.dispatch_all(None, |_, _, _| ());
    }

    fn run_wave<R, F>(
        &mut self,
        ctx: Option<TraceContext>,
        wave: Vec<(usize, Vec<BusMsg>)>,
        f: F,
    ) -> Vec<(usize, R)>
    where
        R: Send + 'static,
        F: Fn(usize, &mut H::Token, Vec<BusMsg>) -> R + Send + Clone + 'static,
    {
        if wave.is_empty() {
            return Vec::new();
        }
        debug_assert!(wave.len() <= self.cap);
        let wave_set: BTreeSet<usize> = wave.iter().map(|(i, _)| *i).collect();
        // Bump already-resident wave members to most-recently-woken, so
        // the LRU front can only hold evictable outsiders.
        for &i in &wave_set {
            if let Some(stamp) = self.resident.get_mut(&i) {
                self.lru.remove(stamp);
                self.stamp += 1;
                *stamp = self.stamp;
                self.lru.insert(self.stamp, i);
            }
        }
        let newcomers: Vec<usize> = wave_set
            .iter()
            .copied()
            .filter(|i| !self.resident.contains_key(i))
            .collect();
        while self.resident.len() + newcomers.len() > self.cap {
            let Some((_, &victim)) = self.lru.iter().next() else {
                break;
            };
            if wave_set.contains(&victim) {
                break; // only wave members left resident; wave ≤ cap fits
            }
            self.evict(victim);
        }
        let mut cold = 0u64;
        for &i in &newcomers {
            self.stamp += 1;
            self.resident.insert(i, self.stamp);
            self.lru.insert(self.stamp, i);
            if !self.ever_built[i] {
                self.ever_built[i] = true;
                cold += 1;
            }
        }
        self.stats.wakes += wave.len() as u64;
        self.stats.cold_builds += cold;
        self.stats.peak_resident = self.stats.peak_resident.max(self.resident.len() as u64);
        pds_obs::gauge("fleet.resident_tokens").record_max(self.resident.len() as u64);

        // Partition the wave by owning shard and ship one batch per
        // shard touched.
        let mut per_shard: BTreeMap<usize, Vec<(usize, Vec<BusMsg>)>> = BTreeMap::new();
        for (i, mail) in wave {
            per_shard
                .entry(self.shard_of(i))
                .or_default()
                .push((i, mail));
        }
        let (out_tx, out_rx) = channel::<(Vec<(usize, R)>, u64, u64)>();
        let mut expect = 0usize;
        for (shard_idx, batch) in per_shard {
            expect += batch.len();
            let f = f.clone();
            let out_tx = out_tx.clone();
            let job: Job<H> = Box::new(move |shard| {
                // Residency fix-up first, outside the trace context, so
                // build/revive spans never pollute a phase's trace.
                let mut created = 0u64;
                let mut woke = 0u64;
                for (i, _) in &batch {
                    if !matches!(shard.slots.get(i), Some(Slot::Live(_))) {
                        let token = match shard.slots.remove(i) {
                            Some(Slot::Asleep(s)) => {
                                woke += 1;
                                shard.host.wake(*i, s)
                            }
                            _ => {
                                created += 1;
                                shard.host.create(*i)
                            }
                        };
                        shard.slots.insert(*i, Slot::Live(token));
                    }
                }
                if ctx.is_some() {
                    pds_obs::trace::set_context(ctx);
                }
                let mut results = Vec::with_capacity(batch.len());
                for (i, mail) in batch {
                    if let Some(Slot::Live(t)) = shard.slots.get_mut(&i) {
                        results.push((i, f(i, t, mail)));
                    }
                }
                if ctx.is_some() {
                    pds_obs::trace::set_context(None);
                    pds_obs::trace::flush_contributions();
                }
                // The driver only hangs up after every send; ignore its
                // early death (a panic elsewhere already unwinds us).
                let _ = out_tx.send((results, created, woke));
            });
            self.txs[shard_idx].send(job).expect("fleet shard alive");
        }
        drop(out_tx);
        self.stats.batches += 1;
        let mut merged: Vec<(usize, R)> = Vec::with_capacity(expect);
        let mut created_total = 0u64;
        for (results, created, woke) in &out_rx {
            created_total += created;
            self.stats.sleep_wakes += woke;
            merged.extend(results);
        }
        // `created` covers both first-ever builds and rebuilds after a
        // drop-eviction; the driver's model knows which were cold.
        self.stats.rebuilds += created_total.saturating_sub(cold);
        assert_eq!(merged.len(), expect, "a fleet shard panicked");
        merged.sort_by_key(|(i, _)| *i);
        merged
    }
}

impl<H: TokenHost> Drop for FleetScheduler<H> {
    fn drop(&mut self) {
        self.txs.clear(); // hang up: shards drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Drive the bus until quiet, waking tokens as mail lands — the single
/// logical tick loop of an event-driven phase.
///
/// Each iteration ticks the bus once and accumulates newly delivered
/// token mail; batches are dispatched to the shards when `batch_ticks`
/// have elapsed since the last dispatch (or immediately once the bus is
/// quiet), and `on_batch` runs on the driver with bus access so handler
/// outputs can send follow-up messages inside the same loop. Returns the
/// ticks spent once no message is in flight and no mail is pending, or
/// after `max_ticks`.
///
/// Determinism: single-threaded over a seed-deterministic bus — the
/// batch boundaries, wake order and everything downstream are pure
/// functions of the seed and the send sequence.
pub fn pump<H, R, F, G, E>(
    bus: &mut MailboxBus,
    sched: &mut FleetScheduler<H>,
    ctx: Option<TraceContext>,
    max_ticks: u64,
    batch_ticks: u64,
    f: F,
    mut on_batch: G,
) -> Result<u64, E>
where
    H: TokenHost,
    R: Send + 'static,
    F: Fn(usize, &mut H::Token, Vec<BusMsg>) -> R + Send + Clone + 'static,
    G: FnMut(&mut MailboxBus, Vec<(usize, R)>) -> Result<(), E>,
{
    let start = bus.now();
    let batch_ticks = batch_ticks.max(1);
    let mut pending: BTreeMap<usize, Vec<BusMsg>> = BTreeMap::new();
    for (i, msgs) in bus.take_token_mail() {
        pending.insert(i, msgs);
    }
    let mut last_dispatch = bus.now();
    loop {
        let quiet = bus.in_flight() == 0;
        if !pending.is_empty() && (quiet || bus.now() - last_dispatch >= batch_ticks) {
            let items: Vec<(usize, Vec<BusMsg>)> =
                std::mem::take(&mut pending).into_iter().collect();
            let outs = sched.dispatch(ctx, items, f.clone());
            on_batch(bus, outs)?;
            last_dispatch = bus.now();
            continue; // the replies may already be deliverable
        }
        if quiet && pending.is_empty() {
            break;
        }
        if bus.now() - start >= max_ticks {
            break;
        }
        bus.tick();
        for (i, mut msgs) in bus.take_token_mail() {
            pending.entry(i).or_default().append(&mut msgs);
        }
    }
    Ok(bus.now() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{Addr, BusConfig};

    /// A deliberately `!Send` token stand-in whose sleep state is its
    /// counter value.
    struct CounterToken {
        idx: usize,
        hits: std::rc::Rc<std::cell::RefCell<u64>>,
    }

    #[derive(Clone)]
    struct CounterHost {
        drop_on_evict: bool,
    }

    impl TokenHost for CounterHost {
        type Token = CounterToken;
        type Sleep = u64;

        fn create(&self, i: usize) -> CounterToken {
            CounterToken {
                idx: i,
                hits: std::rc::Rc::new(std::cell::RefCell::new(0)),
            }
        }

        fn hibernate(&self, _i: usize, t: CounterToken) -> Option<u64> {
            (!self.drop_on_evict).then(|| *t.hits.borrow())
        }

        fn wake(&self, i: usize, sleep: u64) -> CounterToken {
            let t = self.create(i);
            *t.hits.borrow_mut() = sleep;
            t
        }
    }

    fn sched(
        n: usize,
        workers: usize,
        cap: usize,
        drop_on_evict: bool,
    ) -> FleetScheduler<CounterHost> {
        FleetScheduler::build(n, workers, cap, CounterHost { drop_on_evict }).unwrap()
    }

    fn touch_all(s: &mut FleetScheduler<CounterHost>) -> Vec<u64> {
        s.dispatch_all(None, |i, t, _| {
            assert_eq!(i, t.idx);
            *t.hits.borrow_mut() += 1;
            *t.hits.borrow()
        })
        .into_iter()
        .map(|(_, v)| v)
        .collect()
    }

    #[test]
    fn dispatch_merges_in_token_order() {
        let mut s = sched(17, 4, 64, false);
        let out = touch_all(&mut s);
        assert_eq!(out, vec![1; 17]);
        assert_eq!(s.stats().cold_builds, 17);
        assert_eq!(s.stats().evictions, 0);
        assert_eq!(s.resident(), 17);
    }

    #[test]
    fn hibernation_preserves_state_under_a_tight_cap() {
        let mut s = sched(12, 3, 4, false);
        touch_all(&mut s);
        let out = touch_all(&mut s);
        // Every token remembered its first hit through eviction.
        assert_eq!(out, vec![2; 12]);
        let st = s.stats();
        assert!(st.evictions > 0, "the cap forced evictions");
        assert!(st.sleep_wakes > 0, "state came back from sleep");
        assert_eq!(st.rebuilds, 0);
        assert!(st.peak_resident <= 4);
        assert!(s.resident() <= 4);
    }

    #[test]
    fn drop_policy_rebuilds_from_the_factory() {
        let mut s = sched(12, 3, 4, true);
        touch_all(&mut s);
        let out = touch_all(&mut s);
        // Dropped tokens restarted from zero: pure-function rebuild.
        assert!(out.iter().filter(|v| **v == 1).count() >= 8);
        let st = s.stats();
        assert!(st.rebuilds > 0);
        assert_eq!(st.sleep_wakes, 0);
        assert!(st.peak_resident <= 4);
    }

    #[test]
    fn stats_and_results_are_shard_count_independent() {
        let run = |workers: usize| {
            let mut s = sched(23, workers, 7, false);
            let a = touch_all(&mut s);
            let b = s
                .dispatch(None, vec![(3, Vec::new()), (19, Vec::new())], |_, t, _| {
                    *t.hits.borrow()
                })
                .into_iter()
                .collect::<Vec<_>>();
            (a, b, s.stats())
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn mail_reaches_the_woken_token() {
        let mut s = sched(8, 2, 8, false);
        let mut bus = MailboxBus::new(BusConfig::reliable(3));
        bus.send(Addr::Ssi, Addr::Token(5), b"hello".to_vec());
        bus.send(Addr::Ssi, Addr::Token(2), b"hi".to_vec());
        let ticks = pump(
            &mut bus,
            &mut s,
            None,
            10_000,
            1,
            |i, t, mail| {
                *t.hits.borrow_mut() += mail.len() as u64;
                (i, mail.len())
            },
            |_, outs| -> Result<(), ()> {
                for (i, (j, n)) in outs {
                    assert_eq!(i, j);
                    assert_eq!(n, 1);
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(ticks > 0);
        // Only the two mailed tokens were ever woken.
        assert_eq!(s.stats().wakes, 2);
        assert_eq!(s.stats().cold_builds, 2);
        assert_eq!(s.resident(), 2);
    }

    #[test]
    fn pump_replies_keep_the_loop_running() {
        // Token 0 receives a ping and replies; the driver forwards the
        // reply to token 1 — all inside one pump call.
        let mut s = sched(2, 1, 2, false);
        let mut bus = MailboxBus::new(BusConfig::reliable(9));
        bus.send(Addr::Ssi, Addr::Token(0), vec![1]);
        let mut seen = Vec::new();
        pump(
            &mut bus,
            &mut s,
            None,
            10_000,
            1,
            |i, _, mail| (i, mail.len()),
            |bus, outs| -> Result<(), ()> {
                for (i, _) in outs {
                    seen.push(i);
                    if i == 0 {
                        bus.send(Addr::Ssi, Addr::Token(1), vec![2]);
                    }
                }
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn spawn_failure_is_typed_not_a_panic() {
        // Can't force thread exhaustion portably; exercise the Display
        // plumbing of the typed error instead.
        let e = FleetError::SpawnFailed {
            worker: 3,
            source: std::io::Error::other("rlimit"),
        };
        assert!(e.to_string().contains("worker 3"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Continuous queries as a fleet workload.
//!
//! Each token registers a standing predicate on its own PDS
//! ([`pds_core::Pds::subscribe`]); after every commit round the token
//! polls its subscription and mails the *result delta* — only the rows
//! the collector has not seen — over the store-and-forward bus to the
//! SSI-hosted collector role. The MVCC change log makes the delta exact:
//! a poll re-evaluates the predicate against `changes_since(cursor)`
//! and advances the cursor in whole commits, so every committed
//! matching row is delivered exactly once even across a token
//! power-cycle (the cursor hibernates with the PDS and the change log
//! is durable).
//!
//! The collector keeps a `(token, rowid)` ledger: a duplicate arrival —
//! which the cursor discipline is supposed to make impossible — is
//! counted in `sub.duplicates` instead of silently folded, so the
//! exactly-once property is *measured*, not assumed. Like every fleet
//! job, a run is a pure function of the seed: write content derives
//! from `(seed, round, token)` streams, the bus schedule from the bus
//! seed, and the ledger is a `BTreeMap` — bit-identical at any worker
//! count (the PDSs live on the driver thread; a secure token is `!Send`).

use std::collections::BTreeMap;

use pds_core::data::BANK_TABLE;
use pds_core::{Pds, PdsError, Predicate, ReopenReport, Row, Value};
use pds_obs::rng::RngCore;
use pds_obs::FleetTrace;

use pds_crypto::{Ciphertext, SymmetricKey};

use crate::agg::derived_rng;
use crate::bus::{Addr, BusConfig, BusStats, MailboxBus};
use crate::trace::FleetTraceBuilder;

const TAG_SUB: u64 = 0x464C_5453_5542_0001; // per-(round, token) write stream

/// Shape of one subscription network.
#[derive(Debug, Clone)]
pub struct SubNetConfig {
    /// Number of tokens, each with its own PDS and standing query.
    pub tokens: usize,
    /// Master seed (write streams + bus schedule).
    pub seed: u64,
    /// Bus ticks granted per delivery phase; deltas still in flight
    /// (e.g. from a forced-offline token) carry over to later rounds.
    pub ticks_per_phase: u64,
    /// Fabric profile.
    pub bus: BusConfig,
}

impl SubNetConfig {
    /// The fleet's manufacturer-issued protocol key. Tokens and the
    /// collector both hold it; the store-and-forward fabric between
    /// them only ever carries ciphertext.
    pub fn protocol_key(&self) -> SymmetricKey {
        SymmetricKey::from_seed(&self.seed.to_le_bytes())
    }

    /// A subscription network over the default weak-connectivity fabric.
    pub fn new(tokens: usize, seed: u64) -> Self {
        SubNetConfig {
            tokens,
            seed,
            ticks_per_phase: 2_000,
            bus: BusConfig {
                seed,
                ..BusConfig::default()
            },
        }
    }
}

/// What one subscription round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubRoundReport {
    /// Rows written (and committed) across the fleet this round.
    pub rows_written: u32,
    /// Of those, rows matching the standing predicates.
    pub rows_matched: u32,
    /// Non-empty deltas mailed to the collector.
    pub deltas_mailed: u32,
    /// Matching rows the collector folded this round (first arrivals).
    pub rows_delivered: u32,
}

/// A fleet of PDS tokens, each holding a standing query, mailing result
/// deltas to the SSI collector over the bus.
pub struct SubNet {
    cfg: SubNetConfig,
    pds: Vec<Pds>,
    sub_ids: Vec<u32>,
    /// Rows inserted into each token's BANK table so far (= next rowid).
    bank_rows: Vec<u32>,
    bus: MailboxBus,
    /// Shared protocol key sealing every delta on the wire.
    key: SymmetricKey,
    round: u32,
    /// Collector ledger: `(token, rowid) → amount`, first arrival only.
    delivered: BTreeMap<(u32, u32), u64>,
    /// Ground truth: every committed matching row, stamped at write time.
    expected: BTreeMap<(u32, u32), u64>,
    duplicates: u64,
}

impl SubNet {
    /// Build the network: one slim-profile PDS per token, each
    /// subscribed to `category = "salary"` on its BANK table.
    pub fn build(cfg: SubNetConfig) -> Result<SubNet, PdsError> {
        let mut pds = Vec::with_capacity(cfg.tokens);
        let mut sub_ids = Vec::with_capacity(cfg.tokens);
        for i in 0..cfg.tokens {
            let mut p = Pds::slim(i as u64, &format!("owner-{i}"))?;
            let id = p.subscribe(BANK_TABLE, Predicate::eq("category", Value::str("salary")))?;
            pds.push(p);
            sub_ids.push(id);
        }
        let bus = MailboxBus::new(cfg.bus);
        Ok(SubNet {
            bank_rows: vec![0; cfg.tokens],
            key: cfg.protocol_key(),
            cfg,
            pds,
            sub_ids,
            bus,
            round: 0,
            delivered: BTreeMap::new(),
            expected: BTreeMap::new(),
            duplicates: 0,
        })
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.cfg.tokens
    }

    /// True when the network hosts no tokens.
    pub fn is_empty(&self) -> bool {
        self.cfg.tokens == 0
    }

    /// Bus delivery counters.
    pub fn bus_stats(&self) -> BusStats {
        self.bus.stats()
    }

    /// Pin a token offline / bring it back (its deltas wait on the bus).
    pub fn force_offline(&mut self, token: usize, offline: bool) {
        self.bus.force_offline(token, offline);
    }

    /// One round: write → poll → deliver.
    pub fn round(&mut self) -> Result<SubRoundReport, PdsError> {
        self.round_inner(&mut None)
    }

    /// [`SubNet::round`] with a stitched causal [`FleetTrace`]: the
    /// write, poll and deliver phases plus the hop history of every
    /// delta the round moved.
    pub fn round_traced(&mut self) -> Result<(SubRoundReport, FleetTrace), PdsError> {
        let mut b = FleetTraceBuilder::new("fleet.subs");
        b.set("tokens", self.cfg.tokens);
        b.set("round", u64::from(self.round));
        b.set("seed", self.cfg.seed);
        let mut ftb = Some(b);
        let rep = self.round_inner(&mut ftb)?;
        Ok((rep, ftb.take().expect("builder kept").finish()))
    }

    fn round_inner(
        &mut self,
        ftb: &mut Option<FleetTraceBuilder>,
    ) -> Result<SubRoundReport, PdsError> {
        let round = self.round;
        self.round += 1;
        let mut rep = SubRoundReport::default();

        // Phase 1: every token ingests and commits — one HLC stamp per
        // token per round, the unit the subscription cursor moves in.
        let ctx = ftb
            .as_mut()
            .map(|b| b.begin_phase("phase.write", &self.bus));
        let _ = ctx;
        for i in 0..self.cfg.tokens {
            let mut rng = derived_rng(self.cfg.seed, TAG_SUB, (u64::from(round) << 32) | i as u64);
            let amount = 1_000 + rng.next_u64() % 9_000;
            let matches = amount.is_multiple_of(2);
            let category = if matches { "salary" } else { "groceries" };
            self.pds[i].ingest_bank(u64::from(round), category, amount, "employer")?;
            let rowid = self.bank_rows[i];
            self.bank_rows[i] += 1;
            if matches {
                self.expected.insert((i as u32, rowid), amount);
                rep.rows_matched += 1;
            }
            rep.rows_written += 1;
            self.pds[i].commit()?;
        }
        if let Some(b) = ftb.as_mut() {
            b.end_phase(&mut self.bus);
        }

        // Phase 2: each token polls its standing query and mails the
        // non-empty delta to the collector.
        let ctx = ftb.as_mut().map(|b| b.begin_phase("phase.poll", &self.bus));
        for i in 0..self.cfg.tokens {
            let delta = self.pds[i].poll_subscription(self.sub_ids[i])?;
            if delta.is_empty() {
                continue;
            }
            rep.deltas_mailed += 1;
            // The fabric is untrusted: deltas travel sealed under the
            // protocol key (deterministic SIV keeps rounds replayable).
            let payload = self.key.encrypt_det(&encode_delta(i as u32, &delta)).0;
            self.bus
                .send_in(Addr::Token(i), Addr::Collector, payload, ctx);
        }
        self.bus.run_until_quiet(self.cfg.ticks_per_phase);
        if let Some(b) = ftb.as_mut() {
            b.end_phase(&mut self.bus);
        }

        // Phase 3: the collector folds what arrived into its ledger.
        let ctx = ftb
            .as_mut()
            .map(|b| b.begin_phase("phase.deliver", &self.bus));
        let _ = ctx;
        rep.rows_delivered = self.fold_collector();
        if let Some(b) = ftb.as_mut() {
            b.end_phase(&mut self.bus);
        }
        Ok(rep)
    }

    /// Drain the collector mailbox into the ledger; returns first
    /// arrivals folded (duplicates are counted, not folded).
    fn fold_collector(&mut self) -> u32 {
        let mut folded = 0;
        for m in self.bus.drain_inbox(Addr::Collector) {
            let Some(plain) = self.key.decrypt(&Ciphertext(m.payload)) else {
                continue;
            };
            let Some((token, rows)) = decode_delta(&plain) else {
                continue;
            };
            for (rowid, amount) in rows {
                if self.delivered.insert((token, rowid), amount).is_some() {
                    self.duplicates += 1;
                    pds_obs::counter("sub.duplicates").inc();
                } else {
                    folded += 1;
                }
            }
        }
        folded
    }

    /// Let in-flight deltas land (offline tokens came back, stragglers
    /// drain) and fold them; returns rows folded.
    pub fn settle(&mut self, max_ticks: u64) -> u32 {
        self.bus.run_until_quiet(max_ticks);
        self.fold_collector()
    }

    /// Cleanly power-cycle one token: hibernate (flushes everything,
    /// subscription cursor included) and wake. The standing query
    /// resumes from its durable cursor — no change is re-delivered, no
    /// change is skipped.
    pub fn power_cycle(&mut self, token: usize) -> Result<ReopenReport, PdsError> {
        let pds = self.pds.remove(token);
        let h = pds.hibernate()?;
        let (pds, report) = Pds::wake(h)?;
        self.pds.insert(token, pds);
        Ok(report)
    }

    /// Reclaim version history on every token, bounded by each
    /// subscription's cursor (GC never outruns an unpolled standing
    /// query).
    pub fn gc(&mut self) -> Result<(), PdsError> {
        for p in &mut self.pds {
            p.gc_versions()?;
        }
        Ok(())
    }

    /// The collector ledger: `(token, rowid) → amount`.
    pub fn delivered(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.delivered
    }

    /// Ground truth written so far: every committed matching row.
    pub fn expected(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.expected
    }

    /// Duplicate arrivals at the collector (should stay 0).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// The exactly-once witness: no duplicates, and the ledger equals
    /// the ground truth (run [`SubNet::settle`] first so stragglers
    /// land).
    pub fn exactly_once(&self) -> bool {
        self.duplicates == 0 && self.delivered == self.expected
    }
}

/// Delta wire form: `token (4B LE) || count (4B LE) || count × (rowid
/// (4B LE) || amount (8B LE))`.
fn encode_delta(token: u32, rows: &[(u32, Row)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + rows.len() * 12);
    out.extend_from_slice(&token.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for (rowid, row) in rows {
        out.extend_from_slice(&rowid.to_le_bytes());
        let amount = row.get(2).and_then(|v| v.as_u64()).unwrap_or(0);
        out.extend_from_slice(&amount.to_le_bytes());
    }
    out
}

/// Parse the delta wire form; `None` on any truncation.
fn decode_delta(bytes: &[u8]) -> Option<(u32, Vec<(u32, u64)>)> {
    fn take_u32(bytes: &mut &[u8]) -> Option<u32> {
        let v = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?);
        *bytes = &bytes[4..];
        Some(v)
    }
    fn take_u64(bytes: &mut &[u8]) -> Option<u64> {
        let v = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
        *bytes = &bytes[8..];
        Some(v)
    }
    let mut rest = bytes;
    let token = take_u32(&mut rest)?;
    let count = take_u32(&mut rest)?;
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        rows.push((take_u32(&mut rest)?, take_u64(&mut rest)?));
    }
    rest.is_empty().then_some((token, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_reach_the_collector_exactly_once() {
        let mut n = SubNet::build(SubNetConfig::new(4, 3)).unwrap();
        for _ in 0..3 {
            n.round().unwrap();
        }
        n.settle(10_000);
        assert!(n.exactly_once(), "duplicates: {}", n.duplicates());
        assert!(!n.expected().is_empty());
    }

    #[test]
    fn power_cycle_neither_skips_nor_redelivers() {
        let mut n = SubNet::build(SubNetConfig::new(3, 5)).unwrap();
        n.round().unwrap();
        n.power_cycle(1).unwrap();
        n.round().unwrap();
        n.settle(10_000);
        assert!(n.exactly_once(), "duplicates: {}", n.duplicates());
    }

    #[test]
    fn offline_token_deltas_park_then_land() {
        let mut n = SubNet::build(SubNetConfig::new(3, 7)).unwrap();
        n.force_offline(2, true);
        for _ in 0..4 {
            n.round().unwrap();
        }
        let parked = n
            .expected()
            .keys()
            .filter(|(t, _)| *t == 2)
            .filter(|k| !n.delivered().contains_key(k))
            .count();
        assert!(parked > 0, "token 2 wrote matching rows it could not mail");
        n.force_offline(2, false);
        n.round().unwrap();
        n.settle(10_000);
        assert!(n.exactly_once(), "duplicates: {}", n.duplicates());
    }

    #[test]
    fn traced_round_shows_write_poll_deliver() {
        let mut n = SubNet::build(SubNetConfig::new(3, 9)).unwrap();
        let (_, t) = n.round_traced().unwrap();
        let names: Vec<&str> = t.phases().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["phase.write", "phase.poll", "phase.deliver"]);
    }

    #[test]
    fn rounds_are_seed_deterministic() {
        let run = |seed| {
            let mut n = SubNet::build(SubNetConfig::new(4, seed)).unwrap();
            for _ in 0..2 {
                n.round().unwrap();
            }
            n.settle(10_000);
            (n.delivered().clone(), n.bus_stats())
        };
        assert_eq!(run(6), run(6));
    }

    #[test]
    fn delta_wire_form_round_trips() {
        let rows = vec![
            (
                0u32,
                vec![Value::U64(1), Value::str("salary"), Value::U64(500)],
            ),
            (
                7u32,
                vec![Value::U64(2), Value::str("salary"), Value::U64(900)],
            ),
        ];
        let bytes = encode_delta(3, &rows);
        assert_eq!(decode_delta(&bytes), Some((3, vec![(0, 500), (7, 900)])));
        assert_eq!(decode_delta(&bytes[..bytes.len() - 1]), None);
        assert_eq!(decode_delta(&[]), None);
    }
}

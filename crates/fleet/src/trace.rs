//! The fleet-trace stitcher: per-phase assembly of one causal tree.
//!
//! A fleet protocol round is phased: the driver opens a phase, workers
//! produce per-token span trees under a shared [`TraceContext`], the bus
//! records per-message [`HopRecord`]s, and the barrier guarantees that
//! by the time the driver closes the phase everything has been flushed.
//! [`FleetTraceBuilder`] turns that stream into the [`FleetTrace`]
//! conventions (`phase.*` → `token.N` + `hop.N` children):
//!
//! * per-token spans are sorted by their `token` attribute and
//!   timing-stripped — worker count and scheduling are unobservable;
//! * hop spans are sorted by message id and carry the full
//!   send → (re)delivery history (`send_tick`, `deliver_tick`,
//!   `attempts`, `redeliveries`, `expired`), so backoff and duplicate
//!   re-deliveries are visible per hop;
//! * phase spans carry `bus.tick.start` / `bus.tick.end` / `bus.ticks`,
//!   the causal clock of the round.
//!
//! Trace ids are routing keys into the process-wide sink, not part of
//! the trace: they come from a process-global counter so concurrent
//! traced runs (e.g. parallel tests) never interleave, while the
//! stitched tree itself stays a pure function of the seed.

use std::sync::atomic::{AtomicU64, Ordering};

use pds_obs::trace::{drain_trace, flush_contributions};
use pds_obs::{AttrValue, FinishedSpan, FleetTrace, TraceContext};

use crate::bus::{HopRecord, MailboxBus};

/// Process-unique trace ids (0 is reserved / never issued).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

struct OpenPhase {
    name: String,
    id: u64,
    tick_start: u64,
}

/// Builds one [`FleetTrace`] phase by phase, driven by the (single
/// threaded) fleet driver between barriers.
pub struct FleetTraceBuilder {
    trace_id: u64,
    root: FinishedSpan,
    next_phase: u64,
    open: Option<OpenPhase>,
}

impl FleetTraceBuilder {
    /// Start a trace rooted at a span named `name` (e.g. `fleet.agg`).
    pub fn new(name: &str) -> Self {
        FleetTraceBuilder {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            root: FinishedSpan {
                name: name.to_string(),
                duration_ns: 0,
                attrs: Vec::new(),
                children: Vec::new(),
            },
            next_phase: 0,
            open: None,
        }
    }

    /// Set a root attribute (fleet shape, seed, verdicts…).
    pub fn set(&mut self, key: &str, value: impl Into<AttrValue>) {
        self.root.attrs.push((key.to_string(), value.into()));
    }

    /// Open the next phase and return the context workers and bus sends
    /// must carry. Exactly one phase can be open at a time.
    pub fn begin_phase(&mut self, name: &str, bus: &MailboxBus) -> TraceContext {
        assert!(self.open.is_none(), "previous phase still open");
        self.next_phase += 1;
        let id = self.next_phase;
        self.open = Some(OpenPhase {
            name: name.to_string(),
            id,
            tick_start: bus.now(),
        });
        TraceContext {
            trace_id: self.trace_id,
            parent_span: id,
        }
    }

    /// Close the open phase: drain the span sink and the bus hop log,
    /// stitch them into one `phase.*` span. Must run after the phase's
    /// barrier (so every worker has flushed) and after the bus drained.
    pub fn end_phase(&mut self, bus: &mut MailboxBus) {
        let open = self.open.take().expect("no phase open");
        // The driver thread may have contributed spans of its own.
        flush_contributions();
        let tick_end = bus.now();
        let mut phase = FinishedSpan {
            name: open.name,
            duration_ns: 0,
            attrs: vec![
                ("bus.tick.start".into(), AttrValue::U64(open.tick_start)),
                ("bus.tick.end".into(), AttrValue::U64(tick_end)),
                (
                    "bus.ticks".into(),
                    AttrValue::U64(tick_end - open.tick_start),
                ),
            ],
            children: Vec::new(),
        };
        let mut tokens: Vec<FinishedSpan> = drain_trace(self.trace_id)
            .into_iter()
            .filter(|(parent, _)| *parent == open.id)
            .map(|(_, mut s)| {
                s.strip_timing();
                s
            })
            .collect();
        // Sink arrival order depends on worker scheduling; the token
        // attribute (and name, for driver-side spans) does not.
        tokens.sort_by(|a, b| (a.attr_u64("token"), &a.name).cmp(&(b.attr_u64("token"), &b.name)));
        phase.children.extend(tokens);
        for h in bus.take_hops() {
            debug_assert_eq!(h.ctx.trace_id, self.trace_id, "phases are barriers");
            phase.children.push(hop_span(&h));
        }
        self.root.children.push(phase);
    }

    /// Finish the trace. Panics if a phase is still open.
    pub fn finish(self) -> FleetTrace {
        assert!(self.open.is_none(), "phase still open");
        FleetTrace::new(self.root)
    }
}

/// Render one delivery history as a `hop.N` span.
fn hop_span(h: &HopRecord) -> FinishedSpan {
    FinishedSpan {
        name: format!("hop.{}", h.msg),
        duration_ns: 0,
        attrs: vec![
            ("msg".into(), AttrValue::U64(h.msg)),
            ("from".into(), AttrValue::U64(h.from.code())),
            ("to".into(), AttrValue::U64(h.to.code())),
            ("send_tick".into(), AttrValue::U64(h.send_tick)),
            ("deliver_tick".into(), AttrValue::U64(h.deliver_tick)),
            ("attempts".into(), AttrValue::U64(h.attempts)),
            ("redeliveries".into(), AttrValue::U64(h.redeliveries)),
            ("expired".into(), AttrValue::U64(u64::from(h.expired))),
            ("payload_bytes".into(), AttrValue::U64(h.payload_bytes)),
        ],
        children: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{Addr, BusConfig};
    use crate::pool::TokenPool;

    #[test]
    fn builder_stitches_tokens_and_hops_per_phase() {
        let pool = TokenPool::build(4, 2, |i| i).unwrap();
        let mut bus = MailboxBus::new(BusConfig::reliable(11));
        let mut b = FleetTraceBuilder::new("fleet.test");
        b.set("tokens", 4u64);

        let ctx = b.begin_phase("phase.collect", &bus);
        pool.map_in_trace(Some(ctx), |i, _| {
            let g = pds_obs::trace::span("token.work");
            g.set("token", i);
            g.set("flash.page_reads", (i as u64) + 1);
        });
        for i in 0..4usize {
            bus.send_in(Addr::Token(i), Addr::Ssi, vec![i as u8], Some(ctx));
        }
        bus.run_until_quiet(1_000);
        b.end_phase(&mut bus);

        let ctx = b.begin_phase("phase.reduce.0", &bus);
        bus.send_in(Addr::Ssi, Addr::Token(0), vec![9], Some(ctx));
        bus.run_until_quiet(1_000);
        b.end_phase(&mut bus);

        let t = b.finish();
        let phases = t.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(
            phases[0]
                .children
                .iter()
                .filter(|c| c.name.starts_with("token."))
                .count(),
            4
        );
        assert_eq!(
            phases[0]
                .children
                .iter()
                .filter(|c| c.name.starts_with("hop."))
                .count(),
            4
        );
        assert_eq!(t.per_token("flash.page_reads").get(&3), Some(&4));
        let cp = t.critical_path();
        assert_eq!(cp.len(), 2);
        assert!(cp[0].msg.is_some());
        assert_eq!(
            t.total_ticks(),
            phases
                .iter()
                .map(|p| p.attr_u64("bus.ticks").unwrap())
                .sum()
        );
    }

    #[test]
    fn stitched_trace_is_identical_across_worker_counts() {
        let run = |workers: usize| {
            let pool = TokenPool::build(9, workers, |i| i).unwrap();
            let mut bus = MailboxBus::new(BusConfig {
                seed: 21,
                connectivity: 0.5,
                loss_rate: 0.1,
                dup_rate: 0.1,
                ..Default::default()
            });
            let mut b = FleetTraceBuilder::new("fleet.test");
            let ctx = b.begin_phase("phase.collect", &bus);
            pool.map_in_trace(Some(ctx), |i, _| {
                let g = pds_obs::trace::span("token.work");
                g.set("token", i);
            });
            for i in 0..9usize {
                bus.send_in(Addr::Token(i), Addr::Ssi, vec![i as u8], Some(ctx));
            }
            bus.run_until_quiet(100_000);
            b.end_phase(&mut bus);
            b.finish().render()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }
}

//! The in-band fleet telemetry plane: delta envelopes, tick-indexed
//! rollups, and the declarative fleet health engine.
//!
//! The tutorial's fleet is "millions" of weakly-connected tokens behind
//! an untrusted SSI — at that scale nothing can scrape per-token JSONL
//! out-of-band, so observability has to ride the same fabric the
//! protocols do. Each token (and the driver, for the bus itself)
//! periodically snapshots its metric increments as a
//! [`MetricsDelta`](pds_obs::MetricsDelta) and mails it as a
//! [`TelemetryMsg`] envelope to the [`Addr::Collector`] role — an
//! SSI-hosted inbox that is always online, like the store itself. The
//! [`Collector`] folds every envelope into a **tick-indexed time
//! series**: a bounded ring of per-bucket rollups (bucket = virtual bus
//! tick / [`TelemetryConfig::granularity`]) whose oldest buckets fold
//! into a cumulative total when the ring is full — bounded memory,
//! nothing lost. Because delta merge is associative and commutative,
//! the rollups are bit-identical no matter how the bus reordered,
//! duplicated, or delayed the envelopes, and no matter how many worker
//! threads produced them.
//!
//! On top sits the [`HealthEngine`]: declarative SLO/invariant rules
//! (`bus.redeliveries / bus.deliveries < 0.25`,
//! `recovery.pages_lost == 0`, `p99(tok.payload_bytes) < 4096` — all in
//! counters and virtual ticks, never wall-clock) evaluated against a
//! rollup to produce a deterministic [`FleetHealth`] verdict with a
//! `fleet status` rendering and a JSON export.
//!
//! ## Rule grammar
//!
//! ```text
//! rule  := expr cmp bound
//! expr  := pNN '(' name ')'      quantile of histogram `name` (NN/100)
//!        | name '/' name         ratio of two scalar metrics
//!        | name                  scalar metric (counter, else gauge,
//!                                else histogram count; missing = 0)
//! cmp   := '<' | '<=' | '=='
//! bound := floating point literal
//! ```
//!
//! A ratio with a zero denominator evaluates to 0 (vacuously healthy:
//! no traffic means no violated traffic SLO).

use std::collections::{BTreeMap, BTreeSet};

use pds_core::{CrashCause, ForensicsReport};
use pds_obs::json::{write_f64, write_str, ObjWriter};
use pds_obs::MetricsDelta;

use crate::bus::{Addr, MailboxBus};

/// Shape of the telemetry plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Virtual bus ticks per rollup bucket.
    pub granularity: u64,
    /// Live buckets kept in the ring; older buckets fold into the
    /// cumulative total (bounded memory, nothing lost).
    pub ring: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            granularity: 64,
            ring: 16,
        }
    }
}

/// One telemetry envelope: who observed what, as of which virtual tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryMsg {
    /// [`Addr::code`] of the emitting endpoint.
    pub source: u64,
    /// Virtual bus tick the delta was cut at.
    pub tick: u64,
    /// The increments since the source's previous envelope.
    pub delta: MetricsDelta,
}

const MAGIC: &[u8] = b"PDT1";

impl TelemetryMsg {
    /// Bus payload form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.source.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&self.delta.encode());
        out
    }

    /// Parse a bus payload; `None` if it is not a telemetry envelope.
    pub fn decode(bytes: &[u8]) -> Option<TelemetryMsg> {
        let rest = bytes.strip_prefix(MAGIC)?;
        let source = u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?);
        let tick = u64::from_le_bytes(rest.get(8..16)?.try_into().ok()?);
        Some(TelemetryMsg {
            source,
            tick,
            delta: MetricsDelta::decode(rest.get(16..)?)?,
        })
    }
}

/// Compact crash post-mortem a recovered token mails to the collector:
/// the `PDF1` sibling of the `PDT1` telemetry envelope. Carries only
/// codes, ticks and counts — the full timeline stays on the token; the
/// digest is what fleet-scale triage needs (who crashed, when, why).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForensicsDigest {
    /// Id of the crashed token.
    pub token: u64,
    /// Virtual bus tick the digest was mailed at.
    pub tick: u64,
    /// Recorder tick of the last surviving frame — with `token`, the
    /// collector's exactly-once identity for this crash.
    pub crash_tick: u64,
    /// [`CrashCause::code`] of the classified cause.
    pub cause: u8,
    /// Subsystem of the last surviving frame.
    pub last_subsystem: u8,
    /// Event code of the last surviving frame.
    pub last_code: u16,
    /// Frames the recorder scan salvaged.
    pub frames_recovered: u64,
    /// Torn recorder pages discarded at the CRC cut.
    pub torn_pages: u64,
}

const DIGEST_MAGIC: &[u8] = b"PDF1";

impl ForensicsDigest {
    /// Distill a full [`ForensicsReport`] into its mailable digest.
    pub fn from_report(report: &ForensicsReport, tick: u64) -> ForensicsDigest {
        let last = report.last_frame();
        ForensicsDigest {
            token: report.token,
            tick,
            crash_tick: report.crash_tick(),
            cause: report.cause.code(),
            last_subsystem: last.map_or(0, |f| f.subsystem),
            last_code: last.map_or(0, |f| f.code),
            frames_recovered: report.frames_recovered,
            torn_pages: report.torn_pages_discarded,
        }
    }

    /// The classified cause.
    pub fn crash_cause(&self) -> CrashCause {
        CrashCause::from_code(self.cause)
    }

    /// Bus payload form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(DIGEST_MAGIC);
        out.extend_from_slice(&self.token.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&self.crash_tick.to_le_bytes());
        out.push(self.cause);
        out.push(self.last_subsystem);
        out.extend_from_slice(&self.last_code.to_le_bytes());
        out.extend_from_slice(&self.frames_recovered.to_le_bytes());
        out.extend_from_slice(&self.torn_pages.to_le_bytes());
        out
    }

    /// Parse a bus payload; `None` if it is not a forensics digest.
    pub fn decode(bytes: &[u8]) -> Option<ForensicsDigest> {
        let r = bytes.strip_prefix(DIGEST_MAGIC)?;
        if r.len() != 44 {
            return None;
        }
        let u64_at = |o: usize| u64::from_le_bytes(r[o..o + 8].try_into().unwrap());
        Some(ForensicsDigest {
            token: u64_at(0),
            tick: u64_at(8),
            crash_tick: u64_at(16),
            cause: r[24],
            last_subsystem: r[25],
            last_code: u16::from_le_bytes(r[26..28].try_into().unwrap()),
            frames_recovered: u64_at(28),
            torn_pages: u64_at(36),
        })
    }

    /// The crash counters this digest contributes to the rollup the
    /// health engine evaluates (`forensics.*`).
    fn as_delta(&self) -> MetricsDelta {
        let mut d = MetricsDelta::new();
        d.add("forensics.crashes", 1);
        d.add(&format!("forensics.cause.{}", self.crash_cause().name()), 1);
        if self.torn_pages > 0 {
            d.add("forensics.torn_tails", 1);
        }
        if self.crash_cause() == CrashCause::Unknown {
            d.add("forensics.unexplained", 1);
        }
        d
    }
}

/// Mail a recovered token's crash digest to the collector over the
/// store-and-forward bus ([`Addr::Token`] keyed by fleet slot `slot`).
/// Returns `false` only when the token has no post-mortem at all — it
/// never reopened. A token calls this after an *observed* power loss,
/// so even a `clean_shutdown`-cause digest carries signal: the power
/// went out but recovery was lossless (the torn page held nothing
/// acknowledged). Counted under `blackbox.digests_mailed`; the
/// collector's `(token, crash_tick)` dedup makes delivery exactly-once
/// even when the bus redelivers or the token re-mails after a power
/// cycle mid-mail.
pub fn mail_forensics(pds: &pds_core::Pds, slot: usize, bus: &mut MailboxBus) -> bool {
    let Some(report) = pds.forensics() else {
        return false;
    };
    let digest = ForensicsDigest::from_report(report, bus.now());
    bus.send(Addr::Token(slot), Addr::Collector, digest.encode());
    pds_obs::counter("blackbox.digests_mailed").inc();
    true
}

/// What the collector itself counted while folding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Envelopes folded into the time series.
    pub deltas_folded: u64,
    /// Envelope payload bytes ingested.
    pub bytes_ingested: u64,
    /// Payloads that failed to decode (dropped, counted, never folded).
    pub decode_errors: u64,
    /// Ring buckets folded into the cumulative total.
    pub buckets_evicted: u64,
    /// Forensics digests folded (each crash exactly once).
    pub digests_folded: u64,
    /// Duplicate digests dropped by the exactly-once gate (the bus may
    /// redeliver; a crash must not be counted twice).
    pub digests_deduped: u64,
}

/// The collector role: folds telemetry envelopes into a tick-indexed
/// fleet time series with bounded memory.
#[derive(Debug, Default)]
pub struct Collector {
    cfg: TelemetryConfig,
    ring: BTreeMap<u64, MetricsDelta>,
    evicted: MetricsDelta,
    sources: BTreeSet<u64>,
    stats: CollectorStats,
    digests: Vec<ForensicsDigest>,
    seen_crashes: BTreeSet<(u64, u64)>,
}

impl Collector {
    /// An empty collector.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Collector {
            cfg,
            ..Collector::default()
        }
    }

    /// Fold one envelope into its tick bucket.
    pub fn fold(&mut self, msg: &TelemetryMsg) {
        self.stats.deltas_folded += 1;
        self.sources.insert(msg.source);
        let bucket = msg.tick / self.cfg.granularity.max(1);
        self.ring.entry(bucket).or_default().merge(&msg.delta);
        while self.ring.len() > self.cfg.ring.max(1) {
            if let Some((_, old)) = self.ring.pop_first() {
                self.evicted.merge(&old);
                self.stats.buckets_evicted += 1;
            }
        }
    }

    /// Fold one crash digest, exactly once per `(token, crash_tick)`:
    /// the bus may redeliver, a crash must not be double-counted. The
    /// digest's crash counters land in the mailing tick's bucket, so
    /// the health engine sees the crash in its time series.
    pub fn fold_digest(&mut self, digest: &ForensicsDigest) {
        if !self.seen_crashes.insert((digest.token, digest.crash_tick)) {
            self.stats.digests_deduped += 1;
            return;
        }
        self.stats.digests_folded += 1;
        let bucket = digest.tick / self.cfg.granularity.max(1);
        self.ring
            .entry(bucket)
            .or_default()
            .merge(&digest.as_delta());
        self.digests.push(*digest);
    }

    /// Ingest a raw bus payload — a `PDT1` telemetry envelope or a
    /// `PDF1` forensics digest; returns false (and counts a decode
    /// error) when it is neither.
    pub fn ingest(&mut self, payload: &[u8]) -> bool {
        self.stats.bytes_ingested += payload.len() as u64;
        if let Some(msg) = TelemetryMsg::decode(payload) {
            self.fold(&msg);
            true
        } else if let Some(digest) = ForensicsDigest::decode(payload) {
            self.fold_digest(&digest);
            true
        } else {
            self.stats.decode_errors += 1;
            false
        }
    }

    /// Drain the collector's bus inbox ([`Addr::Collector`]) and ingest
    /// every delivered envelope. Inbox order is message-id order, but
    /// merge commutativity makes the fold order-independent anyway.
    pub fn drain_bus(&mut self, bus: &mut MailboxBus) {
        for msg in bus.drain_inbox(Addr::Collector) {
            self.ingest(&msg.payload);
        }
    }

    /// The cumulative rollup: evicted history plus every live bucket.
    pub fn total(&self) -> MetricsDelta {
        let mut t = self.evicted.clone();
        for d in self.ring.values() {
            t.merge(d);
        }
        t
    }

    /// The live time series: `bucket index → rollup` (bucket =
    /// tick / granularity).
    pub fn buckets(&self) -> &BTreeMap<u64, MetricsDelta> {
        &self.ring
    }

    /// Distinct endpoints that reported at least once.
    pub fn sources(&self) -> usize {
        self.sources.len()
    }

    /// Fold accounting.
    pub fn stats(&self) -> CollectorStats {
        self.stats
    }

    /// Every distinct crash digest folded so far, in arrival order.
    pub fn digests(&self) -> &[ForensicsDigest] {
        &self.digests
    }

    /// Fleet-wide crash triage, grouped by cause: the `fleet status`
    /// line that says "3 tokens crashed, all with torn changelog
    /// tails".
    pub fn crash_summary(&self) -> String {
        if self.digests.is_empty() {
            return "no crashes reported".to_string();
        }
        let mut by_cause: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        for d in &self.digests {
            by_cause
                .entry(d.crash_cause().name())
                .or_default()
                .push(d.token);
        }
        let mut out = format!("{} token(s) crashed:", self.digests.len());
        for (cause, mut tokens) in by_cause {
            tokens.sort_unstable();
            tokens.dedup();
            out.push_str(&format!(
                "\n  {} × {cause} (tokens {tokens:?})",
                tokens.len()
            ));
        }
        out
    }

    /// Evaluate `engine` over the cumulative rollup.
    pub fn health(&self, engine: &HealthEngine) -> FleetHealth {
        engine.evaluate(&self.total())
    }

    /// Evaluate `engine` per live tick bucket: `(bucket, verdict)`.
    pub fn health_per_bucket(&self, engine: &HealthEngine) -> Vec<(u64, FleetHealth)> {
        self.ring
            .iter()
            .map(|(b, d)| (*b, engine.evaluate(d)))
            .collect()
    }
}

/// The left-hand side of one health rule.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthExpr {
    /// A scalar metric: counter, else gauge, else histogram count;
    /// missing evaluates to 0.
    Metric(String),
    /// Ratio of two scalar metrics (0 when the denominator is 0).
    Ratio(String, String),
    /// Quantile of a histogram, `q` in `[0, 1]`.
    Quantile(String, f64),
}

/// Rule comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Strictly below the bound.
    Lt,
    /// At most the bound.
    Le,
    /// Exactly the bound (invariants like `recovery.pages_lost == 0`).
    Eq,
}

/// One declarative SLO/invariant rule. See the module docs for the
/// grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRule {
    /// The rule's source text (also its display name).
    pub text: String,
    /// Parsed left-hand side.
    pub expr: HealthExpr,
    /// Comparator.
    pub cmp: Cmp,
    /// Right-hand bound.
    pub bound: f64,
}

impl HealthRule {
    /// Parse `expr cmp bound`; `None` on any grammar violation.
    pub fn parse(text: &str) -> Option<HealthRule> {
        let (lhs, cmp, rhs) = if let Some((l, r)) = text.split_once("<=") {
            (l, Cmp::Le, r)
        } else if let Some((l, r)) = text.split_once("==") {
            (l, Cmp::Eq, r)
        } else if let Some((l, r)) = text.split_once('<') {
            (l, Cmp::Lt, r)
        } else {
            return None;
        };
        let bound: f64 = rhs.trim().parse().ok()?;
        let lhs = lhs.trim();
        let expr = if let Some(rest) = lhs.strip_prefix('p') {
            if let Some((pct, name)) = rest.split_once('(') {
                let pct: u32 = pct.parse().ok()?;
                let name = name.strip_suffix(')')?;
                if pct > 100 {
                    return None;
                }
                HealthExpr::Quantile(name.trim().to_string(), f64::from(pct) / 100.0)
            } else {
                HealthExpr::Metric(lhs.to_string())
            }
        } else if let Some((a, b)) = lhs.split_once('/') {
            HealthExpr::Ratio(a.trim().to_string(), b.trim().to_string())
        } else if lhs.is_empty() {
            return None;
        } else {
            HealthExpr::Metric(lhs.to_string())
        };
        Some(HealthRule {
            text: text.trim().to_string(),
            expr,
            cmp,
            bound,
        })
    }

    fn scalar(d: &MetricsDelta, name: &str) -> f64 {
        if let Some(v) = d.counters.get(name) {
            *v as f64
        } else if d.gauges.contains_key(name) {
            d.gauge(name) as f64
        } else if let Some(h) = d.hist(name) {
            h.count as f64
        } else {
            0.0
        }
    }

    /// Evaluate the left-hand side against a rollup.
    pub fn value(&self, d: &MetricsDelta) -> f64 {
        match &self.expr {
            HealthExpr::Metric(n) => Self::scalar(d, n),
            HealthExpr::Ratio(a, b) => {
                let den = Self::scalar(d, b);
                if den == 0.0 {
                    0.0
                } else {
                    Self::scalar(d, a) / den
                }
            }
            HealthExpr::Quantile(n, q) => d.hist(n).map_or(0.0, |h| h.quantile(*q)),
        }
    }

    /// Does `d` satisfy the rule?
    pub fn pass(&self, d: &MetricsDelta) -> bool {
        let v = self.value(d);
        match self.cmp {
            Cmp::Lt => v < self.bound,
            Cmp::Le => v <= self.bound,
            Cmp::Eq => v == self.bound,
        }
    }
}

/// One rule's outcome against one rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleVerdict {
    /// The rule's source text.
    pub rule: String,
    /// The evaluated left-hand side.
    pub value: f64,
    /// Whether the rule held.
    pub pass: bool,
}

/// A deterministic fleet health verdict: every rule's outcome, in rule
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealth {
    /// True when every rule held.
    pub healthy: bool,
    /// Per-rule outcomes.
    pub verdicts: Vec<RuleVerdict>,
}

impl FleetHealth {
    /// The `fleet status` rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet status: {} ({} rules)\n",
            if self.healthy { "HEALTHY" } else { "UNHEALTHY" },
            self.verdicts.len()
        );
        let width = self
            .verdicts
            .iter()
            .map(|v| v.rule.len())
            .max()
            .unwrap_or(0);
        for v in &self.verdicts {
            out.push_str(&format!(
                "  {} {:width$}  [{}]\n",
                if v.pass { "ok  " } else { "FAIL" },
                v.rule,
                v.value,
            ));
        }
        out
    }

    /// One-line JSON export.
    pub fn to_json(&self) -> String {
        let mut rules = String::from("[");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                rules.push(',');
            }
            rules.push_str("{\"rule\":");
            write_str(&mut rules, &v.rule);
            rules.push_str(",\"value\":");
            write_f64(&mut rules, v.value);
            rules.push_str(&format!(",\"pass\":{}}}", v.pass));
        }
        rules.push(']');
        ObjWriter::new()
            .bool("healthy", self.healthy)
            .raw("rules", &rules)
            .finish()
    }
}

/// An ordered set of health rules evaluated together.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthEngine {
    rules: Vec<HealthRule>,
}

impl HealthEngine {
    /// An engine with no rules (vacuously healthy).
    pub fn new() -> Self {
        HealthEngine::default()
    }

    /// Add a rule from its source text; `Err` echoes the bad text.
    pub fn rule(&mut self, text: &str) -> Result<(), String> {
        match HealthRule::parse(text) {
            Some(r) => {
                self.rules.push(r);
                Ok(())
            }
            None => Err(format!("unparseable health rule: {text:?}")),
        }
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[HealthRule] {
        &self.rules
    }

    /// The standard fleet SLO set: bus-fabric ratios and the
    /// must-never-happen invariants. Every rule is in counters and
    /// virtual ticks — wall-clock never decides health.
    pub fn standard() -> Self {
        let mut e = HealthEngine::new();
        for text in [
            // The fabric may be weak, but messages must not die.
            "bus.expired == 0",
            // Ack losses are tolerable noise, not the common case.
            "bus.redeliveries / bus.deliveries < 0.25",
            // Dedup hits track redeliveries; a surge means ack loss.
            "bus.dedup_hits / bus.deliveries < 0.25",
            // Crash recovery must never lose a committed page.
            "recovery.pages_lost == 0",
            // The observability plane itself must not drop telemetry.
            "telemetry.decode_errors == 0",
            // The scheduler may not thrash: at most one eviction per
            // wake on average (vacuous when nothing ever woke).
            "sched.evictions / sched.wakes <= 1.0",
            // The flight recorder's own durability: most recorded
            // frames must survive a power loss (vacuous when idle).
            "blackbox.torn_tails_truncated / blackbox.frames_written <= 0.5",
            // Exactly-once crash triage: the collector never counts
            // more crashes than tokens mailed digests for.
            "forensics.crashes / blackbox.digests_mailed <= 1.0",
            // Crash-rate SLO: any crash flips the fleet unhealthy, so
            // `fleet status` surfaces the triage summary.
            "forensics.crashes == 0",
            // Crash-cause SLO: every crash must classify — an
            // unexplained post-mortem is its own alarm.
            "forensics.unexplained == 0",
        ] {
            e.rule(text).expect("standard rule parses");
        }
        e
    }

    /// Evaluate every rule against one rollup.
    pub fn evaluate(&self, d: &MetricsDelta) -> FleetHealth {
        let verdicts: Vec<RuleVerdict> = self
            .rules
            .iter()
            .map(|r| RuleVerdict {
                rule: r.text.clone(),
                value: r.value(d),
                pass: r.pass(d),
            })
            .collect();
        FleetHealth {
            healthy: verdicts.iter().all(|v| v.pass),
            verdicts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{BusConfig, BusStats};

    fn msg(source: u64, tick: u64, n: u64) -> TelemetryMsg {
        let mut delta = MetricsDelta::new();
        delta.add("tok.contributions", n);
        delta.observe("tok.payload_bytes", 100 * n);
        TelemetryMsg {
            source,
            tick,
            delta,
        }
    }

    #[test]
    fn single_bucket_ring_is_a_running_total() {
        // ring = 1 is the degenerate boundary: every bucket change
        // evicts the previous bucket, and the total must still see
        // every fold exactly once.
        let mut c = Collector::new(TelemetryConfig {
            granularity: 10,
            ring: 1,
        });
        for tick in 0..50 {
            c.fold(&msg(1, tick, 1));
        }
        assert_eq!(c.buckets().len(), 1, "only the newest bucket lives");
        assert_eq!(c.stats().buckets_evicted, 4, "buckets 0..=3 folded out");
        assert_eq!(c.total().counter("tok.contributions"), 50);
        // The live bucket holds exactly the last granularity's worth.
        let live = c.buckets().values().next().unwrap();
        assert_eq!(live.counter("tok.contributions"), 10);
    }

    #[test]
    fn bucket_boundaries_split_on_exact_granularity_multiples() {
        // tick = k·granularity belongs to bucket k, not k-1 — the
        // half-open [k·g, (k+1)·g) convention, checked at the edges.
        let mut c = Collector::new(TelemetryConfig {
            granularity: 64,
            ring: 8,
        });
        c.fold(&msg(1, 0, 1)); // first tick of bucket 0
        c.fold(&msg(1, 63, 1)); // last tick of bucket 0
        c.fold(&msg(1, 64, 1)); // first tick of bucket 1
        c.fold(&msg(1, 128, 1)); // first tick of bucket 2
        let buckets: Vec<u64> = c.buckets().keys().copied().collect();
        assert_eq!(buckets, vec![0, 1, 2]);
        assert_eq!(
            c.buckets()[&0].counter("tok.contributions"),
            2,
            "ticks 0 and 63 share bucket 0"
        );
        assert_eq!(c.buckets()[&1].counter("tok.contributions"), 1);
        assert_eq!(c.stats().buckets_evicted, 0);
    }

    #[test]
    fn tail_fold_eviction_equals_the_unbounded_reference() {
        // The eviction invariant the plane rests on: a tightly-bounded
        // ring and an effectively-unbounded one agree on the cumulative
        // rollup (counters, gauges, histograms) for the same fold
        // stream — eviction relocates history, it never rewrites it.
        let stream: Vec<TelemetryMsg> = (0..200)
            .map(|k| {
                let mut delta = MetricsDelta::new();
                delta.add("tok.contributions", k % 7);
                delta.observe("tok.payload_bytes", 10 + (k * 13) % 97);
                delta.record_gauge(
                    "mcu.ram.peak_bytes",
                    1_000 + (k * 31) % 503,
                    pds_obs::GaugePolicy::Max,
                );
                TelemetryMsg {
                    source: k % 5,
                    tick: k * 3,
                    delta,
                }
            })
            .collect();
        let run = |ring: usize| {
            let mut c = Collector::new(TelemetryConfig {
                granularity: 16,
                ring,
            });
            for m in &stream {
                c.fold(m);
            }
            c
        };
        let tight = run(2);
        let unbounded = run(usize::MAX);
        assert_eq!(unbounded.stats().buckets_evicted, 0);
        assert!(tight.stats().buckets_evicted > 0);
        assert_eq!(tight.buckets().len(), 2);
        assert_eq!(tight.total(), unbounded.total(), "tail-fold is lossless");
        assert_eq!(tight.sources(), unbounded.sources());
        // And the health verdict — a function of the total — agrees.
        let engine = HealthEngine::standard();
        assert_eq!(tight.health(&engine), unbounded.health(&engine));
    }

    #[test]
    fn envelope_round_trips_and_rejects_junk() {
        let m = msg(7, 129, 3);
        assert_eq!(TelemetryMsg::decode(&m.encode()), Some(m.clone()));
        assert_eq!(TelemetryMsg::decode(b"PDT1"), None);
        assert_eq!(TelemetryMsg::decode(b"protocol payload"), None);
        assert_eq!(TelemetryMsg::decode(&[]), None);
    }

    #[test]
    fn collector_buckets_by_tick_and_bounds_memory() {
        let mut c = Collector::new(TelemetryConfig {
            granularity: 10,
            ring: 3,
        });
        for tick in [5, 15, 25, 35, 45] {
            c.fold(&msg(1, tick, 1));
        }
        assert_eq!(c.buckets().len(), 3, "ring bounded");
        assert_eq!(c.stats().buckets_evicted, 2);
        assert_eq!(
            c.total().counter("tok.contributions"),
            5,
            "evicted buckets fold into the total — nothing lost"
        );
        assert_eq!(c.sources(), 1);
    }

    #[test]
    fn fold_is_order_independent() {
        let msgs: Vec<TelemetryMsg> = (0..8).map(|i| msg(i, i * 7, i + 1)).collect();
        let fold = |order: &[usize]| {
            let mut c = Collector::new(TelemetryConfig::default());
            for &i in order {
                c.fold(&msgs[i]);
            }
            (c.total(), c.buckets().clone())
        };
        let a = fold(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let b = fold(&[7, 3, 5, 1, 6, 0, 2, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn collector_counts_junk_instead_of_folding_it() {
        let mut c = Collector::new(TelemetryConfig::default());
        assert!(!c.ingest(b"not telemetry"));
        assert!(c.ingest(&msg(1, 1, 1).encode()));
        assert_eq!(c.stats().decode_errors, 1);
        assert_eq!(c.stats().deltas_folded, 1);
    }

    #[test]
    fn collector_drains_its_bus_inbox() {
        let mut bus = MailboxBus::new(BusConfig::reliable(3));
        bus.send(Addr::Token(0), Addr::Collector, msg(1, 0, 2).encode());
        bus.send(Addr::Token(1), Addr::Collector, msg(2, 0, 3).encode());
        bus.run_until_quiet(1000);
        let mut c = Collector::new(TelemetryConfig::default());
        c.drain_bus(&mut bus);
        assert_eq!(c.total().counter("tok.contributions"), 5);
        assert_eq!(c.sources(), 2);
    }

    #[test]
    fn rule_grammar_parses_and_rejects() {
        let r = HealthRule::parse("bus.redeliveries / bus.deliveries < 0.25").unwrap();
        assert_eq!(
            r.expr,
            HealthExpr::Ratio("bus.redeliveries".into(), "bus.deliveries".into())
        );
        assert_eq!((r.cmp, r.bound), (Cmp::Lt, 0.25));

        let r = HealthRule::parse("recovery.pages_lost == 0").unwrap();
        assert_eq!(r.expr, HealthExpr::Metric("recovery.pages_lost".into()));
        assert_eq!(r.cmp, Cmp::Eq);

        let r = HealthRule::parse("p99(tok.payload_bytes) <= 4096").unwrap();
        assert_eq!(
            r.expr,
            HealthExpr::Quantile("tok.payload_bytes".into(), 0.99)
        );
        assert_eq!(r.cmp, Cmp::Le);

        // A metric that merely starts with `p` is still a metric.
        let r = HealthRule::parse("pool.workers < 9").unwrap();
        assert_eq!(r.expr, HealthExpr::Metric("pool.workers".into()));

        for bad in ["", "no comparator", "x <", "< 3", "p200(h) < 1", "x < z"] {
            assert!(HealthRule::parse(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn engine_verdicts_are_deterministic_and_explicit() {
        let mut d = MetricsDelta::new();
        d.add("bus.deliveries", 100);
        d.add("bus.redeliveries", 40); // 40% > 25% bound
        d.observe("ticks_hist", 8);
        let mut e = HealthEngine::new();
        e.rule("bus.redeliveries / bus.deliveries < 0.25").unwrap();
        e.rule("bus.expired == 0").unwrap();
        e.rule("p99(ticks_hist) <= 8").unwrap();
        let h = e.evaluate(&d);
        assert!(!h.healthy);
        assert_eq!(h.verdicts.len(), 3);
        assert!(!h.verdicts[0].pass);
        assert_eq!(h.verdicts[0].value, 0.4);
        assert!(h.verdicts[1].pass, "missing metric is 0, invariant holds");
        assert!(h.verdicts[2].pass, "quantile clamps to observed max");
        assert_eq!(h, e.evaluate(&d), "re-evaluation is bit-identical");
        assert!(h.render().contains("UNHEALTHY"));
        assert!(h.render().contains("FAIL bus.redeliveries"));
        let parsed = pds_obs::json::parse(&h.to_json()).expect("health JSON parses");
        assert_eq!(
            parsed.get("healthy").and_then(pds_obs::json::Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn standard_rules_pass_on_a_healthy_bus() {
        let stats = BusStats {
            sent: 100,
            delivered: 100,
            retries: 5,
            duplicates: 3,
            redeliveries: 3,
            backoff_events: 5,
            payload_bytes: 4000,
            expired: 0,
            ticks: 50,
        };
        let h = HealthEngine::standard().evaluate(&stats.as_delta());
        assert!(h.healthy, "{}", h.render());
    }

    #[test]
    fn zero_denominator_is_vacuously_healthy() {
        let mut e = HealthEngine::new();
        e.rule("bus.redeliveries / bus.deliveries < 0.25").unwrap();
        assert!(e.evaluate(&MetricsDelta::new()).healthy);
    }

    fn digest(token: u64, crash_tick: u64, cause: CrashCause) -> ForensicsDigest {
        ForensicsDigest {
            token,
            tick: 100,
            crash_tick,
            cause: cause.code(),
            last_subsystem: 4,
            last_code: 0x0402,
            frames_recovered: 12,
            torn_pages: u64::from(cause != CrashCause::CleanShutdown),
        }
    }

    #[test]
    fn digest_round_trips_and_rejects_junk() {
        let d = digest(3, 41, CrashCause::TornChangelogTail);
        assert_eq!(ForensicsDigest::decode(&d.encode()), Some(d));
        assert_eq!(ForensicsDigest::decode(b"PDF1"), None);
        assert_eq!(ForensicsDigest::decode(b"PDT1 something"), None);
        let mut truncated = d.encode();
        truncated.pop();
        assert_eq!(ForensicsDigest::decode(&truncated), None);
    }

    #[test]
    fn collector_folds_each_crash_exactly_once() {
        let mut c = Collector::new(TelemetryConfig::default());
        let d = digest(3, 41, CrashCause::TornChangelogTail);
        // The bus may redeliver the same digest many times.
        assert!(c.ingest(&d.encode()));
        assert!(c.ingest(&d.encode()));
        assert!(c.ingest(&d.encode()));
        assert_eq!(c.stats().digests_folded, 1);
        assert_eq!(c.stats().digests_deduped, 2);
        assert_eq!(c.digests().len(), 1);
        assert_eq!(c.total().counter("forensics.crashes"), 1);
        // A later crash of the same token has a new crash_tick.
        c.fold_digest(&digest(3, 99, CrashCause::TornDataTail));
        assert_eq!(c.total().counter("forensics.crashes"), 2);
        assert_eq!(c.stats().decode_errors, 0);
    }

    #[test]
    fn crash_digests_flip_the_standard_verdict_unhealthy() {
        let mut c = Collector::new(TelemetryConfig::default());
        for t in 0..3 {
            c.fold_digest(&digest(t, 10 + t, CrashCause::TornChangelogTail));
        }
        let h = c.health(&HealthEngine::standard());
        assert!(!h.healthy, "{}", h.render());
        let failing: Vec<&str> = h
            .verdicts
            .iter()
            .filter(|v| !v.pass)
            .map(|v| v.rule.as_str())
            .collect();
        assert_eq!(failing, vec!["forensics.crashes == 0"]);
        let summary = c.crash_summary();
        assert!(summary.contains("3 token(s) crashed"), "{summary}");
        assert!(summary.contains("torn_changelog_tail"), "{summary}");
    }

    #[test]
    fn unknown_cause_trips_the_cause_slo() {
        let mut c = Collector::new(TelemetryConfig::default());
        c.fold_digest(&digest(5, 7, CrashCause::Unknown));
        let h = c.health(&HealthEngine::standard());
        assert!(h
            .verdicts
            .iter()
            .any(|v| v.rule == "forensics.unexplained == 0" && !v.pass));
    }

    #[test]
    fn new_standard_ratios_are_vacuous_at_zero_denominator() {
        // An idle fleet — no wakes, no recorded frames, no digests —
        // must be healthy: ratios with zero denominators evaluate to 0.
        let h = HealthEngine::standard().evaluate(&MetricsDelta::new());
        assert!(h.healthy, "{}", h.render());
        // And a busy-but-clean fleet stays healthy too.
        let mut d = MetricsDelta::new();
        d.add("sched.wakes", 10);
        d.add("sched.evictions", 4);
        d.add("blackbox.frames_written", 1000);
        d.add("blackbox.digests_mailed", 2);
        let h = HealthEngine::standard().evaluate(&d);
        assert!(h.healthy, "{}", h.render());
    }
}

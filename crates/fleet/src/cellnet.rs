//! Trusted-Cells synchronization as a fleet job.
//!
//! The Trusted-Cells vision syncs one owner's devices through an
//! untrusted cloud. In-process, `pds_sync::TrustedCell::sync` talks to
//! the [`CloudStore`] directly; here the same [`CellMsg`] protocol runs
//! over the store-and-forward bus: cells are online only a fraction of
//! ticks, pull requests / responses / pushes are bus messages that
//! retry with backoff, and an offline cell's traffic simply parks in
//! its mailbox until it reconnects — which is exactly how the cloud
//! provides availability in the paper's architecture. A sync round is a
//! three-phase fleet job: *request* (cells emit pull requests in
//! parallel), *serve* (the driver's cloud answers; version-guarded),
//! *reconcile* (cells apply responses in parallel and emit pushes).
//!
//! Every randomness source is a derived stream keyed by
//! `(seed, round, cell)`, so a run is deterministic at any worker
//! count; the regression test for "offline cells converge after coming
//! back online" lives in `tests/fleet.rs`.

use std::collections::BTreeMap;
use std::sync::Arc;

use pds_core::{CloudStore, PdsError};
use pds_obs::FleetTrace;
use pds_sync::{serve_cloud, CellMsg, CellSyncReport, TrustedCell};

use crate::agg::derived_rng;
use crate::bus::{Addr, BusConfig, BusStats, MailboxBus};
use crate::pool::TokenPool;
use crate::trace::FleetTraceBuilder;

const TAG_CELL: u64 = 0x464C_5443_454C_4C04; // per-(round, cell) push stream

/// Open this cell's phase-work span when inside a traced phase (same
/// shape as the aggregation driver's token spans).
fn cell_span(i: usize) -> Option<pds_obs::SpanGuard> {
    pds_obs::trace::context().is_some().then(|| {
        let g = pds_obs::trace::span(&format!("token.{i}"));
        g.set("token", i);
        g
    })
}

/// One cell's reconcile-phase output: `(pushes, outcome tallies)`.
type ReconcileOut = Result<(Vec<Vec<u8>>, CellSyncReport), PdsError>;

/// Shape of one cell network.
#[derive(Debug, Clone)]
pub struct CellNetConfig {
    /// Number of trusted cells.
    pub cells: usize,
    /// Worker threads hosting the cell shards.
    pub workers: usize,
    /// Master seed (bus schedule + push encryption streams).
    pub seed: u64,
    /// Bus ticks granted per phase; traffic still in flight afterwards
    /// (e.g. to a forced-offline cell) carries over to later rounds.
    pub ticks_per_phase: u64,
    /// Fabric profile.
    pub bus: BusConfig,
    /// Delta reconcile: cells ask "changes since version v"
    /// ([`CellMsg::PullSince`]) instead of pulling full snapshots, so an
    /// in-sync slice costs a [`CellMsg::NotModified`] header rather than
    /// a full ciphertext. Off by default — both modes converge to the
    /// same [`CellNet::versions`] witness.
    pub delta: bool,
}

impl CellNetConfig {
    /// A cell network over the default weak-connectivity fabric.
    pub fn new(cells: usize, workers: usize, seed: u64) -> Self {
        CellNetConfig {
            cells,
            workers,
            seed,
            ticks_per_phase: 2_000,
            bus: BusConfig {
                seed,
                ..BusConfig::default()
            },
            delta: false,
        }
    }

    /// Same network, delta reconcile on.
    pub fn with_delta(mut self) -> Self {
        self.delta = true;
        self
    }
}

/// One owner's cells, the untrusted cloud, and the bus between them.
pub struct CellNet {
    cfg: CellNetConfig,
    pool: TokenPool<TrustedCell>,
    bus: MailboxBus,
    cloud: CloudStore,
    /// Public slice-name directory (slice names are cloud metadata the
    /// cells use to discover slices they have never written).
    directory: Vec<String>,
    round: u32,
    report: CellSyncReport,
}

impl CellNet {
    /// Build the network; the factory constructs cell `i` inside its
    /// owning worker.
    pub fn build<F>(cfg: CellNetConfig, factory: F) -> Result<Self, crate::sched::FleetError>
    where
        F: Fn(usize) -> TrustedCell + Send + Clone + 'static,
    {
        let pool = TokenPool::build(cfg.cells, cfg.workers, factory)?;
        let bus = MailboxBus::new(cfg.bus);
        Ok(CellNet {
            cfg,
            pool,
            bus,
            cloud: CloudStore::new(),
            directory: Vec::new(),
            round: 0,
            report: CellSyncReport::default(),
        })
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cfg.cells
    }

    /// True when the network hosts no cells.
    pub fn is_empty(&self) -> bool {
        self.cfg.cells == 0
    }

    /// Cumulative sync outcomes.
    pub fn report(&self) -> CellSyncReport {
        self.report
    }

    /// Bus delivery counters.
    pub fn bus_stats(&self) -> BusStats {
        self.bus.stats()
    }

    /// Pin a cell offline / bring it back (its bus traffic waits).
    pub fn force_offline(&mut self, cell: usize, offline: bool) {
        self.bus.force_offline(cell, offline);
    }

    /// Local write on one cell (bumps the slice version there).
    pub fn write(&mut self, cell: usize, slice: &str, data: &[u8]) {
        if !self.directory.iter().any(|s| s == slice) {
            self.directory.push(slice.to_string());
        }
        let slice = slice.to_string();
        let data = data.to_vec();
        self.pool.map(move |i, c| {
            if i == cell {
                c.write(&slice, &data);
            }
        });
    }

    /// One synchronization round: request → serve → reconcile, all
    /// token↔cloud traffic on the bus.
    pub fn sync_round(&mut self) -> Result<CellSyncReport, PdsError> {
        self.sync_round_inner(&mut None)
    }

    /// [`CellNet::sync_round`] with a stitched causal [`FleetTrace`]:
    /// per-cell `token.N` spans in the request/reconcile phases and the
    /// full hop history of every message the round moved.
    pub fn sync_round_traced(&mut self) -> Result<(CellSyncReport, FleetTrace), PdsError> {
        let mut b = FleetTraceBuilder::new("fleet.sync");
        b.set("cells", self.cfg.cells);
        b.set("round", u64::from(self.round));
        b.set("seed", self.cfg.seed);
        let mut ftb = Some(b);
        let delta = self.sync_round_inner(&mut ftb)?;
        Ok((delta, ftb.take().expect("builder kept").finish()))
    }

    fn sync_round_inner(
        &mut self,
        ftb: &mut Option<FleetTraceBuilder>,
    ) -> Result<CellSyncReport, PdsError> {
        let round = self.round;
        self.round += 1;
        let mut delta = CellSyncReport::default();

        // Phase 1: every cell mails its pull requests.
        let ctx = ftb
            .as_mut()
            .map(|b| b.begin_phase("phase.request", &self.bus));
        let directory = self.directory.clone();
        let use_delta = self.cfg.delta;
        let requests: Vec<Vec<Vec<u8>>> = self.pool.map_in_trace(ctx, move |i, c| {
            let _span = cell_span(i);
            let reqs = if use_delta {
                c.sync_requests_since(&directory)
            } else {
                c.sync_requests(&directory)
            };
            reqs.iter().map(CellMsg::to_bytes).collect()
        });
        for (i, reqs) in requests.into_iter().enumerate() {
            for r in reqs {
                self.bus.send_in(Addr::Token(i), Addr::Ssi, r, ctx);
            }
        }
        self.bus.run_until_quiet(self.cfg.ticks_per_phase);
        if let Some(b) = ftb.as_mut() {
            b.end_phase(&mut self.bus);
        }

        // Phase 2: the cloud serves whatever arrived (version-guarded;
        // requests from offline cells simply arrive in a later round).
        let ctx = ftb
            .as_mut()
            .map(|b| b.begin_phase("phase.serve", &self.bus));
        for m in self.bus.drain_inbox(Addr::Ssi) {
            let Some(msg) = CellMsg::from_bytes(&m.payload) else {
                continue;
            };
            if let Some(resp) = serve_cloud(&mut self.cloud, &msg) {
                self.bus.send_in(Addr::Ssi, m.from, resp.to_bytes(), ctx);
            }
        }
        self.bus.run_until_quiet(self.cfg.ticks_per_phase);
        if let Some(b) = ftb.as_mut() {
            b.end_phase(&mut self.bus);
        }

        // Phase 3: cells reconcile the responses in parallel.
        let ctx = ftb
            .as_mut()
            .map(|b| b.begin_phase("phase.reconcile", &self.bus));
        let mut mail: BTreeMap<usize, Vec<Vec<u8>>> = BTreeMap::new();
        for i in 0..self.cfg.cells {
            let msgs = self.bus.drain_inbox(Addr::Token(i));
            if !msgs.is_empty() {
                mail.insert(i, msgs.into_iter().map(|m| m.payload).collect());
            }
        }
        let mail = Arc::new(mail);
        let seed = self.cfg.seed;
        let handled: Vec<ReconcileOut> = self.pool.map_in_trace(ctx, move |i, c| {
            let _span = cell_span(i);
            let mut pushes = Vec::new();
            let mut rep = CellSyncReport::default();
            let Some(mine) = mail.get(&i) else {
                return Ok((pushes, rep));
            };
            let mut rng = derived_rng(seed, TAG_CELL, (u64::from(round) << 32) | i as u64);
            for bytes in mine {
                let Some(resp) = CellMsg::from_bytes(bytes) else {
                    continue;
                };
                let (push, outcome) = c.handle_response(&resp, &mut rng)?;
                rep.record(outcome);
                if let Some(p) = push {
                    pushes.push(p.to_bytes());
                }
            }
            Ok((pushes, rep))
        });
        for (i, r) in handled.into_iter().enumerate() {
            let (pushes, rep) = r?;
            delta.pushed += rep.pushed;
            delta.pulled += rep.pulled;
            delta.unchanged += rep.unchanged;
            for p in pushes {
                self.bus.send_in(Addr::Token(i), Addr::Ssi, p, ctx);
            }
        }
        self.bus.run_until_quiet(self.cfg.ticks_per_phase);
        if let Some(b) = ftb.as_mut() {
            b.end_phase(&mut self.bus);
        }
        for m in self.bus.drain_inbox(Addr::Ssi) {
            if let Some(msg) = CellMsg::from_bytes(&m.payload) {
                serve_cloud(&mut self.cloud, &msg);
            }
        }

        self.report.pushed += delta.pushed;
        self.report.pulled += delta.pulled;
        self.report.unchanged += delta.unchanged;
        pds_obs::counter("fleet.cells.pushed").add(u64::from(delta.pushed));
        pds_obs::counter("fleet.cells.pulled").add(u64::from(delta.pulled));
        pds_obs::counter("fleet.cells.unchanged").add(u64::from(delta.unchanged));
        Ok(delta)
    }

    /// Run up to `rounds` sync rounds, stopping early once a round moved
    /// nothing and the bus is idle.
    pub fn sync_until_quiet(&mut self, rounds: u32) -> Result<u32, PdsError> {
        for r in 0..rounds {
            let delta = self.sync_round()?;
            if delta.pushed == 0 && delta.pulled == 0 && self.bus.in_flight() == 0 {
                return Ok(r + 1);
            }
        }
        Ok(rounds)
    }

    /// Per-cell `(slice, version)` maps — the convergence witness.
    pub fn versions(&self) -> Vec<Vec<(String, u64)>> {
        self.pool.map(|_, c| {
            c.slice_names()
                .into_iter()
                .map(|s| {
                    let v = c.version(&s);
                    (s, v)
                })
                .collect()
        })
    }

    /// True when every cell holds identical slice versions.
    pub fn converged(&self) -> bool {
        let v = self.versions();
        v.windows(2).all(|w| w[0] == w[1])
    }

    /// Read one slice on one cell.
    pub fn read(&self, cell: usize, slice: &str) -> Option<Vec<u8>> {
        let slice = slice.to_string();
        self.pool
            .map(move |i, c| {
                if i == cell {
                    c.read(&slice).map(|d| d.to_vec())
                } else {
                    None
                }
            })
            .swap_remove(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(cells: usize, workers: usize, seed: u64) -> CellNet {
        let cfg = CellNetConfig::new(cells, workers, seed);
        CellNet::build(cfg, |i| TrustedCell::new(&format!("cell-{i}"), b"owner-x")).unwrap()
    }

    #[test]
    fn all_cells_converge_on_one_write() {
        let mut n = net(5, 2, 1);
        n.write(0, "prefs", b"dark-mode");
        n.sync_until_quiet(40).unwrap();
        assert!(n.converged(), "versions: {:?}", n.versions());
        assert_eq!(n.read(4, "prefs").unwrap(), b"dark-mode");
    }

    #[test]
    fn newer_write_wins_across_the_bus() {
        let mut n = net(3, 2, 2);
        n.write(0, "s", b"v1");
        n.sync_until_quiet(40).unwrap();
        n.write(1, "s", b"v2-from-1");
        n.write(1, "s", b"v3-from-1");
        n.sync_until_quiet(40).unwrap();
        assert_eq!(n.read(2, "s").unwrap(), b"v3-from-1");
        assert_eq!(n.read(0, "s").unwrap(), b"v3-from-1");
    }

    #[test]
    fn traced_round_shows_request_serve_reconcile() {
        let mut n = net(4, 2, 9);
        n.write(1, "notes", b"hello");
        let (_, t) = n.sync_round_traced().unwrap();
        let names: Vec<&str> = t.phases().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["phase.request", "phase.serve", "phase.reconcile"]);
        assert!(t.total_ticks() > 0);
        // The round moved traffic and every hop's history was stitched.
        assert!(t
            .phases()
            .iter()
            .any(|p| p.children.iter().any(|c| c.name.starts_with("hop."))));
    }

    #[test]
    fn delta_mode_converges_to_the_same_witness() {
        let run = |delta: bool| {
            let cfg = CellNetConfig::new(5, 2, 7);
            let cfg = if delta { cfg.with_delta() } else { cfg };
            let mut n = CellNet::build(cfg, |i| TrustedCell::new(&format!("cell-{i}"), b"owner-x"))
                .unwrap();
            n.write(0, "prefs", b"dark-mode");
            n.write(3, "notes", b"hello");
            n.sync_until_quiet(40).unwrap();
            assert!(n.converged(), "versions: {:?}", n.versions());
            n.versions()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn delta_mode_moves_fewer_payload_bytes_once_converged() {
        let build = |delta: bool| {
            let cfg = CellNetConfig::new(6, 2, 11);
            let cfg = if delta { cfg.with_delta() } else { cfg };
            let mut n = CellNet::build(cfg, |i| TrustedCell::new(&format!("cell-{i}"), b"owner-x"))
                .unwrap();
            n.write(0, "profile", &[7u8; 512]);
            n.sync_until_quiet(40).unwrap();
            assert!(n.converged());
            // Converged fleet: measure one idle reconcile round.
            let before = n.bus_stats().payload_bytes;
            n.sync_round().unwrap();
            n.bus_stats().payload_bytes - before
        };
        let full = build(false);
        let delta = build(true);
        assert!(
            delta * 5 <= full,
            "idle round: delta moved {delta} B, full moved {full} B"
        );
    }

    #[test]
    fn rounds_are_seed_deterministic() {
        let run = |seed| {
            let mut n = net(4, 2, seed);
            n.write(0, "a", b"1");
            n.write(2, "b", b"2");
            let rounds = n.sync_until_quiet(40).unwrap();
            (rounds, n.versions(), n.bus_stats())
        };
        assert_eq!(run(5), run(5));
    }
}

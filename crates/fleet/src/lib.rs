//! # pds-fleet — the multi-token ecosystem runtime
//!
//! The tutorial's architecture is *asymmetric*: "millions" of secure
//! tokens — low powered, **highly disconnected** — on one side, and an
//! untrusted but always-available Supporting Server Infrastructure on
//! the other. The other crates build one token and the protocols; this
//! crate builds the *ecosystem*: many tokens at once, weak connectivity
//! and all, with the SSI doing the only thing it is trusted to do —
//! store and forward.
//!
//! Four layers:
//!
//! * [`bus`] — the **store-and-forward mailbox bus**: per-endpoint
//!   mailboxes, a seeded connectivity model (each token is online only a
//!   fraction of ticks), at-least-once delivery with retry/backoff,
//!   duplicate re-deliveries absorbed by per-receiver dedup sets, and a
//!   delivery schedule that is a pure function of the seed.
//! * [`sched`] — the **event-driven fleet scheduler**: a `Pds` is
//!   `!Send` (it *is* a secure microcontroller), so each long-lived
//!   shard thread builds and owns its tokens' slots; the driver runs
//!   one logical tick loop that drains bus deliveries into per-shard
//!   batches and wakes only the tokens that have mail or a phase
//!   obligation, evicting least-recently-woken state to flash
//!   snapshots so resident RAM stays bounded at 100k+ tokens.
//! * [`pool`] — the simpler **token worker pool** (phase barriers over
//!   an always-resident fleet), still hosting the Trusted-Cells sync
//!   network.
//! * [`agg`] / [`cellnet`] — the [TNP14] secure-aggregation /
//!   global-query protocols and the Trusted-Cells sync pass re-hosted as
//!   **phased fleet jobs** (collection → SSI shuffle/compute → result
//!   distribution) on top of the two.
//! * [`subs`] — **continuous queries as a fleet workload**: every token
//!   holds a standing predicate on its own PDS (MVCC change-log
//!   cursors), polls it after each commit round and mails the result
//!   delta to the SSI collector, whose `(token, rowid)` ledger measures
//!   the exactly-once property instead of assuming it.
//! * [`telemetry`] — the **in-band telemetry plane**: per-token metric
//!   deltas ride the same bus as the protocols (envelopes to an
//!   always-online collector role), fold into tick-indexed rollups with
//!   bounded memory, and feed a declarative health engine whose
//!   [`FleetHealth`](telemetry::FleetHealth) verdict is bit-identical
//!   at any worker count.
//! * [`trace`] — the **fleet-trace stitcher**: with `FleetConfig::trace`
//!   on, every worker's per-token span trees and every bus message's
//!   hop history are stitched into one causal
//!   [`FleetTrace`](pds_obs::FleetTrace) per round — per-phase straggler
//!   hops (the critical path, in bus ticks) and per-token flash/RAM
//!   attribution, bit-for-bit identical at any worker count.
//!
//! The determinism contract threaded through all of it: every random
//! decision is a derived hash stream — per-token data and encryption
//! streams `(seed, tag, token)`, per-partition re-encryption streams
//! `(seed, round, partition)`, bus connectivity/loss `(seed, message
//! id, tick)`, SSI drop/forge verdicts `(seed, message id)`. Worker
//! threads only compute pure per-token functions between phase
//! barriers, so for a fixed seed the protocol result, the leakage
//! ledger, and the bus statistics are bit-for-bit identical at 1, 2, or
//! 8 workers — `tests/fleet.rs` proves it.

pub mod agg;
pub mod bus;
pub mod cellnet;
pub mod pool;
pub mod sched;
pub mod subs;
pub mod telemetry;
pub mod trace;

pub use agg::{
    build_fleet, build_token, derived_rng, fleet_secure_aggregation, EvictPolicy, Fleet,
    FleetAggReport, FleetConfig, OnTamper, PdsHost, TelemetrySummary,
};
pub use bus::{Addr, BusConfig, BusMsg, BusStats, HopRecord, MailboxBus};
pub use cellnet::{CellNet, CellNetConfig};
pub use pool::TokenPool;
pub use sched::{FleetError, FleetScheduler, SchedStats, TokenHost};
pub use subs::{SubNet, SubNetConfig, SubRoundReport};
pub use telemetry::{
    mail_forensics, Collector, CollectorStats, FleetHealth, ForensicsDigest, HealthEngine,
    HealthRule, TelemetryConfig, TelemetryMsg,
};
pub use trace::FleetTraceBuilder;

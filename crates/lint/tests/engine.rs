//! Fixture-corpus tests for the call-graph rules: every new rule has a
//! violating fixture and a sanitized/waived twin, asserted through the
//! library API and through the real `pds-lint` binary (exit code,
//! rendered chain, `--json`).

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> pds_lint::LintReport {
    pds_lint::run_workspace(&fixture(name)).expect("fixture walk")
}

#[test]
fn egress_bad_names_the_full_chain() {
    let report = run("ws_egress_bad");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "flow.plaintext_egress");
    assert!(f.file.ends_with("crates/fleet/src/lib.rs"));
    assert!(f.message.contains("raw document bytes"), "{}", f.message);
    assert!(
        f.message.contains("store-and-forward bus payload"),
        "{}",
        f.message
    );
    let chain = f.chain.join(" → ");
    assert!(chain.contains("DocStore::get"), "{chain}");
    assert!(chain.contains("read_row"), "{chain}");
    assert!(chain.contains("MailboxBus::send"), "{chain}");
}

#[test]
fn egress_ok_twin_is_clean_with_one_waiver() {
    let report = run("ws_egress_ok");
    assert!(report.is_clean(), "{:?}", report.findings);
    // The sealed path is silent; the released path is waived, not unseen.
    assert_eq!(report.waived.len(), 1, "{:?}", report.waived);
    assert_eq!(report.waived[0].rule, "flow.plaintext_egress");
}

#[test]
fn panic_bad_reaches_across_the_crate_boundary() {
    let report = run("ws_panic_bad");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "panic.transitive");
    assert!(f.file.ends_with("crates/crypto/src/lib.rs"));
    let chain = f.chain.join(" → ");
    assert!(chain.contains("checksum_first"), "{chain}");
    assert!(chain.contains("first_byte_or_panic"), "{chain}");
}

#[test]
fn panic_ok_twin_is_clean_with_one_waiver() {
    let report = run("ws_panic_ok");
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.waived.len(), 1, "{:?}", report.waived);
    assert_eq!(report.waived[0].rule, "panic.transitive");
}

#[test]
fn stale_waiver_is_flagged() {
    let report = run("ws_stale");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "waiver.unused");
    assert!(f.message.contains("det.time"), "{}", f.message);
}

// ---- the shipped binary -----------------------------------------------

fn run_bin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pds-lint"))
        .args(args)
        .output()
        .expect("spawn pds-lint")
}

#[test]
fn binary_exits_nonzero_on_seeded_violation_and_prints_the_chain() {
    let root = fixture("ws_egress_bad");
    let out = run_bin(&["--root", root.to_str().unwrap()]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("flow.plaintext_egress"), "{stdout}");
    assert!(stdout.contains("DocStore::get"), "{stdout}");
    assert!(stdout.contains("read_row"), "{stdout}");
    assert!(stdout.contains("MailboxBus::send"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_the_sanitized_twin() {
    let root = fixture("ws_egress_ok");
    let out = run_bin(&["--root", root.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_json_report_is_well_formed() {
    let root = fixture("ws_egress_bad");
    let out = run_bin(&["--root", root.to_str().unwrap(), "--json"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"clean\": false"), "{stdout}");
    assert!(
        stdout.contains("\"rule\":\"flow.plaintext_egress\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"chain\":["), "{stdout}");
    // Minimal structural sanity: balanced braces and brackets.
    for (open, close) in [('{', '}'), ('[', ']')] {
        let o = stdout.matches(open).count();
        let c = stdout.matches(close).count();
        assert_eq!(o, c, "unbalanced {open}{close} in {stdout}");
    }
}

//! Self-check: the shipped tree must satisfy its own static-analysis
//! gate. Every panic site in the token-resident crates is either
//! converted to a typed error or carries a reasoned waiver; the
//! determinism and layering contracts hold workspace-wide.
//!
//! This is the test-suite twin of the CI step `cargo run -p pds-lint` —
//! it keeps `cargo test` sufficient to catch a regression locally.

use std::path::Path;

#[test]
fn shipped_workspace_is_lint_clean() {
    let root = pds_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let report = pds_lint::run_workspace(&root).expect("workspace walk");
    assert!(
        report.is_clean(),
        "unwaived findings:\n{}",
        report
            .findings
            .iter()
            .map(pds_lint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk really covered the tree (guards against a silent
    // wrong-root walk reporting vacuous cleanliness).
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
    // Waivers stay a scarce resource: every one is deliberate, and this
    // ceiling forces a conversation (and a bump here) before adding more.
    assert!(
        report.waived.len() <= 24,
        "waiver count {} crept past the budget — convert sites to typed errors instead",
        report.waived.len()
    );
}

//! Self-check: the shipped tree must satisfy its own static-analysis
//! gate. Every panic site in the token-resident crates is either
//! converted to a typed error or carries a reasoned waiver; the
//! determinism and layering contracts hold workspace-wide.
//!
//! This is the test-suite twin of the CI step `cargo run -p pds-lint` —
//! it keeps `cargo test` sufficient to catch a regression locally.

use std::path::Path;

#[test]
fn shipped_workspace_is_lint_clean() {
    let root = pds_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let report = pds_lint::run_workspace(&root).expect("workspace walk");
    assert!(
        report.is_clean(),
        "unwaived findings:\n{}",
        report
            .findings
            .iter()
            .map(pds_lint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk really covered the tree (guards against a silent
    // wrong-root walk reporting vacuous cleanliness).
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
    // Waivers stay a scarce resource: every one is deliberate, and this
    // ceiling forces a conversation (and a bump here) before adding more.
    // The `waiver.unused` rule keeps the count honest (a waiver whose
    // rule stopped firing is itself a finding), so the budget sits at
    // the true count, not a slack estimate.
    assert!(
        report.waived.len() <= 14,
        "waiver count {} crept past the budget — convert sites to typed errors instead",
        report.waived.len()
    );
    // The call-graph passes really ran (a parse regression that drops
    // every function would otherwise pass vacuously).
    assert!(
        report.graph_functions > 500 && report.graph_edges > 500,
        "call graph collapsed: {} fns / {} edges",
        report.graph_functions,
        report.graph_edges
    );
}

//! Helper crate of the `ws_panic_ok` twin: the checked variant panics
//! nowhere; the asserted variant carries a reasoned waiver.

pub fn first_byte_checked(data: &[u8]) -> u8 {
    data.first().copied().unwrap_or(0)
}

pub fn first_byte_asserted(data: &[u8]) -> u8 {
    // pds-lint: allow(panic.transitive) — fixture: caller pads input to at least one byte
    assert!(!data.is_empty());
    data.first().copied().unwrap_or(0)
}

//! Twin of `ws_panic_bad`: same shape, no unwaived finding. One path
//! returns a typed default instead of panicking; the other keeps its
//! assert under a reasoned waiver.

pub fn checksum_first(data: &[u8]) -> u8 {
    first_byte_checked(data)
}

pub fn checksum_first_asserted(data: &[u8]) -> u8 {
    first_byte_asserted(data)
}

//! Stale-waiver fixture: the waiver below names a rule that produces no
//! finding on its target line, so `waiver.unused` must flag it.

pub fn add(a: u64, b: u64) -> u64 {
    // pds-lint: allow(det.time) — legacy timing shim, since removed
    a.saturating_add(b)
}

//! Sanitized / waived twin of `ws_egress_bad`: the same read→mail shape
//! passes the gate two legitimate ways — through a `pds-crypto`
//! sanitizer, or under a reasoned waiver at a declared declassification
//! point. `pds-lint` must exit zero here.

pub struct DocStore {
    rows: Vec<Vec<u8>>,
}

impl DocStore {
    pub fn get(&self, doc: u32) -> Vec<u8> {
        self.rows.get(doc as usize).cloned().unwrap_or_default()
    }
}

#[derive(Clone, Copy)]
pub struct Addr(pub u32);

pub struct MailboxBus {
    queue: Vec<Vec<u8>>,
}

impl MailboxBus {
    pub fn send(&mut self, _from: Addr, _to: Addr, payload: Vec<u8>) -> u64 {
        self.queue.push(payload);
        self.queue.len() as u64
    }
}

pub struct SymmetricKey;

impl SymmetricKey {
    pub fn encrypt_det(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8];
        out.extend_from_slice(plaintext);
        out
    }
}

pub fn read_row(store: &DocStore, doc: u32) -> Vec<u8> {
    store.get(doc)
}

/// Legitimate egress: the row is sealed before it touches the bus.
pub fn mail_row_sealed(bus: &mut MailboxBus, store: &DocStore, key: &SymmetricKey, doc: u32) -> u64 {
    let row = read_row(store, doc);
    let ct = key.encrypt_det(&row);
    bus.send(Addr(0), Addr(1), ct)
}

/// Declared declassification: the protocol releases this value on
/// purpose, and the waiver records why.
pub fn mail_row_released(bus: &mut MailboxBus, store: &DocStore, doc: u32) -> u64 {
    let row = read_row(store, doc);
    // pds-lint: allow(flow.plaintext_egress) — released aggregate: this fixture models the protocol's declared declassification point
    bus.send(Addr(0), Addr(1), row)
}

//! Entry crate of the `panic.transitive` violation fixture: the public
//! gateway API calls into a helper crate that panics. The direct panic
//! rules don't see it (the site is outside the panic-family crates) —
//! only the call-graph pass closes the gap.

pub fn checksum_first(data: &[u8]) -> u8 {
    pds_fixture_crypto_first_byte(data)
}

fn pds_fixture_crypto_first_byte(data: &[u8]) -> u8 {
    crate_boundary_hop(data)
}

/// Stand-in for a cross-crate call: resolution links this to the crypto
/// fixture crate's unique free function.
fn crate_boundary_hop(data: &[u8]) -> u8 {
    first_byte_or_panic(data)
}

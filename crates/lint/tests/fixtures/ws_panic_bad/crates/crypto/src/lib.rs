//! Helper crate of the `panic.transitive` violation fixture: the panic
//! lives here, outside the panic-family crates, reachable from the
//! entry crate's public API.

pub fn first_byte_or_panic(data: &[u8]) -> u8 {
    data.first().copied().expect("fixture: empty input")
}

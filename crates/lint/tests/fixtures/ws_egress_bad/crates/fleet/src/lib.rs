//! Seeded violation: a token reads a raw document row from its store
//! and mails it over the bus without encryption. `pds-lint` must exit
//! nonzero here, naming the full `DocStore::get → read_row →
//! MailboxBus::send` chain.

pub struct DocStore {
    rows: Vec<Vec<u8>>,
}

impl DocStore {
    pub fn get(&self, doc: u32) -> Vec<u8> {
        self.rows.get(doc as usize).cloned().unwrap_or_default()
    }
}

#[derive(Clone, Copy)]
pub struct Addr(pub u32);

pub struct MailboxBus {
    queue: Vec<Vec<u8>>,
}

impl MailboxBus {
    pub fn send(&mut self, _from: Addr, _to: Addr, payload: Vec<u8>) -> u64 {
        self.queue.push(payload);
        self.queue.len() as u64
    }
}

/// Helper hop: the taint must survive one call boundary.
pub fn read_row(store: &DocStore, doc: u32) -> Vec<u8> {
    store.get(doc)
}

/// THE VIOLATION: plaintext document bytes leave the token boundary.
pub fn mail_row(bus: &mut MailboxBus, store: &DocStore, doc: u32) -> u64 {
    let row = read_row(store, doc);
    bus.send(Addr(0), Addr(1), row)
}

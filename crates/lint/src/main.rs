//! CLI gate: `cargo run -p pds-lint [-- --root <dir>] [--json] [--metrics] [--list-rules]`
//!
//! Walks the workspace, prints every finding as `file:line rule —
//! rationale` (call-graph findings append their source→sink or
//! entry→panic chain), then a one-line summary, and exits nonzero when
//! any unwaived finding remains. `--json` prints the machine-readable
//! report instead (the CI findings artifact); the exit code is the
//! same. `--metrics` additionally dumps the `pds-obs` registry (the
//! `lint.*` counters) as JSON lines.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: pds-lint [--root <dir>] [--json] [--metrics] [--list-rules]");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        println!("rule ids accepted by `// pds-lint: allow(<rule>) — <reason>`:");
        for id in pds_lint::RULE_IDS {
            println!("  {id}");
        }
        return ExitCode::SUCCESS;
    }
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .or_else(|| {
            let cwd = std::env::current_dir().ok()?;
            pds_lint::find_workspace_root(&cwd)
        });
    let Some(root) = root else {
        eprintln!("pds-lint: no workspace root found (pass --root <dir>)");
        return ExitCode::FAILURE;
    };
    let report = match pds_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pds-lint: walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    report.publish();
    if args.iter().any(|a| a == "--json") {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        println!("{}", report.summary());
    }
    if args.iter().any(|a| a == "--metrics") {
        print!("{}", pds_obs::metrics::global().export_jsonl());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! # pds-lint — static enforcement of the paper invariants
//!
//! The tutorial's embedded engine is defined by rules the compiler
//! cannot see: token-resident code must never panic (an unattended,
//! tamper-resistant token has no operator to restart it), must allocate
//! through the `pds-mcu` RAM budget (the ≤128 KB bound *is* the design
//! constraint), the fleet/global protocols must stay bit-for-bit
//! deterministic, and the trusted/untrusted layering must hold
//! structurally. `pds-lint` walks the workspace with its own
//! zero-dependency Rust scanner and enforces those rules per crate,
//! with an inline waiver comment as the only escape hatch:
//!
//! ```text
//! // pds-lint: allow(panic.unwrap) — index bounds checked on the previous line
//! ```
//!
//! On top of the per-file token rules sit two call-graph analyses (the
//! paper's central security argument, made checkable):
//!
//! - **`flow.plaintext_egress`** — taint propagation from declared
//!   plaintext sources (store reads, `decrypt*`, search results) to
//!   egress sinks (bus sends, cloud serving, wire encodings) that skips
//!   every `pds-crypto` sanitizer. The source/sink/sanitizer model is
//!   checked in at `crates/lint/flow.model`.
//! - **`panic.transitive`** — panicking constructs in *non*-panic-family
//!   crates that are reachable from the public API of the embedded
//!   crates (flash/mcu/embedded-db/search/core).
//!
//! Run it with `cargo run -p pds-lint`; it exits nonzero on any
//! unwaived finding, which is how `scripts/ci.sh` gates on it
//! (`--json` emits the machine-readable findings artifact). The
//! `lint.*` counters are exported through the `pds-obs` registry and
//! frozen into `BENCH_BASELINE.json`, so the finding and waiver counts
//! are themselves regression-checked.

pub mod flow;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod syntax;

pub use flow::FlowModel;
pub use rules::{crate_config, lint_source, CrateConfig, Finding, CRATES, RULE_IDS};

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use graph::{Workspace, WsFile};
use rules::Waiver;

/// Outcome of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unwaived findings — each one fails the gate.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a reasoned waiver comment.
    pub waived: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Functions in the intra-workspace call graph.
    pub graph_functions: usize,
    /// Resolved call edges in the graph.
    pub graph_edges: usize,
}

impl LintReport {
    /// True when the tree passes (no unwaived findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One-line summary for gate logs.
    pub fn summary(&self) -> String {
        format!(
            "pds-lint: {} finding(s), {} waiver(s), {} file(s) scanned, \
             {} fn(s) / {} edge(s) in the call graph",
            self.findings.len(),
            self.waived.len(),
            self.files_scanned,
            self.graph_functions,
            self.graph_edges
        )
    }

    /// Record `lint.*` metrics in the process-wide `pds-obs` registry.
    /// Per-family counters are always published (zeros included) so the
    /// baseline key set stays stable.
    pub fn publish(&self) {
        pds_obs::counter("lint.findings").add(self.findings.len() as u64);
        pds_obs::counter("lint.waivers").add(self.waived.len() as u64);
        pds_obs::counter("lint.files_scanned").add(self.files_scanned as u64);
        pds_obs::counter("lint.graph.functions").add(self.graph_functions as u64);
        pds_obs::counter("lint.graph.edges").add(self.graph_edges as u64);
        for family in ["panic", "det", "ram", "layer", "flow", "waiver"] {
            let in_family = |f: &Finding| f.rule.split('.').next() == Some(family);
            let found = self.findings.iter().filter(|f| in_family(f)).count();
            let waived = self.waived.iter().filter(|f| in_family(f)).count();
            pds_obs::counter(&format!("lint.findings.{family}")).add(found as u64);
            pds_obs::counter(&format!("lint.waivers.{family}")).add(waived as u64);
        }
    }

    /// Machine-readable report (the CI findings artifact). Schema:
    ///
    /// ```json
    /// {
    ///   "clean": bool,
    ///   "files_scanned": n, "graph_functions": n, "graph_edges": n,
    ///   "findings": [ {"file", "line", "rule", "message", "waived",
    ///                  "chain": ["step", …]}, … ],
    ///   "waived":   [ …same shape… ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        fn finding_json(f: &Finding) -> String {
            let chain: Vec<String> = f.chain.iter().map(|s| json_str(s)).collect();
            format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{},\"waived\":{},\"chain\":[{}]}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message),
                f.waived,
                chain.join(",")
            )
        }
        let findings: Vec<String> = self.findings.iter().map(finding_json).collect();
        let waived: Vec<String> = self.waived.iter().map(finding_json).collect();
        format!(
            "{{\n  \"clean\": {},\n  \"files_scanned\": {},\n  \"graph_functions\": {},\n  \
             \"graph_edges\": {},\n  \"findings\": [{}],\n  \"waived\": [{}]\n}}\n",
            self.is_clean(),
            self.files_scanned,
            self.graph_functions,
            self.graph_edges,
            findings.join(","),
            waived.join(",")
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint every `crates/*/src/**.rs` file under `root` (the workspace
/// directory) with the shipped flow model. Files of crates missing from
/// the layering matrix are an error: a new crate must declare its rule
/// row before it can land.
pub fn run_workspace(root: &Path) -> io::Result<LintReport> {
    run_workspace_with_model(root, &FlowModel::workspace())
}

/// [`run_workspace`] with an explicit flow model (fixtures and tests).
pub fn run_workspace_with_model(root: &Path, model: &FlowModel) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut all: Vec<Finding> = Vec::new();
    let mut ws_files: Vec<WsFile> = Vec::new();
    let mut waivers_by_file: BTreeMap<String, Vec<Waiver>> = BTreeMap::new();

    for (line, text) in &model.errors {
        all.push(Finding {
            file: "crates/lint/flow.model".to_string(),
            line: *line,
            rule: "flow.plaintext_egress",
            message: format!("malformed model line: `{}`", text.trim()),
            waived: false,
            chain: Vec::new(),
        });
    }

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let Some(cfg) = crate_config(&name) else {
            all.push(Finding {
                file: format!("crates/{name}"),
                line: 1,
                rule: "layer.dependency",
                message: format!(
                    "crate `{name}` has no row in the layering matrix — add it to \
                     crates/lint/src/rules.rs with its allowed dependencies and rule families"
                ),
                waived: false,
                chain: Vec::new(),
            });
            continue;
        };
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let source = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            let (findings, waivers) = rules::lint_source_full(cfg, &rel, &source);
            all.extend(findings);
            waivers_by_file.insert(rel.clone(), waivers);
            ws_files.push(WsFile {
                crate_dir: cfg.dir.to_string(),
                path: rel,
                syntax: syntax::parse_file(lexer::lex(&scan::scan(&source))),
            });
        }
    }

    // ---- call-graph passes --------------------------------------
    let ws = Workspace::build(ws_files);
    let waived_at = |file: &str, line: usize, rule: &str| {
        waivers_by_file.get(file).is_some_and(|ws| {
            ws.iter()
                .any(|w| w.line == line && w.has_reason && w.rules.iter().any(|r| r == rule))
        })
    };

    for hit in flow::plaintext_egress(&ws, model) {
        let file = ws.files[hit.file].path.clone();
        let waived = waived_at(&file, hit.line, "flow.plaintext_egress");
        all.push(Finding {
            file,
            line: hit.line,
            rule: "flow.plaintext_egress",
            message: hit.message,
            waived,
            chain: hit.chain,
        });
    }

    for tp in graph::panic_transitive(&ws, &model.panic_kinds) {
        let file = ws.files[tp.file].path.clone();
        let waived = waived_at(&file, tp.line, "panic.transitive");
        all.push(Finding {
            file,
            line: tp.line,
            rule: "panic.transitive",
            message: format!(
                "{} ({} panic) reachable from embedded public API — a panic bricks the \
                 unattended token; return a typed error or waive with the proof",
                tp.desc,
                tp.kind.name()
            ),
            waived,
            chain: tp.chain,
        });
    }

    report.graph_functions = ws.fn_ids().len();
    report.graph_edges = ws
        .fn_ids()
        .iter()
        .map(|&id| ws.edges(id, &ws.build_env(id)).len())
        .sum();

    // ---- stale waivers ------------------------------------------
    // A reasoned waiver whose rule produced no finding (waived or not)
    // at its target line is dead weight: it silently licenses future
    // regressions. `waiver.unused` is itself unwaivable by design.
    let mut stale: Vec<Finding> = Vec::new();
    for (file, waivers) in &waivers_by_file {
        for w in waivers {
            if !w.has_reason {
                continue;
            }
            for rule in &w.rules {
                if !RULE_IDS.contains(&rule.as_str()) || rule.starts_with("waiver.") {
                    continue;
                }
                let fires = all
                    .iter()
                    .any(|f| &f.file == file && f.line == w.line && f.rule == *rule);
                if !fires {
                    stale.push(Finding {
                        file: file.clone(),
                        line: w.comment_line,
                        rule: "waiver.unused",
                        message: format!(
                            "waiver for `{rule}` no longer fires on line {} — remove it so the \
                             budget reflects real debt",
                            w.line
                        ),
                        waived: false,
                        chain: Vec::new(),
                    });
                }
            }
        }
    }
    all.extend(stale);

    for finding in all {
        if finding.waived {
            report.waived.push(finding);
        } else {
            report.findings.push(finding);
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    report
        .waived
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_crate_dir() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn every_crate_dir_has_a_matrix_row() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        for entry in fs::read_dir(root.join("crates")).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                let name = p.file_name().unwrap().to_str().unwrap();
                assert!(
                    crate_config(name).is_some(),
                    "crate `{name}` missing from the layering matrix"
                );
            }
        }
    }

    #[test]
    fn shipped_model_parses_cleanly() {
        let model = FlowModel::workspace();
        assert!(model.errors.is_empty(), "model errors: {:?}", model.errors);
        assert!(model.sources.len() >= 10);
        assert!(model.sinks.len() >= 5);
        assert!(model.sanitizers.len() >= 5);
        assert!(!model.panic_kinds.is_empty());
    }

    #[test]
    fn json_escaping_is_sound() {
        let s = json_str("a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }
}

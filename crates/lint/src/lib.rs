//! # pds-lint — static enforcement of the paper invariants
//!
//! The tutorial's embedded engine is defined by rules the compiler
//! cannot see: token-resident code must never panic (an unattended,
//! tamper-resistant token has no operator to restart it), must allocate
//! through the `pds-mcu` RAM budget (the ≤128 KB bound *is* the design
//! constraint), the fleet/global protocols must stay bit-for-bit
//! deterministic, and the trusted/untrusted layering must hold
//! structurally. `pds-lint` walks the workspace with its own
//! zero-dependency Rust scanner and enforces those rules per crate,
//! with an inline waiver comment as the only escape hatch:
//!
//! ```text
//! // pds-lint: allow(panic.unwrap) — index bounds checked on the previous line
//! ```
//!
//! Run it with `cargo run -p pds-lint`; it exits nonzero on any
//! unwaived finding, which is how `scripts/ci.sh` gates on it. The
//! `lint.findings` / `lint.waivers` counters are exported through the
//! `pds-obs` registry for the static-health trend.

pub mod rules;
pub mod scan;

pub use rules::{crate_config, lint_source, CrateConfig, Finding, CRATES, RULE_IDS};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unwaived findings — each one fails the gate.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a reasoned waiver comment.
    pub waived: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the tree passes (no unwaived findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One-line summary for gate logs.
    pub fn summary(&self) -> String {
        format!(
            "pds-lint: {} finding(s), {} waiver(s), {} file(s) scanned",
            self.findings.len(),
            self.waived.len(),
            self.files_scanned
        )
    }

    /// Record `lint.*` metrics in the process-wide `pds-obs` registry.
    pub fn publish(&self) {
        pds_obs::counter("lint.findings").add(self.findings.len() as u64);
        pds_obs::counter("lint.waivers").add(self.waived.len() as u64);
        pds_obs::counter("lint.files_scanned").add(self.files_scanned as u64);
    }
}

/// Lint every `crates/*/src/**.rs` file under `root` (the workspace
/// directory). Files of crates missing from the layering matrix are an
/// error: a new crate must declare its rule row before it can land.
pub fn run_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let Some(cfg) = crate_config(&name) else {
            report.findings.push(Finding {
                file: format!("crates/{name}"),
                line: 1,
                rule: "layer.dependency",
                message: format!(
                    "crate `{name}` has no row in the layering matrix — add it to \
                     crates/lint/src/rules.rs with its allowed dependencies and rule families"
                ),
                waived: false,
            });
            continue;
        };
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let source = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            for finding in lint_source(cfg, &rel, &source) {
                if finding.waived {
                    report.waived.push(finding);
                } else {
                    report.findings.push(finding);
                }
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_crate_dir() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn every_crate_dir_has_a_matrix_row() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        for entry in fs::read_dir(root.join("crates")).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                let name = p.file_name().unwrap().to_str().unwrap();
                assert!(
                    crate_config(name).is_some(),
                    "crate `{name}` missing from the layering matrix"
                );
            }
        }
    }
}

//! Source → sink taint propagation over the workspace call graph.
//!
//! The model file (`flow.model`, checked in next to the crate) declares
//! three pattern sets:
//!
//! - **sources** — calls whose result is personal plaintext (store
//!   reads, `decrypt*`, search results, subscription deltas);
//! - **sinks** — calls whose arguments leave the token boundary (bus
//!   sends, cloud serving, wire encodings);
//! - **sanitizers** — `pds-crypto` calls that make data safe to egress.
//!
//! The pass runs statement-level intraprocedural taint per function
//! (bindings, `for` patterns, `break`-with-value, tail expressions),
//! plus interprocedural summaries to a fixpoint: a function that
//! *returns* source taint taints its callers, and one that passes a
//! parameter into a sink pulls the violation up to the call site. A
//! sanitizer call anywhere in the evaluated expression clears taint —
//! the cleansed value is ciphertext. Every finding carries the full
//! source→sink call chain.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{is_declassified_use, FnEnv, FnId, Workspace};
use crate::syntax::{match_close, Call, Callee, PanicKind, Recv};

/// One model pattern.
#[derive(Debug, Clone, PartialEq)]
enum Pat {
    /// `Type::method` — path call or typed-receiver method call.
    TypeMethod(String, String),
    /// `.method` — method call on any receiver (also UFCS paths).
    AnyMethod(String),
    /// `free_fn` — free function by name.
    Free(String),
}

/// One declared source/sink/sanitizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pat: Pat,
    /// Pattern as written, for chains and messages.
    pub display: String,
    pub note: String,
}

/// Parsed source/sink/sanitizer model plus the panic kinds enabled for
/// `panic.transitive`.
#[derive(Debug, Clone, Default)]
pub struct FlowModel {
    pub sources: Vec<Entry>,
    pub sinks: Vec<Entry>,
    pub sanitizers: Vec<Entry>,
    pub panic_kinds: BTreeSet<PanicKind>,
    /// Malformed lines (line number, text); the checked-in model must
    /// keep this empty (unit-tested).
    pub errors: Vec<(usize, String)>,
}

impl FlowModel {
    /// Parse the model format: one `source|sink|sanitizer <pattern>
    /// <note...>` or `panic-kind <kind>` directive per line; `#` starts
    /// a comment.
    pub fn parse(text: &str) -> FlowModel {
        let mut model = FlowModel::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let kw = parts.next().unwrap_or("");
            let pat = parts.next().unwrap_or("").trim();
            let note = parts.next().unwrap_or("").trim().to_string();
            match kw {
                "panic-kind" => match PanicKind::from_name(pat) {
                    Some(k) => {
                        model.panic_kinds.insert(k);
                    }
                    None => model.errors.push((i + 1, raw.to_string())),
                },
                "source" | "sink" | "sanitizer" => match parse_pat(pat) {
                    Some(p) => {
                        let entry = Entry {
                            pat: p,
                            display: pat.to_string(),
                            note,
                        };
                        match kw {
                            "source" => model.sources.push(entry),
                            "sink" => model.sinks.push(entry),
                            _ => model.sanitizers.push(entry),
                        }
                    }
                    None => model.errors.push((i + 1, raw.to_string())),
                },
                _ => model.errors.push((i + 1, raw.to_string())),
            }
        }
        model
    }

    /// The model shipped with the workspace.
    pub fn workspace() -> FlowModel {
        FlowModel::parse(include_str!("../flow.model"))
    }
}

fn parse_pat(pat: &str) -> Option<Pat> {
    if pat.is_empty() {
        return None;
    }
    if let Some(m) = pat.strip_prefix('.') {
        if m.is_empty() {
            return None;
        }
        return Some(Pat::AnyMethod(m.to_string()));
    }
    if let Some((ty, m)) = pat.split_once("::") {
        if ty.is_empty() || m.is_empty() || m.contains("::") {
            return None;
        }
        return Some(Pat::TypeMethod(ty.to_string(), m.to_string()));
    }
    Some(Pat::Free(pat.to_string()))
}

/// One `flow.plaintext_egress` result.
#[derive(Debug, Clone)]
pub struct FlowHit {
    pub file: usize,
    pub line: usize,
    pub message: String,
    pub chain: Vec<String>,
}

#[derive(Debug, Clone, PartialEq)]
enum Origin {
    Source { note: String },
    Param(usize),
}

#[derive(Debug, Clone, PartialEq)]
struct Taint {
    origin: Origin,
    chain: Vec<String>,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Summary {
    /// Set when the function returns source-tainted data.
    returns: Option<Taint>,
    /// Parameters that flow into a sink inside this function:
    /// index -> (chain suffix down to the sink, sink note).
    param_sinks: BTreeMap<usize, (Vec<String>, String)>,
}

/// Precomputed per-function analysis context (resolution and pattern
/// matching never change across fixpoint iterations).
struct FnCtx {
    id: FnId,
    chunks: Vec<(usize, usize)>,
    /// `tails[k]`: chunk `k` is a tail expression (only `}` chunks follow).
    tails: Vec<bool>,
    call_ids: Vec<usize>,
    targets: BTreeMap<usize, Vec<FnId>>,
    source_at: BTreeMap<usize, usize>,
    sink_at: BTreeMap<usize, usize>,
    sanitizer_at: BTreeSet<usize>,
}

/// Run the taint pass over the whole workspace.
pub fn plaintext_egress(ws: &Workspace, model: &FlowModel) -> Vec<FlowHit> {
    let ids = ws.fn_ids();
    let ctxs: Vec<FnCtx> = ids.iter().map(|&id| build_ctx(ws, model, id)).collect();
    let mut summaries: BTreeMap<FnId, Summary> =
        ids.iter().map(|&id| (id, Summary::default())).collect();
    for _ in 0..8 {
        let mut changed = false;
        for ctx in &ctxs {
            let (summary, _) = analyze(ws, model, ctx, &summaries, false);
            if summaries.get(&ctx.id) != Some(&summary) {
                summaries.insert(ctx.id, summary);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut hits = Vec::new();
    for ctx in &ctxs {
        let (_, mut h) = analyze(ws, model, ctx, &summaries, true);
        hits.append(&mut h);
    }
    hits.sort_by(|a, b| (a.file, a.line, &a.message).cmp(&(b.file, b.line, &b.message)));
    hits.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    hits
}

fn build_ctx(ws: &Workspace, model: &FlowModel, id: FnId) -> FnCtx {
    let env = ws.build_env(id);
    let call_ids = ws.calls_of(id);
    let syn = &ws.files[id.0].syntax;
    let mut targets = BTreeMap::new();
    let mut source_at = BTreeMap::new();
    let mut sink_at = BTreeMap::new();
    let mut sanitizer_at = BTreeSet::new();
    for &ci in &call_ids {
        targets.insert(ci, ws.resolve(id, &env, ci));
        let call = &syn.calls[ci];
        if let Some(e) = match_entry(ws, id, &env, call, &model.sources) {
            source_at.insert(ci, e);
        }
        if let Some(e) = match_entry(ws, id, &env, call, &model.sinks) {
            sink_at.insert(ci, e);
        }
        if match_entry(ws, id, &env, call, &model.sanitizers).is_some() {
            sanitizer_at.insert(ci);
        }
    }
    // Struct-literal braces are expression syntax, not block
    // boundaries: `let m = Msg { body: row };` must stay one chunk so
    // the `row` mention taints `m`.
    let mut literal_braces = BTreeSet::new();
    for c in &syn.calls {
        if syn
            .toks
            .get(c.name_idx + 1)
            .is_some_and(|t| t.is_punct("{"))
        {
            literal_braces.insert(c.name_idx + 1);
            if let Some(close) = match_close(&syn.toks, c.name_idx + 1, "{", "}") {
                literal_braces.insert(close);
            }
        }
    }
    let mut chunks = Vec::new();
    for (s, e) in ws.owned_runs(id) {
        let mut start = s;
        let mut depth = 0i32;
        for i in s..e {
            let t = &syn.toks[i];
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth <= 0 => {
                    if i > start {
                        chunks.push((start, i));
                    }
                    start = i + 1;
                }
                "{" if depth <= 0 && !literal_braces.contains(&i) => {
                    // Keep the `{` with its header (`for … {`, `if … {`).
                    chunks.push((start, i + 1));
                    start = i + 1;
                }
                "}" if depth <= 0 && !literal_braces.contains(&i) => {
                    if i > start {
                        chunks.push((start, i));
                    }
                    chunks.push((i, i + 1));
                    start = i + 1;
                }
                _ => {}
            }
        }
        if e > start {
            chunks.push((start, e));
        }
    }
    // A chunk is a tail expression when only closing-brace chunks
    // follow it.
    let mut tails = vec![false; chunks.len()];
    let mut only_braces = true;
    for k in (0..chunks.len()).rev() {
        tails[k] = only_braces;
        let (a, b) = chunks[k];
        if !(a..b).all(|i| syn.toks[i].is_punct("}")) {
            only_braces = false;
        }
    }
    FnCtx {
        id,
        chunks,
        tails,
        call_ids,
        targets,
        source_at,
        sink_at,
        sanitizer_at,
    }
}

fn match_entry(
    ws: &Workspace,
    id: FnId,
    env: &FnEnv,
    call: &Call,
    entries: &[Entry],
) -> Option<usize> {
    // Receiver types are inferred once per call, lazily.
    let mut recv_ty: Option<Option<String>> = None;
    for (ei, e) in entries.iter().enumerate() {
        let hit = match (&e.pat, &call.callee) {
            (Pat::TypeMethod(ty, m), Callee::Path { segs }) => {
                segs.len() >= 2 && segs[segs.len() - 1] == *m && segs[segs.len() - 2] == *ty
            }
            (Pat::TypeMethod(ty, m), Callee::Method { recv, name }) => {
                name == m && {
                    let t = recv_ty
                        .get_or_insert_with(|| ws.recv_type(id, env, recv, 0))
                        .clone();
                    t.as_deref() == Some(ty.as_str())
                }
            }
            (Pat::AnyMethod(m), Callee::Method { name, .. }) => name == m,
            (Pat::AnyMethod(m), Callee::Path { segs }) => {
                segs.len() >= 2
                    && segs[segs.len() - 1] == *m
                    && segs[segs.len() - 2].starts_with(char::is_uppercase)
            }
            (Pat::Free(f), Callee::Path { segs }) => {
                segs[segs.len() - 1] == *f
                    && (segs.len() == 1 || !segs[segs.len() - 2].starts_with(char::is_uppercase))
            }
            _ => false,
        };
        if hit {
            return Some(ei);
        }
    }
    None
}

#[allow(clippy::type_complexity)]
fn analyze(
    ws: &Workspace,
    model: &FlowModel,
    ctx: &FnCtx,
    summaries: &BTreeMap<FnId, Summary>,
    collect: bool,
) -> (Summary, Vec<FlowHit>) {
    let mut summary = Summary::default();
    let mut hits = Vec::new();
    let mut loop_taint: Option<Taint> = None;
    for pass in 0..2 {
        let mut state: BTreeMap<String, Taint> = BTreeMap::new();
        let mut pass_break: Option<Taint> = None;
        for (chunk_i, &(cs, ce)) in ctx.chunks.iter().enumerate() {
            self_sink_checks(
                ws,
                model,
                ctx,
                summaries,
                &state,
                cs,
                ce,
                &mut summary,
                &mut hits,
                collect,
            );
            apply_bindings(
                ws,
                model,
                ctx,
                summaries,
                &mut state,
                cs,
                ce,
                &loop_taint,
                &mut pass_break,
                &mut summary,
                ctx.tails[chunk_i],
            );
        }
        loop_taint = pass_break;
        if loop_taint.is_none() {
            break;
        }
        if pass == 1 {
            break;
        }
        summary = Summary::default();
        hits.clear();
    }
    (summary, hits)
}

/// Check every sink (direct or via callee param summaries) in a chunk.
#[allow(clippy::too_many_arguments)]
fn self_sink_checks(
    ws: &Workspace,
    model: &FlowModel,
    ctx: &FnCtx,
    summaries: &BTreeMap<FnId, Summary>,
    state: &BTreeMap<String, Taint>,
    cs: usize,
    ce: usize,
    summary: &mut Summary,
    hits: &mut Vec<FlowHit>,
    collect: bool,
) {
    let syn = &ws.files[ctx.id.0].syntax;
    for &ci in &ctx.call_ids {
        let call = &syn.calls[ci];
        if call.name_idx < cs || call.name_idx >= ce {
            continue;
        }
        let site = format!("{}:{}", ws.files[ctx.id.0].path, call.line);
        if let Some(&ei) = ctx.sink_at.get(&ci) {
            let sink = &model.sinks[ei];
            let sink_step = format!("{} ({})", sink.display, site);
            let mut inputs: Vec<Option<Taint>> = call
                .args
                .iter()
                .map(|&(a, b)| eval(ws, model, ctx, summaries, state, a, b))
                .collect();
            if let Callee::Method { recv, .. } = &call.callee {
                inputs.push(recv_taint(ws, model, ctx, summaries, state, recv));
            }
            for taint in inputs.into_iter().flatten() {
                let mut chain = taint.chain.clone();
                chain.push(sink_step.clone());
                record(
                    taint.origin,
                    chain,
                    &sink.note,
                    ctx,
                    call.line,
                    summary,
                    hits,
                    collect,
                );
            }
        }
        // Interprocedural: callee passes one of its params into a sink.
        if let Some(targets) = ctx.targets.get(&ci) {
            for t in targets {
                let Some(cs_sum) = summaries.get(t) else {
                    continue;
                };
                for (&pi, (suffix, note)) in &cs_sum.param_sinks {
                    let Some(&(a, b)) = call.args.get(pi) else {
                        continue;
                    };
                    let Some(taint) = eval(ws, model, ctx, summaries, state, a, b) else {
                        continue;
                    };
                    let mut chain = taint.chain.clone();
                    chain.push(format!("{} ({})", ws.fn_item(*t).qname(), site));
                    chain.extend(suffix.iter().cloned());
                    record(
                        taint.origin,
                        chain,
                        note,
                        ctx,
                        call.line,
                        summary,
                        hits,
                        collect,
                    );
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn record(
    origin: Origin,
    chain: Vec<String>,
    sink_note: &str,
    ctx: &FnCtx,
    line: usize,
    summary: &mut Summary,
    hits: &mut Vec<FlowHit>,
    collect: bool,
) {
    match origin {
        Origin::Source { note } => {
            if collect {
                hits.push(FlowHit {
                    file: ctx.id.0,
                    line,
                    message: format!(
                        "plaintext egress: {note} reaches {sink_note} without passing through a pds-crypto sanitizer"
                    ),
                    chain,
                });
            }
        }
        Origin::Param(pi) => {
            summary
                .param_sinks
                .entry(pi)
                .or_insert((chain, sink_note.to_string()));
        }
    }
}

/// Update the taint state from one chunk's binding shape, and fold tail
/// expressions / `return` into the summary.
#[allow(clippy::too_many_arguments)]
fn apply_bindings(
    ws: &Workspace,
    model: &FlowModel,
    ctx: &FnCtx,
    summaries: &BTreeMap<FnId, Summary>,
    state: &mut BTreeMap<String, Taint>,
    cs: usize,
    ce: usize,
    loop_taint: &Option<Taint>,
    pass_break: &mut Option<Taint>,
    summary: &mut Summary,
    is_tail: bool,
) {
    let toks = &ws.files[ctx.id.0].syntax.toks;
    if cs >= ce {
        return;
    }
    // Seed params once, lazily, via the function item.
    if state.is_empty() {
        let f = ws.fn_item(ctx.id);
        for (pi, p) in f.params.iter().enumerate() {
            for n in &p.names {
                state.insert(
                    n.clone(),
                    Taint {
                        origin: Origin::Param(pi),
                        chain: Vec::new(),
                    },
                );
            }
        }
    }

    let first = &toks[cs];
    if first.is_ident("return") || (is_tail && !first.is_ident("let")) {
        if first.is_ident("break") {
            // fall through to break handling below
        } else {
            let start = if first.is_ident("return") { cs + 1 } else { cs };
            if let Some(t) = eval(ws, model, ctx, summaries, state, start, ce) {
                if matches!(t.origin, Origin::Source { .. }) && summary.returns.is_none() {
                    summary.returns = Some(t.clone());
                }
            }
            if first.is_ident("return") {
                return;
            }
        }
    }
    if first.is_ident("break") {
        let mut start = cs + 1;
        while start < ce && toks[start].kind == crate::lexer::TokKind::Lifetime {
            start += 1;
        }
        if start < ce {
            if let Some(t) = eval(ws, model, ctx, summaries, state, start, ce) {
                if pass_break.is_none() {
                    *pass_break = Some(t);
                }
            }
        }
        return;
    }
    if first.is_ident("for") {
        if let Some(in_pos) = (cs..ce).find(|&i| toks[i].is_ident("in")) {
            let names = pattern_names(toks, cs + 1, in_pos);
            let taint = eval(ws, model, ctx, summaries, state, in_pos + 1, ce);
            for n in names {
                match &taint {
                    Some(t) => {
                        state.insert(n, t.clone());
                    }
                    None => {
                        state.remove(&n);
                    }
                }
            }
        }
        return;
    }

    // Generic `let` / assignment detection at chunk nesting depth 0.
    let mut depth = 0i32;
    let mut let_pos: Option<usize> = None;
    let mut eq_pos: Option<usize> = None;
    let mut compound = false;
    let mut i = cs;
    while i < ce {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "let" if depth == 0 && t.is_name() && let_pos.is_none() => let_pos = Some(i),
            "=" if depth == 0 => {
                if i + 1 < ce && toks[i + 1].is_punct("=") {
                    i += 2;
                    continue;
                }
                let prev = toks[i.saturating_sub(1)].text.as_str();
                if matches!(prev, "<" | ">" | "!" | "=") {
                    i += 1;
                    continue;
                }
                compound = matches!(prev, "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^");
                eq_pos = Some(i);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let Some(eq) = eq_pos else { return };
    let mut rhs_taint = eval(ws, model, ctx, summaries, state, eq + 1, ce);
    // `let x = loop { ... break tainted ... }` from the previous pass.
    if rhs_taint.is_none()
        && loop_taint.is_some()
        && (eq + 1..ce).any(|i| toks[i].is_ident("loop") || toks[i].is_ident("while"))
    {
        rhs_taint = loop_taint.clone();
    }
    if let Some(lp) = let_pos {
        let pat_end = (lp + 1..eq).find(|&i| toks[i].is_punct(":")).unwrap_or(eq);
        for n in pattern_names(toks, lp + 1, pat_end) {
            match &rhs_taint {
                Some(t) => {
                    state.insert(n, t.clone());
                }
                None => {
                    state.remove(&n);
                }
            }
        }
        return;
    }
    // Plain / compound assignment to a single variable.
    let lhs: Vec<usize> = (cs..eq).filter(|&i| !toks[i].is_ident("mut")).collect();
    if lhs.len() == 1 && toks[lhs[0]].is_name() {
        let name = toks[lhs[0]].text.clone();
        match rhs_taint {
            Some(t) => {
                state.insert(name, t);
            }
            None if !compound => {
                state.remove(&name);
            }
            None => {}
        }
    }
}

/// Lowercase binding identifiers in a pattern range.
fn pattern_names(toks: &[crate::lexer::Tok], start: usize, end: usize) -> Vec<String> {
    let mut names = Vec::new();
    for i in start..end {
        let t = &toks[i];
        if t.is_name()
            && !t.text.starts_with(char::is_uppercase)
            && !matches!(t.text.as_str(), "mut" | "ref" | "box" | "_" | "let")
        {
            // Skip path segments inside patterns (Enum::variant).
            let prev_path = i > 0 && toks[i - 1].is_punct("::");
            let next_path = toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
            if !prev_path && !next_path {
                names.push(t.text.clone());
            }
        }
    }
    names
}

/// Taint of an expression token range. A sanitizer call anywhere in the
/// range clears it; otherwise source calls, calls into taint-returning
/// functions, and mentions of tainted variables taint it.
#[allow(clippy::too_many_arguments)]
fn eval(
    ws: &Workspace,
    model: &FlowModel,
    ctx: &FnCtx,
    summaries: &BTreeMap<FnId, Summary>,
    state: &BTreeMap<String, Taint>,
    start: usize,
    end: usize,
) -> Option<Taint> {
    let syn = &ws.files[ctx.id.0].syntax;
    let in_range = |ci: &usize| syn.calls[*ci].name_idx >= start && syn.calls[*ci].name_idx < end;
    if ctx.sanitizer_at.iter().any(in_range) {
        return None;
    }
    let mut best: Option<Taint> = None;
    let consider = |best: &mut Option<Taint>, t: Taint| {
        let better = match (&best, &t.origin) {
            (None, _) => true,
            (Some(b), Origin::Source { .. }) => !matches!(b.origin, Origin::Source { .. }),
            _ => false,
        };
        if better {
            *best = Some(t);
        }
    };
    for &ci in ctx.call_ids.iter().filter(|ci| in_range(ci)) {
        let call = &syn.calls[ci];
        let site = format!("{}:{}", ws.files[ctx.id.0].path, call.line);
        if let Some(&ei) = ctx.source_at.get(&ci) {
            let src = &model.sources[ei];
            consider(
                &mut best,
                Taint {
                    origin: Origin::Source {
                        note: src.note.clone(),
                    },
                    chain: vec![format!("{} ({})", src.display, site)],
                },
            );
            continue;
        }
        if let Some(targets) = ctx.targets.get(&ci) {
            for t in targets {
                if let Some(rt) = summaries.get(t).and_then(|s| s.returns.as_ref()) {
                    let mut chain = rt.chain.clone();
                    chain.push(format!("{} ({})", ws.fn_item(*t).qname(), site));
                    consider(
                        &mut best,
                        Taint {
                            origin: rt.origin.clone(),
                            chain,
                        },
                    );
                }
            }
        }
    }
    for i in start..end {
        let t = &syn.toks[i];
        if !t.is_name() {
            continue;
        }
        let Some(taint) = state.get(&t.text) else {
            continue;
        };
        // Field/method names, path segments, struct-field labels, and
        // `.len()`-style measurements are not data mentions.
        if i > start && (syn.toks[i - 1].is_punct(".") || syn.toks[i - 1].is_punct("::")) {
            continue;
        }
        if syn
            .toks
            .get(i + 1)
            .is_some_and(|n| n.is_punct("::") || n.is_punct(":"))
        {
            continue;
        }
        if is_declassified_use(&syn.toks, i) {
            continue;
        }
        consider(&mut best, taint.clone());
    }
    best
}

fn recv_taint(
    ws: &Workspace,
    model: &FlowModel,
    ctx: &FnCtx,
    summaries: &BTreeMap<FnId, Summary>,
    state: &BTreeMap<String, Taint>,
    recv: &Recv,
) -> Option<Taint> {
    match recv {
        Recv::Chain(chain) | Recv::Indexed(chain) => {
            let head = chain.first()?;
            if head == "self" {
                return None;
            }
            state.get(head).cloned()
        }
        Recv::Call(ci) => {
            let call = &ws.files[ctx.id.0].syntax.calls[*ci];
            let end = call.args.last().map_or(call.name_idx + 2, |&(_, b)| b + 1);
            eval(ws, model, ctx, summaries, state, call.name_idx, end)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WsFile;
    use crate::lexer::lex;
    use crate::scan::scan;
    use crate::syntax::parse_file;

    const MODEL: &str = "\
source .decrypt decrypted plaintext
source DocStore::get raw document bytes
source Pds::poll_subscription subscription delta
sink MailboxBus::send bus payload
sink MailboxBus::send_in bus payload
sanitizer .encrypt_det symmetric encryption
panic-kind unwrap
";

    fn model() -> FlowModel {
        let m = FlowModel::parse(MODEL);
        assert!(m.errors.is_empty(), "{:?}", m.errors);
        m
    }

    fn ws_one(dir: &str, src: &str) -> Workspace {
        Workspace::build(vec![WsFile {
            crate_dir: dir.to_string(),
            path: format!("crates/{dir}/src/lib.rs"),
            syntax: parse_file(lex(&scan(src))),
        }])
    }

    fn hits(dir: &str, src: &str) -> Vec<FlowHit> {
        plaintext_egress(&ws_one(dir, src), &model())
    }

    #[test]
    fn direct_source_to_sink_fires() {
        let h = hits(
            "fleet",
            "pub struct DocStore; impl DocStore { pub fn get(&self, d: u32) -> Vec<u8> { Vec::new() } }\n\
             pub struct MailboxBus; impl MailboxBus { pub fn send(&mut self, p: Vec<u8>) {} }\n\
             pub fn mail(bus: &mut MailboxBus, store: &DocStore) { let row = store.get(1); bus.send(row); }",
        );
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].message.contains("raw document bytes"));
        assert!(h[0].message.contains("bus payload"));
    }

    #[test]
    fn sanitizer_clears_taint() {
        let h = hits(
            "fleet",
            "pub struct DocStore; impl DocStore { pub fn get(&self, d: u32) -> Vec<u8> { Vec::new() } }\n\
             pub struct Key; impl Key { pub fn encrypt_det(&self, p: &[u8]) -> Vec<u8> { Vec::new() } }\n\
             pub struct MailboxBus; impl MailboxBus { pub fn send(&mut self, p: Vec<u8>) {} }\n\
             pub fn mail(bus: &mut MailboxBus, store: &DocStore, k: &Key) {\n\
                 let row = store.get(1);\n\
                 let ct = k.encrypt_det(&row);\n\
                 bus.send(ct);\n\
             }",
        );
        assert!(h.is_empty(), "{h:?}");
    }

    #[test]
    fn subs_shaped_indexed_poll_to_send_in_fires() {
        let h = hits(
            "fleet",
            "pub struct Pds; impl Pds { pub fn poll_subscription(&mut self, id: u64) -> Vec<u8> { Vec::new() } }\n\
             pub struct MailboxBus; impl MailboxBus { pub fn send_in(&mut self, p: Vec<u8>) {} }\n\
             fn encode_delta(t: u32, rows: &[u8]) -> Vec<u8> { rows.to_vec() }\n\
             pub struct Net { pds: Vec<Pds>, bus: MailboxBus, sub_ids: Vec<u64> }\n\
             impl Net {\n\
                 fn round(&mut self) {\n\
                     for i in 0..3 {\n\
                         let delta = self.pds[i].poll_subscription(self.sub_ids[i]);\n\
                         if delta.is_empty() { continue; }\n\
                         let payload = encode_delta(i as u32, &delta);\n\
                         self.bus.send_in(payload);\n\
                     }\n\
                 }\n\
             }",
        );
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(
            h[0].chain.iter().any(|s| s.contains("poll_subscription")),
            "{h:?}"
        );
    }
}

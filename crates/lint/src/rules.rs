//! The rule framework: rule ids, per-crate rule sets, waiver parsing,
//! and the per-file lint pass.
//!
//! Each rule family protects one claim of the tutorial paper:
//!
//! | family   | paper claim                                             |
//! |----------|---------------------------------------------------------|
//! | `panic.*`| the secure token is unattended and tamper-resistant — a |
//! |          | panic is a bricked token, so embedded crates return     |
//! |          | typed errors instead                                    |
//! | `det.*`  | the fleet/global protocols are bit-for-bit reproducible |
//! |          | at any worker count (PR 3's determinism contract)       |
//! | `ram.*`  | the engine runs in ≤128 KB of RAM — allocation goes     |
//! |          | through the `pds-mcu` budget arena, never raw           |
//! | `layer.*`| trusted/untrusted zones stay structurally separated     |
//! |          | (NAND behind the log/alloc API, fleet above the token)  |
//!
//! The only escape hatch is an inline waiver comment:
//!
//! ```text
//! // pds-lint: allow(panic.unwrap) — length checked two lines above
//! ```
//!
//! placed on the offending line or alone on the line above it. The
//! reason is mandatory; a waiver without one is itself a finding.

use crate::scan::{find_path_root, find_token, scan, Line};

/// One rule violation (or a waived would-be violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id, e.g. `panic.unwrap`.
    pub rule: &'static str,
    /// One-line rationale for this site.
    pub message: String,
    /// True when an inline waiver suppressed the finding.
    pub waived: bool,
    /// For call-graph rules (`flow.plaintext_egress`,
    /// `panic.transitive`): the full source→sink / entry→panic chain.
    pub chain: Vec<String>,
}

impl Finding {
    /// `file:line rule message` — the one-line gate-log form, with the
    /// call chain on continuation lines when present.
    pub fn render(&self) -> String {
        let mark = if self.waived { " (waived)" } else { "" };
        let mut out = format!(
            "{}:{} {}{} — {}",
            self.file, self.line, self.rule, mark, self.message
        );
        for (i, step) in self.chain.iter().enumerate() {
            let arrow = if i == 0 { "chain:" } else { "    →" };
            out.push_str(&format!("\n        {arrow} {step}"));
        }
        out
    }
}

/// Every enforceable rule id, used to validate waiver comments.
pub const RULE_IDS: &[&str] = &[
    "panic.unwrap",
    "panic.expect",
    "panic.macro",
    "panic.assert",
    "det.time",
    "det.hash_collections",
    "det.metric_wallclock",
    "ram.raw_alloc",
    "layer.dependency",
    "layer.module",
    "flow.plaintext_egress",
    "panic.transitive",
    "waiver.missing_reason",
    "waiver.unknown_rule",
    "waiver.unused",
];

/// Rule families a crate can opt into (layering always applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// No `unwrap`/`expect`/`panic!`-class macros/asserts outside tests.
    Panic,
    /// No wall-clock reads or hash-ordered collections.
    Determinism,
    /// No raw heap growth outside the RAM-budget arena.
    RamBudget,
}

/// Static per-crate configuration.
pub struct CrateConfig {
    /// Directory name under `crates/`.
    pub dir: &'static str,
    /// The crate's library name (`pds_flash`, …).
    pub lib: &'static str,
    /// Rule families enforced in this crate.
    pub families: &'static [Family],
    /// Files (suffix-matched against the workspace-relative path) where
    /// the [`Family::Determinism`] rules apply even though the crate as
    /// a whole does not opt in — for modules that feed the fleet's
    /// deterministic rollup paths from an otherwise-unconstrained crate
    /// (e.g. `pds-obs`'s mergeable delta snapshots).
    pub det_files: &'static [&'static str],
    /// `pds_*` library names this crate may reference (its own name is
    /// implicitly allowed). Mirrors the Cargo dependency graph so a new
    /// cross-layer `use` shows up here even after someone edits
    /// Cargo.toml.
    pub allowed_deps: &'static [&'static str],
}

/// Libraries every crate may use (the observability substrate is
/// deliberately ubiquitous).
const ALL: &[&str] = &[
    "pds_obs",
    "pds_flash",
    "pds_mcu",
    "pds_crypto",
    "pds_search",
    "pds_db",
    "pds_core",
    "pds_global",
    "pds_sync",
    "pds_fleet",
    "pds_lint",
    "pds_bench",
    "pds",
];

/// The workspace layering matrix. Order follows the dependency stack:
/// flash at the bottom, the `pds` umbrella and the bench/lint harnesses
/// on top.
pub const CRATES: &[CrateConfig] = &[
    CrateConfig {
        dir: "obs",
        lib: "pds_obs",
        families: &[],
        // The mergeable-delta module is a fleet rollup path: its merge
        // and encode orders must be BTreeMap-deterministic, wall-clock
        // free, even though the rest of pds-obs is unconstrained.
        det_files: &["obs/src/delta.rs", "obs/src/flight.rs"],
        allowed_deps: &[],
    },
    CrateConfig {
        dir: "flash",
        lib: "pds_flash",
        families: &[Family::Panic],
        // The change log is the fleet's causal history: its stamp
        // ordering and recovery cuts feed baseline-checked counters and
        // must replay identically on every machine.
        det_files: &["flash/src/changelog.rs", "flash/src/blackbox.rs"],
        allowed_deps: &["pds_obs"],
    },
    CrateConfig {
        dir: "mcu",
        lib: "pds_mcu",
        families: &[Family::Panic, Family::RamBudget],
        det_files: &[],
        allowed_deps: &["pds_obs", "pds_flash"],
    },
    CrateConfig {
        dir: "crypto",
        lib: "pds_crypto",
        families: &[],
        det_files: &[],
        allowed_deps: &["pds_obs"],
    },
    CrateConfig {
        dir: "search",
        lib: "pds_search",
        families: &[Family::Panic],
        det_files: &[],
        allowed_deps: &["pds_obs", "pds_flash", "pds_mcu", "pds_crypto"],
    },
    CrateConfig {
        dir: "embedded-db",
        lib: "pds_db",
        families: &[Family::Panic],
        // HLC stamps and MVCC version marks are replayed byte-for-byte
        // from the durable change log at recovery: any wall-clock or
        // hash-order dependence would fork the fleet's causal history.
        det_files: &["embedded-db/src/hlc.rs", "embedded-db/src/mvcc.rs"],
        allowed_deps: &["pds_obs", "pds_flash", "pds_mcu", "pds_crypto"],
    },
    CrateConfig {
        dir: "core",
        lib: "pds_core",
        families: &[Family::Panic],
        det_files: &[],
        allowed_deps: &[
            "pds_obs",
            "pds_flash",
            "pds_mcu",
            "pds_crypto",
            "pds_search",
            "pds_db",
        ],
    },
    CrateConfig {
        dir: "global",
        lib: "pds_global",
        families: &[Family::Determinism],
        det_files: &[],
        allowed_deps: &["pds_obs", "pds_core", "pds_crypto", "pds_db", "pds_mcu"],
    },
    CrateConfig {
        dir: "sync",
        lib: "pds_sync",
        families: &[Family::Determinism],
        det_files: &[],
        allowed_deps: &["pds_obs", "pds_core", "pds_crypto"],
    },
    CrateConfig {
        dir: "fleet",
        lib: "pds_fleet",
        families: &[Family::Determinism],
        // The whole crate is already in the determinism family; the
        // scheduler is listed explicitly too so the residency model
        // stays covered even if the crate-wide opt-in is ever narrowed
        // (its LRU/eviction decisions feed baseline-checked counters).
        det_files: &["fleet/src/sched.rs"],
        allowed_deps: &[
            "pds_obs",
            "pds_crypto",
            "pds_core",
            "pds_global",
            "pds_sync",
        ],
    },
    CrateConfig {
        dir: "pds",
        lib: "pds",
        families: &[],
        det_files: &[],
        allowed_deps: ALL,
    },
    CrateConfig {
        dir: "bench",
        lib: "pds_bench",
        families: &[],
        det_files: &[],
        allowed_deps: ALL,
    },
    CrateConfig {
        dir: "lint",
        lib: "pds_lint",
        families: &[],
        det_files: &[],
        allowed_deps: &["pds_obs"],
    },
];

/// Look up the configuration for a crate directory name.
pub fn crate_config(dir: &str) -> Option<&'static CrateConfig> {
    CRATES.iter().find(|c| c.dir == dir)
}

/// True when crate `cfg` may reference the crate whose library name is
/// `lib` — itself or a declared dependency. The call-graph resolver uses
/// this to reject name-only candidate edges that the layering matrix
/// makes impossible.
pub fn dep_allowed(cfg: &CrateConfig, lib: &str) -> bool {
    lib == cfg.lib || cfg.allowed_deps.contains(&lib)
}

/// Module paths that may only be referenced inside their owning crate:
/// `(token, owning dir, rationale)`.
const SEALED_MODULES: &[(&str, &str, &str)] = &[
    (
        "nand",
        "flash",
        "raw NAND is sealed inside pds-flash: upper layers must go through the log/alloc API \
         so the chip rules (sequential program, erase-before-write) stay enforced in one place",
    ),
    (
        "fault",
        "flash",
        "fault injection is a pds-flash test facility; upper layers observe faults only as \
         FlashError values",
    ),
];

/// Panic-family tokens: `(token, rule, rationale)`.
const PANIC_TOKENS: &[(&str, &str, &str)] = &[
    (
        ".unwrap()",
        "panic.unwrap",
        "a panic bricks the unattended token — return a typed error",
    ),
    (
        ".unwrap_err()",
        "panic.unwrap",
        "a panic bricks the unattended token — return a typed error",
    ),
    (
        ".expect(",
        "panic.expect",
        "a panic bricks the unattended token — return a typed error",
    ),
    (
        ".expect_err(",
        "panic.expect",
        "a panic bricks the unattended token — return a typed error",
    ),
    (
        "panic!",
        "panic.macro",
        "explicit panic in embedded code — surface a typed error instead",
    ),
    (
        "unreachable!",
        "panic.macro",
        "unreachable! is a latent panic — make the impossible state unrepresentable or return an error",
    ),
    (
        "todo!",
        "panic.macro",
        "todo! must not ship to the token",
    ),
    (
        "unimplemented!",
        "panic.macro",
        "unimplemented! must not ship to the token",
    ),
    (
        "assert!",
        "panic.assert",
        "a failed assert is a panic on the token — validate and return an error, or waive a \
         provably-constant precondition",
    ),
    (
        "assert_eq!",
        "panic.assert",
        "a failed assert is a panic on the token — validate and return an error, or waive a \
         provably-constant precondition",
    ),
    (
        "assert_ne!",
        "panic.assert",
        "a failed assert is a panic on the token — validate and return an error, or waive a \
         provably-constant precondition",
    ),
];

/// Determinism-family tokens.
const DET_TOKENS: &[(&str, &str, &str)] = &[
    (
        "Instant::now",
        "det.time",
        "wall-clock reads break the bit-for-bit determinism contract — keep them only in \
         stats reporting, behind a waiver",
    ),
    (
        "SystemTime",
        "det.time",
        "wall-clock reads break the bit-for-bit determinism contract — keep them only in \
         stats reporting, behind a waiver",
    ),
    (
        "HashMap",
        "det.hash_collections",
        "HashMap iteration order is seeded per-process — use BTreeMap or an index-ordered Vec",
    ),
    (
        "HashSet",
        "det.hash_collections",
        "HashSet iteration order is seeded per-process — use BTreeSet or an index-ordered Vec",
    ),
];

/// Metric-write call tokens for the baseline-hygiene rule.
const METRIC_WRITE_TOKENS: &[&str] = &["counter(", "gauge("];

/// Wall-clock reads that must never feed a counter or gauge: those two
/// instrument kinds are compared *exactly* by `report --check`, so a
/// machine-time value on the same line smuggles nondeterminism into the
/// committed baseline. Histograms are exempt — baselines compare only
/// their observation counts, so timing may flow into them freely.
const WALLCLOCK_TOKENS: &[&str] = &[
    "elapsed",
    "Instant",
    "SystemTime",
    "as_nanos",
    "as_micros",
    "as_millis",
];

/// RAM-budget tokens (raw growth that bypasses the accounted arena).
const RAM_TOKENS: &[(&str, &str, &str)] = &[
    ("Vec::new", "ram.raw_alloc", ""),
    ("Vec::with_capacity", "ram.raw_alloc", ""),
    ("vec!", "ram.raw_alloc", ""),
    ("Box::new", "ram.raw_alloc", ""),
    ("String::new", "ram.raw_alloc", ""),
    ("String::with_capacity", "ram.raw_alloc", ""),
    ("String::from", "ram.raw_alloc", ""),
    ("format!", "ram.raw_alloc", ""),
    (".to_vec()", "ram.raw_alloc", ""),
    (".to_string()", "ram.raw_alloc", ""),
    (".to_owned()", "ram.raw_alloc", ""),
];

const RAM_RATIONALE: &str = "raw heap growth bypasses the ≤128 KB RAM budget — allocate through \
     the pds-mcu accounted containers (BoundedVec / TopN / RamBudget reservations)";

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the waiver applies to (the waivered code line).
    pub line: usize,
    /// Line the waiver comment itself sits on.
    pub comment_line: usize,
    pub rules: Vec<String>,
    pub has_reason: bool,
}

/// Parse a waiver out of a comment, if present. The marker must open
/// the comment (after `//`/`//!`/`/*` markers) so that prose merely
/// *mentioning* the syntax is never read as a waiver.
fn parse_waiver(comment: &str) -> Option<(Vec<String>, bool)> {
    let anchored = comment
        .trim_start()
        .trim_start_matches(['/', '!', '*'])
        .trim_start();
    let rest = anchored.strip_prefix("pds-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let mut reason = rest[close + 1..].trim_start();
    // Accept `—`, `–`, `-`, `:` separators before the reason text.
    reason = reason.trim_start_matches(['—', '–', '-', ':', ' ']);
    Some((rules, reason.len() >= 3))
}

/// Collect waivers from scanned lines. A waiver on a line with code
/// applies to that line; a waiver alone on a comment line applies to
/// the next line that carries code.
fn collect_waivers(lines: &[Line], file: &str, findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(comment) = &line.comment else {
            continue;
        };
        let Some((rules, has_reason)) = parse_waiver(comment) else {
            continue;
        };
        for r in &rules {
            if !RULE_IDS.contains(&r.as_str()) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "waiver.unknown_rule",
                    message: format!("waiver names unknown rule `{r}` — see --list-rules"),
                    waived: false,
                    chain: Vec::new(),
                });
            }
        }
        if !has_reason {
            findings.push(Finding {
                file: file.to_string(),
                line: i + 1,
                rule: "waiver.missing_reason",
                message: "waiver without a written reason — every escape hatch must say why"
                    .to_string(),
                waived: false,
                chain: Vec::new(),
            });
            continue;
        }
        let own_line_has_code = !line.code.trim().is_empty();
        let target = if own_line_has_code {
            i + 1
        } else {
            // Apply to the next line that has code.
            lines
                .iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map_or(i + 1, |(j, _)| j + 1)
        };
        out.push(Waiver {
            line: target,
            comment_line: i + 1,
            rules,
            has_reason,
        });
    }
    out
}

/// Lint one file's source under `cfg`'s rule sets. `file` is the
/// workspace-relative path used in findings.
pub fn lint_source(cfg: &CrateConfig, file: &str, source: &str) -> Vec<Finding> {
    lint_source_full(cfg, file, source).0
}

/// Like [`lint_source`], but also returns the parsed waivers so the
/// workspace driver can apply them to call-graph findings and detect
/// stale waivers.
pub fn lint_source_full(
    cfg: &CrateConfig,
    file: &str,
    source: &str,
) -> (Vec<Finding>, Vec<Waiver>) {
    let lines = scan(source);
    let mut findings = Vec::new();
    let waivers = collect_waivers(&lines, file, &mut findings);
    let waived_for = |line: usize, rule: &str| {
        waivers
            .iter()
            .any(|w| w.line == line && w.has_reason && w.rules.iter().any(|r| r == rule))
    };

    let mut push = |line: usize, rule: &'static str, message: String| {
        let waived = waived_for(line, rule);
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            waived,
            chain: Vec::new(),
        });
    };

    for (i, line) in lines.iter().enumerate() {
        let n = i + 1;
        let code = &line.code;
        if code.trim().is_empty() {
            continue;
        }
        // Layering applies to test code too — tests must not reach
        // through sealed boundaries either.
        for lib in ALL {
            if *lib == cfg.lib || cfg.allowed_deps.contains(lib) {
                continue;
            }
            // The umbrella crate's name collides with `pds` as an
            // ordinary variable name and as core's own `pds` module;
            // only a path-root use of the crate (`pds::…`) counts.
            let hit = if *lib == "pds" {
                find_path_root(code, "pds")
            } else {
                find_token(code, lib)
            };
            if hit.is_some() {
                push(
                    n,
                    "layer.dependency",
                    format!(
                        "crate `{}` must not reference `{}` — outside its row of the layering \
                         matrix (crates/lint/src/rules.rs)",
                        cfg.lib, lib
                    ),
                );
            }
        }
        for (token, owner, why) in SEALED_MODULES {
            if cfg.dir != *owner {
                let sealed_use = format!("{token}::");
                let sealed_path = format!("::{token}");
                if find_token(code, &sealed_use).is_some()
                    || find_token(code, &sealed_path).is_some()
                {
                    push(n, "layer.module", format!("`{token}` is sealed: {why}"));
                }
            }
        }

        if line.is_test {
            continue;
        }

        // Baseline hygiene applies to every crate, like layering: any
        // crate can publish metrics, and `report --check` compares
        // counters and gauges exactly, so a wall-clock read feeding one
        // breaks the committed baseline on the next machine.
        if METRIC_WRITE_TOKENS
            .iter()
            .any(|t| find_token(code, t).is_some())
        {
            if let Some(w) = WALLCLOCK_TOKENS
                .iter()
                .find(|t| find_token(code, t).is_some())
            {
                push(
                    n,
                    "det.metric_wallclock",
                    format!(
                        "`{w}` feeding a counter/gauge — those are baseline-checked exactly \
                         (`report --check`); record wall-clock in a histogram instead"
                    ),
                );
            }
        }

        if cfg.families.contains(&Family::Panic) {
            for (token, rule, why) in PANIC_TOKENS {
                if find_token(code, token).is_some() {
                    push(n, rule, format!("`{token}` in panic-free crate: {why}"));
                }
            }
        }
        if cfg.families.contains(&Family::Determinism)
            || cfg.det_files.iter().any(|f| file.ends_with(f))
        {
            for (token, rule, why) in DET_TOKENS {
                if find_token(code, token).is_some() {
                    push(n, rule, format!("`{token}`: {why}"));
                }
            }
        }
        if cfg.families.contains(&Family::RamBudget) {
            for (token, rule, _) in RAM_TOKENS {
                if find_token(code, token).is_some() {
                    push(n, rule, format!("`{token}`: {RAM_RATIONALE}"));
                }
            }
        }
    }
    (findings, waivers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dir: &str) -> &'static CrateConfig {
        crate_config(dir).unwrap()
    }

    fn unwaived(f: &[Finding]) -> Vec<&Finding> {
        f.iter().filter(|x| !x.waived).collect()
    }

    // -- panic family --

    #[test]
    fn panic_positive_each_token() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n    x.expect(\"no\");\n    panic!(\"boom\");\n    unreachable!();\n    assert!(true);\n}\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"panic.unwrap"));
        assert!(rules.contains(&"panic.expect"));
        assert!(rules.contains(&"panic.macro"));
        assert!(rules.contains(&"panic.assert"));
        assert_eq!(unwaived(&f).len(), f.len());
    }

    #[test]
    fn panic_negative_clean_code_and_debug_assert() {
        let src = "fn f(x: Option<u8>) -> Result<u8, ()> {\n    debug_assert!(x.is_some());\n    x.ok_or(())\n}\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_in_test_mod_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        let f = lint_source(cfg("embedded-db"), "t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_not_enforced_outside_family() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let f = lint_source(cfg("global"), "t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    // -- determinism family --

    #[test]
    fn determinism_positive() {
        let src =
            "use std::collections::HashMap;\nfn f() { let _t = std::time::Instant::now(); }\n";
        let f = lint_source(cfg("fleet"), "t.rs", src);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"det.hash_collections"));
        assert!(rules.contains(&"det.time"));
    }

    #[test]
    fn determinism_applies_to_listed_files_in_unconstrained_crates() {
        // pds-obs as a crate has no determinism family, but the delta
        // module is a fleet rollup path and is listed in det_files.
        let src =
            "use std::collections::HashMap;\nfn f() { let _t = std::time::Instant::now(); }\n";
        let f = lint_source(cfg("obs"), "obs/src/delta.rs", src);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"det.hash_collections"), "{f:?}");
        assert!(rules.contains(&"det.time"), "{f:?}");
        // The same source elsewhere in the crate stays unconstrained.
        assert!(lint_source(cfg("obs"), "obs/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn determinism_negative_btree() {
        let src = "use std::collections::BTreeMap;\nfn f() { let _m: BTreeMap<u8, u8> = BTreeMap::new(); }\n";
        let f = lint_source(cfg("fleet"), "t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    // -- baseline hygiene (all crates) --

    #[test]
    fn metric_wallclock_positive_counter_and_gauge() {
        let src = "fn f(t: std::time::Instant) {\n    \
             pds_obs::counter(\"x.ticks\").add(t.elapsed().as_millis() as u64);\n    \
             pds_obs::gauge(\"x.last\").set(t.elapsed().as_nanos() as u64);\n}\n";
        // Applies even in crates with no determinism family (bench).
        let f = lint_source(cfg("bench"), "t.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "det.metric_wallclock"));
    }

    #[test]
    fn metric_wallclock_negative_histogram_and_causal_counters() {
        // Histograms may absorb timing (baselines compare counts only),
        // and counters fed causal values are the intended pattern.
        let src = "fn f(t: std::time::Instant, ticks: u64) {\n    \
             pds_obs::histogram(\"x.op_ns\").observe(t.elapsed().as_nanos() as u64);\n    \
             pds_obs::counter(\"x.ticks\").add(ticks);\n}\n";
        let f = lint_source(cfg("bench"), "t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn metric_wallclock_waivable() {
        let src = "fn f(t: std::time::Instant) {\n    \
             // pds-lint: allow(det.metric_wallclock) — demo gauge, not baseline-checked\n    \
             pds_obs::gauge(\"x.demo\").set(t.elapsed().as_millis() as u64);\n}\n";
        let f = lint_source(cfg("bench"), "t.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }

    // -- ram family --

    #[test]
    fn ram_positive() {
        let src =
            "fn f() { let _v: Vec<u8> = Vec::with_capacity(4096); let _b = Box::new(7u8); }\n";
        let f = lint_source(cfg("mcu"), "t.rs", src);
        assert!(f.iter().all(|x| x.rule == "ram.raw_alloc"));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn ram_negative_bounded() {
        let src = "fn f(b: &RamBudget) -> Result<(), RamError> {\n    let mut v: BoundedVec<u8> = BoundedVec::new(b)?;\n    v.push(1)\n}\n";
        let f = lint_source(cfg("mcu"), "t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    // -- layering family --

    #[test]
    fn layering_dependency_positive() {
        let src = "use pds_fleet::TokenPool;\n";
        let f = lint_source(cfg("embedded-db"), "t.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "layer.dependency");
    }

    #[test]
    fn layering_sealed_module_positive() {
        let src = "use pds_flash::nand::NandChip;\n";
        let f = lint_source(cfg("embedded-db"), "t.rs", src);
        assert!(f.iter().any(|x| x.rule == "layer.module"));
    }

    #[test]
    fn layering_negative_allowed_edge() {
        let src = "use pds_flash::{Flash, LogWriter};\nuse pds_mcu::RamBudget;\n";
        let f = lint_source(cfg("embedded-db"), "t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn layering_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    use pds_fleet::TokenPool;\n}\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        assert!(f.iter().any(|x| x.rule == "layer.dependency"));
    }

    #[test]
    fn umbrella_crate_name_does_not_false_positive() {
        // `pds_obs` must not be read as a use of the `pds` umbrella.
        let src = "use pds_obs::metrics;\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    // -- waivers --

    #[test]
    fn trailing_waiver_with_reason_suppresses() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); // pds-lint: allow(panic.unwrap) — x assigned Some two lines up\n}\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }

    #[test]
    fn standalone_waiver_applies_to_next_code_line() {
        let src = "fn f(x: Option<u8>) {\n    // pds-lint: allow(panic.unwrap) — checked by caller\n    x.unwrap();\n}\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }

    #[test]
    fn waiver_without_reason_is_rejected() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); // pds-lint: allow(panic.unwrap)\n}\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        let rules: Vec<&str> = unwaived(&f).iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"waiver.missing_reason"));
        assert!(
            rules.contains(&"panic.unwrap"),
            "a reasonless waiver must not suppress"
        );
    }

    #[test]
    fn waiver_unknown_rule_is_rejected() {
        let src = "fn f() {} // pds-lint: allow(panic.everything) — nope\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        assert!(f.iter().any(|x| x.rule == "waiver.unknown_rule"));
    }

    #[test]
    fn waiver_covers_only_named_rule() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); assert!(true); // pds-lint: allow(panic.unwrap) — only the unwrap\n}\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        let open: Vec<&Finding> = unwaived(&f);
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].rule, "panic.assert");
    }

    #[test]
    fn waiver_multiple_rules_one_comment() {
        let src = "fn f(x: Option<u8>) {\n    assert!(x.unwrap() > 0); // pds-lint: allow(panic.unwrap, panic.assert) — startup self-check, constant input\n}\n";
        let f = lint_source(cfg("flash"), "t.rs", src);
        assert!(f.iter().all(|x| x.waived), "{f:?}");
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str {\n    // .unwrap() would panic here\n    \"call .unwrap() and HashMap::new()\"\n}\n";
        assert!(lint_source(cfg("flash"), "t.rs", src).is_empty());
        assert!(lint_source(cfg("fleet"), "t.rs", src).is_empty());
    }
}

//! Token stream over the blanked code channel produced by [`crate::scan`].
//!
//! The scanner already removed comments and literal *contents*, so the
//! lexer never sees a quote-embedded `fn` or a commented-out call. What
//! remains is a flat token stream — identifiers (including `r#raw`
//! forms), lifetimes, numbers, blanked string/char literals, and
//! punctuation with the few multi-char operators the analyses care
//! about (`::`, `->`, `=>`) pre-joined.
//!
//! Every token carries its 1-based source line and the line's test flag,
//! so downstream passes (function extraction, call graph, taint) can
//! report findings at real locations and skip `#[cfg(test)]` regions
//! without re-scanning.

use crate::scan::Line;

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `DocStore`, `send_in`).
    Ident,
    /// Raw identifier (`r#type`); `text` holds the part after `r#`.
    RawIdent,
    /// Lifetime (`'a`, `'static`); `text` holds the part after `'`.
    Lifetime,
    /// Numeric literal (contents as written, suffix included).
    Num,
    /// String literal (contents blanked by the scanner).
    Str,
    /// Char or byte-char literal (contents blanked by the scanner).
    Char,
    /// Punctuation; `::`, `->` and `=>` are single tokens.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// True when the token sits inside test-only code.
    pub is_test: bool,
}

impl Tok {
    /// True for `Ident`/`RawIdent` tokens with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        matches!(self.kind, TokKind::Ident | TokKind::RawIdent) && self.text == text
    }

    /// True for `Punct` tokens with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }

    /// True for any identifier-like token (keyword, name, raw ident).
    pub fn is_name(&self) -> bool {
        matches!(self.kind, TokKind::Ident | TokKind::RawIdent)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex the code channel of scanned lines into a token stream.
pub fn lex(lines: &[Line]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        lex_line(&line.code, idx + 1, line.is_test, &mut toks);
    }
    toks
}

fn lex_line(code: &str, line_no: usize, is_test: bool, out: &mut Vec<Tok>) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let push = |out: &mut Vec<Tok>, kind: TokKind, text: String| {
            out.push(Tok {
                kind,
                text,
                line: line_no,
                is_test,
            });
        };
        // Raw identifier: r#name (a raw *string* would still show its
        // quote here, which this arm rejects).
        if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && chars.get(i + 2).copied().is_some_and(is_ident_start)
        {
            let mut j = i + 2;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            push(out, TokKind::RawIdent, chars[i + 2..j].iter().collect());
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            // Blanked string body after a raw/byte prefix (`r`, `b`,
            // `br`): fold the prefix into the literal.
            if chars.get(j) == Some(&'"') || (chars.get(j) == Some(&'#') && code[j..].contains('"'))
            {
                let prefix: String = chars[i..j].iter().collect();
                if matches!(prefix.as_str(), "r" | "b" | "br" | "rb") {
                    let j2 = skip_str(&chars, j);
                    push(out, TokKind::Str, String::new());
                    i = j2;
                    continue;
                }
            }
            // Byte-char literal prefix: `b'x'`.
            if chars.get(j) == Some(&'\'') && chars[i..j].iter().collect::<String>() == "b" {
                let j2 = skip_char(&chars, j);
                push(out, TokKind::Char, String::new());
                i = j2;
                continue;
            }
            push(out, TokKind::Ident, chars[i..j].iter().collect());
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len()
                && (is_ident_continue(chars[j])
                    || (chars[j] == '.'
                        && chars
                            .get(j + 1)
                            .copied()
                            .is_some_and(|d| d.is_ascii_digit())
                        && chars.get(j.wrapping_sub(1)) != Some(&'.')))
            {
                j += 1;
            }
            push(out, TokKind::Num, chars[i..j].iter().collect());
            i = j;
            continue;
        }
        if c == '"' {
            let j = skip_str(&chars, i);
            push(out, TokKind::Str, String::new());
            i = j;
            continue;
        }
        if c == '\'' {
            // Lifetime vs (blanked) char literal: a lifetime is `'` plus
            // an identifier with no closing quote right after.
            let next = chars.get(i + 1).copied();
            if next.is_some_and(is_ident_start) {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if chars.get(j) != Some(&'\'') {
                    push(out, TokKind::Lifetime, chars[i + 1..j].iter().collect());
                    i = j;
                    continue;
                }
            }
            let j = skip_char(&chars, i);
            push(out, TokKind::Char, String::new());
            i = j;
            continue;
        }
        // Multi-char punctuation the analyses rely on.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if matches!(two.as_str(), "::" | "->" | "=>") {
            push(out, TokKind::Punct, two);
            i += 2;
            continue;
        }
        push(out, TokKind::Punct, c.to_string());
        i += 1;
    }
}

/// Skip a (blanked) string literal starting at `"` or at a `#` fence.
fn skip_str(chars: &[char], start: usize) -> usize {
    let mut i = start;
    let mut fences = 0usize;
    while chars.get(i) == Some(&'#') {
        fences += 1;
        i += 1;
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '"' {
            // Raw strings close only on `"` + matching fences; the
            // scanner blanked inner quotes, so the first `"` we see is
            // the closer.
            return i + 1 + fences;
        }
        i += 1;
    }
    i
}

/// Skip a (blanked) char literal starting at the opening `'`.
fn skip_char(chars: &[char], start: usize) -> usize {
    debug_assert_eq!(chars.get(start), Some(&'\''));
    let mut i = start + 1;
    while i < chars.len() {
        if chars[i] == '\'' {
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn lex_src(src: &str) -> Vec<Tok> {
        lex(&scan(src))
    }

    #[test]
    fn idents_and_calls() {
        let toks = lex_src("fn f() { bus.send_in(a, b); }");
        let names: Vec<&str> = toks
            .iter()
            .filter(|t| t.is_name())
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, ["fn", "f", "bus", "send_in", "a", "b"]);
    }

    #[test]
    fn path_punct_joined() {
        let toks = lex_src("DocStore::get(x)->y => z");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, ["::", "(", ")", "->", "=>"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = lex_src("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| &t.text)
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            1,
            "exactly the 'a' literal"
        );
    }

    #[test]
    fn byte_and_escaped_char_literals() {
        let toks = lex_src(r"let x = b'x'; let q = '\''; let u = '\u{41}'; go();");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
        // The trailing call still lexes cleanly after the tricky literals.
        assert!(toks.iter().any(|t| t.is_ident("go")));
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex_src("fn r#type(r#fn: u32) { r#match(); }");
        let raws: Vec<&String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::RawIdent)
            .map(|t| &t.text)
            .collect();
        assert_eq!(raws, ["type", "fn", "match"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = lex_src(r###"let s = r##"has "quotes" and fn fake()"##; real();"###);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("real")));
        assert!(!toks.iter().any(|t| t.is_ident("fake")));
    }

    #[test]
    fn nested_block_comments_blanked() {
        let toks = lex_src("before(); /* outer /* inner() */ still_comment() */ after();");
        assert!(toks.iter().any(|t| t.is_ident("before")));
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.is_ident("inner")));
        assert!(!toks.iter().any(|t| t.is_ident("still_comment")));
    }

    #[test]
    fn numbers_including_float_and_range() {
        let toks = lex_src("let a = 1.5; let b = 0..10; let c = 0xFFu32;");
        let nums: Vec<&String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| &t.text)
            .collect();
        assert_eq!(nums, ["1.5", "0", "10", "0xFFu32"]);
    }

    #[test]
    fn test_region_flag_carried() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}\n";
        let toks = lex_src(src);
        let prod = toks.iter().find(|t| t.is_ident("prod")).unwrap();
        let helper = toks.iter().find(|t| t.is_ident("helper")).unwrap();
        assert!(!prod.is_test);
        assert!(helper.is_test);
    }
}

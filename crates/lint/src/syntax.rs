//! Item and call-site extraction over the token stream.
//!
//! This is deliberately *not* a Rust parser: it recovers exactly the
//! shapes the flow and reachability analyses need — function items with
//! signatures, struct field types, and call expressions with argument
//! ranges — using brace/paren matching over [`crate::lexer`] tokens.
//! Anything it cannot classify it leaves out, which makes downstream
//! passes under-approximate call edges (documented in DESIGN.md) rather
//! than wrong.

use crate::lexer::{Tok, TokKind};

/// One function parameter: the bound names (several for destructuring
/// patterns) and the declared type tokens.
#[derive(Debug, Clone)]
pub struct Param {
    pub names: Vec<String>,
    pub ty: Vec<String>,
}

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub self_ty: Option<String>,
    /// True only for plain `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True when declared inside test-only code.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub has_self: bool,
    pub params: Vec<Param>,
    /// Return type tokens (empty for `()` / none).
    pub ret: Vec<String>,
    /// Token range of the body, exclusive of the braces; `None` for
    /// trait-method declarations without a default body.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Type::name` or bare `name`, for chains and messages.
    pub fn qname(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{}::{}", ty, self.name),
            None => self.name.clone(),
        }
    }
}

/// What a call expression invokes.
#[derive(Debug, Clone)]
pub enum Callee {
    /// `recv.name(...)`; the receiver shape is kept for type inference.
    Method { recv: Recv, name: String },
    /// `a::b::name(...)` or bare `name(...)`; segments in source order.
    Path { segs: Vec<String> },
    /// `name!(...)`.
    Macro { name: String },
}

/// Receiver shape of a method call, as much as single-pass lexical
/// analysis can recover.
#[derive(Debug, Clone)]
pub enum Recv {
    /// `a.b.c` ident chain rooted at an expression boundary (`a` may be
    /// `self`).
    Chain(Vec<String>),
    /// Result of an earlier call in the same file's call list.
    Call(usize),
    /// `base[...]`: element of an indexed chain.
    Indexed(Vec<String>),
    /// `Type { .. }` struct construction.
    Construction(String),
    Unknown,
}

/// One call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the callee name.
    pub name_idx: usize,
    pub line: usize,
    pub callee: Callee,
    /// Argument token ranges (half-open); for struct construction the
    /// whole brace body is one range.
    pub args: Vec<(usize, usize)>,
}

/// Fields of one struct: (field name, field type tokens).
pub type StructFields = Vec<(String, Vec<String>)>;

/// Parsed view of one file.
#[derive(Debug)]
pub struct FileSyntax {
    pub toks: Vec<Tok>,
    pub fns: Vec<FnItem>,
    /// struct name -> (field name, field type tokens)
    pub structs: Vec<(String, StructFields)>,
    pub calls: Vec<Call>,
    /// For each token, the index in `fns` of the innermost function body
    /// owning it (usize::MAX for item-level tokens).
    pub owner: Vec<usize>,
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn", "else", "unsafe",
    "let", "break", "continue", "impl", "where", "mut", "ref", "dyn",
];

/// Parse a token stream into items and call sites.
pub fn parse_file(toks: Vec<Tok>) -> FileSyntax {
    let mut fns = Vec::new();
    let mut structs = Vec::new();
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            while impl_stack.last().is_some_and(|(_, d)| *d >= depth) {
                impl_stack.pop();
            }
        } else if t.is_ident("impl") || t.is_ident("trait") {
            if let Some((ty, open)) = parse_impl_header(&toks, i) {
                impl_stack.push((ty, depth));
                i = open; // step onto the `{` so depth tracking stays exact
                continue;
            }
        } else if t.is_ident("struct") {
            if let Some((name, fields, next)) = parse_struct(&toks, i) {
                structs.push((name, fields));
                i = next;
                continue;
            }
        } else if t.is_ident("fn") {
            let self_ty = impl_stack.last().map(|(ty, _)| ty.clone());
            if let Some((item, next)) = parse_fn(&toks, i, self_ty) {
                fns.push(item);
                i = next; // points at the body `{` (or past `;`)
                continue;
            }
        }
        i += 1;
    }

    // Innermost-body ownership: later (nested) fns overwrite where their
    // range is smaller.
    let mut owner = vec![usize::MAX; toks.len()];
    let mut order: Vec<usize> = (0..fns.len()).collect();
    order.sort_by_key(|&f| {
        fns[f]
            .body
            .map_or(usize::MAX, |(s, e)| usize::MAX - (e - s))
    });
    for f in order {
        if let Some((s, e)) = fns[f].body {
            for o in owner.iter_mut().take(e).skip(s) {
                *o = f;
            }
        }
    }

    let calls = extract_calls(&toks);
    FileSyntax {
        toks,
        fns,
        structs,
        calls,
        owner,
    }
}

/// From `impl`/`trait` at `idx`, return (self type name, index of `{`).
fn parse_impl_header(toks: &[Tok], idx: usize) -> Option<(String, usize)> {
    let mut i = idx + 1;
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(toks, i)?;
    }
    let mut ty_toks: Vec<usize> = Vec::new();
    let mut angle = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if angle == 0 {
            if t.is_punct("{") {
                let ty = last_type_name(toks, &ty_toks)?;
                return Some((ty, i));
            }
            if t.is_punct(";") {
                return None;
            }
            if t.is_ident("for") {
                ty_toks.clear(); // trait impl: the type follows `for`
                i += 1;
                continue;
            }
            if t.is_ident("where") {
                let open = (i..toks.len()).find(|&j| toks[j].is_punct("{"))?;
                let ty = last_type_name(toks, &ty_toks)?;
                return Some((ty, open));
            }
        }
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        }
        ty_toks.push(i);
        i += 1;
    }
    None
}

/// Last identifier at angle depth 0 in a type token run — `Foo` for
/// `crate::x::Foo<'a, T>`.
fn last_type_name(toks: &[Tok], idxs: &[usize]) -> Option<String> {
    let mut angle = 0i32;
    let mut name = None;
    for &i in idxs {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if angle == 0 && t.is_name() && t.text != "dyn" {
            name = Some(t.text.clone());
        }
    }
    name
}

fn parse_struct(toks: &[Tok], idx: usize) -> Option<(String, StructFields, usize)> {
    let name = toks.get(idx + 1).filter(|t| t.is_name())?.text.clone();
    let mut i = idx + 2;
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(toks, i)?;
    }
    while i < toks.len() && toks[i].is_ident("where") {
        // where clause before the body: scan forward to `{` or `;`
        while i < toks.len() && !toks[i].is_punct("{") && !toks[i].is_punct(";") {
            i += 1;
        }
    }
    if !toks.get(i).is_some_and(|t| t.is_punct("{")) {
        return None; // unit or tuple struct: nothing field-typed to record
    }
    let end = match_close(toks, i, "{", "}")?;
    let mut fields = Vec::new();
    let mut j = i + 1;
    while j < end {
        // field: [pub[(..)]] name : TYPE , — split at top-level commas
        let seg_end = top_level_comma(toks, j, end);
        let mut k = j;
        while k < seg_end && (toks[k].is_ident("pub") || toks[k].is_punct("(")) {
            if toks[k].is_punct("(") {
                k = match_close(toks, k, "(", ")").map_or(k + 1, |e| e + 1);
            } else {
                k += 1;
                if toks.get(k).is_some_and(|t| t.is_punct("(")) {
                    k = match_close(toks, k, "(", ")").map_or(k + 1, |e| e + 1);
                }
            }
        }
        if k + 1 < seg_end && toks[k].is_name() && toks[k + 1].is_punct(":") {
            let fname = toks[k].text.clone();
            let ty: Vec<String> = toks[k + 2..seg_end]
                .iter()
                .map(|t| t.text.clone())
                .collect();
            fields.push((fname, ty));
        }
        j = seg_end + 1;
    }
    Some((name, fields, end + 1))
}

fn parse_fn(toks: &[Tok], idx: usize, self_ty: Option<String>) -> Option<(FnItem, usize)> {
    let name_tok = toks.get(idx + 1).filter(|t| t.is_name())?;
    let name = name_tok.text.clone();
    let line = toks[idx].line;
    let is_test = toks[idx].is_test;
    let is_pub = visibility_is_pub(toks, idx);

    let mut i = idx + 2;
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(toks, i)?;
    }
    if !toks.get(i).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let params_end = match_close(toks, i, "(", ")")?;
    let (params, has_self) = parse_params(toks, i + 1, params_end);
    i = params_end + 1;

    let mut ret: Vec<String> = Vec::new();
    if toks.get(i).is_some_and(|t| t.is_punct("->")) {
        i += 1;
        let mut angle = 0i32;
        while i < toks.len() {
            let t = &toks[i];
            if angle == 0 && (t.is_punct("{") || t.is_punct(";") || t.is_ident("where")) {
                break;
            }
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            }
            ret.push(t.text.clone());
            i += 1;
        }
    }
    while i < toks.len() && !toks[i].is_punct("{") && !toks[i].is_punct(";") {
        i += 1; // where clause
    }
    let body = if toks.get(i).is_some_and(|t| t.is_punct("{")) {
        let end = match_close(toks, i, "{", "}")?;
        Some((i + 1, end))
    } else {
        None
    };
    let item = FnItem {
        name,
        self_ty,
        is_pub,
        is_test,
        line,
        has_self,
        params,
        ret,
        body,
    };
    // Resume at the body `{` (nested items keep being parsed) or past `;`.
    Some((item, i))
}

fn visibility_is_pub(toks: &[Tok], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_ident("unsafe")
            || t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("extern")
        {
            continue;
        }
        if t.kind == TokKind::Str {
            continue; // extern "C"
        }
        if t.is_punct(")") {
            return false; // pub(crate) / pub(super): not a public entry
        }
        return t.is_ident("pub");
    }
    false
}

fn parse_params(toks: &[Tok], start: usize, end: usize) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut j = start;
    while j < end {
        let seg_end = top_level_comma(toks, j, end);
        let seg = &toks[j..seg_end];
        if seg.iter().any(|t| t.is_ident("self")) && !seg.iter().any(|t| t.is_punct(":")) {
            has_self = true;
        } else if !seg.is_empty() {
            let colon = (0..seg.len()).find(|&k| seg[k].is_punct(":"));
            if let Some(c) = colon {
                let names: Vec<String> = seg[..c]
                    .iter()
                    .filter(|t| {
                        t.is_name()
                            && !KEYWORDS.contains(&t.text.as_str())
                            && !t.text.starts_with(char::is_uppercase)
                            && t.text != "_"
                    })
                    .map(|t| t.text.clone())
                    .collect();
                let ty: Vec<String> = seg[c + 1..].iter().map(|t| t.text.clone()).collect();
                params.push(Param { names, ty });
            }
        }
        j = seg_end + 1;
    }
    (params, has_self)
}

/// Index just past a balanced `<...>` run starting at `open`.
fn skip_angles(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        } else if t.is_punct(";") || t.is_punct("{") {
            return None;
        }
    }
    None
}

/// Index of the closer matching `toks[open]`, tracking only that pair.
pub fn match_close(toks: &[Tok], open: usize, o: &str, c: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// First `,` at bracket depth 0 in `[start, end)`, else `end`.
fn top_level_comma(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut paren = 0i32;
    let mut angle = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(start) {
        match t.text.as_str() {
            "(" | "[" | "{" => paren += 1,
            ")" | "]" | "}" => paren -= 1,
            "<" => angle += 1,
            ">" => angle -= 1,
            "," if paren == 0 && angle <= 0 => return j,
            _ => {}
        }
    }
    end
}

fn extract_calls(toks: &[Tok]) -> Vec<Call> {
    let mut calls = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_punct("(") {
            if let Some(call) = call_at_paren(toks, i, &calls) {
                calls.push(call);
            }
        } else if toks[i].is_punct("{") {
            if let Some(call) = construction_at_brace(toks, i) {
                calls.push(call);
            }
        }
    }
    calls
}

/// Walk back over a `::<...>` turbofish; returns the index before it.
fn skip_turbofish_back(toks: &[Tok], mut j: usize) -> usize {
    if toks.get(j).is_some_and(|t| t.is_punct(">")) {
        let mut depth = 0i32;
        while j > 0 {
            if toks[j].is_punct(">") {
                depth += 1;
            } else if toks[j].is_punct("<") {
                depth -= 1;
                if depth == 0 {
                    if j >= 1 && toks[j - 1].is_punct("::") {
                        return j - 2;
                    }
                    return j; // lone generic, give up
                }
            }
            j -= 1;
        }
    }
    j
}

fn call_at_paren(toks: &[Tok], open: usize, prior: &[Call]) -> Option<Call> {
    if open == 0 {
        return None;
    }
    let name_idx = {
        let j = skip_turbofish_back(toks, open - 1);
        if !toks.get(j).is_some_and(|t| t.is_name()) {
            return None;
        }
        j
    };
    let had_turbofish = name_idx != open - 1;
    let name = toks[name_idx].text.clone();
    let close = match_close(toks, open, "(", ")")?;
    let args = split_args(toks, open + 1, close);
    let line = toks[name_idx].line;

    // Macro: `name!(...)` is lexed as name `!` `(` — the `!` sits between.
    if name_idx + 1 < open && toks[name_idx + 1].is_punct("!") {
        return Some(Call {
            name_idx,
            line,
            callee: Callee::Macro { name },
            args,
        });
    }
    if name_idx + 1 != open && !had_turbofish {
        return None;
    }

    if name_idx >= 1 && toks[name_idx - 1].is_punct(".") {
        let recv = parse_recv(toks, name_idx - 1, prior);
        return Some(Call {
            name_idx,
            line,
            callee: Callee::Method { recv, name },
            args,
        });
    }

    // Path (possibly single-segment) call.
    let mut segs = vec![name];
    let mut k = name_idx;
    while k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].is_name() {
        segs.push(toks[k - 2].text.clone());
        k -= 2;
    }
    segs.reverse();
    if k >= 1 && toks[k - 1].is_ident("fn") {
        return None; // declaration, not a call
    }
    if segs.len() == 1 && KEYWORDS.contains(&segs[0].as_str()) {
        return None;
    }
    if k >= 1 && toks[k - 1].is_punct(".") {
        // `expr.seg::ignored(` is not valid Rust; treat head as method.
        return None;
    }
    Some(Call {
        name_idx,
        line,
        callee: Callee::Path { segs },
        args,
    })
}

fn construction_at_brace(toks: &[Tok], open: usize) -> Option<Call> {
    if open == 0 {
        return None;
    }
    let name_idx = open - 1;
    if !toks[name_idx].is_name() {
        return None;
    }
    let name = toks[name_idx].text.clone();
    if !name.starts_with(char::is_uppercase) {
        return None;
    }
    let mut segs = vec![name.clone()];
    let mut k = name_idx;
    while k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].is_name() {
        segs.push(toks[k - 2].text.clone());
        k -= 2;
    }
    segs.reverse();
    if segs.len() == 1 {
        // Lone `Ident {` is ambiguous with blocks; only clear expression
        // positions count as construction.
        let prev = k.checked_sub(1).map(|p| toks[p].text.as_str());
        if !matches!(
            prev,
            Some("=" | "(" | "," | "return" | "break" | "=>" | "[" | "&")
        ) {
            return None;
        }
    }
    let close = match_close(toks, open, "{", "}")?;
    Some(Call {
        name_idx,
        line: toks[name_idx].line,
        callee: Callee::Path { segs },
        args: vec![(open + 1, close)],
    })
}

fn split_args(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut j = start;
    while j < end {
        let seg_end = top_level_comma(toks, j, end);
        if seg_end > j {
            args.push((j, seg_end));
        }
        j = seg_end + 1;
    }
    args
}

/// Reconstruct the receiver shape to the left of the `.` at `dot`.
fn parse_recv(toks: &[Tok], dot: usize, prior: &[Call]) -> Recv {
    let Some(mut j) = dot.checked_sub(1) else {
        return Recv::Unknown;
    };
    while toks[j].is_punct("?") {
        match j.checked_sub(1) {
            Some(n) => j = n,
            None => return Recv::Unknown,
        }
    }
    if toks[j].is_name() {
        let mut chain = vec![toks[j].text.clone()];
        let mut k = j;
        while k >= 2 && toks[k - 1].is_punct(".") && toks[k - 2].is_name() {
            chain.push(toks[k - 2].text.clone());
            k -= 2;
        }
        if k >= 1 && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::")) {
            return Recv::Unknown; // chain rooted in something more complex
        }
        chain.reverse();
        return Recv::Chain(chain);
    }
    if toks[j].is_punct(")") {
        if let Some(open) = match_open(toks, j, "(", ")") {
            if open >= 1 {
                let h = skip_turbofish_back(toks, open - 1);
                if toks[h].is_name() {
                    // The receiver call was extracted earlier (its name
                    // token precedes ours).
                    if let Some(ci) = prior.iter().position(|c| c.name_idx == h) {
                        return Recv::Call(ci);
                    }
                }
            }
        }
        return Recv::Unknown;
    }
    if toks[j].is_punct("]") {
        if let Some(open) = match_open(toks, j, "[", "]") {
            if open >= 1 && toks[open - 1].is_name() {
                let mut chain = vec![toks[open - 1].text.clone()];
                let mut k = open - 1;
                while k >= 2 && toks[k - 1].is_punct(".") && toks[k - 2].is_name() {
                    chain.push(toks[k - 2].text.clone());
                    k -= 2;
                }
                chain.reverse();
                return Recv::Indexed(chain);
            }
        }
        return Recv::Unknown;
    }
    if toks[j].is_punct("}") {
        if let Some(open) = match_open(toks, j, "{", "}") {
            if open >= 1 && toks[open - 1].is_name() {
                let name = toks[open - 1].text.clone();
                if name.starts_with(char::is_uppercase) {
                    return Recv::Construction(name);
                }
            }
        }
    }
    Recv::Unknown
}

/// Index of the opener matching the closer at `close`, scanning back.
fn match_open(toks: &[Tok], close: usize, o: &str, c: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if toks[j].is_punct(c) {
            depth += 1;
        } else if toks[j].is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// Kinds of panicking constructs the transitive pass can flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    Unwrap,
    Expect,
    Macro,
    Assert,
    Index,
    Arith,
}

impl PanicKind {
    pub fn name(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::Macro => "macro",
            PanicKind::Assert => "assert",
            PanicKind::Index => "index",
            PanicKind::Arith => "arith",
        }
    }

    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "unwrap" => PanicKind::Unwrap,
            "expect" => PanicKind::Expect,
            "macro" => PanicKind::Macro,
            "assert" => PanicKind::Assert,
            "index" => PanicKind::Index,
            "arith" => PanicKind::Arith,
            _ => return None,
        })
    }
}

/// Panicking constructs inside `[start, end)`: (kind, line, description).
pub fn panic_sites(toks: &[Tok], start: usize, end: usize) -> Vec<(PanicKind, usize, String)> {
    let mut sites = Vec::new();
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if t.is_name() && j + 1 < end && toks[j + 1].is_punct("!") {
            let kind = match t.text.as_str() {
                "panic" | "unreachable" | "todo" | "unimplemented" => Some(PanicKind::Macro),
                "assert" | "assert_eq" | "assert_ne" | "debug_assert" | "debug_assert_eq"
                | "debug_assert_ne" => Some(PanicKind::Assert),
                _ => None,
            };
            if let Some(k) = kind {
                sites.push((k, t.line, format!("{}!", t.text)));
            }
            j += 2;
            continue;
        }
        if t.is_name() && j >= 1 && toks[j - 1].is_punct(".") {
            let kind = match t.text.as_str() {
                "unwrap" | "unwrap_err" => Some(PanicKind::Unwrap),
                "expect" | "expect_err" => Some(PanicKind::Expect),
                _ => None,
            };
            if let (Some(k), true) = (kind, toks.get(j + 1).is_some_and(|n| n.is_punct("("))) {
                sites.push((k, t.line, format!(".{}()", t.text)));
            }
            j += 1;
            continue;
        }
        if t.is_punct("[")
            && j >= 1
            && (toks[j - 1].is_name() || toks[j - 1].is_punct(")") || toks[j - 1].is_punct("]"))
        {
            sites.push((PanicKind::Index, t.line, "slice/array indexing".to_string()));
        }
        if matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%")
            && t.kind == TokKind::Punct
            && j >= 1
            && j + 1 < end
            && (toks[j - 1].is_name()
                || toks[j - 1].kind == TokKind::Num
                || toks[j - 1].is_punct(")")
                || toks[j - 1].is_punct("]"))
            && (toks[j + 1].is_name()
                || toks[j + 1].kind == TokKind::Num
                || toks[j + 1].is_punct("("))
        {
            sites.push((
                PanicKind::Arith,
                t.line,
                format!("unchecked `{}` arithmetic", t.text),
            ));
        }
        j += 1;
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::scan;

    fn parse(src: &str) -> FileSyntax {
        parse_file(lex(&scan(src)))
    }

    #[test]
    fn extracts_free_fn_signature() {
        let fs = parse("pub fn serve_cloud(cloud: &mut CellCloud, msg: &CellMsg) -> Option<CellMsg> { inner() }");
        assert_eq!(fs.fns.len(), 1);
        let f = &fs.fns[0];
        assert_eq!(f.name, "serve_cloud");
        assert!(f.is_pub);
        assert!(!f.has_self);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].names, ["cloud"]);
        assert_eq!(f.params[1].ty.join(" "), "& CellMsg");
        assert_eq!(f.ret.join(""), "Option<CellMsg>");
    }

    #[test]
    fn impl_methods_get_self_type() {
        let fs = parse(
            "impl<'a, T: Clone> MailboxBus<T> {\n  pub fn send(&mut self, to: Addr) -> u64 { 0 }\n  fn inner(&self) {}\n}",
        );
        assert_eq!(fs.fns.len(), 2);
        assert_eq!(fs.fns[0].self_ty.as_deref(), Some("MailboxBus"));
        assert!(fs.fns[0].is_pub && fs.fns[0].has_self);
        assert!(!fs.fns[1].is_pub);
    }

    #[test]
    fn trait_impl_uses_target_type() {
        let fs = parse("impl Iterator for BlockIter { fn next(&mut self) -> Option<u8> { None } }");
        assert_eq!(fs.fns[0].self_ty.as_deref(), Some("BlockIter"));
    }

    #[test]
    fn pub_crate_is_not_public() {
        let fs = parse("pub(crate) fn helper() {} pub fn api() {}");
        assert!(!fs.fns[0].is_pub);
        assert!(fs.fns[1].is_pub);
    }

    #[test]
    fn nested_fns_own_their_tokens() {
        let fs = parse("fn outer() { fn inner() { deep(); } shallow(); }");
        assert_eq!(fs.fns.len(), 2);
        let deep = fs
            .calls
            .iter()
            .find(|c| matches!(&c.callee, Callee::Path { segs } if segs == &["deep"]))
            .unwrap();
        let shallow = fs
            .calls
            .iter()
            .find(|c| matches!(&c.callee, Callee::Path { segs } if segs == &["shallow"]))
            .unwrap();
        let inner_id = fs.fns.iter().position(|f| f.name == "inner").unwrap();
        let outer_id = fs.fns.iter().position(|f| f.name == "outer").unwrap();
        assert_eq!(fs.owner[deep.name_idx], inner_id);
        assert_eq!(fs.owner[shallow.name_idx], outer_id);
    }

    #[test]
    fn struct_fields_recorded() {
        let fs = parse("pub struct SubNet { pub bus: MailboxBus, pds: Vec<Pds>, n: usize }");
        assert_eq!(fs.structs.len(), 1);
        let (name, fields) = &fs.structs[0];
        assert_eq!(name, "SubNet");
        assert_eq!(fields[0].0, "bus");
        assert_eq!(fields[0].1.join(""), "MailboxBus");
        assert_eq!(fields[1].1.join(""), "Vec<Pds>");
    }

    #[test]
    fn method_call_receiver_chain() {
        let fs = parse("fn f(&self) { self.bus.send_in(a, b, payload, ctx); }");
        let call = fs
            .calls
            .iter()
            .find(|c| matches!(&c.callee, Callee::Method { name, .. } if name == "send_in"))
            .unwrap();
        match &call.callee {
            Callee::Method {
                recv: Recv::Chain(chain),
                ..
            } => {
                assert_eq!(chain, &["self", "bus"]);
            }
            other => panic!("unexpected callee {other:?}"),
        }
        assert_eq!(call.args.len(), 4);
    }

    #[test]
    fn indexed_receiver() {
        let fs = parse("fn f(&mut self) { self.pds[i].poll_subscription(id); }");
        let call = fs
            .calls
            .iter()
            .find(
                |c| matches!(&c.callee, Callee::Method { name, .. } if name == "poll_subscription"),
            )
            .unwrap();
        match &call.callee {
            Callee::Method {
                recv: Recv::Indexed(chain),
                ..
            } => assert_eq!(chain, &["self", "pds"]),
            other => panic!("unexpected callee {other:?}"),
        }
    }

    #[test]
    fn call_result_receiver_links_to_prior_call() {
        let fs = parse("fn f() { open_store(path).get(doc); }");
        let get = fs
            .calls
            .iter()
            .find(|c| matches!(&c.callee, Callee::Method { name, .. } if name == "get"))
            .unwrap();
        match &get.callee {
            Callee::Method {
                recv: Recv::Call(ci),
                ..
            } => {
                assert!(
                    matches!(&fs.calls[*ci].callee, Callee::Path { segs } if segs == &["open_store"])
                );
            }
            other => panic!("unexpected callee {other:?}"),
        }
    }

    #[test]
    fn path_calls_and_constructions() {
        let fs =
            parse("fn f() { let m = CellMsg::Push { slice: 0, blob }; DocStore::get(&s, 3); }");
        assert!(fs
            .calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Path { segs } if segs == &["CellMsg", "Push"])));
        assert!(fs
            .calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Path { segs } if segs == &["DocStore", "get"])));
        // `fn f(` itself is not a call, and `match x {` is not a construction.
        assert!(!fs
            .calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Path { segs } if segs == &["f"])));
    }

    #[test]
    fn turbofish_method_call() {
        let fs = parse("fn f(v: Vec<u8>) { v.iter().collect::<Vec<_>>(); }");
        assert!(fs
            .calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Method { name, .. } if name == "collect")));
    }

    #[test]
    fn panic_sites_by_kind() {
        let fs = parse(
            "fn f(v: &[u8], i: usize, a: u32, b: u32) {\n  v.get(i).unwrap();\n  v.first().expect(\"x\");\n  panic!(\"boom\");\n  assert!(a > 0);\n  let _ = v[i];\n  let _ = a + b;\n}",
        );
        let f = &fs.fns[0];
        let (s, e) = f.body.unwrap();
        let kinds: Vec<PanicKind> = panic_sites(&fs.toks, s, e)
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert!(kinds.contains(&PanicKind::Unwrap));
        assert!(kinds.contains(&PanicKind::Expect));
        assert!(kinds.contains(&PanicKind::Macro));
        assert!(kinds.contains(&PanicKind::Assert));
        assert!(kinds.contains(&PanicKind::Index));
        assert!(kinds.contains(&PanicKind::Arith));
    }

    #[test]
    fn saturating_math_is_not_arith_site() {
        let fs = parse("fn f(a: u32, b: u32) -> u32 { a.saturating_add(b) }");
        let (s, e) = fs.fns[0].body.unwrap();
        assert!(panic_sites(&fs.toks, s, e).is_empty());
    }
}

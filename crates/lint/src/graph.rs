//! Workspace-wide function index, call resolution, and the
//! `panic.transitive` reachability pass.
//!
//! Resolution is deliberately under-approximate: a call edge is added
//! only when the callee can be pinned to workspace functions — a typed
//! receiver, a `Type::method` path, a crate-qualified or locally unique
//! free function, or a workspace-unique method name. Unknown calls get
//! no edge (std/external calls never panic *our* invariants; missed
//! workspace edges are a documented soundness gap, not noise).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::Tok;
use crate::rules::{crate_config, dep_allowed, Family, CRATES};
use crate::syntax::{panic_sites, Callee, FileSyntax, PanicKind, Recv};

/// (file index, fn index) — stable id of one function in the workspace.
pub type FnId = (usize, usize);

/// One parsed workspace file with its crate attribution.
pub struct WsFile {
    /// Crate directory under `crates/` (e.g. `flash`).
    pub crate_dir: String,
    /// Display path (e.g. `crates/flash/src/log.rs`).
    pub path: String,
    pub syntax: FileSyntax,
}

/// The analyzed workspace: files plus resolution indexes.
pub struct Workspace {
    pub files: Vec<WsFile>,
    by_type_method: BTreeMap<(String, String), Vec<FnId>>,
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    free_by_name: BTreeMap<String, Vec<FnId>>,
    struct_fields: BTreeMap<String, BTreeMap<String, Vec<String>>>,
    lib_to_dir: BTreeMap<String, String>,
}

/// Per-function variable typing environment (params + inferred lets).
#[derive(Default, Clone)]
pub struct FnEnv {
    /// var name -> type tokens
    pub vars: BTreeMap<String, Vec<String>>,
}

impl Workspace {
    pub fn build(files: Vec<WsFile>) -> Workspace {
        let mut ws = Workspace {
            files,
            by_type_method: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
            struct_fields: BTreeMap::new(),
            lib_to_dir: CRATES
                .iter()
                .map(|c| (c.lib.to_string(), c.dir.to_string()))
                .collect(),
        };
        for (fi, file) in ws.files.iter().enumerate() {
            for (gi, f) in file.syntax.fns.iter().enumerate() {
                if f.is_test || f.body.is_none() {
                    continue;
                }
                let id = (fi, gi);
                match &f.self_ty {
                    Some(ty) => {
                        ws.by_type_method
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        ws.methods_by_name
                            .entry(f.name.clone())
                            .or_default()
                            .push(id);
                    }
                    None => {
                        ws.free_by_name.entry(f.name.clone()).or_default().push(id);
                    }
                }
            }
            for (sname, fields) in &file.syntax.structs {
                let entry = ws.struct_fields.entry(sname.clone()).or_default();
                for (fname, ty) in fields {
                    entry.insert(fname.clone(), ty.clone());
                }
            }
        }
        ws
    }

    pub fn fn_ids(&self) -> Vec<FnId> {
        let mut ids = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.syntax.fns.iter().enumerate() {
                if !f.is_test && f.body.is_some() {
                    ids.push((fi, gi));
                }
            }
        }
        ids
    }

    pub fn fn_item(&self, id: FnId) -> &crate::syntax::FnItem {
        &self.files[id.0].syntax.fns[id.1]
    }

    /// `Type::name (crates/x/src/y.rs:NN)` — one chain step.
    pub fn fn_step(&self, id: FnId) -> String {
        let f = self.fn_item(id);
        format!("{} ({}:{})", f.qname(), self.files[id.0].path, f.line)
    }

    /// Calls whose callee token is owned by `id`'s body, in source order.
    pub fn calls_of(&self, id: FnId) -> Vec<usize> {
        let syn = &self.files[id.0].syntax;
        syn.calls
            .iter()
            .enumerate()
            .filter(|(_, c)| syn.owner.get(c.name_idx) == Some(&id.1))
            .map(|(i, _)| i)
            .collect()
    }

    /// Contiguous token runs owned by `id` (nested fn bodies excluded).
    pub fn owned_runs(&self, id: FnId) -> Vec<(usize, usize)> {
        let syn = &self.files[id.0].syntax;
        let Some((s, e)) = syn.fns[id.1].body else {
            return Vec::new();
        };
        let mut runs = Vec::new();
        let mut start = None;
        for i in s..e {
            if syn.owner[i] == id.1 {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(st) = start.take() {
                runs.push((st, i));
            }
        }
        if let Some(st) = start {
            runs.push((st, e));
        }
        runs
    }

    /// Build the typing environment for one function: parameter types,
    /// then two passes of `let` inference so call-result types can feed
    /// later bindings.
    pub fn build_env(&self, id: FnId) -> FnEnv {
        let f = self.fn_item(id);
        let mut env = FnEnv::default();
        for p in &f.params {
            for n in &p.names {
                env.vars.insert(n.clone(), p.ty.clone());
            }
        }
        for _ in 0..2 {
            self.infer_lets(id, &mut env);
        }
        env
    }

    fn infer_lets(&self, id: FnId, env: &mut FnEnv) {
        let syn = &self.files[id.0].syntax;
        for (s, e) in self.owned_runs(id) {
            let toks = &syn.toks;
            let mut i = s;
            while i < e {
                if !toks[i].is_ident("let") {
                    i += 1;
                    continue;
                }
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                // `let Some(x) = rhs` / `let Ok(x) = rhs`: bind the inner
                // ident to the unwrapped type.
                let mut unwrap_one = false;
                if toks
                    .get(j)
                    .is_some_and(|t| t.is_ident("Some") || t.is_ident("Ok"))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct("("))
                {
                    unwrap_one = true;
                    j += 2;
                    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                }
                let name = match toks.get(j) {
                    Some(t) if t.is_name() && !t.text.starts_with(char::is_uppercase) => {
                        t.text.clone()
                    }
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let mut k = j + 1;
                if unwrap_one && toks.get(k).is_some_and(|t| t.is_punct(")")) {
                    k += 1;
                }
                let ty = if toks.get(k).is_some_and(|t| t.is_punct(":")) {
                    // Explicit annotation: tokens up to the top-level `=`.
                    let mut angle = 0i32;
                    let mut ty = Vec::new();
                    let mut m = k + 1;
                    while m < e {
                        let t = &toks[m];
                        if angle == 0 && (t.is_punct("=") || t.is_punct(";")) {
                            break;
                        }
                        if t.is_punct("<") {
                            angle += 1;
                        } else if t.is_punct(">") {
                            angle -= 1;
                        }
                        ty.push(t.text.clone());
                        m += 1;
                    }
                    Some(ty)
                } else if toks.get(k).is_some_and(|t| t.is_punct("=")) {
                    // `let x = call(...)`: take the resolved return type
                    // of the first call right after `=`.
                    syn.calls
                        .iter()
                        .position(|c| c.name_idx == k + 1 || c.name_idx == k + 2)
                        .and_then(|ci| self.call_ret_type(id, env, ci, 0))
                        .map(|ty| {
                            if unwrap_one {
                                inner_type_tokens(&ty).unwrap_or(ty)
                            } else {
                                ty
                            }
                        })
                } else {
                    None
                };
                if let Some(ty) = ty {
                    if !ty.is_empty() {
                        env.vars.entry(name).or_insert(ty);
                    }
                }
                i = k + 1;
            }
        }
    }

    /// Return-type tokens of the (unique) resolution of call `ci`.
    fn call_ret_type(&self, id: FnId, env: &FnEnv, ci: usize, depth: usize) -> Option<Vec<String>> {
        if depth > 3 {
            return None;
        }
        let call = &self.files[id.0].syntax.calls[ci];
        // `Type::new`-style constructors of workspace or std container
        // types resolve to the type itself even without a known fn.
        if let Callee::Path { segs } = &call.callee {
            if segs.len() >= 2 {
                let ty = &segs[segs.len() - 2];
                let m = &segs[segs.len() - 1];
                if ty.starts_with(char::is_uppercase)
                    && matches!(
                        m.as_str(),
                        "new" | "default" | "with_capacity" | "from_seed" | "open" | "build"
                    )
                {
                    return Some(vec![ty.clone()]);
                }
            }
        }
        let targets = self.resolve_with_env(id, env, ci, depth);
        let mut rets: BTreeSet<Vec<String>> = BTreeSet::new();
        for t in &targets {
            let ret = &self.fn_item(*t).ret;
            if !ret.is_empty() {
                let mut r = ret.clone();
                if r.first().is_some_and(|t| t == "Self") {
                    if let Some(st) = &self.fn_item(*t).self_ty {
                        r = vec![st.clone()];
                    }
                }
                rets.insert(r);
            }
        }
        if rets.len() == 1 {
            rets.into_iter().next()
        } else {
            None
        }
    }

    /// Resolve call `ci` in function `id` to workspace functions.
    pub fn resolve(&self, id: FnId, env: &FnEnv, ci: usize) -> Vec<FnId> {
        self.resolve_with_env(id, env, ci, 0)
    }

    /// Can `caller`'s crate reach `target`'s crate per the layering
    /// matrix? Name-only candidates in unreachable crates are noise
    /// (e.g. `f64::round` misresolving to a fleet method). Crates
    /// without a matrix row (test fixtures) are never filtered.
    fn dep_ok(&self, caller: usize, target: usize) -> bool {
        let cdir = &self.files[caller].crate_dir;
        let tdir = &self.files[target].crate_dir;
        if cdir == tdir {
            return true;
        }
        match (crate_config(cdir), crate_config(tdir)) {
            (Some(c), Some(t)) => dep_allowed(c, t.lib),
            _ => true,
        }
    }

    fn resolve_with_env(&self, id: FnId, env: &FnEnv, ci: usize, depth: usize) -> Vec<FnId> {
        let file = &self.files[id.0];
        let call = &file.syntax.calls[ci];
        match &call.callee {
            Callee::Macro { .. } => Vec::new(),
            Callee::Path { segs } => self.resolve_path(id, segs),
            Callee::Method { recv, name } => {
                if let Some(ty) = self.recv_type(id, env, recv, depth) {
                    let mut ids = self
                        .by_type_method
                        .get(&(ty, name.clone()))
                        .cloned()
                        .unwrap_or_default();
                    ids.retain(|t| self.dep_ok(id.0, t.0));
                    return ids;
                }
                let mut ids = self.methods_by_name.get(name).cloned().unwrap_or_default();
                ids.retain(|t| self.dep_ok(id.0, t.0));
                if ids.len() == 1 {
                    ids
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn resolve_path(&self, id: FnId, segs: &[String]) -> Vec<FnId> {
        let file = &self.files[id.0];
        let mut segs: Vec<String> = segs.to_vec();
        if segs.first().is_some_and(|s| s == "Self") {
            if let Some(ty) = &file.syntax.fns[id.1].self_ty {
                segs[0] = ty.clone();
            }
        }
        let last = segs.last().cloned().unwrap_or_default();
        if segs.len() >= 2 {
            let head = &segs[segs.len() - 2];
            if head.starts_with(char::is_uppercase) {
                let mut ids = self
                    .by_type_method
                    .get(&(head.clone(), last))
                    .cloned()
                    .unwrap_or_default();
                ids.retain(|t| self.dep_ok(id.0, t.0));
                return ids;
            }
            // Module/crate-qualified free function.
            let mut cands = self.free_by_name.get(&last).cloned().unwrap_or_default();
            cands.retain(|t| self.dep_ok(id.0, t.0));
            let dir = if head == "crate" || head == "super" || head == "self" {
                Some(file.crate_dir.clone())
            } else {
                self.lib_to_dir.get(head.as_str()).cloned()
            };
            if let Some(dir) = dir {
                let filtered: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|t| self.files[t.0].crate_dir == dir)
                    .collect();
                if !filtered.is_empty() {
                    return filtered;
                }
            }
            return cands;
        }
        if last.starts_with(char::is_uppercase) {
            return Vec::new(); // tuple-struct / enum-variant construction
        }
        let mut cands = self.free_by_name.get(&last).cloned().unwrap_or_default();
        cands.retain(|t| self.dep_ok(id.0, t.0));
        let same_file: Vec<FnId> = cands.iter().copied().filter(|t| t.0 == id.0).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|t| self.files[t.0].crate_dir == file.crate_dir)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        if cands.len() == 1 {
            return cands;
        }
        Vec::new()
    }

    /// Infer the receiver's type name for a method call.
    pub fn recv_type(&self, id: FnId, env: &FnEnv, recv: &Recv, depth: usize) -> Option<String> {
        let f = self.fn_item(id);
        match recv {
            Recv::Chain(chain) => {
                let ty_toks = self.chain_type_tokens(f, env, chain)?;
                core_type_name(&ty_toks)
            }
            Recv::Indexed(chain) => {
                let ty_toks = self.chain_type_tokens(f, env, chain)?;
                let elem = element_type_tokens(&ty_toks)?;
                core_type_name(&elem)
            }
            Recv::Construction(name) => Some(name.clone()),
            Recv::Call(ci) => {
                let ty = self.call_ret_type(id, env, *ci, depth + 1)?;
                core_type_name(&ty)
            }
            Recv::Unknown => None,
        }
    }

    /// Full type tokens of an `a.b.c` chain, walking struct fields.
    fn chain_type_tokens(
        &self,
        f: &crate::syntax::FnItem,
        env: &FnEnv,
        chain: &[String],
    ) -> Option<Vec<String>> {
        let head = chain.first()?;
        let mut ty: Vec<String> = if head == "self" {
            vec![f.self_ty.clone()?]
        } else {
            env.vars.get(head)?.clone()
        };
        for field in &chain[1..] {
            let owner = core_type_name(&ty)?;
            ty = self.struct_fields.get(&owner)?.get(field)?.clone();
        }
        Some(ty)
    }

    /// All resolved call edges of `id`, deduped, in source order.
    pub fn edges(&self, id: FnId, env: &FnEnv) -> Vec<(FnId, usize)> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for ci in self.calls_of(id) {
            let line = self.files[id.0].syntax.calls[ci].line;
            for target in self.resolve(id, env, ci) {
                if seen.insert(target) {
                    out.push((target, line));
                }
            }
        }
        out
    }
}

/// First identifier at angle depth 0 that names a type (uppercase
/// initial): `&mut MailboxBus` -> `MailboxBus`, `Vec<Pds>` -> `Vec`.
pub fn core_type_name(ty: &[String]) -> Option<String> {
    let mut angle = 0i32;
    for t in ty {
        match t.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "dyn" | "impl" => {}
            s if angle == 0 && s.starts_with(char::is_uppercase) => return Some(s.to_string()),
            _ => {}
        }
    }
    None
}

/// Element type of an indexable container: `Vec<Pds>` -> `Pds`,
/// `&[Tuple]` -> `Tuple`.
fn element_type_tokens(ty: &[String]) -> Option<Vec<String>> {
    if let Some(open) = ty.iter().position(|t| t == "[") {
        let close = ty.iter().rposition(|t| t == "]")?;
        let inner: Vec<String> = ty[open + 1..close]
            .iter()
            .take_while(|t| *t != ";")
            .cloned()
            .collect();
        return Some(inner);
    }
    inner_type_tokens(ty)
}

/// First generic argument: `Option<CellMsg>` -> `CellMsg`.
fn inner_type_tokens(ty: &[String]) -> Option<Vec<String>> {
    let open = ty.iter().position(|t| t == "<")?;
    let mut angle = 0i32;
    let mut inner = Vec::new();
    for t in &ty[open..] {
        match t.as_str() {
            "<" => {
                angle += 1;
                if angle == 1 {
                    continue;
                }
            }
            ">" => {
                angle -= 1;
                if angle == 0 {
                    break;
                }
            }
            "," if angle == 1 => break,
            _ => {}
        }
        inner.push(t.clone());
    }
    if inner.is_empty() {
        None
    } else {
        Some(inner)
    }
}

/// A transitive-panic result: the panic site plus the entry-point chain
/// proving reachability.
pub struct TransPanic {
    pub file: usize,
    pub line: usize,
    pub kind: PanicKind,
    pub desc: String,
    /// Call chain from an embedded entry point to the panicking fn.
    pub chain: Vec<String>,
}

/// Functions reachable from public entry points of panic-family crates
/// that contain enabled panicking constructs in *non*-panic-family
/// crates (direct rules own the family crates themselves).
pub fn panic_transitive(ws: &Workspace, enabled: &BTreeSet<PanicKind>) -> Vec<TransPanic> {
    if enabled.is_empty() {
        return Vec::new();
    }
    let family_dirs: BTreeSet<&str> = CRATES
        .iter()
        .filter(|c| c.families.contains(&Family::Panic))
        .map(|c| c.dir)
        .collect();

    let ids = ws.fn_ids();
    let envs: BTreeMap<FnId, FnEnv> = ids.iter().map(|&id| (id, ws.build_env(id))).collect();

    // Multi-source BFS with parent tracking for chains.
    let mut parent: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
    let mut queue = VecDeque::new();
    for &id in &ids {
        let f = ws.fn_item(id);
        if f.is_pub && family_dirs.contains(ws.files[id.0].crate_dir.as_str()) {
            parent.insert(id, None);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for (target, _line) in ws.edges(id, &envs[&id]) {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(target) {
                e.insert(Some(id));
                queue.push_back(target);
            }
        }
    }

    let mut out = Vec::new();
    let mut seen_sites: BTreeSet<(usize, usize, PanicKind)> = BTreeSet::new();
    for &id in &ids {
        if !parent.contains_key(&id) || family_dirs.contains(ws.files[id.0].crate_dir.as_str()) {
            continue;
        }
        let syn = &ws.files[id.0].syntax;
        for (s, e) in ws.owned_runs(id) {
            for (kind, line, desc) in panic_sites(&syn.toks, s, e) {
                if !enabled.contains(&kind) || !seen_sites.insert((id.0, line, kind)) {
                    continue;
                }
                let mut chain = Vec::new();
                let mut cur = Some(id);
                while let Some(c) = cur {
                    chain.push(ws.fn_step(c));
                    cur = parent.get(&c).copied().flatten();
                }
                chain.reverse();
                out.push(TransPanic {
                    file: id.0,
                    line,
                    kind,
                    desc,
                    chain,
                });
            }
        }
    }
    out.sort_by_key(|a| (a.file, a.line, a.kind));
    out
}

/// Helper shared by analyses: does the token at `idx` start a
/// `.len()`-style declassified measurement of a tainted value?
pub fn is_declassified_use(toks: &[Tok], idx: usize) -> bool {
    toks.get(idx + 1).is_some_and(|t| t.is_punct("."))
        && toks.get(idx + 2).is_some_and(|t| {
            t.is_ident("len")
                || t.is_ident("is_empty")
                || t.is_ident("capacity")
                || t.is_ident("count")
        })
        && toks.get(idx + 3).is_some_and(|t| t.is_punct("("))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::scan;
    use crate::syntax::parse_file;

    fn ws_one(dir: &str, src: &str) -> Workspace {
        Workspace::build(vec![WsFile {
            crate_dir: dir.to_string(),
            path: format!("crates/{dir}/src/lib.rs"),
            syntax: parse_file(lex(&scan(src))),
        }])
    }

    fn fn_id(ws: &Workspace, name: &str) -> FnId {
        for (fi, file) in ws.files.iter().enumerate() {
            for (gi, f) in file.syntax.fns.iter().enumerate() {
                if f.name == name {
                    return (fi, gi);
                }
            }
        }
        panic!("no fn {name}");
    }

    #[test]
    fn resolves_typed_method_receiver() {
        let ws = ws_one(
            "fleet",
            "pub struct Bus; impl Bus { pub fn send(&mut self) {} }\n\
             pub fn go(bus: &mut Bus) { bus.send(); }",
        );
        let go = fn_id(&ws, "go");
        let env = ws.build_env(go);
        let edges = ws.edges(go, &env);
        assert_eq!(edges.len(), 1);
        assert_eq!(ws.fn_item(edges[0].0).qname(), "Bus::send");
    }

    #[test]
    fn resolves_field_and_indexed_receivers() {
        let ws = ws_one(
            "fleet",
            "pub struct Pds; impl Pds { pub fn poll(&mut self) {} }\n\
             pub struct Net { pds: Vec<Pds> }\n\
             impl Net { pub fn round(&mut self, i: usize) { self.pds[i].poll(); } }",
        );
        let round = fn_id(&ws, "round");
        let env = ws.build_env(round);
        let edges = ws.edges(round, &env);
        assert_eq!(edges.len(), 1);
        assert_eq!(ws.fn_item(edges[0].0).qname(), "Pds::poll");
    }

    #[test]
    fn let_inference_through_constructor() {
        let ws = ws_one(
            "core",
            "pub struct Store; impl Store { pub fn open() -> Store { Store } pub fn get(&self) {} }\n\
             pub fn f() { let s = Store::open(); s.get(); }",
        );
        let f = fn_id(&ws, "f");
        let env = ws.build_env(f);
        let names: Vec<String> = ws
            .edges(f, &env)
            .iter()
            .map(|(t, _)| ws.fn_item(*t).qname())
            .collect();
        assert!(names.contains(&"Store::open".to_string()));
        assert!(names.contains(&"Store::get".to_string()));
    }

    #[test]
    fn unknown_receiver_with_ambiguous_method_gets_no_edge() {
        let ws = ws_one(
            "core",
            "pub struct A; impl A { pub fn go(&self) {} }\n\
             pub struct B; impl B { pub fn go(&self) {} }\n\
             pub fn f(x: &UnknownExternal) { x.go(); }",
        );
        let f = fn_id(&ws, "f");
        let env = ws.build_env(f);
        assert!(ws.edges(f, &env).is_empty());
    }

    #[test]
    fn transitive_panic_found_across_crates() {
        let core = "pub fn api(s: &Helper) { s.step(); }";
        let other = "pub struct Helper; impl Helper {\n\
                     pub fn step(&self) { self.deep(); }\n\
                     fn deep(&self) { let v: Vec<u8> = Vec::new(); v.first().unwrap(); }\n}";
        let ws = Workspace::build(vec![
            WsFile {
                crate_dir: "core".into(),
                path: "crates/core/src/lib.rs".into(),
                syntax: parse_file(lex(&scan(core))),
            },
            WsFile {
                crate_dir: "obs".into(),
                path: "crates/obs/src/lib.rs".into(),
                syntax: parse_file(lex(&scan(other))),
            },
        ]);
        let enabled: BTreeSet<PanicKind> = [PanicKind::Unwrap].into_iter().collect();
        let hits = panic_transitive(&ws, &enabled);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].chain.len(), 3);
        assert!(hits[0].chain[0].starts_with("api"));
        assert!(hits[0].chain[2].starts_with("Helper::deep"));
    }

    #[test]
    fn panic_in_family_crate_is_left_to_direct_rules() {
        let ws = ws_one(
            "flash",
            "pub fn api() { helper(); } fn helper() { panic!(\"x\"); }",
        );
        let enabled: BTreeSet<PanicKind> = [PanicKind::Macro].into_iter().collect();
        assert!(panic_transitive(&ws, &enabled).is_empty());
    }

    #[test]
    fn index_and_arith_kinds_detected_when_enabled() {
        let core = "pub fn api(h: &H) { h.idx(); h.add(); }";
        let obs = "pub struct H; impl H {\n\
                   pub fn idx(&self) { let v = [1u8]; let i = 0; let _ = v[i]; }\n\
                   pub fn add(&self) { let a = 1u32; let b = 2u32; let _ = a + b; }\n}";
        let ws = Workspace::build(vec![
            WsFile {
                crate_dir: "core".into(),
                path: "crates/core/src/lib.rs".into(),
                syntax: parse_file(lex(&scan(core))),
            },
            WsFile {
                crate_dir: "obs".into(),
                path: "crates/obs/src/lib.rs".into(),
                syntax: parse_file(lex(&scan(obs))),
            },
        ]);
        let both: BTreeSet<PanicKind> = [PanicKind::Index, PanicKind::Arith].into_iter().collect();
        let hits = panic_transitive(&ws, &both);
        let kinds: BTreeSet<PanicKind> = hits.iter().map(|h| h.kind).collect();
        assert!(kinds.contains(&PanicKind::Index));
        assert!(kinds.contains(&PanicKind::Arith));
        // Disabled kinds stay silent.
        let none: BTreeSet<PanicKind> = BTreeSet::new();
        assert!(panic_transitive(&ws, &none).is_empty());
    }
}

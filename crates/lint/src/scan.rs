//! A lightweight Rust source scanner: no full parse, just enough lexing
//! to make token matching sound.
//!
//! The scanner walks the source once and produces, per line:
//!
//! - the **code text** with comments and string/char-literal *contents*
//!   blanked out (quotes are kept), so that rule tokens never match
//!   inside a string or a comment, and brace counting is exact;
//! - the **comment text** with everything else blanked, so waiver
//!   comments (`// pds-lint: allow(rule) — reason`) can be parsed;
//! - whether the line belongs to **test code** (`#[cfg(test)]` /
//!   `#[test]` items, or a file opening with `#![cfg(test)]`), which the
//!   invariants deliberately exempt.
//!
//! Handled lexical forms: line comments, nested block comments, string
//! literals with escapes, raw (and byte/raw-byte) strings with `#`
//! fences, char and byte-char literals, and the char-literal/lifetime
//! ambiguity (`'a'` vs `<'a>`).

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments and literal contents blanked (same length and
    /// column positions as the original line).
    pub code: String,
    /// Comment text of this line with code blanked, if any comment.
    pub comment: Option<String>,
    /// True when the line sits inside test-only code.
    pub is_test: bool,
}

/// Lexer state carried across characters.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scan `source` into per-line code/comment channels with test-region
/// marking.
pub fn scan(source: &str) -> Vec<Line> {
    let (code_text, comment_text) = split_channels(source);
    let code_lines: Vec<&str> = code_text.split('\n').collect();
    let comment_lines: Vec<&str> = comment_text.split('\n').collect();
    let test_flags = mark_test_regions(&code_lines);
    code_lines
        .iter()
        .enumerate()
        .map(|(i, code)| {
            let comment = comment_lines.get(i).and_then(|c| {
                if c.trim().is_empty() {
                    None
                } else {
                    Some((*c).to_string())
                }
            });
            Line {
                code: (*code).to_string(),
                comment,
                is_test: test_flags.get(i).copied().unwrap_or(false),
            }
        })
        .collect()
}

/// Split the source into a code channel and a comment channel of equal
/// shape (newlines preserved, everything else blanked per channel).
fn split_channels(source: &str) -> (String, String) {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len());
    let mut state = State::Code;
    // Number of `#` fence characters of the current raw string.
    let mut raw_fence = 0u32;
    let mut i = 0usize;

    // Push `c` to the active channel, a blank to the other; newlines go
    // to both so line structure is identical.
    macro_rules! emit {
        (code $c:expr) => {{
            if $c == '\n' {
                code.push('\n');
                comment.push('\n');
            } else {
                code.push($c);
                comment.push(' ');
            }
        }};
        (comment $c:expr) => {{
            if $c == '\n' {
                code.push('\n');
                comment.push('\n');
            } else {
                code.push(' ');
                comment.push($c);
            }
        }};
        (blank $c:expr) => {{
            if $c == '\n' {
                code.push('\n');
                comment.push('\n');
            } else {
                code.push(' ');
                comment.push(' ');
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    emit!(comment c);
                    emit!(comment '/');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    emit!(comment c);
                    emit!(comment '*');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // Look back over `b` / `r` / `#` to see if this is a
                    // raw string opening; the prefix chars were already
                    // emitted as code, which is harmless.
                    let mut j = i;
                    let mut fence = 0u32;
                    while j > 0 && chars[j - 1] == '#' {
                        j -= 1;
                        fence += 1;
                    }
                    // A true raw-string prefix is `r` / `br` standing
                    // alone, not an identifier that happens to end in r.
                    let is_raw = j > 0 && chars[j - 1] == 'r' && {
                        let before = if j >= 2 { Some(chars[j - 2]) } else { None };
                        match before {
                            Some('b') => j < 3 || !is_ident_char(chars[j - 3]),
                            Some(c) => !is_ident_char(c),
                            None => true,
                        }
                    };
                    if is_raw {
                        raw_fence = fence;
                        state = State::RawStr(fence);
                    } else {
                        state = State::Str;
                    }
                    emit!(code c); // keep the quote in the code channel
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal iff it closes within two chars
                    // (`'x'`) or starts with an escape (`'\n'`);
                    // otherwise it is a lifetime, which stays code.
                    let c1 = chars.get(i + 1).copied();
                    let c2 = chars.get(i + 2).copied();
                    if c1 == Some('\\') || (c1.is_some() && c2 == Some('\'')) {
                        state = State::Char;
                        emit!(code c);
                        i += 1;
                        continue;
                    }
                }
                emit!(code c);
                i += 1;
            }
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    emit!(blank c);
                } else {
                    emit!(comment c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    emit!(comment c);
                    emit!(comment '*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    emit!(comment c);
                    emit!(comment '/');
                    i += 2;
                } else {
                    emit!(comment c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    emit!(blank c);
                    if let Some(n) = next {
                        emit!(blank n);
                    }
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    emit!(code c);
                    i += 1;
                } else {
                    emit!(blank c);
                    i += 1;
                }
            }
            State::RawStr(fence) => {
                if c == '"' {
                    // Closed only when followed by `fence` hashes.
                    let mut ok = true;
                    for k in 0..fence as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        emit!(code c);
                        for _ in 0..fence {
                            emit!(code '#');
                        }
                        i += 1 + fence as usize;
                        state = State::Code;
                        let _ = raw_fence;
                        continue;
                    }
                }
                emit!(blank c);
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    emit!(blank c);
                    if let Some(n) = next {
                        emit!(blank n);
                    }
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    emit!(code c);
                    i += 1;
                } else {
                    emit!(blank c);
                    i += 1;
                }
            }
        }
    }
    (code, comment)
}

/// Mark lines that belong to `#[cfg(test)]` / `#[test]` items (or to a
/// file that opens with `#![cfg(test)]`). Works on the blanked code
/// channel, so brace counting is exact.
fn mark_test_regions(code_lines: &[&str]) -> Vec<bool> {
    // A `#![cfg(test)]` inner attribute marks the whole file as test.
    if code_lines
        .iter()
        .take(20)
        .any(|l| l.contains("#![cfg(test)]"))
    {
        return vec![true; code_lines.len()];
    }
    let mut flags = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth at which the current test item opened, if inside one.
    let mut test_at: Option<i64> = None;
    // A test attribute was seen; waiting for the decorated item.
    let mut pending = false;
    for (i, line) in code_lines.iter().enumerate() {
        let t = line.trim();
        if test_at.is_none() && (t.contains("#[cfg(test)]") || t.starts_with("#[test]")) {
            pending = true;
        }
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if pending && test_at.is_none() {
            flags[i] = true; // the attribute / header lines themselves
            if opens > 0 {
                // The decorated item's body starts here.
                test_at = Some(depth);
                pending = false;
            } else if t.ends_with(';') && !t.starts_with("#[") {
                // `#[cfg(test)] mod x;` — body lives in another file.
                pending = false;
                flags[i] = true;
            }
        }
        if test_at.is_some() {
            flags[i] = true;
        }
        depth += opens - closes;
        if let Some(at) = test_at {
            if depth <= at {
                test_at = None;
            }
        }
    }
    flags
}

/// Find `needle` in `haystack` requiring that the match is not embedded
/// in a larger identifier: the char before must not be an identifier
/// char (when the needle starts with one), likewise after. Returns the
/// byte offset of the first such match.
pub fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = if needle.starts_with(is_ident_char) {
            !haystack[..at].ends_with(is_ident_char)
        } else {
            true
        };
        let after = at + needle.len();
        let after_ok = if needle.ends_with(is_ident_char) {
            !haystack[after..].starts_with(is_ident_char)
        } else {
            true
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find `name::` used as a *path root* — not embedded in an identifier
/// and not the tail of a longer path (`crate::name::…`), so a crate can
/// have a module sharing a crate's name without tripping the matcher.
pub fn find_path_root(haystack: &str, name: &str) -> Option<usize> {
    let needle = format!("{name}::");
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(&needle) {
        let at = from + pos;
        let before = haystack[..at].chars().next_back();
        let ok = match before {
            Some(c) => !is_ident_char(c) && c != ':',
            None => true,
        };
        if ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"let x = "HashMap ok"; // HashMap in comment
let m = HashMap::new();"#;
        let lines = scan(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.as_deref().unwrap().contains("HashMap"));
        assert!(lines[1].code.contains("HashMap"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"panic! inside\"#; panic!(\"x\")";
        let lines = scan(src);
        let code = &lines[0].code;
        // Only the real macro invocation survives in the code channel.
        assert_eq!(code.matches("panic!").count(), 1);
        assert!(code.contains("panic!("));
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let src = "let c = '\"'; let m = HashMap::new(); let lt: &'static str = \"x\";";
        let lines = scan(src);
        assert!(lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("'static"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ HashMap */ HashSet";
        let lines = scan(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("HashSet"));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn real2() {}\n";
        let lines = scan(src);
        assert!(!lines[0].is_test);
        assert!(lines[1].is_test && lines[2].is_test && lines[3].is_test && lines[4].is_test);
        assert!(!lines[5].is_test);
    }

    #[test]
    fn test_attribute_fn_is_marked() {
        let src = "#[test]\nfn t() {\n    a.unwrap();\n}\nfn real() {}\n";
        let lines = scan(src);
        assert!(lines[0].is_test && lines[1].is_test && lines[2].is_test && lines[3].is_test);
        assert!(!lines[4].is_test);
    }

    #[test]
    fn cfg_test_mod_decl_without_body() {
        let src = "#[cfg(test)]\nmod proptests;\nfn real() {}\n";
        let lines = scan(src);
        assert!(lines[0].is_test && lines[1].is_test);
        assert!(!lines[2].is_test);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "//! doc\n#![cfg(test)]\nfn helper() { x.unwrap(); }\n";
        let lines = scan(src);
        assert!(lines.iter().all(|l| l.is_test));
    }

    #[test]
    fn token_boundaries() {
        assert!(find_token("assert!(x)", "assert!").is_some());
        assert!(find_token("debug_assert!(x)", "assert!").is_none());
        assert!(find_token("my_assert!(x)", "assert!").is_none());
        assert!(find_token("x.unwrap()", ".unwrap()").is_some());
        assert!(find_token("nand_2k(64)", "nand").is_none());
        assert!(find_token("nand::Chip", "nand").is_some());
    }
}

//! The NAND chip model.
//!
//! A strict simulator: it refuses the two operations real NAND cannot do —
//! reprogramming a page without erasing its whole block, and programming
//! pages of a block out of order. Data structures that run on this model
//! are legal by construction on the tutorial's target hardware.

use std::sync::Arc;

use crate::cost::CostModel;
use crate::error::{FlashError, Result};
use crate::fault::{FaultPlan, ProgramFault};
use crate::geometry::{BlockId, FlashGeometry, PageAddr};
use crate::stats::IoStats;

/// Process-wide flash metrics, shared by every chip instance. Per-chip
/// accounting stays in [`IoStats`]; these aggregate handles feed the
/// `pds-obs` registry (`flash.*` namespace) so a JSONL export sees all
/// I/O of the process.
struct ObsCounters {
    reads: Arc<pds_obs::Counter>,
    programs: Arc<pds_obs::Counter>,
    erases: Arc<pds_obs::Counter>,
    non_seq_programs: Arc<pds_obs::Counter>,
}

impl ObsCounters {
    fn new() -> Self {
        ObsCounters {
            reads: pds_obs::counter("flash.page_reads"),
            programs: pds_obs::counter("flash.page_programs"),
            erases: pds_obs::counter("flash.block_erases"),
            non_seq_programs: pds_obs::counter("flash.non_seq_programs"),
        }
    }
}

/// Program state of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Erased,
    Programmed,
}

/// One simulated NAND chip.
pub struct NandFlash {
    geo: FlashGeometry,
    cost: CostModel,
    /// Per-block storage, allocated lazily on first program so that large
    /// chips (and large simulated populations of tokens) cost host memory
    /// only for the blocks actually written. `None` ⇒ the block is fully
    /// erased and reads as 0xFF.
    data: Vec<Option<Vec<u8>>>,
    state: Vec<PageState>,
    /// Next programmable page offset within each block (in-order rule).
    write_cursor: Vec<u32>,
    /// Erase cycles per block (endurance accounting).
    erase_counts: Vec<u64>,
    /// Last globally programmed page, to classify sequential vs random
    /// writes.
    last_programmed: Option<PageAddr>,
    stats: IoStats,
    obs: ObsCounters,
    /// Scripted hardware faults (power cuts, stuck blocks, bit flips).
    fault: Option<FaultPlan>,
    /// False after an injected power loss: every primitive fails with
    /// [`FlashError::PowerLoss`] until the chip is rebuilt via
    /// [`NandFlash::reopen`].
    powered: bool,
}

/// The power-loss-surviving content of a chip: programmed cells and
/// per-block wear. Everything else ([`IoStats`], write cursors, the
/// program-state bitmap) is volatile controller state that a reboot
/// rebuilds by scanning the cells.
#[derive(Clone)]
pub struct ChipSnapshot {
    geo: FlashGeometry,
    cost: CostModel,
    data: Vec<Option<Vec<u8>>>,
    erase_counts: Vec<u64>,
}

impl ChipSnapshot {
    /// Geometry of the snapshotted chip.
    pub fn geometry(&self) -> FlashGeometry {
        self.geo
    }

    /// True if every page of `bid` reads erased (all 0xFF).
    pub fn block_is_erased(&self, bid: BlockId) -> bool {
        match &self.data[bid.0 as usize] {
            None => true,
            Some(bytes) => bytes.iter().all(|&b| b == 0xFF),
        }
    }

    /// Bytes this snapshot actually holds: blocks are lazily allocated,
    /// so a mostly-erased chip snapshots to a small fraction of its
    /// capacity — the number a scheduler parking hibernated tokens
    /// budgets against.
    pub fn resident_bytes(&self) -> usize {
        self.data
            .iter()
            .map(|b| b.as_ref().map_or(0, Vec::len))
            .sum()
    }
}

impl NandFlash {
    /// A chip fully erased at power-on.
    pub fn new(geo: FlashGeometry, cost: CostModel) -> Self {
        NandFlash {
            geo,
            cost,
            data: vec![None; geo.num_blocks()],
            state: vec![PageState::Erased; geo.num_pages()],
            write_cursor: vec![0; geo.num_blocks()],
            erase_counts: vec![0; geo.num_blocks()],
            last_programmed: None,
            stats: IoStats::default(),
            obs: ObsCounters::new(),
            fault: None,
            powered: true,
        }
    }

    /// Install a scripted fault plan; replaces any previous plan.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// True unless an injected power loss took the chip offline.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Capture the persistent content (what survives a power cut).
    pub fn snapshot(&self) -> ChipSnapshot {
        ChipSnapshot {
            geo: self.geo,
            cost: self.cost,
            data: self.data.clone(),
            erase_counts: self.erase_counts.clone(),
        }
    }

    /// Reboot: rebuild a powered chip from persistent content alone.
    ///
    /// Controller state is re-derived the way real firmware does it — by
    /// scanning the cells: a page is *programmed* iff any of its bytes
    /// differs from the erased 0xFF fill, and each block's write cursor
    /// resumes after its last programmed page (in-order programming makes
    /// programmed pages a prefix of every block). A torn page with a
    /// written prefix therefore counts as programmed — it is unusable
    /// until its block is erased, exactly like real NAND. The one
    /// ambiguity is inherent to the medium: a page legitimately
    /// programmed with all-0xFF bytes is indistinguishable from an
    /// erased one (the log layer never writes such pages — record pages
    /// carry a non-0xFF header).
    pub fn reopen(snap: ChipSnapshot) -> Self {
        let geo = snap.geo;
        let mut chip = NandFlash::new(geo, snap.cost);
        chip.data = snap.data;
        chip.erase_counts = snap.erase_counts;
        for b in 0..geo.num_blocks() {
            let Some(block) = &chip.data[b] else { continue };
            let mut cursor = 0u32;
            for off in (0..geo.pages_per_block).rev() {
                let start = off * geo.page_size;
                if block[start..start + geo.page_size]
                    .iter()
                    .any(|&x| x != 0xFF)
                {
                    cursor = off as u32 + 1;
                    break;
                }
            }
            for off in 0..cursor as usize {
                chip.state[b * geo.pages_per_block + off] = PageState::Programmed;
            }
            chip.write_cursor[b] = cursor;
        }
        chip
    }

    fn check_powered(&self) -> Result<()> {
        if self.powered {
            Ok(())
        } else {
            Err(FlashError::PowerLoss)
        }
    }

    /// Chip geometry.
    pub fn geometry(&self) -> FlashGeometry {
        self.geo
    }

    /// The latency model this chip was built with.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Reset the I/O counters (content is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Simulated elapsed time of all I/O so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.stats.time_ns(&self.cost)
    }

    /// Erase cycles a block has endured.
    pub fn erase_count(&self, bid: BlockId) -> u64 {
        self.erase_counts[bid.0 as usize]
    }

    /// True if every page of the block is erased.
    pub fn block_is_erased(&self, bid: BlockId) -> bool {
        let first = self.geo.first_page_of(bid).0 as usize;
        (first..first + self.geo.pages_per_block).all(|p| self.state[p] == PageState::Erased)
    }

    fn check_addr(&self, addr: PageAddr) -> Result<()> {
        if self.geo.contains(addr) {
            Ok(())
        } else {
            Err(FlashError::BadAddress(addr))
        }
    }

    /// Read one full page into `buf`.
    pub fn read_page(&mut self, addr: PageAddr, buf: &mut [u8]) -> Result<()> {
        self.check_powered()?;
        self.check_addr(addr)?;
        if buf.len() != self.geo.page_size {
            return Err(FlashError::BadPageSize {
                given: buf.len(),
                expected: self.geo.page_size,
            });
        }
        let bid = self.geo.block_of(addr);
        match &self.data[bid.0 as usize] {
            None => buf.fill(0xFF),
            Some(block) => {
                let start = self.geo.offset_in_block(addr) * self.geo.page_size;
                buf.copy_from_slice(&block[start..start + self.geo.page_size]);
            }
        }
        if let Some(plan) = self.fault.as_mut() {
            plan.on_read(buf); // transient bit flip; stored cells intact
        }
        self.stats.page_reads += 1;
        self.obs.reads.inc();
        Ok(())
    }

    /// Program one full page.
    ///
    /// Enforced rules:
    /// * the page must currently be erased (no in-place update);
    /// * programming must follow the block's internal order (page `k` of a
    ///   block can only be programmed after pages `0..k`).
    pub fn program_page(&mut self, addr: PageAddr, data: &[u8]) -> Result<()> {
        self.check_powered()?;
        self.check_addr(addr)?;
        if data.len() != self.geo.page_size {
            return Err(FlashError::BadPageSize {
                given: data.len(),
                expected: self.geo.page_size,
            });
        }
        let idx = addr.0 as usize;
        if self.state[idx] == PageState::Programmed {
            return Err(FlashError::WriteToProgrammed(addr));
        }
        let bid = self.geo.block_of(addr);
        let expected_off = self.write_cursor[bid.0 as usize];
        let off = self.geo.offset_in_block(addr) as u32;
        if off != expected_off {
            return Err(FlashError::OutOfOrderProgram {
                requested: addr,
                expected: self.geo.page_in_block(bid, expected_off as usize),
            });
        }
        if let Some(plan) = self.fault.as_mut() {
            match plan.on_program(self.geo.page_size) {
                ProgramFault::None => {}
                ProgramFault::Torn { prefix } => {
                    // A random prefix reached the cells before power
                    // died; the page now holds garbage and is unusable
                    // until a block erase, like real NAND.
                    let block = self.data[bid.0 as usize].get_or_insert_with(|| {
                        vec![0xFF; self.geo.pages_per_block * self.geo.page_size]
                    });
                    let start = self.geo.offset_in_block(addr) * self.geo.page_size;
                    block[start..start + prefix].copy_from_slice(&data[..prefix]);
                    self.state[idx] = PageState::Programmed;
                    self.write_cursor[bid.0 as usize] = off + 1;
                    self.powered = false;
                    return Err(FlashError::PowerLoss);
                }
                ProgramFault::Dropped => {
                    // Power died before any cell was touched.
                    self.powered = false;
                    return Err(FlashError::PowerLoss);
                }
            }
        }
        let block = self.data[bid.0 as usize]
            .get_or_insert_with(|| vec![0xFF; self.geo.pages_per_block * self.geo.page_size]);
        let start = self.geo.offset_in_block(addr) * self.geo.page_size;
        block[start..start + self.geo.page_size].copy_from_slice(data);
        self.state[idx] = PageState::Programmed;
        self.write_cursor[bid.0 as usize] = off + 1;
        // Classify the write: sequential iff it immediately follows the
        // last program on the whole chip.
        match self.last_programmed {
            Some(prev) if prev.0 + 1 == addr.0 => {}
            None => {}
            _ => {
                self.stats.non_sequential_programs += 1;
                self.obs.non_seq_programs.inc();
            }
        }
        self.last_programmed = Some(addr);
        self.stats.page_programs += 1;
        self.obs.programs.inc();
        Ok(())
    }

    /// Erase a whole block, returning every page to the erased state.
    pub fn erase_block(&mut self, bid: BlockId) -> Result<()> {
        self.check_powered()?;
        if bid.0 as usize >= self.geo.num_blocks() {
            return Err(FlashError::BadBlock(bid));
        }
        if let Some(plan) = self.fault.as_mut() {
            if plan.on_erase(bid.0) {
                return Err(FlashError::StuckBlock(bid));
            }
        }
        let first = self.geo.first_page_of(bid).0 as usize;
        for p in first..first + self.geo.pages_per_block {
            self.state[p] = PageState::Erased;
        }
        self.data[bid.0 as usize] = None; // storage released, reads as 0xFF
        self.write_cursor[bid.0 as usize] = 0;
        self.erase_counts[bid.0 as usize] += 1;
        self.stats.block_erases += 1;
        self.obs.erases.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> NandFlash {
        NandFlash::new(FlashGeometry::new(64, 4, 4), CostModel::unit())
    }

    #[test]
    fn read_back_what_was_programmed() {
        let mut c = chip();
        let page = vec![0xAB; 64];
        c.program_page(PageAddr(0), &page).unwrap();
        let mut buf = vec![0; 64];
        c.read_page(PageAddr(0), &mut buf).unwrap();
        assert_eq!(buf, page);
    }

    #[test]
    fn erased_pages_read_all_ones() {
        let mut c = chip();
        let mut buf = vec![0; 64];
        c.read_page(PageAddr(7), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn in_place_update_is_rejected() {
        let mut c = chip();
        c.program_page(PageAddr(0), &[1; 64]).unwrap();
        assert_eq!(
            c.program_page(PageAddr(0), &[2; 64]),
            Err(FlashError::WriteToProgrammed(PageAddr(0)))
        );
    }

    #[test]
    fn out_of_order_program_is_rejected() {
        let mut c = chip();
        let err = c.program_page(PageAddr(2), &[1; 64]).unwrap_err();
        assert!(matches!(err, FlashError::OutOfOrderProgram { .. }));
        // But different blocks have independent cursors.
        c.program_page(PageAddr(4), &[1; 64]).unwrap();
    }

    #[test]
    fn erase_resets_block_cursor_and_content() {
        let mut c = chip();
        for p in 0..4 {
            c.program_page(PageAddr(p), &[9; 64]).unwrap();
        }
        c.erase_block(BlockId(0)).unwrap();
        assert_eq!(c.erase_count(BlockId(0)), 1);
        assert!(c.block_is_erased(BlockId(0)));
        c.program_page(PageAddr(0), &[1; 64]).unwrap();
    }

    #[test]
    fn stats_count_each_primitive() {
        let mut c = chip();
        c.program_page(PageAddr(0), &[1; 64]).unwrap();
        let mut buf = vec![0; 64];
        c.read_page(PageAddr(0), &mut buf).unwrap();
        c.read_page(PageAddr(0), &mut buf).unwrap();
        c.erase_block(BlockId(0)).unwrap();
        let s = c.stats();
        assert_eq!((s.page_reads, s.page_programs, s.block_erases), (2, 1, 1));
        assert_eq!(c.elapsed_ns(), 4);
    }

    #[test]
    fn random_writes_are_classified() {
        let mut c = chip();
        c.program_page(PageAddr(0), &[1; 64]).unwrap();
        c.program_page(PageAddr(1), &[1; 64]).unwrap(); // sequential
        c.program_page(PageAddr(8), &[1; 64]).unwrap(); // jump -> random
        assert_eq!(c.stats().non_sequential_programs, 1);
    }

    #[test]
    fn power_loss_takes_chip_offline_until_reopen() {
        let mut c = chip();
        c.inject_faults(FaultPlan::new(42).power_loss_after(2));
        c.program_page(PageAddr(0), &[1; 64]).unwrap();
        c.program_page(PageAddr(1), &[2; 64]).unwrap();
        assert_eq!(
            c.program_page(PageAddr(2), &[3; 64]),
            Err(FlashError::PowerLoss)
        );
        assert!(!c.is_powered());
        let mut buf = vec![0; 64];
        assert_eq!(
            c.read_page(PageAddr(0), &mut buf),
            Err(FlashError::PowerLoss)
        );
        assert_eq!(c.erase_block(BlockId(0)), Err(FlashError::PowerLoss));
        // Reboot: pages programmed before the cut survive intact.
        let mut c = NandFlash::reopen(c.snapshot());
        assert!(c.is_powered());
        c.read_page(PageAddr(0), &mut buf).unwrap();
        assert_eq!(buf, vec![1; 64]);
        c.read_page(PageAddr(1), &mut buf).unwrap();
        assert_eq!(buf, vec![2; 64]);
    }

    #[test]
    fn reopen_rederives_write_cursors_from_cells() {
        let mut c = chip();
        c.program_page(PageAddr(0), &[7; 64]).unwrap();
        c.program_page(PageAddr(1), &[8; 64]).unwrap();
        let mut r = NandFlash::reopen(c.snapshot());
        // Next program must be page 2 — the cursor was rebuilt by scan.
        assert!(matches!(
            r.program_page(PageAddr(1), &[9; 64]),
            Err(FlashError::WriteToProgrammed(_))
        ));
        r.program_page(PageAddr(2), &[9; 64]).unwrap();
    }

    #[test]
    fn torn_page_reads_as_garbage_after_reboot() {
        // Find a seed whose cut tears (writes a prefix) rather than drops.
        for seed in 0..16u64 {
            let mut c = chip();
            c.inject_faults(FaultPlan::new(seed).power_loss_after(0));
            assert_eq!(
                c.program_page(PageAddr(0), &[0xAB; 64]),
                Err(FlashError::PowerLoss)
            );
            let mut r = NandFlash::reopen(c.snapshot());
            let mut buf = vec![0; 64];
            r.read_page(PageAddr(0), &mut buf).unwrap();
            if buf.iter().any(|&b| b != 0xFF) {
                // Torn: a strict prefix of the data, 0xFF tail; the page
                // counts as programmed, so reprogramming it is illegal.
                assert!(buf.iter().all(|&b| b == 0xAB || b == 0xFF));
                assert!(matches!(
                    r.program_page(PageAddr(0), &[1; 64]),
                    Err(FlashError::WriteToProgrammed(_))
                ));
                return;
            }
        }
        panic!("no seed in 0..16 produced a torn page");
    }

    #[test]
    fn stuck_block_fails_erase_but_leaves_content() {
        let mut c = chip();
        c.inject_faults(FaultPlan::new(5).stuck_block(0));
        c.program_page(PageAddr(0), &[3; 64]).unwrap();
        assert_eq!(
            c.erase_block(BlockId(0)),
            Err(FlashError::StuckBlock(BlockId(0)))
        );
        let mut buf = vec![0; 64];
        c.read_page(PageAddr(0), &mut buf).unwrap();
        assert_eq!(buf, vec![3; 64]);
        c.erase_block(BlockId(1)).unwrap();
    }

    #[test]
    fn read_flips_are_transient() {
        let mut c = chip();
        c.program_page(PageAddr(0), &[0u8; 64]).unwrap();
        c.inject_faults(FaultPlan::new(8).read_flips(1.0));
        let mut buf = vec![0; 64];
        c.read_page(PageAddr(0), &mut buf).unwrap();
        let flipped: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped per faulty read");
        // The cells themselves are clean: a fault-free chip view of the
        // same snapshot reads zeros.
        let mut clean = NandFlash::reopen(c.snapshot());
        clean.read_page(PageAddr(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn bad_addresses_are_rejected() {
        let mut c = chip();
        let mut buf = vec![0; 64];
        assert!(c.read_page(PageAddr(16), &mut buf).is_err());
        assert!(c.erase_block(BlockId(4)).is_err());
        assert!(matches!(
            c.read_page(PageAddr(0), &mut [0u8; 3]),
            Err(FlashError::BadPageSize { .. })
        ));
    }
}

//! Property tests of the NAND legality rules and log invariants under
//! arbitrary operation schedules.
//!
//! Driven by the in-tree deterministic RNG (`pds_obs::rng`) so the suite
//! runs hermetically offline; each case derives from a fixed seed and is
//! bit-reproducible.

#![cfg(test)]

use pds_obs::rng::{Rng, SeedableRng, StdRng};

use crate::{FaultPlan, Flash, FlashError, FlashGeometry, LogWriter};

/// Arbitrary interleavings of appends/flushes/new-logs never violate the
/// chip rules (the simulator would reject them) and always read back
/// exactly what was written, in order, per log.
#[derive(Debug, Clone)]
enum Op {
    Append { log: usize, len: usize },
    Flush { log: usize },
    NewLog,
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Append {
            log: rng.gen_range(0usize..4),
            len: rng.gen_range(1usize..200),
        },
        1 => Op::Flush {
            log: rng.gen_range(0usize..4),
        },
        _ => Op::NewLog,
    }
}

#[test]
fn interleaved_logs_never_break_chip_rules() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xF1A5_4000 + case);
        let ops: Vec<Op> = (0..rng.gen_range(1usize..200))
            .map(|_| random_op(&mut rng))
            .collect();
        let flash = Flash::new(FlashGeometry::new(512, 8, 256));
        let mut logs = vec![flash.new_log()];
        let mut written: Vec<Vec<Vec<u8>>> = vec![Vec::new()];
        let mut counter = 0u32;
        for op in ops {
            match op {
                Op::Append { log, len } => {
                    let i = log % logs.len();
                    counter += 1;
                    let rec: Vec<u8> = counter
                        .to_le_bytes()
                        .iter()
                        .cycle()
                        .take(len)
                        .copied()
                        .collect();
                    logs[i].append(&rec).unwrap();
                    written[i].push(rec);
                }
                Op::Flush { log } => {
                    let i = log % logs.len();
                    logs[i].flush().unwrap();
                }
                Op::NewLog => {
                    if logs.len() < 4 {
                        logs.push(flash.new_log());
                        written.push(Vec::new());
                    }
                }
            }
        }
        // The chip never saw an illegal write (the simulator would have
        // panicked the unwraps above), and every log reads back intact.
        for (log, expected) in logs.into_iter().zip(written) {
            let sealed = log.seal().unwrap();
            let mut got = Vec::new();
            for rec in sealed.reader() {
                got.push(rec.unwrap());
            }
            assert_eq!(got, expected, "case {case}");
        }
        // Note: the chip-global `non_sequential_programs` counter may be
        // non-zero here — interleaved logs alternate between *blocks*,
        // which is legal NAND; the in-order-within-a-block rule is the
        // hard one, and it is enforced (any violation would have failed
        // the unwraps above with OutOfOrderProgram).
    }
}

/// Number of seeds the crash sweep runs. CI pins a larger fixed set via
/// `PDS_CRASH_SEEDS` so every push exercises the fault paths broadly.
fn crash_seed_count() -> u64 {
    std::env::var("PDS_CRASH_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// The crash-recovery contract, swept over seeds: append records, cut
/// power at a seed-chosen program, reboot, recover — every record
/// durably programmed before the cut is back, nothing fabricated, and
/// what is recovered is an exact prefix of what was appended.
#[test]
fn seeded_crash_recovery_sweep() {
    for case in 0..crash_seed_count() {
        let seed = 0xC4A5_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let flash = Flash::new(FlashGeometry::new(256, 8, 64));
        let cut_after = rng.gen_range(0u64..40);
        flash.inject_faults(FaultPlan::new(seed).power_loss_after(cut_after));

        // Pre-generate the record stream so recovery can be compared
        // byte-for-byte.
        let records: Vec<Vec<u8>> = (0..2000u32)
            .map(|i| {
                let len = rng.gen_range(1usize..60);
                i.to_le_bytes().iter().copied().cycle().take(len).collect()
            })
            .collect();

        let mut w = flash.new_log();
        let mut appended = 0usize;
        let mut durable = 0u64;
        let cut = loop {
            if appended == records.len() {
                break None;
            }
            durable = w.num_records() - w.buffered_records().len() as u64;
            match w.append(&records[appended]) {
                Ok(_) => appended += 1,
                Err(FlashError::PowerLoss) => break Some(()),
                Err(e) => panic!("case {case}: unexpected error {e}"),
            }
        };
        if cut.is_none() {
            continue; // cut landed past the workload; nothing to recover
        }

        let blocks = w.blocks().to_vec();
        let rebooted = flash.reboot();
        let (rec, report) = LogWriter::recover(&rebooted, &blocks).unwrap();
        let n = rec.num_records() as usize;
        assert!(
            n as u64 >= durable,
            "case {case}: lost a durable record ({n} < {durable})"
        );
        assert!(
            n <= appended,
            "case {case}: fabricated records ({n} > {appended})"
        );
        assert_eq!(report.records_recovered, n as u64, "case {case}");
        assert!(report.torn_pages_discarded <= 1, "case {case}");

        // Exact prefix, byte for byte — and the recovered writer keeps
        // working: append the lost suffix again and read everything back.
        let mut rec = rec;
        for r in &records[n..] {
            rec.append(r).unwrap();
        }
        let log = rec.seal().unwrap();
        let got: Vec<Vec<u8>> = log.reader().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), records.len(), "case {case}");
        assert_eq!(got[..n], records[..n], "case {case}: prefix mismatch");
        assert_eq!(got[n..], records[n..], "case {case}: resume mismatch");
    }
}

/// Stuck blocks must never brick the pool: the allocator retires them
/// and keeps handing out healthy blocks.
#[test]
fn stuck_blocks_are_retired_not_fatal() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xC4A5_9000 + case);
        let flash = Flash::new(FlashGeometry::new(256, 4, 16));
        let stuck = rng.gen_range(0u32..16);
        flash.inject_faults(FaultPlan::new(case).stuck_block(stuck));
        // Dirty every block, free them all, then reallocate: the stuck
        // one fails its lazy erase and is retired silently.
        let geo = flash.geometry();
        let blocks: Vec<_> = (0..16).map(|_| flash.alloc_block().unwrap()).collect();
        for b in &blocks {
            flash
                .program_page(geo.first_page_of(*b), &vec![1u8; geo.page_size])
                .unwrap();
        }
        for b in &blocks {
            flash.free_block(*b);
        }
        let mut got = Vec::new();
        while let Ok(b) = flash.alloc_block() {
            got.push(b);
        }
        assert_eq!(got.len(), 15, "case {case}: one block retired");
        assert!(!got.iter().any(|b| b.0 == stuck), "case {case}");
    }
}

#[test]
fn reclaimed_blocks_are_fully_reusable() {
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xF1A5_5000 + case);
        let rounds = rng.gen_range(1usize..6);
        let recs = rng.gen_range(1usize..300);
        let flash = Flash::new(FlashGeometry::new(512, 8, 32));
        let total = flash.free_blocks();
        for r in 0..rounds {
            let mut w = flash.new_log();
            for i in 0..recs {
                w.append(&(i as u32 + r as u32).to_le_bytes()).unwrap();
            }
            let log = w.seal().unwrap();
            assert_eq!(log.num_records(), recs as u64);
            log.reclaim();
            assert_eq!(flash.free_blocks(), total, "case {case} round {r} leaked");
        }
    }
}

//! Property tests of the NAND legality rules and log invariants under
//! arbitrary operation schedules.

#![cfg(test)]

use proptest::prelude::*;

use crate::{Flash, FlashGeometry};

/// Arbitrary interleavings of appends/flushes/new-logs never violate the
/// chip rules (the simulator would reject them) and always read back
/// exactly what was written, in order, per log.
#[derive(Debug, Clone)]
enum Op {
    Append { log: usize, len: usize },
    Flush { log: usize },
    NewLog,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, 1usize..200).prop_map(|(log, len)| Op::Append { log, len }),
        (0usize..4).prop_map(|log| Op::Flush { log }),
        Just(Op::NewLog),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_logs_never_break_chip_rules(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let flash = Flash::new(FlashGeometry::new(512, 8, 256));
        let mut logs = vec![flash.new_log()];
        let mut written: Vec<Vec<Vec<u8>>> = vec![Vec::new()];
        let mut counter = 0u32;
        for op in ops {
            match op {
                Op::Append { log, len } => {
                    let i = log % logs.len();
                    counter += 1;
                    let rec: Vec<u8> = counter
                        .to_le_bytes()
                        .iter()
                        .cycle()
                        .take(len)
                        .copied()
                        .collect();
                    logs[i].append(&rec).unwrap();
                    written[i].push(rec);
                }
                Op::Flush { log } => {
                    let i = log % logs.len();
                    logs[i].flush().unwrap();
                }
                Op::NewLog => {
                    if logs.len() < 4 {
                        logs.push(flash.new_log());
                        written.push(Vec::new());
                    }
                }
            }
        }
        // The chip never saw an illegal write (the simulator would have
        // panicked the unwraps above), and every log reads back intact.
        for (log, expected) in logs.into_iter().zip(written) {
            let sealed = log.seal().unwrap();
            let mut got = Vec::new();
            for rec in sealed.reader() {
                got.push(rec.unwrap());
            }
            prop_assert_eq!(got, expected);
        }
        // Note: the chip-global `non_sequential_programs` counter may be
        // non-zero here — interleaved logs alternate between *blocks*,
        // which is legal NAND; the in-order-within-a-block rule is the
        // hard one, and it is enforced (any violation would have failed
        // the unwraps above with OutOfOrderProgram).
    }

    #[test]
    fn reclaimed_blocks_are_fully_reusable(rounds in 1usize..6, recs in 1usize..300) {
        let flash = Flash::new(FlashGeometry::new(512, 8, 32));
        let total = flash.free_blocks();
        for r in 0..rounds {
            let mut w = flash.new_log();
            for i in 0..recs {
                w.append(&(i as u32 + r as u32).to_le_bytes()).unwrap();
            }
            let log = w.seal().unwrap();
            prop_assert_eq!(log.num_records(), recs as u64);
            log.reclaim();
            prop_assert_eq!(flash.free_blocks(), total, "round {} leaked", r);
        }
    }
}

//! Property tests of the NAND legality rules and log invariants under
//! arbitrary operation schedules.
//!
//! Driven by the in-tree deterministic RNG (`pds_obs::rng`) so the suite
//! runs hermetically offline; each case derives from a fixed seed and is
//! bit-reproducible.

#![cfg(test)]

use pds_obs::rng::{Rng, SeedableRng, StdRng};

use crate::{Flash, FlashGeometry};

/// Arbitrary interleavings of appends/flushes/new-logs never violate the
/// chip rules (the simulator would reject them) and always read back
/// exactly what was written, in order, per log.
#[derive(Debug, Clone)]
enum Op {
    Append { log: usize, len: usize },
    Flush { log: usize },
    NewLog,
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Append {
            log: rng.gen_range(0usize..4),
            len: rng.gen_range(1usize..200),
        },
        1 => Op::Flush {
            log: rng.gen_range(0usize..4),
        },
        _ => Op::NewLog,
    }
}

#[test]
fn interleaved_logs_never_break_chip_rules() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xF1A5_4000 + case);
        let ops: Vec<Op> = (0..rng.gen_range(1usize..200))
            .map(|_| random_op(&mut rng))
            .collect();
        let flash = Flash::new(FlashGeometry::new(512, 8, 256));
        let mut logs = vec![flash.new_log()];
        let mut written: Vec<Vec<Vec<u8>>> = vec![Vec::new()];
        let mut counter = 0u32;
        for op in ops {
            match op {
                Op::Append { log, len } => {
                    let i = log % logs.len();
                    counter += 1;
                    let rec: Vec<u8> = counter
                        .to_le_bytes()
                        .iter()
                        .cycle()
                        .take(len)
                        .copied()
                        .collect();
                    logs[i].append(&rec).unwrap();
                    written[i].push(rec);
                }
                Op::Flush { log } => {
                    let i = log % logs.len();
                    logs[i].flush().unwrap();
                }
                Op::NewLog => {
                    if logs.len() < 4 {
                        logs.push(flash.new_log());
                        written.push(Vec::new());
                    }
                }
            }
        }
        // The chip never saw an illegal write (the simulator would have
        // panicked the unwraps above), and every log reads back intact.
        for (log, expected) in logs.into_iter().zip(written) {
            let sealed = log.seal().unwrap();
            let mut got = Vec::new();
            for rec in sealed.reader() {
                got.push(rec.unwrap());
            }
            assert_eq!(got, expected, "case {case}");
        }
        // Note: the chip-global `non_sequential_programs` counter may be
        // non-zero here — interleaved logs alternate between *blocks*,
        // which is legal NAND; the in-order-within-a-block rule is the
        // hard one, and it is enforced (any violation would have failed
        // the unwraps above with OutOfOrderProgram).
    }
}

#[test]
fn reclaimed_blocks_are_fully_reusable() {
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xF1A5_5000 + case);
        let rounds = rng.gen_range(1usize..6);
        let recs = rng.gen_range(1usize..300);
        let flash = Flash::new(FlashGeometry::new(512, 8, 32));
        let total = flash.free_blocks();
        for r in 0..rounds {
            let mut w = flash.new_log();
            for i in 0..recs {
                w.append(&(i as u32 + r as u32).to_le_bytes()).unwrap();
            }
            let log = w.seal().unwrap();
            assert_eq!(log.num_records(), recs as u64);
            log.reclaim();
            assert_eq!(flash.free_blocks(), total, "case {case} round {r} leaked");
        }
    }
}

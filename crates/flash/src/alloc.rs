//! Block-grain allocation.
//!
//! The tutorial's framework mandates: "Allocation & de-allocation are made
//! on large grains (Flash block basis) … partial garbage collection never
//! occurs (avoids costly GC)". The allocator is therefore a plain free list
//! of erase blocks; a log structure allocates whole blocks as it grows and
//! returns *all* of them when it is dropped or superseded by a
//! reorganization.

use crate::error::{FlashError, Result};
use crate::geometry::BlockId;
use std::collections::VecDeque;

/// Free list of erase blocks.
pub struct BlockAllocator {
    free: VecDeque<BlockId>,
    total: usize,
}

impl BlockAllocator {
    /// All `total` blocks start free, handed out in address order first
    /// time around, then in FIFO reclamation order (a crude but effective
    /// form of wear leveling).
    pub fn new(total: usize) -> Self {
        BlockAllocator {
            free: (0..total as u32).map(BlockId).collect(),
            total,
        }
    }

    /// Number of blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Number of blocks currently allocated.
    pub fn used_blocks(&self) -> usize {
        self.total - self.free.len()
    }

    /// An allocator over `total` blocks of which only `free` are
    /// available — the reboot constructor: after a power loss the free
    /// list is re-derived by scanning the chip (erased blocks are free,
    /// programmed ones belong to whichever structure recovers them).
    pub fn with_free(total: usize, free: Vec<BlockId>) -> Self {
        debug_assert!(free.iter().all(|b| (b.0 as usize) < total));
        BlockAllocator {
            free: free.into(),
            total,
        }
    }

    /// Take one block from the pool.
    pub fn alloc(&mut self) -> Result<BlockId> {
        self.free.pop_front().ok_or(FlashError::OutOfBlocks)
    }

    /// Return a block to the pool (content becomes garbage; the chip
    /// erases it lazily on reuse).
    pub fn free(&mut self, bid: BlockId) {
        debug_assert!(!self.free.contains(&bid), "double free of block {}", bid.0);
        self.free.push_back(bid);
    }

    /// Take a *specific* block out of the free list. Returns false if it
    /// was not free. Recovery uses this to re-adopt a log's tail block
    /// that the reboot scan classified as erased (its next pages were
    /// never programmed) and therefore free.
    pub fn claim(&mut self, bid: BlockId) -> bool {
        match self.free.iter().position(|b| *b == bid) {
            Some(i) => {
                self.free.remove(i);
                true
            }
            None => false,
        }
    }

    /// Permanently remove a block from circulation (stuck block whose
    /// erase fails). The block must currently be allocated — the caller
    /// just failed to erase it.
    pub fn retire(&mut self) {
        debug_assert!(self.total > 0);
        self.total -= 1;
    }

    /// Number of blocks still in circulation (total minus retired).
    pub fn capacity(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_reuse_spreads_wear() {
        let mut a = BlockAllocator::new(3);
        let b0 = a.alloc().unwrap();
        let b1 = a.alloc().unwrap();
        a.free(b0);
        let b2 = a.alloc().unwrap();
        assert_eq!(b2, BlockId(2), "fresh blocks before recycled ones");
        let b3 = a.alloc().unwrap();
        assert_eq!(b3, b0, "recycled block comes back FIFO");
        assert_eq!(a.free_blocks(), 0);
        assert_eq!(a.used_blocks(), 3);
        a.free(b1);
        assert_eq!(a.free_blocks(), 1);
    }

    #[test]
    fn exhaustion() {
        let mut a = BlockAllocator::new(1);
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(FlashError::OutOfBlocks));
    }
}

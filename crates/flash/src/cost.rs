//! Latency model of the NAND chip.
//!
//! The relative costs are what drive the tutorial's design rules: a block
//! erase is ~10× a page program, which itself is ~10× a page read. The
//! default values below are typical SLC NAND datasheet figures (e.g.
//! Micron MT29F family), the class of chip found in the secure tokens of
//! the tutorial (smart-card MCU + raw NAND die).

/// Latency (in nanoseconds) of each primitive chip operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Page read to the MCU buffer.
    pub read_page_ns: u64,
    /// Page program from the MCU buffer.
    pub program_page_ns: u64,
    /// Whole-block erase.
    pub erase_block_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_page_ns: 25_000,      // 25 µs
            program_page_ns: 200_000,  // 200 µs
            erase_block_ns: 1_500_000, // 1.5 ms
        }
    }
}

impl CostModel {
    /// A model where every operation costs one unit — useful when an
    /// experiment reports raw I/O counts rather than time.
    pub fn unit() -> Self {
        CostModel {
            read_page_ns: 1,
            program_page_ns: 1,
            erase_block_ns: 1,
        }
    }

    /// Simulated time of a mixed workload.
    pub fn time_ns(&self, reads: u64, programs: u64, erases: u64) -> u64 {
        reads * self.read_page_ns + programs * self.program_page_ns + erases * self.erase_block_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_matches_nand_reality() {
        let c = CostModel::default();
        assert!(c.read_page_ns < c.program_page_ns);
        assert!(c.program_page_ns < c.erase_block_ns);
    }

    #[test]
    fn time_is_linear() {
        let c = CostModel::unit();
        assert_eq!(c.time_ns(3, 4, 5), 12);
        let d = CostModel::default();
        assert_eq!(d.time_ns(1, 0, 0), d.read_page_ns);
        assert_eq!(d.time_ns(0, 1, 1), d.program_page_ns + d.erase_block_ns);
    }
}

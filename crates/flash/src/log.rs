//! The *Log* abstraction — step 2 of the tutorial's framework.
//!
//! "Organize [index structures] into sequential structures (Logs). Log
//! structures satisfy Flash constraints: pages are written sequentially
//! (and never updated nor moved), random writes are avoided by
//! construction; allocation & de-allocation are made on large grains."
//!
//! A [`LogWriter`] appends records (or raw pages) strictly sequentially,
//! allocating whole blocks as it grows. Already-programmed pages of an open
//! log can be read at any time; sealing yields an immutable [`Log`].
//! Reclaiming a log returns all of its blocks at once — no partial GC.
//!
//! ## Page layout of record pages
//!
//! ```text
//! [u16 record_count] [u32 crc32] ([u16 len] [len bytes])*  ... padding (0xFF)
//! ```
//!
//! Records never span pages, so a single one-page RAM buffer suffices to
//! decode any record — the property every pipeline operator of Part II
//! relies on.
//!
//! The CRC covers the count and the whole payload region and is what makes
//! torn writes *detectable*: a power cut mid-program leaves a prefix of the
//! page image with erased 0xFF cells after it, which the count/length
//! framing alone cannot distinguish from legitimate data (a tear inside a
//! record body yields a structurally valid page with silently corrupt
//! bytes). The CRC was computed over the full image, so any tear fails
//! verification and surfaces as [`FlashError::CorruptPage`].

use crate::error::{FlashError, Result};
use crate::geometry::{BlockId, PageAddr};
use crate::Flash;

/// Log-relative address of a record: page index within the log + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordAddr {
    /// Index of the page within the log (0-based).
    pub page: u32,
    /// Slot of the record within the page (0-based).
    pub slot: u16,
}

/// Header bytes at the start of a record page: u16 record count + u32 CRC
/// of count and payload (the torn-write detector).
const PAGE_HEADER: usize = 6;
/// Header bytes per record (length prefix).
const REC_HEADER: usize = 2;

/// The page CRC: CRC-32 (IEEE, reflected) over the count bytes and the
/// payload region — the CRC field itself is excluded. Bitwise, no table;
/// page-sized inputs on a simulated chip don't warrant one.
fn page_crc(buf: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in buf[..2].iter().chain(&buf[PAGE_HEADER..]) {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An appendable, strictly sequential log.
pub struct LogWriter {
    flash: Flash,
    blocks: Vec<BlockId>,
    /// Number of pages already programmed.
    pages: u32,
    /// RAM page buffer being filled (record layout).
    buf: Vec<u8>,
    /// Records currently in `buf`.
    buf_records: u16,
    /// Write offset within `buf`.
    buf_off: usize,
    /// Total records appended (programmed + buffered).
    records: u64,
}

impl LogWriter {
    /// Start an empty log; no block is allocated until the first page is
    /// programmed.
    pub fn new(flash: Flash) -> Self {
        let page_size = flash.geometry().page_size;
        LogWriter {
            flash,
            blocks: Vec::new(),
            pages: 0,
            buf: vec![0xFF; page_size],
            buf_records: 0,
            buf_off: PAGE_HEADER,
            records: 0,
        }
    }

    /// The flash device this log lives on.
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// The erase blocks the log occupies, in log order. This is the
    /// log's durable identity: persist it (a real token keeps it in a
    /// superblock/catalog log) and hand it to [`LogWriter::recover`]
    /// after a crash.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Largest record payload a page can hold.
    pub fn max_record_len(&self) -> usize {
        self.flash.geometry().page_size - PAGE_HEADER - REC_HEADER
    }

    /// Pages programmed so far (excludes the RAM buffer).
    pub fn num_pages(&self) -> u32 {
        self.pages
    }

    /// Total records appended, including those still buffered in RAM.
    pub fn num_records(&self) -> u64 {
        self.records
    }

    /// Records currently buffered in RAM (not yet on flash).
    #[allow(clippy::expect_used)]
    pub fn buffered_records(&self) -> Vec<Vec<u8>> {
        // pds-lint: allow(panic.expect) — decodes the writer's own RAM buffer, encoded solely by `append`; no flash-sourced bytes flow here.
        decode_records(&self.buf, self.buf_records).expect("own buffer is well-formed")
    }

    /// Physical address of the `i`-th page of the log.
    pub fn page_addr(&self, i: u32) -> Result<PageAddr> {
        let geo = self.flash.geometry();
        let per = geo.pages_per_block as u32;
        let bi = (i / per) as usize;
        if i >= self.pages || bi >= self.blocks.len() {
            return Err(FlashError::BadRecordAddr);
        }
        Ok(geo.page_in_block(self.blocks[bi], (i % per) as usize))
    }

    /// Append one record; flushes the RAM buffer to flash when full.
    /// Returns the record's log-relative address (its page index is the
    /// page it *will* occupy once flushed).
    pub fn append(&mut self, rec: &[u8]) -> Result<RecordAddr> {
        let max = self.max_record_len();
        if rec.len() > max {
            return Err(FlashError::RecordTooLarge {
                len: rec.len(),
                max,
            });
        }
        let needed = REC_HEADER + rec.len();
        if self.buf_off + needed > self.buf.len() {
            self.flush_page()?;
        }
        let addr = RecordAddr {
            page: self.pages,
            slot: self.buf_records,
        };
        let len = rec.len() as u16;
        self.buf[self.buf_off..self.buf_off + 2].copy_from_slice(&len.to_le_bytes());
        self.buf[self.buf_off + 2..self.buf_off + 2 + rec.len()].copy_from_slice(rec);
        self.buf_off += needed;
        self.buf_records += 1;
        self.buf[0..2].copy_from_slice(&self.buf_records.to_le_bytes());
        self.records += 1;
        Ok(addr)
    }

    /// Force the current partial page to flash (wasting its free space —
    /// the price of NAND's no-append-to-programmed-page rule). No-op when
    /// the buffer is empty.
    pub fn flush(&mut self) -> Result<()> {
        if self.buf_records > 0 {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Program a raw, caller-laid-out page and return its page index.
    /// Flushes any partial record page first so ordering is preserved.
    pub fn append_raw_page(&mut self, page: &[u8]) -> Result<u32> {
        self.flush()?;
        let geo = self.flash.geometry();
        if page.len() != geo.page_size {
            return Err(FlashError::BadPageSize {
                given: page.len(),
                expected: geo.page_size,
            });
        }
        let addr = self.next_page_slot()?;
        self.flash.program_page(addr, page)?;
        self.pages += 1;
        Ok(self.pages - 1)
    }

    fn next_page_slot(&mut self) -> Result<PageAddr> {
        let geo = self.flash.geometry();
        let per = geo.pages_per_block as u32;
        let bi = (self.pages / per) as usize;
        if bi == self.blocks.len() {
            self.blocks.push(self.flash.alloc_block()?);
        }
        Ok(geo.page_in_block(self.blocks[bi], (self.pages % per) as usize))
    }

    fn flush_page(&mut self) -> Result<()> {
        let addr = self.next_page_slot()?;
        let crc = page_crc(&self.buf);
        self.buf[2..PAGE_HEADER].copy_from_slice(&crc.to_le_bytes());
        self.flash.program_page(addr, &self.buf)?;
        self.pages += 1;
        self.buf.fill(0xFF);
        self.buf[0..2].copy_from_slice(&0u16.to_le_bytes());
        self.buf_records = 0;
        self.buf_off = PAGE_HEADER;
        Ok(())
    }

    /// Read all records of programmed page `i` (one page I/O).
    pub fn read_page_records(&self, i: u32) -> Result<Vec<Vec<u8>>> {
        let addr = self.page_addr(i)?;
        read_records_at(&self.flash, addr, i)
    }

    /// Fetch one record by address (one page I/O; buffered records are
    /// served from RAM).
    pub fn get(&self, at: RecordAddr) -> Result<Vec<u8>> {
        if at.page == self.pages {
            return self
                .buffered_records()
                .into_iter()
                .nth(at.slot as usize)
                .ok_or(FlashError::BadRecordAddr);
        }
        let recs = self.read_page_records(at.page)?;
        recs.into_iter()
            .nth(at.slot as usize)
            .ok_or(FlashError::BadRecordAddr)
    }

    /// Seal the log: flush the tail and freeze it into an immutable [`Log`].
    pub fn seal(mut self) -> Result<Log> {
        self.flush()?;
        Ok(Log {
            flash: self.flash.clone(),
            blocks: std::mem::take(&mut self.blocks),
            pages: self.pages,
            records: self.records,
        })
    }

    /// Abandon the log, returning every block to the pool.
    pub fn discard(mut self) {
        for b in std::mem::take(&mut self.blocks) {
            self.flash.free_block(b);
        }
    }

    /// Rebuild a record log after a crash from its block list (the
    /// durable identity persisted by the layer above — see
    /// [`LogWriter::blocks`]).
    ///
    /// The scan walks the blocks page by page and classifies each page:
    ///
    /// * **valid** — decodes as a record page: its records are recovered;
    /// * **erased** — all 0xFF: the clean tail of the log; the scan stops
    ///   and appending resumes right there;
    /// * **corrupt** — a torn write (power died mid-program): the page is
    ///   discarded, the log truncates at it, and — because NAND forbids
    ///   reprogramming a half-written page — the valid prefix of the torn
    ///   block is relocated to a fresh block so the writer can continue.
    ///
    /// Records buffered in controller RAM at the moment of the cut were
    /// never on flash and are necessarily lost; everything programmed
    /// before the cut is recovered. Blocks past the truncation point are
    /// returned to the pool. Progress is exported under the
    /// `recovery.*` counters.
    pub fn recover(flash: &Flash, blocks: &[BlockId]) -> Result<(LogWriter, RecoveryReport)> {
        let geo = flash.geometry();
        let per = geo.pages_per_block as u32;
        let mut report = RecoveryReport::default();
        let mut records = 0u64;
        let mut valid_pages = 0u32;
        let mut torn = false;
        'scan: for (bi, bid) in blocks.iter().enumerate() {
            for off in 0..per {
                let addr = geo.page_in_block(*bid, off as usize);
                report.pages_scanned += 1;
                match read_records_at(flash, addr, bi as u32 * per + off) {
                    Ok(recs) => {
                        records += recs.len() as u64;
                        report.slots_per_page.push(recs.len() as u16);
                        valid_pages += 1;
                    }
                    Err(FlashError::ErasedPage(_)) => break 'scan,
                    Err(FlashError::CorruptPage(_)) => {
                        torn = true;
                        report.torn_pages_discarded += 1;
                        break 'scan;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        report.records_recovered = records;
        pds_obs::counter("recovery.pages_scanned").add(report.pages_scanned);
        pds_obs::counter("recovery.records_recovered").add(records);
        pds_obs::counter("recovery.torn_pages_discarded").add(report.torn_pages_discarded);

        // Rebuild ownership: keep blocks up to the append point, free the
        // rest. The reboot scan marked erased blocks free, so re-claim
        // kept ones defensively (an all-erased tail block is "free" until
        // its log re-adopts it).
        let tail_bi = (valid_pages / per) as usize;
        let keep = (tail_bi + 1).min(blocks.len());
        let mut kept: Vec<BlockId> = blocks[..keep].to_vec();
        for b in &kept {
            flash.claim_block(*b);
        }
        for b in &blocks[keep..] {
            // Claim first so the free below never double-inserts: the
            // block is either already free (claim pulls it out) or holds
            // stale data (claim is a no-op); either way it goes back once.
            let _ = flash.claim_block(*b);
            flash.free_block(*b);
        }
        // A torn page implies at least one kept block; the `if let` makes
        // the (unreachable) empty case a no-op instead of a panic.
        if torn {
            if let Some(old) = kept.pop() {
                // The torn page sits at offset `valid_pages % per` of the
                // last kept block; that block cannot accept further
                // programs. Relocate its valid prefix to a fresh block
                // (legal NAND: a strictly sequential program of an erased
                // block).
                let prefix = (valid_pages % per) as usize;
                if prefix > 0 {
                    let fresh = flash.alloc_block()?;
                    let mut buf = vec![0u8; geo.page_size];
                    for off in 0..prefix {
                        flash.read_page(geo.page_in_block(old, off), &mut buf)?;
                        flash.program_page(geo.page_in_block(fresh, off), &buf)?;
                        report.pages_relocated += 1;
                    }
                    kept.push(fresh);
                }
                flash.free_block(old);
            }
        }
        let mut writer = LogWriter::new(flash.clone());
        writer.blocks = kept;
        writer.pages = valid_pages;
        writer.records = records;
        Ok((writer, report))
    }
}

/// What a [`LogWriter::recover`] scan found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Pages read by the scan (valid + the terminating page).
    pub pages_scanned: u64,
    /// Torn pages discarded at the truncation point.
    pub torn_pages_discarded: u64,
    /// Records recovered into the rebuilt writer.
    pub records_recovered: u64,
    /// Valid pages copied out of a torn tail block.
    pub pages_relocated: u32,
    /// Record count of each recovered page, in log order — enough for
    /// the layer above to rebuild its record directory without a second
    /// scan.
    pub slots_per_page: Vec<u16>,
}

/// An immutable, sealed log.
pub struct Log {
    flash: Flash,
    blocks: Vec<BlockId>,
    pages: u32,
    records: u64,
}

impl std::fmt::Debug for Log {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log")
            .field("pages", &self.pages)
            .field("records", &self.records)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl Log {
    /// Number of pages in the log.
    pub fn num_pages(&self) -> u32 {
        self.pages
    }

    /// Number of records in the log.
    pub fn num_records(&self) -> u64 {
        self.records
    }

    /// Number of erase blocks the log occupies.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The erase blocks the log occupies, in log order (the durable
    /// identity — see [`LogWriter::blocks`]).
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The flash device this log lives on.
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// Physical address of the `i`-th page.
    pub fn page_addr(&self, i: u32) -> Result<PageAddr> {
        let geo = self.flash.geometry();
        let per = geo.pages_per_block as u32;
        let bi = (i / per) as usize;
        if i >= self.pages || bi >= self.blocks.len() {
            return Err(FlashError::BadRecordAddr);
        }
        Ok(geo.page_in_block(self.blocks[bi], (i % per) as usize))
    }

    /// Read the raw bytes of page `i` (one page I/O).
    pub fn read_raw_page(&self, i: u32, buf: &mut [u8]) -> Result<()> {
        let addr = self.page_addr(i)?;
        self.flash.read_page(addr, buf)
    }

    /// Read all records of page `i` (one page I/O).
    pub fn read_page_records(&self, i: u32) -> Result<Vec<Vec<u8>>> {
        let addr = self.page_addr(i)?;
        read_records_at(&self.flash, addr, i)
    }

    /// Fetch one record by address (one page I/O).
    pub fn get(&self, at: RecordAddr) -> Result<Vec<u8>> {
        let recs = self.read_page_records(at.page)?;
        recs.into_iter()
            .nth(at.slot as usize)
            .ok_or(FlashError::BadRecordAddr)
    }

    /// Sequential reader over the whole log with a single-page RAM window.
    pub fn reader(&self) -> LogReader<'_> {
        LogReader {
            log: self,
            next_page: 0,
            current: Vec::new(),
            current_idx: 0,
        }
    }

    /// Reclaim the log: every block returns to the pool at once.
    pub fn reclaim(self) {
        for b in &self.blocks {
            self.flash.free_block(*b);
        }
    }
}

/// Sequential record iterator holding exactly one decoded page in RAM.
pub struct LogReader<'a> {
    log: &'a Log,
    next_page: u32,
    current: Vec<Vec<u8>>,
    current_idx: usize,
}

impl Iterator for LogReader<'_> {
    type Item = Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.current_idx < self.current.len() {
                let rec = std::mem::take(&mut self.current[self.current_idx]);
                self.current_idx += 1;
                return Some(Ok(rec));
            }
            if self.next_page >= self.log.num_pages() {
                return None;
            }
            match self.log.read_page_records(self.next_page) {
                Ok(recs) => {
                    self.current = recs;
                    self.current_idx = 0;
                    self.next_page += 1;
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

fn read_records_at(flash: &Flash, addr: PageAddr, page_index: u32) -> Result<Vec<Vec<u8>>> {
    let mut buf = vec![0u8; flash.geometry().page_size];
    flash.read_page(addr, &mut buf)?;
    let n = u16::from_le_bytes([buf[0], buf[1]]);
    // A fully-erased page reads as 0xFF fill; its "header" decodes as
    // 65535 records, which is *not* corruption — it is the unwritten log
    // tail a recovery scan must stop at.
    if n == 0xFFFF && buf.iter().all(|&b| b == 0xFF) {
        return Err(FlashError::ErasedPage(PageAddr(page_index)));
    }
    // Verify the page CRC before trusting the framing. This is what
    // catches a torn write whose prefix ends *inside* a record body: the
    // framing still decodes (erased 0xFF cells pass for data) but the CRC
    // was computed over the full page image and cannot match the prefix.
    let stored = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]);
    if stored != page_crc(&buf) {
        return Err(FlashError::CorruptPage(PageAddr(page_index)));
    }
    decode_records(&buf, n).ok_or(FlashError::CorruptPage(PageAddr(page_index)))
}

fn decode_records(buf: &[u8], n: u16) -> Option<Vec<Vec<u8>>> {
    let mut out = Vec::with_capacity(n as usize);
    let mut off = PAGE_HEADER;
    for _ in 0..n {
        if off + REC_HEADER > buf.len() {
            return None;
        }
        let len = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        off += REC_HEADER;
        if off + len > buf.len() {
            return None;
        }
        out.push(buf[off..off + len].to_vec());
        off += len;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash() -> Flash {
        Flash::small(16)
    }

    #[test]
    fn append_and_read_back_across_pages() {
        let f = flash();
        let mut w = f.new_log();
        let mut addrs = Vec::new();
        for i in 0..200u32 {
            let rec = i.to_le_bytes().repeat(4); // 16-byte records
            addrs.push(w.append(&rec).unwrap());
        }
        let log = w.seal().unwrap();
        assert_eq!(log.num_records(), 200);
        assert!(log.num_pages() > 1);
        for (i, a) in addrs.iter().enumerate() {
            let rec = log.get(*a).unwrap();
            assert_eq!(rec, (i as u32).to_le_bytes().repeat(4));
        }
    }

    #[test]
    fn sequential_reader_sees_everything_in_order() {
        let f = flash();
        let mut w = f.new_log();
        for i in 0..500u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        let log = w.seal().unwrap();
        let vals: Vec<u32> = log
            .reader()
            .map(|r| u32::from_le_bytes(r.unwrap().try_into().unwrap()))
            .collect();
        assert_eq!(vals, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn writes_are_strictly_sequential_on_chip() {
        let f = flash();
        let mut w = f.new_log();
        for i in 0..1000u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(
            f.stats().non_sequential_programs,
            0,
            "log writes must never be classified as random"
        );
    }

    #[test]
    fn buffered_records_visible_before_flush() {
        let f = flash();
        let mut w = f.new_log();
        let a = w.append(b"pending").unwrap();
        assert_eq!(w.buffered_records(), vec![b"pending".to_vec()]);
        assert_eq!(w.get(a).unwrap(), b"pending".to_vec());
        assert_eq!(w.num_pages(), 0);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let f = flash();
        let mut w = f.new_log();
        let too_big = vec![0u8; f.geometry().page_size];
        assert!(matches!(
            w.append(&too_big),
            Err(FlashError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn reclaim_returns_all_blocks() {
        let f = flash();
        let before = f.free_blocks();
        let mut w = f.new_log();
        for i in 0..2000u32 {
            w.append(&i.to_le_bytes().repeat(8)).unwrap();
        }
        let log = w.seal().unwrap();
        assert!(f.free_blocks() < before);
        log.reclaim();
        assert_eq!(f.free_blocks(), before);
    }

    #[test]
    fn discard_open_log_returns_blocks() {
        let f = flash();
        let before = f.free_blocks();
        let mut w = f.new_log();
        for i in 0..2000u32 {
            w.append(&i.to_le_bytes().repeat(8)).unwrap();
        }
        w.discard();
        assert_eq!(f.free_blocks(), before);
    }

    #[test]
    fn raw_pages_interleave_with_records() {
        let f = flash();
        let mut w = f.new_log();
        w.append(b"rec0").unwrap();
        let page = vec![0x42; f.geometry().page_size];
        let raw_idx = w.append_raw_page(&page).unwrap();
        assert_eq!(raw_idx, 1, "partial record page flushed first");
        let log = w.seal().unwrap();
        let mut buf = vec![0u8; f.geometry().page_size];
        log.read_raw_page(raw_idx, &mut buf).unwrap();
        assert_eq!(buf, page);
        assert_eq!(log.read_page_records(0).unwrap(), vec![b"rec0".to_vec()]);
    }

    #[test]
    fn erased_page_is_distinguished_from_corruption() {
        let f = flash();
        let geo = f.geometry();
        let b = f.alloc_block().unwrap();
        // Never-programmed page: ErasedPage, not CorruptPage.
        let addr = geo.first_page_of(b);
        assert!(matches!(
            read_records_at(&f, addr, 0),
            Err(FlashError::ErasedPage(PageAddr(0)))
        ));
        // A page with a plausible-looking header but garbage layout is
        // corruption proper.
        let mut page = vec![0xFF; geo.page_size];
        page[0..2].copy_from_slice(&3u16.to_le_bytes()); // claims 3 records
        f.program_page(addr, &page).unwrap();
        assert!(matches!(
            read_records_at(&f, addr, 0),
            Err(FlashError::CorruptPage(PageAddr(0)))
        ));
    }

    #[test]
    fn recover_resumes_at_erased_tail() {
        let f = flash();
        let mut w = f.new_log();
        for i in 0..300u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        w.flush().unwrap();
        let durable = w.num_records();
        let blocks: Vec<BlockId> = w.blocks().to_vec();
        let pages = w.num_pages();

        // Reboot the chip; recover the log from its block list.
        let f2 = f.reboot();
        let (mut rec, report) = LogWriter::recover(&f2, &blocks).unwrap();
        assert_eq!(rec.num_records(), durable);
        assert_eq!(rec.num_pages(), pages);
        assert_eq!(report.records_recovered, durable);
        assert_eq!(report.torn_pages_discarded, 0);
        assert_eq!(report.slots_per_page.len(), pages as usize);

        // The recovered writer appends and reads back seamlessly.
        rec.append(&999u32.to_le_bytes()).unwrap();
        let log = rec.seal().unwrap();
        let vals: Vec<u32> = log
            .reader()
            .map(|r| u32::from_le_bytes(r.unwrap().try_into().unwrap()))
            .collect();
        let mut expected: Vec<u32> = (0..300).collect();
        expected.push(999);
        assert_eq!(vals, expected);
    }

    #[test]
    fn recover_discards_torn_tail_and_relocates_block() {
        use crate::FaultPlan;
        let f = flash();
        let mut w = f.new_log();
        // Tear deterministically: pick a seed whose cut writes a prefix.
        f.inject_faults(FaultPlan::new(2).power_loss_after(5));
        let mut appended = 0u64;
        let mut durable;
        let err = loop {
            durable = w.num_records() - w.buffered_records().len() as u64;
            match w.append(&appended.to_le_bytes()) {
                Ok(_) => appended += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, FlashError::PowerLoss);
        let blocks: Vec<BlockId> = w.blocks().to_vec();

        let f2 = f.reboot();
        let (rec, report) = LogWriter::recover(&f2, &blocks).unwrap();
        // Everything durably programmed before the cut is back; nothing
        // past the append sequence appears.
        assert!(rec.num_records() >= durable);
        assert!(rec.num_records() <= appended);
        assert_eq!(report.records_recovered, rec.num_records());
        let recovered = rec.num_records();
        let log = rec.seal().unwrap();
        let vals: Vec<u64> = log
            .reader()
            .map(|r| u64::from_le_bytes(r.unwrap().try_into().unwrap()))
            .collect();
        assert_eq!(vals, (0..recovered).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_log_seals_cleanly() {
        let f = flash();
        let log = f.new_log().seal().unwrap();
        assert_eq!(log.num_pages(), 0);
        assert_eq!(log.num_blocks(), 0);
        assert_eq!(log.reader().count(), 0);
    }
}

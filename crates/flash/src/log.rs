//! The *Log* abstraction — step 2 of the tutorial's framework.
//!
//! "Organize [index structures] into sequential structures (Logs). Log
//! structures satisfy Flash constraints: pages are written sequentially
//! (and never updated nor moved), random writes are avoided by
//! construction; allocation & de-allocation are made on large grains."
//!
//! A [`LogWriter`] appends records (or raw pages) strictly sequentially,
//! allocating whole blocks as it grows. Already-programmed pages of an open
//! log can be read at any time; sealing yields an immutable [`Log`].
//! Reclaiming a log returns all of its blocks at once — no partial GC.
//!
//! ## Page layout of record pages
//!
//! ```text
//! [u16 record_count] ([u16 len] [len bytes])*  ... padding (0xFF)
//! ```
//!
//! Records never span pages, so a single one-page RAM buffer suffices to
//! decode any record — the property every pipeline operator of Part II
//! relies on.

use crate::error::{FlashError, Result};
use crate::geometry::{BlockId, PageAddr};
use crate::Flash;

/// Log-relative address of a record: page index within the log + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordAddr {
    /// Index of the page within the log (0-based).
    pub page: u32,
    /// Slot of the record within the page (0-based).
    pub slot: u16,
}

/// Header bytes consumed by the record count at the start of a page.
const PAGE_HEADER: usize = 2;
/// Header bytes per record (length prefix).
const REC_HEADER: usize = 2;

/// An appendable, strictly sequential log.
pub struct LogWriter {
    flash: Flash,
    blocks: Vec<BlockId>,
    /// Number of pages already programmed.
    pages: u32,
    /// RAM page buffer being filled (record layout).
    buf: Vec<u8>,
    /// Records currently in `buf`.
    buf_records: u16,
    /// Write offset within `buf`.
    buf_off: usize,
    /// Total records appended (programmed + buffered).
    records: u64,
}

impl LogWriter {
    /// Start an empty log; no block is allocated until the first page is
    /// programmed.
    pub fn new(flash: Flash) -> Self {
        let page_size = flash.geometry().page_size;
        LogWriter {
            flash,
            blocks: Vec::new(),
            pages: 0,
            buf: vec![0xFF; page_size],
            buf_records: 0,
            buf_off: PAGE_HEADER,
            records: 0,
        }
    }

    /// The flash device this log lives on.
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// Largest record payload a page can hold.
    pub fn max_record_len(&self) -> usize {
        self.flash.geometry().page_size - PAGE_HEADER - REC_HEADER
    }

    /// Pages programmed so far (excludes the RAM buffer).
    pub fn num_pages(&self) -> u32 {
        self.pages
    }

    /// Total records appended, including those still buffered in RAM.
    pub fn num_records(&self) -> u64 {
        self.records
    }

    /// Records currently buffered in RAM (not yet on flash).
    pub fn buffered_records(&self) -> Vec<Vec<u8>> {
        decode_records(&self.buf, self.buf_records).expect("own buffer is well-formed")
    }

    /// Physical address of the `i`-th page of the log.
    pub fn page_addr(&self, i: u32) -> Result<PageAddr> {
        let geo = self.flash.geometry();
        let per = geo.pages_per_block as u32;
        let bi = (i / per) as usize;
        if i >= self.pages || bi >= self.blocks.len() {
            return Err(FlashError::BadRecordAddr);
        }
        Ok(geo.page_in_block(self.blocks[bi], (i % per) as usize))
    }

    /// Append one record; flushes the RAM buffer to flash when full.
    /// Returns the record's log-relative address (its page index is the
    /// page it *will* occupy once flushed).
    pub fn append(&mut self, rec: &[u8]) -> Result<RecordAddr> {
        let max = self.max_record_len();
        if rec.len() > max {
            return Err(FlashError::RecordTooLarge {
                len: rec.len(),
                max,
            });
        }
        let needed = REC_HEADER + rec.len();
        if self.buf_off + needed > self.buf.len() {
            self.flush_page()?;
        }
        let addr = RecordAddr {
            page: self.pages,
            slot: self.buf_records,
        };
        let len = rec.len() as u16;
        self.buf[self.buf_off..self.buf_off + 2].copy_from_slice(&len.to_le_bytes());
        self.buf[self.buf_off + 2..self.buf_off + 2 + rec.len()].copy_from_slice(rec);
        self.buf_off += needed;
        self.buf_records += 1;
        self.buf[0..2].copy_from_slice(&self.buf_records.to_le_bytes());
        self.records += 1;
        Ok(addr)
    }

    /// Force the current partial page to flash (wasting its free space —
    /// the price of NAND's no-append-to-programmed-page rule). No-op when
    /// the buffer is empty.
    pub fn flush(&mut self) -> Result<()> {
        if self.buf_records > 0 {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Program a raw, caller-laid-out page and return its page index.
    /// Flushes any partial record page first so ordering is preserved.
    pub fn append_raw_page(&mut self, page: &[u8]) -> Result<u32> {
        self.flush()?;
        let geo = self.flash.geometry();
        if page.len() != geo.page_size {
            return Err(FlashError::BadPageSize {
                given: page.len(),
                expected: geo.page_size,
            });
        }
        let addr = self.next_page_slot()?;
        self.flash.program_page(addr, page)?;
        self.pages += 1;
        Ok(self.pages - 1)
    }

    fn next_page_slot(&mut self) -> Result<PageAddr> {
        let geo = self.flash.geometry();
        let per = geo.pages_per_block as u32;
        let bi = (self.pages / per) as usize;
        if bi == self.blocks.len() {
            self.blocks.push(self.flash.alloc_block()?);
        }
        Ok(geo.page_in_block(self.blocks[bi], (self.pages % per) as usize))
    }

    fn flush_page(&mut self) -> Result<()> {
        let addr = self.next_page_slot()?;
        self.flash.program_page(addr, &self.buf)?;
        self.pages += 1;
        self.buf.fill(0xFF);
        self.buf[0..2].copy_from_slice(&0u16.to_le_bytes());
        self.buf_records = 0;
        self.buf_off = PAGE_HEADER;
        Ok(())
    }

    /// Read all records of programmed page `i` (one page I/O).
    pub fn read_page_records(&self, i: u32) -> Result<Vec<Vec<u8>>> {
        let addr = self.page_addr(i)?;
        read_records_at(&self.flash, addr, i)
    }

    /// Fetch one record by address (one page I/O; buffered records are
    /// served from RAM).
    pub fn get(&self, at: RecordAddr) -> Result<Vec<u8>> {
        if at.page == self.pages {
            return self
                .buffered_records()
                .into_iter()
                .nth(at.slot as usize)
                .ok_or(FlashError::BadRecordAddr);
        }
        let recs = self.read_page_records(at.page)?;
        recs.into_iter()
            .nth(at.slot as usize)
            .ok_or(FlashError::BadRecordAddr)
    }

    /// Seal the log: flush the tail and freeze it into an immutable [`Log`].
    pub fn seal(mut self) -> Result<Log> {
        self.flush()?;
        Ok(Log {
            flash: self.flash.clone(),
            blocks: std::mem::take(&mut self.blocks),
            pages: self.pages,
            records: self.records,
        })
    }

    /// Abandon the log, returning every block to the pool.
    pub fn discard(mut self) {
        for b in std::mem::take(&mut self.blocks) {
            self.flash.free_block(b);
        }
    }
}

/// An immutable, sealed log.
pub struct Log {
    flash: Flash,
    blocks: Vec<BlockId>,
    pages: u32,
    records: u64,
}

impl std::fmt::Debug for Log {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log")
            .field("pages", &self.pages)
            .field("records", &self.records)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl Log {
    /// Number of pages in the log.
    pub fn num_pages(&self) -> u32 {
        self.pages
    }

    /// Number of records in the log.
    pub fn num_records(&self) -> u64 {
        self.records
    }

    /// Number of erase blocks the log occupies.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The flash device this log lives on.
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// Physical address of the `i`-th page.
    pub fn page_addr(&self, i: u32) -> Result<PageAddr> {
        let geo = self.flash.geometry();
        let per = geo.pages_per_block as u32;
        let bi = (i / per) as usize;
        if i >= self.pages || bi >= self.blocks.len() {
            return Err(FlashError::BadRecordAddr);
        }
        Ok(geo.page_in_block(self.blocks[bi], (i % per) as usize))
    }

    /// Read the raw bytes of page `i` (one page I/O).
    pub fn read_raw_page(&self, i: u32, buf: &mut [u8]) -> Result<()> {
        let addr = self.page_addr(i)?;
        self.flash.read_page(addr, buf)
    }

    /// Read all records of page `i` (one page I/O).
    pub fn read_page_records(&self, i: u32) -> Result<Vec<Vec<u8>>> {
        let addr = self.page_addr(i)?;
        read_records_at(&self.flash, addr, i)
    }

    /// Fetch one record by address (one page I/O).
    pub fn get(&self, at: RecordAddr) -> Result<Vec<u8>> {
        let recs = self.read_page_records(at.page)?;
        recs.into_iter()
            .nth(at.slot as usize)
            .ok_or(FlashError::BadRecordAddr)
    }

    /// Sequential reader over the whole log with a single-page RAM window.
    pub fn reader(&self) -> LogReader<'_> {
        LogReader {
            log: self,
            next_page: 0,
            current: Vec::new(),
            current_idx: 0,
        }
    }

    /// Reclaim the log: every block returns to the pool at once.
    pub fn reclaim(self) {
        for b in &self.blocks {
            self.flash.free_block(*b);
        }
    }
}

/// Sequential record iterator holding exactly one decoded page in RAM.
pub struct LogReader<'a> {
    log: &'a Log,
    next_page: u32,
    current: Vec<Vec<u8>>,
    current_idx: usize,
}

impl Iterator for LogReader<'_> {
    type Item = Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.current_idx < self.current.len() {
                let rec = std::mem::take(&mut self.current[self.current_idx]);
                self.current_idx += 1;
                return Some(Ok(rec));
            }
            if self.next_page >= self.log.num_pages() {
                return None;
            }
            match self.log.read_page_records(self.next_page) {
                Ok(recs) => {
                    self.current = recs;
                    self.current_idx = 0;
                    self.next_page += 1;
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

fn read_records_at(flash: &Flash, addr: PageAddr, page_index: u32) -> Result<Vec<Vec<u8>>> {
    let mut buf = vec![0u8; flash.geometry().page_size];
    flash.read_page(addr, &mut buf)?;
    let n = u16::from_le_bytes([buf[0], buf[1]]);
    decode_records(&buf, n).ok_or(FlashError::CorruptPage(PageAddr(page_index)))
}

fn decode_records(buf: &[u8], n: u16) -> Option<Vec<Vec<u8>>> {
    let mut out = Vec::with_capacity(n as usize);
    let mut off = PAGE_HEADER;
    for _ in 0..n {
        if off + REC_HEADER > buf.len() {
            return None;
        }
        let len = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        off += REC_HEADER;
        if off + len > buf.len() {
            return None;
        }
        out.push(buf[off..off + len].to_vec());
        off += len;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash() -> Flash {
        Flash::small(16)
    }

    #[test]
    fn append_and_read_back_across_pages() {
        let f = flash();
        let mut w = f.new_log();
        let mut addrs = Vec::new();
        for i in 0..200u32 {
            let rec = i.to_le_bytes().repeat(4); // 16-byte records
            addrs.push(w.append(&rec).unwrap());
        }
        let log = w.seal().unwrap();
        assert_eq!(log.num_records(), 200);
        assert!(log.num_pages() > 1);
        for (i, a) in addrs.iter().enumerate() {
            let rec = log.get(*a).unwrap();
            assert_eq!(rec, (i as u32).to_le_bytes().repeat(4));
        }
    }

    #[test]
    fn sequential_reader_sees_everything_in_order() {
        let f = flash();
        let mut w = f.new_log();
        for i in 0..500u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        let log = w.seal().unwrap();
        let vals: Vec<u32> = log
            .reader()
            .map(|r| u32::from_le_bytes(r.unwrap().try_into().unwrap()))
            .collect();
        assert_eq!(vals, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn writes_are_strictly_sequential_on_chip() {
        let f = flash();
        let mut w = f.new_log();
        for i in 0..1000u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(
            f.stats().non_sequential_programs,
            0,
            "log writes must never be classified as random"
        );
    }

    #[test]
    fn buffered_records_visible_before_flush() {
        let f = flash();
        let mut w = f.new_log();
        let a = w.append(b"pending").unwrap();
        assert_eq!(w.buffered_records(), vec![b"pending".to_vec()]);
        assert_eq!(w.get(a).unwrap(), b"pending".to_vec());
        assert_eq!(w.num_pages(), 0);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let f = flash();
        let mut w = f.new_log();
        let too_big = vec![0u8; f.geometry().page_size];
        assert!(matches!(
            w.append(&too_big),
            Err(FlashError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn reclaim_returns_all_blocks() {
        let f = flash();
        let before = f.free_blocks();
        let mut w = f.new_log();
        for i in 0..2000u32 {
            w.append(&i.to_le_bytes().repeat(8)).unwrap();
        }
        let log = w.seal().unwrap();
        assert!(f.free_blocks() < before);
        log.reclaim();
        assert_eq!(f.free_blocks(), before);
    }

    #[test]
    fn discard_open_log_returns_blocks() {
        let f = flash();
        let before = f.free_blocks();
        let mut w = f.new_log();
        for i in 0..2000u32 {
            w.append(&i.to_le_bytes().repeat(8)).unwrap();
        }
        w.discard();
        assert_eq!(f.free_blocks(), before);
    }

    #[test]
    fn raw_pages_interleave_with_records() {
        let f = flash();
        let mut w = f.new_log();
        w.append(b"rec0").unwrap();
        let page = vec![0x42; f.geometry().page_size];
        let raw_idx = w.append_raw_page(&page).unwrap();
        assert_eq!(raw_idx, 1, "partial record page flushed first");
        let log = w.seal().unwrap();
        let mut buf = vec![0u8; f.geometry().page_size];
        log.read_raw_page(raw_idx, &mut buf).unwrap();
        assert_eq!(buf, page);
        assert_eq!(log.read_page_records(0).unwrap(), vec![b"rec0".to_vec()]);
    }

    #[test]
    fn empty_log_seals_cleanly() {
        let f = flash();
        let log = f.new_log().seal().unwrap();
        assert_eq!(log.num_pages(), 0);
        assert_eq!(log.num_blocks(), 0);
        assert_eq!(log.reader().count(), 0);
    }
}

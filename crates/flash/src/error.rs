//! Error type shared by the flash substrate.

use crate::geometry::{BlockId, PageAddr};
use std::fmt;

/// Result alias for flash operations.
pub type Result<T> = std::result::Result<T, FlashError>;

/// Everything that can go wrong when driving the NAND chip.
///
/// The simulator is strict on purpose: the tutorial's whole point is that
/// embedded data structures must be *legal by construction* on NAND, so any
/// violation is surfaced as a hard error rather than silently emulated by a
/// flash-translation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Page address beyond the chip capacity.
    BadAddress(PageAddr),
    /// Block id beyond the chip capacity.
    BadBlock(BlockId),
    /// Attempt to program a page that is not in the erased state
    /// (in-place update — illegal on NAND).
    WriteToProgrammed(PageAddr),
    /// Attempt to program pages of a block out of sequential order.
    /// Real NAND chips require (or strongly recommend) in-order
    /// programming within an erase block.
    OutOfOrderProgram {
        /// The page that was requested.
        requested: PageAddr,
        /// The next page the block would accept.
        expected: PageAddr,
    },
    /// Data length does not match the page size.
    BadPageSize { given: usize, expected: usize },
    /// The block allocator has no free block left.
    OutOfBlocks,
    /// A record larger than the per-page payload capacity was appended.
    RecordTooLarge { len: usize, max: usize },
    /// A log reader met a corrupt page layout (bad slot count / lengths).
    CorruptPage(PageAddr),
    /// A log reader met a fully-erased page (all 0xFF, never programmed).
    /// Distinct from corruption: during a recovery scan an erased page
    /// marks the clean tail of the log, while a corrupt one marks a torn
    /// write to discard.
    ErasedPage(PageAddr),
    /// Record address pointing outside the log or at a missing slot.
    BadRecordAddr,
    /// Power was lost mid-operation (injected by a [`crate::FaultPlan`]).
    /// The chip is offline: every subsequent primitive fails with this
    /// error until the host "reboots" via [`crate::Flash::reboot`].
    PowerLoss,
    /// The block's erase no longer completes (worn out / stuck cells).
    /// The allocator retires such blocks from the pool.
    StuckBlock(BlockId),
    /// A change record was appended with an HLC stamp below the log's
    /// newest stamp. The change log is the fleet's causal history:
    /// it must be monotone by construction, so a non-monotone append is
    /// a caller bug surfaced as a typed error, never silently reordered.
    OutOfOrderChange,
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::BadAddress(a) => write!(f, "page address {} out of range", a.0),
            FlashError::BadBlock(b) => write!(f, "block id {} out of range", b.0),
            FlashError::WriteToProgrammed(a) => {
                write!(f, "illegal in-place update of programmed page {}", a.0)
            }
            FlashError::OutOfOrderProgram {
                requested,
                expected,
            } => write!(
                f,
                "out-of-order program: requested page {}, block expects {}",
                requested.0, expected.0
            ),
            FlashError::BadPageSize { given, expected } => {
                write!(f, "bad page buffer size {given}, expected {expected}")
            }
            FlashError::OutOfBlocks => write!(f, "flash exhausted: no free erase block"),
            FlashError::RecordTooLarge { len, max } => {
                write!(
                    f,
                    "record of {len} bytes exceeds page payload capacity {max}"
                )
            }
            FlashError::CorruptPage(a) => write!(f, "corrupt page layout at {}", a.0),
            FlashError::ErasedPage(a) => write!(f, "page {} is erased (log tail)", a.0),
            FlashError::BadRecordAddr => write!(f, "record address outside log"),
            FlashError::PowerLoss => write!(f, "power lost: chip offline until reboot"),
            FlashError::StuckBlock(b) => write!(f, "block {} is stuck (erase failed)", b.0),
            FlashError::OutOfOrderChange => {
                write!(f, "non-monotone HLC stamp appended to the change log")
            }
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FlashError::OutOfOrderProgram {
            requested: PageAddr(9),
            expected: PageAddr(8),
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('8'));
        assert!(FlashError::OutOfBlocks.to_string().contains("exhausted"));
    }
}

//! Cumulative I/O accounting.
//!
//! Every experiment of Part II is expressed in page I/Os ("Summary Scan:
//! 17 IOs" vs "Table scan: 640 IOs"); `IoStats` is the measurement the
//! benches report.

use crate::cost::CostModel;
use std::ops::Sub;

/// Cumulative counters maintained by the chip model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read.
    pub page_reads: u64,
    /// Pages programmed.
    pub page_programs: u64,
    /// Blocks erased.
    pub block_erases: u64,
    /// Programs that targeted a page *not* immediately following the
    /// previously programmed page of the chip — a proxy for "random
    /// writes", the pattern NAND punishes. Sequential log writes keep this
    /// near zero; in-place structures inflate it.
    pub non_sequential_programs: u64,
}

impl IoStats {
    /// Total page-grain I/Os (reads + programs), the unit of the
    /// tutorial's slides.
    pub fn total_ios(&self) -> u64 {
        self.page_reads + self.page_programs
    }

    /// Simulated elapsed time under a latency model.
    pub fn time_ns(&self, cost: &CostModel) -> u64 {
        cost.time_ns(self.page_reads, self.page_programs, self.block_erases)
    }

    /// Attach these counters (typically a snapshot delta) to a tracing
    /// span under the conventional `flash.*` attribute names read by
    /// [`pds_obs::QueryTrace`].
    pub fn attach_to_span(&self, span: &pds_obs::SpanGuard) {
        span.set("flash.page_reads", self.page_reads);
        span.set("flash.page_programs", self.page_programs);
        span.set("flash.block_erases", self.block_erases);
        span.set("flash.non_seq_programs", self.non_sequential_programs);
    }

    /// Write amplification relative to `payload_bytes` of useful data,
    /// given the page size. >1.0 means the structure wrote more pages than
    /// the payload strictly requires.
    pub fn write_amplification(&self, payload_bytes: u64, page_size: u64) -> f64 {
        if payload_bytes == 0 {
            return 0.0;
        }
        (self.page_programs * page_size) as f64 / payload_bytes as f64
    }
}

impl Sub for IoStats {
    type Output = IoStats;

    /// Delta between two snapshots (`after - before`). Saturating: a
    /// stale or mismatched snapshot pair (e.g. counters reset between the
    /// two) yields a zero delta instead of a debug-mode panic inside
    /// instrumentation code.
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            page_reads: self.page_reads.saturating_sub(rhs.page_reads),
            page_programs: self.page_programs.saturating_sub(rhs.page_programs),
            block_erases: self.block_erases.saturating_sub(rhs.block_erases),
            non_sequential_programs: self
                .non_sequential_programs
                .saturating_sub(rhs.non_sequential_programs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_deltas() {
        let before = IoStats {
            page_reads: 10,
            page_programs: 5,
            block_erases: 1,
            non_sequential_programs: 2,
        };
        let after = IoStats {
            page_reads: 30,
            page_programs: 9,
            block_erases: 2,
            non_sequential_programs: 2,
        };
        let d = after - before;
        assert_eq!(d.page_reads, 20);
        assert_eq!(d.total_ios(), 24);
        assert_eq!(d.non_sequential_programs, 0);
    }

    #[test]
    fn mismatched_snapshots_saturate_to_zero() {
        let before = IoStats {
            page_reads: 30,
            ..Default::default()
        };
        // Counters were reset between the snapshots: "after" is smaller.
        let after = IoStats {
            page_reads: 4,
            page_programs: 2,
            ..Default::default()
        };
        let d = after - before;
        assert_eq!(d.page_reads, 0, "stale pair surfaces as zero delta");
        assert_eq!(d.page_programs, 2);
    }

    #[test]
    fn write_amplification_handles_zero_payload() {
        let s = IoStats {
            page_programs: 4,
            ..Default::default()
        };
        assert_eq!(s.write_amplification(0, 512), 0.0);
        assert!((s.write_amplification(1024, 512) - 2.0).abs() < 1e-9);
    }
}

//! Chip geometry and addressing.
//!
//! The tutorial's target hardware is "a secure MCU connected to a GB flash
//! chip" — e.g. a secure MicroSD with 4 GB of NAND, or a contactless token
//! with 8 GB. Typical small-page NAND exposes 2 KB pages grouped in blocks
//! of 64 pages; the simulator lets each experiment pick its geometry.

/// Identifier of one erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Global page address: `block * pages_per_block + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr(pub u32);

impl PageAddr {
    /// The "null" page address, used as an end-of-chain marker in linked
    /// log structures (chained hash buckets of the embedded search engine).
    pub const NULL: PageAddr = PageAddr(u32::MAX);

    /// True if this is the end-of-chain marker.
    pub fn is_null(self) -> bool {
        self == PageAddr::NULL
    }
}

/// Physical layout of one NAND chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Bytes per page (the program grain).
    pub page_size: usize,
    /// Pages per erase block (the erase grain).
    pub pages_per_block: usize,
    /// Number of erase blocks on the chip.
    pub blocks: usize,
}

impl FlashGeometry {
    /// Build a geometry; all dimensions must be non-zero.
    pub fn new(page_size: usize, pages_per_block: usize, blocks: usize) -> Self {
        // pds-lint: allow(panic.assert) — chip geometry is a construction-time
        // constant chosen by the experimenter, never derived from stored data.
        assert!(page_size > 0 && pages_per_block > 0 && blocks > 0);
        FlashGeometry {
            page_size,
            pages_per_block,
            blocks,
        }
    }

    /// A realistic small-page NAND chip: 2 KB pages, 64 pages/block.
    /// `megabytes` selects the capacity.
    pub fn nand_2k(megabytes: usize) -> Self {
        let block_bytes = 2048 * 64;
        let blocks = (megabytes * 1024 * 1024).div_ceil(block_bytes).max(1);
        FlashGeometry::new(2048, 64, blocks)
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks
    }

    /// Total number of pages.
    pub fn num_pages(&self) -> usize {
        self.blocks * self.pages_per_block
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.num_pages() * self.page_size
    }

    /// The block containing `addr`.
    pub fn block_of(&self, addr: PageAddr) -> BlockId {
        BlockId(addr.0 / self.pages_per_block as u32)
    }

    /// Page offset of `addr` within its block.
    pub fn offset_in_block(&self, addr: PageAddr) -> usize {
        (addr.0 as usize) % self.pages_per_block
    }

    /// First page of a block.
    pub fn first_page_of(&self, bid: BlockId) -> PageAddr {
        PageAddr(bid.0 * self.pages_per_block as u32)
    }

    /// `offset`-th page of a block.
    pub fn page_in_block(&self, bid: BlockId, offset: usize) -> PageAddr {
        debug_assert!(offset < self.pages_per_block);
        PageAddr(bid.0 * self.pages_per_block as u32 + offset as u32)
    }

    /// True if `addr` is a valid page on this chip.
    pub fn contains(&self, addr: PageAddr) -> bool {
        (addr.0 as usize) < self.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_arithmetic_round_trips() {
        let geo = FlashGeometry::new(512, 16, 8);
        for b in 0..8u32 {
            for o in 0..16usize {
                let addr = geo.page_in_block(BlockId(b), o);
                assert_eq!(geo.block_of(addr), BlockId(b));
                assert_eq!(geo.offset_in_block(addr), o);
            }
        }
    }

    #[test]
    fn nand_2k_capacity_at_least_requested() {
        let geo = FlashGeometry::nand_2k(4);
        assert!(geo.capacity() >= 4 * 1024 * 1024);
        assert_eq!(geo.page_size, 2048);
        assert_eq!(geo.pages_per_block, 64);
    }

    #[test]
    fn null_page_addr_is_recognized() {
        assert!(PageAddr::NULL.is_null());
        assert!(!PageAddr(0).is_null());
        let geo = FlashGeometry::new(512, 16, 8);
        assert!(!geo.contains(PageAddr::NULL));
    }

    #[test]
    fn capacity_is_product_of_dimensions() {
        let geo = FlashGeometry::new(256, 4, 10);
        assert_eq!(geo.num_pages(), 40);
        assert_eq!(geo.capacity(), 10240);
    }
}

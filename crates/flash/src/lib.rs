//! # pds-flash — NAND flash simulator and log-structured storage substrate
//!
//! The EDBT'14 tutorial *Managing Personal Data with Strong Privacy
//! Guarantees* builds every embedded data structure on raw NAND flash with
//! three hard constraints:
//!
//! 1. **Pages are erased before write** — a page can only be programmed when
//!    its block has been erased, and only once per erase cycle.
//! 2. **Erase by block vs. write by page** — erasure is only possible at
//!    block granularity (typically 64 pages), making in-place updates and
//!    random writes prohibitively expensive.
//! 3. **Random writes are costly** — data structures "must avoid random
//!    writes" by construction.
//!
//! This crate provides:
//!
//! * [`NandFlash`] — a chip model that *enforces* the constraints: it
//!   rejects programming a non-erased page and out-of-order programming
//!   inside a block, and counts every page read, page program and block
//!   erase under a calibrated latency model ([`CostModel`]).
//! * [`BlockAllocator`] — block-grain allocation/reclamation, the only
//!   legal grain per the tutorial ("allocation & de-allocation are made on
//!   large grains (Flash block basis) … partial garbage collection never
//!   occurs").
//! * [`Log`] / [`LogWriter`] — the append-only *Log* abstraction of Part II:
//!   "pages are written sequentially (and never updated nor moved)".
//! * [`Flash`] — a cheaply clonable handle sharing one chip between the many
//!   logs of a personal data server.
//!
//! Everything is deterministic and single-threaded: the secure portable
//! token of the tutorial is a single-user, single-MCU device.

pub mod alloc;
pub mod blackbox;
pub mod changelog;
pub mod cost;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod log;
pub mod nand;
mod proptests;
pub mod stats;

pub use alloc::BlockAllocator;
pub use blackbox::{BlackBox, BlackboxRecovery, DEFAULT_FRAME_CAP};
pub use changelog::{ChangeLog, ChangeLogRecovery, ChangeRec};
pub use cost::CostModel;
pub use error::{FlashError, Result};
pub use fault::{FaultPlan, ProgramFault};
pub use geometry::{BlockId, FlashGeometry, PageAddr};
pub use log::{Log, LogReader, LogWriter, RecordAddr, RecoveryReport};
pub use nand::{ChipSnapshot, NandFlash};
pub use stats::IoStats;

use std::cell::RefCell;
use std::rc::Rc;

/// A cheaply clonable, shared handle on one NAND chip plus its block
/// allocator.
///
/// A personal data server hosts many independent log structures (key logs,
/// Bloom-filter summaries, inverted-index buckets, document stores …) on a
/// single flash chip; they all allocate blocks from the same pool and share
/// the same I/O statistics. `Flash` is the handle they share.
///
/// The simulation is single-threaded (one secure MCU), so interior
/// mutability via `RefCell` is sufficient and keeps the embedded code free
/// of lock overhead.
#[derive(Clone)]
pub struct Flash {
    inner: Rc<RefCell<FlashInner>>,
}

struct FlashInner {
    nand: NandFlash,
    alloc: BlockAllocator,
}

impl Flash {
    /// Create a chip with the given geometry and the default cost model.
    pub fn new(geo: FlashGeometry) -> Self {
        Self::with_cost(geo, CostModel::default())
    }

    /// Create a chip with an explicit latency model.
    pub fn with_cost(geo: FlashGeometry, cost: CostModel) -> Self {
        let nand = NandFlash::new(geo, cost);
        let alloc = BlockAllocator::new(geo.num_blocks());
        Flash {
            inner: Rc::new(RefCell::new(FlashInner { nand, alloc })),
        }
    }

    /// A small chip suitable for unit tests: 512-byte pages, 16 pages per
    /// block, `blocks` blocks.
    pub fn small(blocks: usize) -> Self {
        Flash::new(FlashGeometry::new(512, 16, blocks))
    }

    /// The chip geometry.
    pub fn geometry(&self) -> FlashGeometry {
        self.inner.borrow().nand.geometry()
    }

    /// Snapshot of the cumulative I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.inner.borrow().nand.stats()
    }

    /// Reset the I/O counters (used between benchmark phases).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().nand.reset_stats();
    }

    /// Number of blocks still available for allocation.
    pub fn free_blocks(&self) -> usize {
        self.inner.borrow().alloc.free_blocks()
    }

    /// Highest erase count over all blocks — the wear-leveling metric
    /// (NAND endurance is per block; the most-worn block dies first).
    pub fn max_erase_count(&self) -> u64 {
        let inner = self.inner.borrow();
        let geo = inner.nand.geometry();
        (0..geo.num_blocks() as u32)
            .map(|b| inner.nand.erase_count(BlockId(b)))
            .max()
            .unwrap_or(0)
    }

    /// Allocate one erased block, erasing it lazily if it was reclaimed.
    ///
    /// A reclaimed block whose erase fails ([`FlashError::StuckBlock`],
    /// worn-out cells) is *retired* — dropped from circulation, counted
    /// under `flash.blocks_retired` — and the next free block is tried:
    /// one bad block must not brick the token.
    pub fn alloc_block(&self) -> Result<BlockId> {
        let mut inner = self.inner.borrow_mut();
        let FlashInner { nand, alloc } = &mut *inner;
        loop {
            let bid = alloc.alloc()?;
            if nand.block_is_erased(bid) {
                return Ok(bid);
            }
            match nand.erase_block(bid) {
                Ok(()) => return Ok(bid),
                Err(FlashError::StuckBlock(_)) => {
                    alloc.retire();
                    pds_obs::counter("flash.blocks_retired").inc();
                    pds_obs::event!(
                        pds_obs::Severity::Warn,
                        pds_obs::flight::subsystem::FLASH,
                        pds_obs::flight::code::FLASH_BLOCK_RETIRED,
                        bid.0
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Return a block to the free pool. The content becomes garbage; it is
    /// erased on next allocation (block-grain reclamation, no partial GC).
    pub fn free_block(&self, bid: BlockId) {
        self.inner.borrow_mut().alloc.free(bid);
    }

    /// Read one page into `buf` (must be exactly one page long).
    pub fn read_page(&self, addr: PageAddr, buf: &mut [u8]) -> Result<()> {
        self.inner.borrow_mut().nand.read_page(addr, buf)
    }

    /// Program one page. Fails if the page is not erased or if programming
    /// would be out of order within its block.
    pub fn program_page(&self, addr: PageAddr, data: &[u8]) -> Result<()> {
        self.inner.borrow_mut().nand.program_page(addr, data)
    }

    /// Erase one block explicitly.
    pub fn erase_block(&self, bid: BlockId) -> Result<()> {
        self.inner.borrow_mut().nand.erase_block(bid)
    }

    /// Open a fresh append-only log on this chip.
    pub fn new_log(&self) -> LogWriter {
        LogWriter::new(self.clone())
    }

    // ---- faults and reboot ----------------------------------------------

    /// Install a scripted [`FaultPlan`] on the chip.
    pub fn inject_faults(&self, plan: FaultPlan) {
        pds_obs::event!(
            pds_obs::Severity::Info,
            pds_obs::flight::subsystem::FLASH,
            pds_obs::flight::code::FLASH_FAULTS_ARMED
        );
        self.inner.borrow_mut().nand.inject_faults(plan);
    }

    /// True unless an injected power loss took the chip offline.
    pub fn is_powered(&self) -> bool {
        self.inner.borrow().nand.is_powered()
    }

    /// Capture the persistent chip content (survives power loss).
    pub fn snapshot(&self) -> ChipSnapshot {
        self.inner.borrow().nand.snapshot()
    }

    /// Boot a fresh handle from persistent content: the chip state is
    /// rebuilt by scanning the cells and the allocator's free list is
    /// re-derived as "fully erased ⇒ free". Non-erased blocks start out
    /// allocated-to-nobody; each recovered structure re-adopts its own
    /// via [`LogWriter::recover`], which also frees what it truncates.
    pub fn reopen(snap: ChipSnapshot) -> Flash {
        let geo = snap.geometry();
        let free: Vec<BlockId> = (0..geo.num_blocks() as u32)
            .map(BlockId)
            .filter(|b| snap.block_is_erased(*b))
            .collect();
        let nand = NandFlash::reopen(snap);
        let alloc = BlockAllocator::with_free(geo.num_blocks(), free);
        Flash {
            inner: Rc::new(RefCell::new(FlashInner { nand, alloc })),
        }
    }

    /// Simulate a full power cycle: snapshot the cells and boot a new
    /// handle from them. The old handle keeps pointing at the dead chip.
    pub fn reboot(&self) -> Flash {
        Flash::reopen(self.snapshot())
    }

    /// Take a specific block out of the free list (recovery re-adopting
    /// a tail block the reboot scan saw as erased). Returns false if the
    /// block was not free.
    pub fn claim_block(&self, bid: BlockId) -> bool {
        self.inner.borrow_mut().alloc.claim(bid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_handle_shares_allocator() {
        let f = Flash::small(4);
        let g = f.clone();
        let total = f.free_blocks();
        let _b = f.alloc_block().unwrap();
        assert_eq!(g.free_blocks(), total - 1);
    }

    #[test]
    fn alloc_exhaustion_reports_error() {
        let f = Flash::small(2);
        f.alloc_block().unwrap();
        f.alloc_block().unwrap();
        assert!(matches!(f.alloc_block(), Err(FlashError::OutOfBlocks)));
    }

    #[test]
    fn freed_block_is_erased_on_realloc() {
        let f = Flash::small(2);
        let b = f.alloc_block().unwrap();
        let geo = f.geometry();
        let page = geo.first_page_of(b);
        f.program_page(page, &vec![7u8; geo.page_size]).unwrap();
        f.free_block(b);
        // All blocks cycle through the free list; allocating both must
        // return the dirty one erased.
        let b1 = f.alloc_block().unwrap();
        let b2 = f.alloc_block().unwrap();
        let dirty = if b1 == b { b1 } else { b2 };
        let mut buf = vec![0u8; geo.page_size];
        f.read_page(geo.first_page_of(dirty), &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0xFF), "reclaimed block not erased");
    }
}

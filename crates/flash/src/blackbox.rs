//! The durable flight recorder — a power-loss-surviving black box.
//!
//! The pds-obs event ring is RAM-only: it dies with the power, exactly
//! when its content matters most. The black box persists structured
//! [`EventFrame`]s (`{tick, severity, subsystem, code, args}` — codes
//! and ids only, never payload bytes) through the same fault-injectable
//! NAND layer as the data it describes. Frames ride ordinary
//! [`LogWriter`] record pages, so they inherit the whole flash
//! contract: strictly sequential programs, per-page CRCs, and a
//! recovery scan that truncates a torn tail to the durable prefix —
//! torn frames are *dropped*, never decoded.
//!
//! Ticks are a per-token monotone sequence stamped at absorb time, so
//! the recovered ring is always a causal prefix of the pre-crash
//! timeline: [`BlackBox::recover`] cuts at the first frame that fails
//! to decode or breaks tick monotonicity, and everything after the cut
//! is discarded with it. The ring is bounded ([`BlackBox::capacity`])
//! and wear-aware: when it overflows, the newest half is rewritten into
//! a fresh log (whole-log rewrite — partial GC never occurs on this
//! flash) whose blocks come from the allocator's normal wear rotation.
//!
//! The recorder sits *outside* the MVCC/changelog machinery on purpose:
//! it must stay appendable while those structures are mid-recovery, and
//! its loss must never imply data loss (see DESIGN.md, "Flight
//! recorder").
//!
//! Counters: `blackbox.frames_written`, `blackbox.frames_dropped`,
//! `blackbox.compactions`, `blackbox.pages_flushed`,
//! `blackbox.frames_recovered`, `blackbox.torn_tails_truncated`.

use pds_obs::flight::EventFrame;

use crate::error::Result;
use crate::geometry::BlockId;
use crate::log::LogWriter;
use crate::Flash;

/// Default bounded capacity of one token's ring, in frames.
pub const DEFAULT_FRAME_CAP: usize = 512;

/// What a [`BlackBox::recover`] scan found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlackboxRecovery {
    /// Frames recovered into the rebuilt ring (the pre-crash timeline).
    pub frames_recovered: u64,
    /// Torn pages discarded at the CRC truncation point.
    pub torn_pages_discarded: u64,
    /// 1 when a frame failed to decode or broke tick monotonicity and
    /// cut the ring there (everything after it is dropped too).
    pub malformed_dropped: u64,
}

impl BlackboxRecovery {
    /// True when the scan truncated anything — the signature of a crash
    /// mid-record, as opposed to a clean shutdown.
    pub fn truncated(&self) -> bool {
        self.torn_pages_discarded > 0 || self.malformed_dropped > 0
    }
}

/// A bounded, durably recoverable ring of [`EventFrame`]s with a RAM
/// mirror (28 B per frame) serving timeline reads without page I/O.
pub struct BlackBox {
    flash: Flash,
    log: LogWriter,
    /// RAM mirror of every exposed frame, in tick order.
    frames: Vec<EventFrame>,
    cap: usize,
    next_tick: u64,
}

impl BlackBox {
    /// An empty ring; no flash block is held until the first flush.
    pub fn new(flash: &Flash, cap: usize) -> Self {
        BlackBox {
            flash: flash.clone(),
            log: flash.new_log(),
            frames: Vec::new(),
            cap: cap.max(8),
            next_tick: 0,
        }
    }

    /// Frames currently exposed (flushed + buffered), in tick order.
    pub fn frames(&self) -> &[EventFrame] {
        &self.frames
    }

    /// Exposed frame count.
    pub fn num_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// The bounded ring capacity, in frames.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Tick of the newest frame, if any.
    pub fn last_tick(&self) -> Option<u64> {
        self.frames.last().map(|f| f.tick)
    }

    /// The erase blocks the ring occupies — its durable identity, to be
    /// carried by the layer above and handed to [`BlackBox::recover`].
    pub fn blocks(&self) -> Vec<BlockId> {
        self.log.blocks().to_vec()
    }

    /// Stamp one staged frame with the next tick and append it. When
    /// the ring overflows its capacity, the oldest half is compacted
    /// away ([`BlackBox::compact`]).
    pub fn record(&mut self, mut frame: EventFrame) -> Result<()> {
        frame.tick = self.next_tick;
        self.log.append(&frame.encode())?;
        self.next_tick += 1;
        self.frames.push(frame);
        pds_obs::counter("blackbox.frames_written").inc();
        if self.frames.len() > self.cap {
            self.compact()?;
        }
        Ok(())
    }

    /// Stamp and append a drained batch (the obs staging buffer), in
    /// order. Returns how many frames were absorbed.
    pub fn absorb(&mut self, frames: impl IntoIterator<Item = EventFrame>) -> Result<u64> {
        let mut n = 0u64;
        for f in frames {
            self.record(f)?;
            n += 1;
        }
        Ok(n)
    }

    /// Durably flush buffered frames to flash.
    pub fn flush(&mut self) -> Result<()> {
        let before = self.log.num_pages();
        self.log.flush()?;
        let pages = u64::from(self.log.num_pages() - before);
        if pages > 0 {
            pds_obs::counter("blackbox.pages_flushed").add(pages);
        }
        Ok(())
    }

    /// Every frame with a tick at or after `from`, in tick order — the
    /// timeline read forensics is built on.
    pub fn frames_since(&self, from: u64) -> &[EventFrame] {
        let at = self.frames.partition_point(|f| f.tick < from);
        &self.frames[at..]
    }

    /// Drop the oldest half of the ring by rewriting the newest half
    /// into a fresh log and returning the old blocks to the pool
    /// (append-only structures compact by whole-log rewrite; the fresh
    /// blocks come from the allocator's wear rotation, so a chatty
    /// recorder cannot pin one block until it dies). The survivors are
    /// made durable before the old blocks are freed — compaction never
    /// narrows durable history.
    fn compact(&mut self) -> Result<()> {
        let keep_from = self.frames.len() / 2;
        let mut fresh = self.flash.new_log();
        for f in &self.frames[keep_from..] {
            fresh.append(&f.encode())?;
        }
        fresh.flush()?;
        pds_obs::counter("blackbox.pages_flushed").add(u64::from(fresh.num_pages()));
        let old = std::mem::replace(&mut self.log, fresh);
        old.discard();
        let dropped = keep_from as u64;
        self.frames.drain(..keep_from);
        pds_obs::counter("blackbox.compactions").inc();
        pds_obs::counter("blackbox.frames_dropped").add(dropped);
        Ok(())
    }

    /// Rebuild a ring after a power loss from its block list. The page
    /// scan is [`LogWriter::recover`] (CRC-checked, torn tail
    /// truncated); on top of it, any frame that fails to decode or
    /// breaks strict tick monotonicity cuts the ring there — the
    /// recovered timeline is always a causal prefix of the pre-crash
    /// history, and torn bytes are never decoded into phantom events.
    pub fn recover(
        flash: &Flash,
        blocks: &[BlockId],
        cap: usize,
    ) -> Result<(BlackBox, BlackboxRecovery)> {
        let (log, rep) = LogWriter::recover(flash, blocks)?;
        let mut frames: Vec<EventFrame> = Vec::new();
        let mut malformed = 0u64;
        'pages: for page in 0..log.num_pages() {
            for bytes in log.read_page_records(page)? {
                let parsed = EventFrame::decode(&bytes);
                let monotone = match (&parsed, frames.last()) {
                    (Some(f), Some(last)) => f.tick > last.tick,
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                match parsed {
                    Some(f) if monotone => frames.push(f),
                    _ => {
                        malformed = 1;
                        break 'pages;
                    }
                }
            }
        }
        let report = BlackboxRecovery {
            frames_recovered: frames.len() as u64,
            torn_pages_discarded: rep.torn_pages_discarded,
            malformed_dropped: malformed,
        };
        pds_obs::counter("blackbox.frames_recovered").add(report.frames_recovered);
        if report.truncated() {
            pds_obs::counter("blackbox.torn_tails_truncated").inc();
        }
        let next_tick = frames.last().map_or(0, |f| f.tick + 1);
        Ok((
            BlackBox {
                flash: flash.clone(),
                log,
                frames,
                cap: cap.max(8),
                next_tick,
            },
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::flight::{code, subsystem, Severity};

    fn frame(code16: u16, a: u64) -> EventFrame {
        EventFrame::new(Severity::Info, subsystem::CORE, code16, [a, 0])
    }

    #[test]
    fn record_stamps_a_monotone_tick_sequence() {
        let f = Flash::small(16);
        let mut bb = BlackBox::new(&f, 64);
        for k in 0..10u64 {
            bb.record(frame(code::CORE_INGEST, k)).unwrap();
        }
        assert_eq!(bb.num_frames(), 10);
        let ticks: Vec<u64> = bb.frames().iter().map(|fr| fr.tick).collect();
        assert_eq!(ticks, (0..10).collect::<Vec<_>>());
        assert_eq!(bb.frames_since(7).len(), 3);
        assert_eq!(bb.last_tick(), Some(9));
    }

    #[test]
    fn recover_returns_the_durable_prefix() {
        let f = Flash::small(16);
        let mut bb = BlackBox::new(&f, 1024);
        for k in 0..200u64 {
            bb.record(frame(code::CORE_INGEST, k)).unwrap();
        }
        bb.flush().unwrap();
        let durable: Vec<EventFrame> = bb.frames().to_vec();
        // Buffered-only frames die with RAM.
        bb.record(frame(code::CORE_COMMIT, 777)).unwrap();
        let blocks = bb.blocks();

        let f2 = f.reboot();
        let (rec, report) = BlackBox::recover(&f2, &blocks, 1024).unwrap();
        assert_eq!(report.frames_recovered, durable.len() as u64);
        assert_eq!(rec.frames(), &durable[..], "durable prefix verbatim");
        assert!(!report.truncated(), "clean flush: nothing torn");
        assert_eq!(rec.last_tick(), Some(199));
    }

    #[test]
    fn recovered_ring_keeps_stamping_after_the_prefix() {
        let f = Flash::small(16);
        let mut bb = BlackBox::new(&f, 64);
        for k in 0..5u64 {
            bb.record(frame(code::CORE_INGEST, k)).unwrap();
        }
        bb.flush().unwrap();
        let blocks = bb.blocks();
        let f2 = f.reboot();
        let (mut rec, _) = BlackBox::recover(&f2, &blocks, 64).unwrap();
        rec.record(frame(code::CORE_SYNC, 0)).unwrap();
        assert_eq!(rec.last_tick(), Some(5), "ticks continue past recovery");
    }

    #[test]
    fn overflow_compacts_to_the_newest_half_and_frees_blocks() {
        let f = Flash::small(64);
        let before = f.free_blocks();
        let mut bb = BlackBox::new(&f, 64);
        for k in 0..500u64 {
            bb.record(frame(code::CORE_INGEST, k)).unwrap();
        }
        assert!(bb.num_frames() <= 64, "ring stays bounded");
        // The surviving window is the newest frames, ticks intact.
        let last = bb.frames().last().unwrap();
        assert_eq!(last.tick, 499);
        assert_eq!(last.args[0], 499);
        let ticks: Vec<u64> = bb.frames().iter().map(|fr| fr.tick).collect();
        assert!(ticks.windows(2).all(|w| w[0] < w[1]), "monotone survivors");
        // Compaction returned old blocks: the ring occupies a bounded
        // number of blocks no matter how much was recorded through it.
        bb.flush().unwrap();
        assert!(
            before - f.free_blocks() <= 2,
            "ring pinned {} blocks",
            before - f.free_blocks()
        );
        // And the compacted ring still recovers verbatim.
        let durable: Vec<EventFrame> = bb.frames().to_vec();
        let blocks = bb.blocks();
        let f2 = f.reboot();
        let (rec, _) = BlackBox::recover(&f2, &blocks, 64).unwrap();
        assert_eq!(rec.frames(), &durable[..]);
    }

    #[test]
    fn torn_tail_truncates_and_never_decodes() {
        for cut_after in [1u64, 3, 7, 11] {
            let f = Flash::small(16);
            let mut bb = BlackBox::new(&f, 1024);
            // A durable prefix, then a fault plan that cuts the power
            // mid-flush of the next burst.
            for k in 0..40u64 {
                bb.record(frame(code::CORE_INGEST, k)).unwrap();
            }
            bb.flush().unwrap();
            let durable: Vec<EventFrame> = bb.frames().to_vec();
            f.inject_faults(crate::FaultPlan::new(0xB0 + cut_after).power_loss_after(cut_after));
            let mut burst = 40u64;
            let crashed = loop {
                if burst == 4000 {
                    break false;
                }
                let r = bb
                    .record(frame(code::CORE_INGEST, burst))
                    .and_then(|()| bb.flush());
                match r {
                    Ok(()) => burst += 1,
                    Err(_) => break true,
                }
            };
            assert!(crashed, "cut_after {cut_after}: cut never fired");
            let blocks = bb.blocks();
            let f2 = f.reboot();
            let (rec, report) = BlackBox::recover(&f2, &blocks, 1024).unwrap();
            assert_eq!(report.frames_recovered, rec.num_frames());
            // The recovered timeline is a causal prefix: at least the
            // durable prefix, never a frame that was not recorded.
            assert!(rec.num_frames() >= durable.len() as u64, "prefix lost");
            assert_eq!(
                &rec.frames()[..durable.len()],
                &durable[..],
                "cut_after {cut_after}: durable prefix rewritten"
            );
            let ticks: Vec<u64> = rec.frames().iter().map(|fr| fr.tick).collect();
            assert!(ticks.windows(2).all(|w| w[0] < w[1]), "non-monotone tail");
            for fr in rec.frames() {
                assert!(fr.args[0] < burst, "phantom frame {fr:?}");
            }
        }
    }

    #[test]
    fn a_non_monotone_frame_cuts_the_ring_there() {
        // Hand-craft a log whose tail breaks tick monotonicity: the
        // recovered ring must stop at the break, dropping everything
        // after it (a causal prefix, not a best-effort salvage).
        let f = Flash::small(16);
        let mut log = f.new_log();
        for tick in [1u64, 2, 3, 9, 4, 10] {
            let mut fr = frame(code::CORE_INGEST, tick);
            fr.tick = tick;
            log.append(&fr.encode()).unwrap();
        }
        log.flush().unwrap();
        let blocks = log.blocks().to_vec();
        let f2 = f.reboot();
        let (rec, report) = BlackBox::recover(&f2, &blocks, 64).unwrap();
        assert_eq!(rec.num_frames(), 4, "1,2,3,9 kept; 4 cuts; 10 dropped");
        assert_eq!(report.malformed_dropped, 1);
        assert!(report.truncated());
        assert_eq!(rec.last_tick(), Some(9));
    }

    #[test]
    fn junk_records_cut_the_ring() {
        let f = Flash::small(16);
        let mut log = f.new_log();
        log.append(&frame(code::CORE_INGEST, 0).encode()).unwrap();
        log.append(b"not a frame").unwrap();
        log.append(&frame(code::CORE_INGEST, 2).encode()).unwrap();
        log.flush().unwrap();
        let blocks = log.blocks().to_vec();
        let f2 = f.reboot();
        let (rec, report) = BlackBox::recover(&f2, &blocks, 64).unwrap();
        assert_eq!(rec.num_frames(), 1);
        assert_eq!(report.malformed_dropped, 1);
    }
}

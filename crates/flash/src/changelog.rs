//! The durable HLC change log — the storage half of the MVCC subsystem.
//!
//! Every committed write batch of a personal data server is described by
//! a run of [`ChangeRec`]s stamped with the commit's hybrid logical
//! clock. The records ride ordinary [`LogWriter`] record pages, so they
//! inherit the whole flash contract for free: strictly sequential
//! programs, per-page CRCs, and a recovery scan that truncates a torn
//! tail to the durable prefix ([`ChangeLog::recover`]).
//!
//! The log answers one question — `changes_since(h)` — which is what
//! both consumers of the subsystem are built on: continuous queries
//! re-evaluate standing predicates over the records after their cursor,
//! and delta sync ships "changes since HLC h" instead of full state.
//!
//! Stamps here are raw `(counter, node)` pairs: the typed `Hlc` clock
//! lives in `pds-db`, which this crate sits *below* in the layering
//! matrix. Records are appended in strictly increasing stamp order
//! (enforced — [`FlashError::OutOfOrderChange`]), so `changes_since` is
//! a binary search over the RAM mirror, and the durable prefix after a
//! power loss is always a causal prefix of history.

use crate::error::{FlashError, Result};
use crate::geometry::BlockId;
use crate::log::LogWriter;
use crate::Flash;

/// One committed change: "entity `entity` of store `store` changed at
/// HLC `(hlc, node)`". `kind` is a caller-defined discriminant (row
/// insert, document append, …) the storage layer never interprets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeRec {
    /// HLC logical counter of the commit.
    pub hlc: u64,
    /// Node id of the committing token (HLC tie-break).
    pub node: u32,
    /// Caller-defined change kind.
    pub kind: u8,
    /// Caller-defined store id (table index, document store, …).
    pub store: u16,
    /// Entity within the store (rowid / docid).
    pub entity: u32,
}

/// Fixed wire size of one encoded record.
const REC_BYTES: usize = 19;

impl ChangeRec {
    /// The record's stamp, ordered lexicographically.
    pub fn stamp(&self) -> (u64, u32) {
        (self.hlc, self.node)
    }

    /// Fixed 19-byte wire form.
    pub fn encode(&self) -> [u8; REC_BYTES] {
        let mut out = [0u8; REC_BYTES];
        out[0..8].copy_from_slice(&self.hlc.to_le_bytes());
        out[8..12].copy_from_slice(&self.node.to_le_bytes());
        out[12] = self.kind;
        out[13..15].copy_from_slice(&self.store.to_le_bytes());
        out[15..19].copy_from_slice(&self.entity.to_le_bytes());
        out
    }

    /// Parse the wire form; `None` on any size mismatch.
    pub fn decode(bytes: &[u8]) -> Option<ChangeRec> {
        if bytes.len() != REC_BYTES {
            return None;
        }
        Some(ChangeRec {
            hlc: u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?),
            node: u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?),
            kind: *bytes.get(12)?,
            store: u16::from_le_bytes(bytes.get(13..15)?.try_into().ok()?),
            entity: u32::from_le_bytes(bytes.get(15..19)?.try_into().ok()?),
        })
    }
}

/// What a [`ChangeLog::recover`] scan found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeLogRecovery {
    /// Records recovered into the rebuilt log.
    pub records_recovered: u64,
    /// Torn pages discarded at the truncation point.
    pub torn_pages_discarded: u64,
    /// Records dropped because they failed to decode or broke stamp
    /// monotonicity (everything after the first such record is dropped
    /// too — the log only ever exposes a causal prefix).
    pub malformed_dropped: u64,
}

/// An appendable, durably recoverable log of [`ChangeRec`]s with a RAM
/// mirror (19 B per record) serving `changes_since` without page I/O.
pub struct ChangeLog {
    flash: Flash,
    log: LogWriter,
    /// RAM mirror of every exposed record, in stamp order.
    records: Vec<ChangeRec>,
}

impl ChangeLog {
    /// An empty change log; no flash block is held until the first flush.
    pub fn new(flash: &Flash) -> Self {
        ChangeLog {
            flash: flash.clone(),
            log: flash.new_log(),
            records: Vec::new(),
        }
    }

    /// Records currently exposed (flushed + buffered).
    pub fn num_records(&self) -> u64 {
        self.records.len() as u64
    }

    /// Stamp of the newest record, if any.
    pub fn last_stamp(&self) -> Option<(u64, u32)> {
        self.records.last().map(ChangeRec::stamp)
    }

    /// Every exposed record, in stamp order (the RAM mirror). Replay
    /// input for layers rebuilding their version marks after recovery.
    pub fn records(&self) -> &[ChangeRec] {
        &self.records
    }

    /// The erase blocks the log occupies — its durable identity, to be
    /// persisted by the layer above and handed to [`ChangeLog::recover`].
    pub fn blocks(&self) -> Vec<BlockId> {
        self.log.blocks().to_vec()
    }

    /// Append one record. Stamps must be non-decreasing — all records of
    /// one commit share its stamp, and later commits stamp strictly
    /// higher. Appending below [`last_stamp`](Self::last_stamp) is
    /// refused with [`FlashError::OutOfOrderChange`].
    pub fn append(&mut self, rec: ChangeRec) -> Result<()> {
        if let Some(last) = self.last_stamp() {
            if rec.stamp() < last {
                return Err(FlashError::OutOfOrderChange);
            }
        }
        self.log.append(&rec.encode())?;
        self.records.push(rec);
        pds_obs::counter("mvcc.changes_logged").inc();
        Ok(())
    }

    /// Durably flush buffered records to flash.
    pub fn flush(&mut self) -> Result<()> {
        self.log.flush()
    }

    /// Every record with a stamp strictly greater than `(hlc, node)`, in
    /// stamp order. This is the read the whole subsystem serves:
    /// consumers keep a cursor stamp and receive each committed change
    /// exactly once.
    pub fn changes_since(&self, hlc: u64, node: u32) -> Vec<ChangeRec> {
        let from = self.records.partition_point(|r| r.stamp() <= (hlc, node));
        self.records[from..].to_vec()
    }

    /// Drop the suffix of records starting at the first one `keep`
    /// rejects; returns how many were dropped. Used after recovery to
    /// discard *phantom* records — records whose commit stamp survived
    /// the crash but whose data rows did not — so `changes_since` never
    /// names an entity newer than the recovered store. The flash pages
    /// still hold the dropped bytes; the next [`compact`](Self::compact)
    /// rewrites them away.
    pub fn retain_prefix(&mut self, keep: impl Fn(&ChangeRec) -> bool) -> u64 {
        let cut = self
            .records
            .iter()
            .position(|r| !keep(r))
            .unwrap_or(self.records.len());
        let dropped = (self.records.len() - cut) as u64;
        self.records.truncate(cut);
        dropped
    }

    /// Compact against a GC floor: rewrite every record with a stamp
    /// strictly greater than `(hlc, node)` into a fresh log and return
    /// the old blocks to the pool (append-only structures compact by
    /// whole-log rewrite — partial GC never occurs on this flash).
    /// Returns the number of records dropped.
    pub fn compact(&mut self, hlc: u64, node: u32) -> Result<u64> {
        let keep = self.records.partition_point(|r| r.stamp() <= (hlc, node));
        let dropped = keep as u64;
        let mut fresh = self.flash.new_log();
        for rec in &self.records[keep..] {
            fresh.append(&rec.encode())?;
        }
        // Make the survivors durable before the old blocks go back to the
        // pool — compaction must never narrow the durable history.
        fresh.flush()?;
        let old = std::mem::replace(&mut self.log, fresh);
        old.discard();
        self.records.drain(..keep);
        pds_obs::counter("mvcc.changes_compacted").add(dropped);
        Ok(dropped)
    }

    /// Rebuild a change log after a power loss from its block list. The
    /// page scan is [`LogWriter::recover`] (CRC-checked, torn tail
    /// truncated); on top of it, any record that fails to decode or
    /// breaks stamp monotonicity cuts the log there — the recovered log
    /// is always a causal prefix of the pre-crash history, so
    /// `changes_since` can never return a record the durable stores have
    /// no data for (phantoms from *lost data rows* are the caller's cut,
    /// via [`retain_prefix`](Self::retain_prefix)).
    pub fn recover(flash: &Flash, blocks: &[BlockId]) -> Result<(ChangeLog, ChangeLogRecovery)> {
        let (log, rep) = LogWriter::recover(flash, blocks)?;
        let mut records: Vec<ChangeRec> = Vec::new();
        let mut malformed = 0u64;
        'pages: for page in 0..log.num_pages() {
            for bytes in log.read_page_records(page)? {
                let parsed = ChangeRec::decode(&bytes);
                let monotone = match (&parsed, records.last()) {
                    (Some(rec), Some(last)) => rec.stamp() >= last.stamp(),
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                match parsed {
                    Some(rec) if monotone => records.push(rec),
                    _ => {
                        malformed = 1;
                        break 'pages;
                    }
                }
            }
        }
        let report = ChangeLogRecovery {
            records_recovered: records.len() as u64,
            torn_pages_discarded: rep.torn_pages_discarded,
            malformed_dropped: malformed,
        };
        pds_obs::counter("recovery.changes_recovered").add(report.records_recovered);
        Ok((
            ChangeLog {
                flash: flash.clone(),
                log,
                records,
            },
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(hlc: u64, store: u16, entity: u32) -> ChangeRec {
        ChangeRec {
            hlc,
            node: 7,
            kind: 1,
            store,
            entity,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = ChangeRec {
            hlc: u64::MAX - 3,
            node: 0xDEAD_BEEF,
            kind: 2,
            store: 0xFFFF,
            entity: 41,
        };
        assert_eq!(ChangeRec::decode(&r.encode()), Some(r));
        assert_eq!(ChangeRec::decode(&[0u8; 5]), None);
        assert_eq!(ChangeRec::decode(&[0u8; REC_BYTES + 1]), None);
    }

    #[test]
    fn changes_since_is_strictly_after_the_cursor() {
        let f = Flash::small(16);
        let mut log = ChangeLog::new(&f);
        for i in 1..=10u64 {
            log.append(rec(i, 0, i as u32)).unwrap();
        }
        assert_eq!(log.changes_since(0, 0).len(), 10);
        assert_eq!(log.changes_since(10, 7).len(), 0);
        let tail = log.changes_since(7, 7);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].hlc, 8);
        // Node tie-break: cursor below the node sees the same-counter record.
        assert_eq!(log.changes_since(7, 0).len(), 4);
    }

    #[test]
    fn out_of_order_append_is_refused() {
        let f = Flash::small(16);
        let mut log = ChangeLog::new(&f);
        log.append(rec(5, 0, 0)).unwrap();
        // Equal stamp = same commit: allowed.
        log.append(rec(5, 0, 1)).unwrap();
        assert_eq!(
            log.append(rec(4, 0, 2)).unwrap_err(),
            FlashError::OutOfOrderChange
        );
        log.append(rec(6, 0, 2)).unwrap();
        assert_eq!(log.num_records(), 3);
        // A multi-record commit is returned whole or not at all.
        assert_eq!(log.changes_since(4, u32::MAX).len(), 3);
        assert_eq!(log.changes_since(5, 7).len(), 1);
    }

    #[test]
    fn recover_returns_the_durable_prefix() {
        let f = Flash::small(16);
        let mut log = ChangeLog::new(&f);
        for i in 1..=200u64 {
            log.append(rec(i, 1, i as u32)).unwrap();
        }
        log.flush().unwrap();
        let durable = log.num_records();
        // Buffered-only records die with RAM.
        log.append(rec(201, 1, 201)).unwrap();
        let blocks = log.blocks();

        let f2 = f.reboot();
        let (rec2, report) = ChangeLog::recover(&f2, &blocks).unwrap();
        assert_eq!(rec2.num_records(), durable);
        assert_eq!(report.records_recovered, durable);
        assert_eq!(rec2.last_stamp(), Some((200, 7)));
        assert_eq!(rec2.changes_since(150, 7).len(), 50);
    }

    #[test]
    fn compact_drops_old_records_and_frees_blocks() {
        let f = Flash::small(64);
        let before = f.free_blocks();
        let mut log = ChangeLog::new(&f);
        for i in 1..=2000u64 {
            log.append(rec(i, 0, i as u32)).unwrap();
        }
        log.flush().unwrap();
        assert!(f.free_blocks() < before);
        let dropped = log.compact(1500, u32::MAX).unwrap();
        assert_eq!(dropped, 1500);
        assert_eq!(log.num_records(), 500);
        assert_eq!(log.changes_since(0, 0).len(), 500);
        // The rewritten log still recovers.
        log.flush().unwrap();
        let blocks = log.blocks();
        let f2 = f.reboot();
        let (rec2, _) = ChangeLog::recover(&f2, &blocks).unwrap();
        assert_eq!(rec2.num_records(), 500);
        assert_eq!(rec2.changes_since(0, 0)[0].hlc, 1501);
    }

    #[test]
    fn retain_prefix_cuts_at_first_rejected_record() {
        let f = Flash::small(16);
        let mut log = ChangeLog::new(&f);
        for i in 1..=10u64 {
            log.append(rec(i, 0, i as u32)).unwrap();
        }
        // Entities 1..=6 survived the crash; 7 and everything after is cut.
        let dropped = log.retain_prefix(|r| r.entity <= 6);
        assert_eq!(dropped, 4);
        assert_eq!(log.last_stamp(), Some((6, 7)));
    }
}

//! Deterministic fault injection for the NAND model.
//!
//! Real NAND can lose power mid-program (leaving a *torn* page), wear
//! out (blocks whose erase never completes), and flip bits on read
//! (transient disturb errors corrected — or not — by ECC). The seed
//! tutorial hardware is battery-less and hot-unpluggable: a secure
//! MicroSD token is yanked from its reader whenever the user walks away,
//! so mid-program power loss is the *common* case, not the exotic one.
//!
//! A [`FaultPlan`] scripts these events deterministically from a seed
//! (via `pds_obs::rng`, the workspace PRNG) so every crash scenario is
//! bit-reproducible. The chip consults the plan on each primitive:
//!
//! * **power loss** — after N successful programs, the (N+1)-th program
//!   is processed partially: either a random prefix of the page reaches
//!   the cells (*torn page*) or nothing does (*silently dropped*). The
//!   chip then goes offline — every primitive returns
//!   [`FlashError::PowerLoss`] until the host reboots it.
//! * **stuck blocks** — `erase_block` on a scripted block fails with
//!   [`FlashError::StuckBlock`]; the allocator retires it.
//! * **read disturb** — with probability `p`, one random bit of a read
//!   buffer is flipped. Transient: the stored cells are untouched, a
//!   re-read may succeed.
//!
//! Every injected fault increments the `flash.faults_injected` counter
//! so JSONL exports show how hostile the simulated environment was.

use std::sync::Arc;

use pds_obs::rng::{Rng, SeedableRng, StdRng};

/// What happened to a program operation that hit a power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramFault {
    /// The program completed normally.
    None,
    /// Power failed mid-program: only the first `prefix` bytes of the
    /// page reached the cells; the rest still reads erased (0xFF).
    Torn { prefix: usize },
    /// Power failed before any cell was touched: the page stays erased.
    Dropped,
}

/// A deterministic, seeded schedule of hardware faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: StdRng,
    /// Successful programs remaining before the power cut (`None` =
    /// power never fails).
    programs_until_cut: Option<u64>,
    /// Per-read probability of a transient single-bit flip.
    read_flip_prob: f64,
    /// Blocks whose erase is scripted to fail.
    stuck_blocks: Vec<u32>,
}

/// Process-wide count of injected faults (torn/dropped programs, bit
/// flips, stuck erases).
pub(crate) fn faults_injected() -> Arc<pds_obs::Counter> {
    pds_obs::counter("flash.faults_injected")
}

impl FaultPlan {
    /// A benign plan (no faults) with a deterministic RNG for the
    /// faults other constructors enable.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            programs_until_cut: None,
            read_flip_prob: 0.0,
            stuck_blocks: Vec::new(),
        }
    }

    /// Cut power on the `n+1`-th page program from now: that program is
    /// processed partially (torn or dropped, chosen by the seed) and the
    /// chip goes offline.
    pub fn power_loss_after(mut self, n: u64) -> Self {
        self.programs_until_cut = Some(n);
        self
    }

    /// Flip one random bit of a read buffer with probability `p` per
    /// read (transient read disturb).
    pub fn read_flips(mut self, p: f64) -> Self {
        // pds-lint: allow(panic.assert) — fault-plan builder is test-harness
        // scripting; the probability is an experimenter-chosen constant.
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]");
        self.read_flip_prob = p;
        self
    }

    /// Script `block` to fail every erase (worn out).
    pub fn stuck_block(mut self, block: u32) -> Self {
        self.stuck_blocks.push(block);
        self
    }

    /// Consult the plan before a page program of `page_size` bytes.
    pub(crate) fn on_program(&mut self, page_size: usize) -> ProgramFault {
        match self.programs_until_cut {
            Some(0) => {
                faults_injected().inc();
                // Torn vs dropped, and the torn prefix length, come from
                // the seeded stream: reproducible per plan.
                if self.rng.gen_bool(0.5) {
                    ProgramFault::Torn {
                        prefix: self.rng.gen_range(1usize..page_size.max(2)),
                    }
                } else {
                    ProgramFault::Dropped
                }
            }
            Some(ref mut n) => {
                *n -= 1;
                ProgramFault::None
            }
            None => ProgramFault::None,
        }
    }

    /// Consult the plan after a page read; may flip one bit of `buf`.
    pub(crate) fn on_read(&mut self, buf: &mut [u8]) {
        if self.read_flip_prob > 0.0 && self.rng.gen_bool(self.read_flip_prob) {
            let bit = self.rng.gen_range(0usize..buf.len() * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
            faults_injected().inc();
        }
    }

    /// Consult the plan before erasing `block`.
    pub(crate) fn on_erase(&mut self, block: u32) -> bool {
        if self.stuck_blocks.contains(&block) {
            faults_injected().inc();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_cut_fires_after_exactly_n_programs() {
        let mut plan = FaultPlan::new(1).power_loss_after(3);
        assert_eq!(plan.on_program(512), ProgramFault::None);
        assert_eq!(plan.on_program(512), ProgramFault::None);
        assert_eq!(plan.on_program(512), ProgramFault::None);
        assert_ne!(plan.on_program(512), ProgramFault::None);
    }

    #[test]
    fn cut_outcome_is_deterministic_per_seed() {
        let outcome = |seed| {
            let mut p = FaultPlan::new(seed).power_loss_after(0);
            p.on_program(512)
        };
        assert_eq!(outcome(7), outcome(7));
    }

    #[test]
    fn read_flips_touch_exactly_one_bit() {
        let mut plan = FaultPlan::new(3).read_flips(1.0);
        let clean = vec![0u8; 64];
        let mut buf = clean.clone();
        plan.on_read(&mut buf);
        let flipped: u32 = buf
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn stuck_blocks_fail_erase_and_count() {
        let before = faults_injected().get();
        let mut plan = FaultPlan::new(9).stuck_block(4);
        assert!(!plan.on_erase(3));
        assert!(plan.on_erase(4));
        assert!(faults_injected().get() > before);
    }
}

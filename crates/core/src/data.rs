//! The heterogeneous personal-data model and its generators.
//!
//! "Personal data is heterogeneous: structured/unstructured data …
//! records of transactions, clickstream data, bookmarks, bills, profiles"
//! — the PDS integrates it all. Three record families cover the
//! tutorial's running scenarios (banking, health care, e-mail), each with
//! a fixed relational schema plus free text routed to the search engine.

use pds_db::value::{ColumnType, Schema};
use pds_obs::rng::Rng;

/// Health-record categories (the social-medical folder's vocabulary).
pub const HEALTH_CATEGORIES: &[&str] = &[
    "blood-pressure",
    "weight",
    "glucose",
    "prescription",
    "consultation",
    "vaccination",
];

/// Bank-record categories.
pub const BANK_CATEGORIES: &[&str] = &[
    "salary",
    "rent",
    "groceries",
    "transport",
    "health",
    "leisure",
];

/// Newtype aid for generated health categories.
pub type HealthCategory = &'static str;
/// Newtype aid for generated bank categories.
pub type BankCategory = &'static str;

/// Table name of the email collection.
pub const EMAIL_TABLE: &str = "EMAIL";
/// Table name of the health collection.
pub const HEALTH_TABLE: &str = "HEALTH";
/// Table name of the bank collection.
pub const BANK_TABLE: &str = "BANK";

/// Schema of `EMAIL(day, sender, subject, docid)`.
pub fn email_schema() -> Schema {
    Schema::new(&[
        ("day", ColumnType::U64),
        ("sender", ColumnType::Str),
        ("subject", ColumnType::Str),
        ("docid", ColumnType::U64),
    ])
}

/// Schema of `HEALTH(day, category, measure, docid)`.
pub fn health_schema() -> Schema {
    Schema::new(&[
        ("day", ColumnType::U64),
        ("category", ColumnType::Str),
        ("measure", ColumnType::U64),
        ("docid", ColumnType::U64),
    ])
}

/// Schema of `BANK(day, category, amount_cents, counterparty)`.
pub fn bank_schema() -> Schema {
    Schema::new(&[
        ("day", ColumnType::U64),
        ("category", ColumnType::Str),
        ("amount_cents", ColumnType::U64),
        ("counterparty", ColumnType::Str),
    ])
}

/// A generated synthetic life: what a PDS accumulates. Used by tests,
/// examples and the global-computation experiments.
#[derive(Debug, Clone)]
pub struct SyntheticLife {
    /// (day, sender, subject, body) emails.
    pub emails: Vec<(u64, String, String, String)>,
    /// (day, category, measure, note) health records.
    pub health: Vec<(u64, &'static str, u64, String)>,
    /// (day, category, amount_cents, counterparty) bank records.
    pub bank: Vec<(u64, &'static str, u64, String)>,
}

/// Generate `days` days of synthetic personal data.
pub fn synthetic_life(days: u64, rng: &mut impl Rng) -> SyntheticLife {
    let senders = ["bank", "employer", "dr.martin", "newsletter", "family"];
    let topics = [
        "appointment reminder",
        "monthly statement",
        "blood test results",
        "holiday plans",
        "invoice due",
    ];
    let mut life = SyntheticLife {
        emails: Vec::new(),
        health: Vec::new(),
        bank: Vec::new(),
    };
    for day in 0..days {
        // ~2 emails/day.
        for _ in 0..rng.gen_range(1..=3) {
            let s = senders[rng.gen_range(0..senders.len())];
            let t = topics[rng.gen_range(0..topics.len())];
            life.emails.push((
                day,
                s.to_string(),
                t.to_string(),
                format!("message from {s} about {t} on day {day}"),
            ));
        }
        // Health measurement most days.
        if rng.gen_bool(0.7) {
            let c = HEALTH_CATEGORIES[rng.gen_range(0..HEALTH_CATEGORIES.len())];
            life.health.push((
                day,
                c,
                rng.gen_range(50..200),
                format!("{c} measurement recorded"),
            ));
        }
        // A transaction or two.
        for _ in 0..rng.gen_range(0..=2) {
            let c = BANK_CATEGORIES[rng.gen_range(0..BANK_CATEGORIES.len())];
            life.bank.push((
                day,
                c,
                rng.gen_range(500..200_000),
                format!("shop-{}", rng.gen_range(0..20)),
            ));
        }
    }
    life
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    #[test]
    fn schemas_have_expected_columns() {
        assert_eq!(email_schema().arity(), 4);
        assert_eq!(health_schema().column_index("category"), Some(1));
        assert_eq!(bank_schema().column_index("amount_cents"), Some(2));
    }

    #[test]
    fn synthetic_life_is_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let life = synthetic_life(30, &mut rng);
        assert!(life.emails.len() >= 30, "at least one email a day");
        assert!(!life.health.is_empty());
        assert!(life.emails.iter().all(|(d, ..)| *d < 30));
        assert!(life
            .health
            .iter()
            .all(|(_, c, ..)| HEALTH_CATEGORIES.contains(c)));
    }
}

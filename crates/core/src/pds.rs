//! The Personal Data Server node.
//!
//! One [`Pds`] = one individual's secure portable token running the full
//! embedded stack. The public API is the *query gateway*: every entry
//! point takes an [`AccessContext`] (who is asking, and why), evaluates
//! the privacy policy, audits the decision, and only then computes the
//! authorized result with the embedded engines — raw data never crosses
//! the tamper-resistant boundary unevaluated.

use std::collections::BTreeMap;

use pds_crypto::SymmetricKey;
use pds_db::mvcc::{kind, DOC_STORE};
use pds_db::value::Value;
use pds_db::{Database, DatabaseManifest, GcReport, Hlc, Predicate, Row, RowId, Snapshot};
use pds_flash::{BlackBox, BlockId, ChangeRec, FlashError, DEFAULT_FRAME_CAP};
use pds_mcu::{Token, TokenId, TokenSleep};
use pds_obs::flight::{self, code, subsystem, Severity};
use pds_search::{DfStrategy, EngineManifest, SearchEngine, SearchHit};

use crate::audit::{AuditLog, Decision};
use crate::forensics::ForensicsReport;

/// What [`Pds::reopen`] recovered after a power loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReopenReport {
    /// Documents intact after the crash.
    pub docs_recovered: u32,
    /// Documents lost (never fully reached flash).
    pub docs_lost: u32,
    /// Deletions re-applied from the durable tombstone log.
    pub tombstones_applied: u64,
    /// Per-table `(name, rows_lost)`.
    pub rows_lost: Vec<(String, u32)>,
    /// Change records dropped from the HLC log because the rows they
    /// stamped did not survive (`changes_since` never names an entity
    /// the recovered stores cannot serve).
    pub changes_dropped: u64,
}

/// A standing query on one table: its predicate is re-evaluated against
/// every commit after `cursor`, so a poller observes each committed
/// change exactly once.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// Watched table.
    pub table: String,
    /// The standing predicate.
    pub pred: Predicate,
    /// Stamp of the newest commit already delivered.
    pub cursor: Hlc,
}
use crate::data::{
    bank_schema, email_schema, health_schema, BANK_TABLE, EMAIL_TABLE, HEALTH_TABLE,
};

/// A powered-down PDS: the token's persistent silicon plus the recovery
/// manifests and RAM-carried metadata [`Pds::hibernate`] captured. Holds
/// no `Rc` flash handle and no live engine state — plain data a
/// scheduler can park by the hundred thousand and revive with
/// [`Pds::wake`].
pub struct PdsHibernation {
    sleep: TokenSleep,
    owner: String,
    engine_manifest: EngineManifest,
    db_manifest: DatabaseManifest,
    policy: PolicySet,
    audit: AuditLog,
    owner_key: SymmetricKey,
    protocol_key: Option<SymmetricKey>,
    clock_day: u64,
    subs: BTreeMap<u32, Subscription>,
    next_sub: u32,
    /// The flight-recorder ring's durable identity (a hibernation holds
    /// no flash handle; the ring is recovered from its blocks on wake).
    blackbox_blocks: Vec<BlockId>,
    blackbox_cap: usize,
}

impl PdsHibernation {
    /// The hibernated token's identity.
    pub fn id(&self) -> TokenId {
        self.sleep.id()
    }

    /// Approximate parked footprint: bytes of the sparse chip snapshot
    /// (the manifests and metadata are small next to it).
    pub fn resident_bytes(&self) -> usize {
        self.sleep.resident_bytes()
    }
}
use crate::error::PdsError;
use crate::policy::{Action, Collection, PolicySet, Purpose, Rule};

/// Who is asking, and why.
#[derive(Debug, Clone)]
pub struct AccessContext {
    /// Subject identifier ("alice", "dr.martin", "query-issuer-7").
    pub subject: String,
    /// Declared purpose.
    pub purpose: Purpose,
}

impl AccessContext {
    /// Shorthand constructor.
    pub fn new(subject: &str, purpose: Purpose) -> Self {
        AccessContext {
            subject: subject.to_string(),
            purpose,
        }
    }
}

/// A Personal Data Server.
pub struct Pds {
    token: Token,
    owner: String,
    engine: SearchEngine,
    db: Database,
    policy: PolicySet,
    audit: AuditLog,
    owner_key: SymmetricKey,
    protocol_key: Option<SymmetricKey>,
    /// Logical "today" in days, for retention checks.
    clock_day: u64,
    /// Standing queries, by subscription id.
    subs: BTreeMap<u32, Subscription>,
    next_sub: u32,
    /// The durable flight-recorder ring (black box) of this token.
    blackbox: BlackBox,
    /// Post-mortem of the most recent reopen/wake, if any.
    last_forensics: Option<ForensicsReport>,
}

impl Pds {
    /// Manufacture a PDS for `owner` on a secure-token profile.
    pub fn new(id: u64, owner: &str) -> Result<Pds, PdsError> {
        Self::with_token(Token::secure(id), owner)
    }

    /// A PDS on the small test profile (fast unit tests).
    pub fn for_tests(id: u64, owner: &str) -> Result<Pds, PdsError> {
        Self::with_token(Token::for_tests(id), owner)
    }

    /// A PDS on the minimal population profile (thousands of instances
    /// in one simulated deployment).
    pub fn slim(id: u64, owner: &str) -> Result<Pds, PdsError> {
        Self::with_token(Token::slim(id), owner)
    }

    fn with_token(token: Token, owner: &str) -> Result<Pds, PdsError> {
        let flash = token.flash().clone();
        let ram = token.ram().clone();
        let engine = SearchEngine::new(&flash, &ram, 64, 256, DfStrategy::TwoPass)?;
        let mut db = Database::new(&flash, &ram);
        db.create_table(EMAIL_TABLE, email_schema())?;
        db.create_table(HEALTH_TABLE, health_schema())?;
        db.create_table(BANK_TABLE, bank_schema())?;
        // Every PDS is versioned: commits stamp with the token id as the
        // HLC node, so stamps from different tokens never collide.
        db.enable_mvcc(token.id().0 as u32);
        let owner_key =
            SymmetricKey::from_seed(format!("owner-key:{owner}:{}", token.id().0).as_bytes());
        let blackbox = BlackBox::new(&flash, DEFAULT_FRAME_CAP);
        Ok(Pds {
            token,
            owner: owner.to_string(),
            engine,
            db,
            policy: PolicySet::owner_default(owner),
            audit: AuditLog::new(),
            owner_key,
            protocol_key: None,
            clock_day: 0,
            subs: BTreeMap::new(),
            next_sub: 0,
            blackbox,
            last_forensics: None,
        })
    }

    /// Record one structured event and absorb the staged frames into
    /// the durable black box.
    fn note(&mut self, severity: Severity, code: u16, args: [u64; 2]) {
        flight::record(severity, subsystem::CORE, code, args);
        self.absorb_flight();
    }

    /// Drain the thread-local staging buffer into this token's ring.
    /// Errors are deliberately ignored: the recorder must never fail
    /// the data path, and an append that dies mid-power-loss is exactly
    /// the torn tail recovery truncates.
    fn absorb_flight(&mut self) {
        let _ = self.blackbox.absorb(flight::drain());
    }

    /// The durable flight recorder of this token.
    pub fn blackbox(&self) -> &BlackBox {
        &self.blackbox
    }

    /// Post-mortem of the most recent [`Pds::reopen`] / [`Pds::wake`],
    /// if one has happened.
    pub fn forensics(&self) -> Option<&ForensicsReport> {
        self.last_forensics.as_ref()
    }

    /// Token identity.
    pub fn id(&self) -> TokenId {
        self.token.id()
    }

    /// The owning individual.
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// The underlying token (flash stats, tamper state …).
    pub fn token(&self) -> &Token {
        &self.token
    }

    /// Mutable token access (adversary simulations compromise tokens).
    pub fn token_mut(&mut self) -> &mut Token {
        &mut self.token
    }

    /// The owner's archive key.
    pub fn owner_key(&self) -> &SymmetricKey {
        &self.owner_key
    }

    /// Enroll into a token population: install the shared protocol key
    /// (issued by the trusted manufacturer, never seen by the SSI).
    pub fn enroll(&mut self, protocol_key: SymmetricKey) {
        self.protocol_key = Some(protocol_key);
    }

    /// The shared protocol key, if enrolled.
    pub fn protocol_key(&self) -> Option<&SymmetricKey> {
        self.protocol_key.as_ref()
    }

    /// Advance the logical clock (days since epoch).
    pub fn set_clock(&mut self, day: u64) {
        self.clock_day = day;
    }

    /// Add a policy rule (the user editing her privacy settings).
    pub fn grant(&mut self, rule: Rule) {
        self.policy.add(rule);
    }

    /// Revoke every rule naming `subject`.
    pub fn revoke(&mut self, subject: &str) {
        self.policy.revoke_subject(subject);
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Durably flush every buffered structure (documents, tombstones,
    /// index pages, table rows) to flash — the PDS equivalent of `fsync`.
    pub fn sync(&mut self) -> Result<(), PdsError> {
        self.engine.flush()?;
        self.db.flush()?;
        self.note(Severity::Info, code::CORE_SYNC, [0, 0]);
        self.blackbox.flush()?;
        Ok(())
    }

    /// Simulate a power cycle and recover: the token reboots (flash
    /// controller state rebuilt by cell scan, RAM lost), every record log
    /// recovers its durable prefix, derived structures (inverted index,
    /// selection indexes) are rebuilt or dropped, and the losses are
    /// reported honestly instead of surfacing later as corruption.
    ///
    /// Policy, audit trail and keys are carried over in RAM here; on real
    /// hardware they live in small dedicated logs recovered the same way
    /// as the data logs.
    pub fn reopen(self) -> Result<(Pds, ReopenReport), PdsError> {
        let _span = pds_obs::span!("pds.reopen", "pds.owner" => self.owner.as_str());
        // Frames staged by the operation the power loss killed never
        // reached flash — discard them so the rebuilt ring cannot
        // contain phantom events the durable timeline never saw.
        let _ = flight::drain();
        let engine_manifest = self.engine.manifest();
        let db_manifest = self.db.manifest();
        let bb_blocks = self.blackbox.blocks();
        let bb_cap = self.blackbox.capacity();
        let token = self.token.reopen();
        let flash = token.flash().clone();
        let ram = token.ram().clone();
        let (engine, er) = SearchEngine::recover(&flash, &ram, &engine_manifest)?;
        let (db, rows_lost, mr) =
            Database::recover(&flash, &ram, &db_manifest, Some(er.docs_recovered))?;
        let (mut blackbox, scan) = BlackBox::recover(&flash, &bb_blocks, bb_cap)?;
        let report = ReopenReport {
            docs_recovered: er.docs_recovered,
            docs_lost: er.docs_lost,
            tombstones_applied: er.tombstones_applied,
            rows_lost,
            changes_dropped: mr.as_ref().map_or(0, |r| r.changes_dropped),
        };
        // The pre-crash timeline is captured before any new frame is
        // absorbed: it is exactly what the durable ring preserved.
        let forensics = ForensicsReport::correlate(
            token.id().0,
            blackbox.frames().to_vec(),
            &scan,
            report.clone(),
        );
        flight::record(
            Severity::Info,
            subsystem::RECOVERY,
            code::RECOVERY_REOPEN,
            [u64::from(report.docs_recovered), report.changes_dropped],
        );
        let _ = blackbox.absorb(flight::drain());
        let subs = clamp_cursors(self.subs, &db);
        Ok((
            Pds {
                token,
                owner: self.owner,
                engine,
                db,
                policy: self.policy,
                audit: self.audit,
                owner_key: self.owner_key,
                protocol_key: self.protocol_key,
                clock_day: self.clock_day,
                subs,
                next_sub: self.next_sub,
                blackbox,
                last_forensics: Some(forensics),
            },
            report,
        ))
    }

    /// Power this PDS down to its persistent state: flush every buffered
    /// structure to flash, then capture the token's silicon plus the
    /// recovery manifests and the RAM-carried metadata (policy, audit,
    /// keys, clock). The returned [`PdsHibernation`] is a fraction of the
    /// live footprint — no search engine, no table buffers, no flash
    /// handle — which is what lets a fleet scheduler keep hundreds of
    /// thousands of idle tokens parked. [`Pds::wake`] is the inverse;
    /// because [`Pds::sync`] ran first, the wake is lossless.
    pub fn hibernate(mut self) -> Result<PdsHibernation, PdsError> {
        self.note(Severity::Info, code::CORE_HIBERNATE, [0, 0]);
        self.sync()?;
        Ok(PdsHibernation {
            sleep: self.token.hibernate(),
            owner: self.owner,
            engine_manifest: self.engine.manifest(),
            db_manifest: self.db.manifest(),
            policy: self.policy,
            audit: self.audit,
            owner_key: self.owner_key,
            protocol_key: self.protocol_key,
            clock_day: self.clock_day,
            subs: self.subs,
            next_sub: self.next_sub,
            blackbox_blocks: self.blackbox.blocks(),
            blackbox_cap: self.blackbox.capacity(),
        })
    }

    /// Boot a PDS back from hibernation: the token wakes from its chip
    /// snapshot and every durable structure recovers exactly as after a
    /// power cycle ([`Pds::reopen`]). A clean hibernation reports zero
    /// losses.
    pub fn wake(h: PdsHibernation) -> Result<(Pds, ReopenReport), PdsError> {
        let _ = flight::drain();
        let token = Token::wake(h.sleep);
        let flash = token.flash().clone();
        let ram = token.ram().clone();
        let (engine, er) = SearchEngine::recover(&flash, &ram, &h.engine_manifest)?;
        let (db, rows_lost, mr) =
            Database::recover(&flash, &ram, &h.db_manifest, Some(er.docs_recovered))?;
        let (mut blackbox, scan) = BlackBox::recover(&flash, &h.blackbox_blocks, h.blackbox_cap)?;
        let report = ReopenReport {
            docs_recovered: er.docs_recovered,
            docs_lost: er.docs_lost,
            tombstones_applied: er.tombstones_applied,
            rows_lost,
            changes_dropped: mr.as_ref().map_or(0, |r| r.changes_dropped),
        };
        let forensics = ForensicsReport::correlate(
            token.id().0,
            blackbox.frames().to_vec(),
            &scan,
            report.clone(),
        );
        flight::record(
            Severity::Info,
            subsystem::RECOVERY,
            code::RECOVERY_REOPEN,
            [u64::from(report.docs_recovered), report.changes_dropped],
        );
        let _ = blackbox.absorb(flight::drain());
        let subs = clamp_cursors(h.subs, &db);
        Ok((
            Pds {
                token,
                owner: h.owner,
                engine,
                db,
                policy: h.policy,
                audit: h.audit,
                owner_key: h.owner_key,
                protocol_key: h.protocol_key,
                clock_day: h.clock_day,
                subs,
                next_sub: h.next_sub,
                blackbox,
                last_forensics: Some(forensics),
            },
            report,
        ))
    }

    // ---- ingestion -----------------------------------------------------

    /// Ingest an email: full text to the search engine, metadata to the
    /// EMAIL table.
    pub fn ingest_email(
        &mut self,
        day: u64,
        sender: &str,
        subject: &str,
        body: &str,
    ) -> Result<(), PdsError> {
        let docid = self.engine.index_document(&format!("{subject} {body}"))?;
        self.db.insert(
            EMAIL_TABLE,
            vec![
                Value::U64(day),
                Value::str(sender),
                Value::str(subject),
                Value::U64(docid as u64),
            ],
        )?;
        self.note(Severity::Info, code::CORE_INGEST, [0, day]);
        Ok(())
    }

    /// Ingest a health record.
    pub fn ingest_health(
        &mut self,
        day: u64,
        category: &str,
        measure: u64,
        note: &str,
    ) -> Result<(), PdsError> {
        let docid = self.engine.index_document(note)?;
        self.db.insert(
            HEALTH_TABLE,
            vec![
                Value::U64(day),
                Value::str(category),
                Value::U64(measure),
                Value::U64(docid as u64),
            ],
        )?;
        self.note(Severity::Info, code::CORE_INGEST, [1, day]);
        Ok(())
    }

    /// Ingest a bank record.
    pub fn ingest_bank(
        &mut self,
        day: u64,
        category: &str,
        amount_cents: u64,
        counterparty: &str,
    ) -> Result<(), PdsError> {
        self.db.insert(
            BANK_TABLE,
            vec![
                Value::U64(day),
                Value::str(category),
                Value::U64(amount_cents),
                Value::str(counterparty),
            ],
        )?;
        self.note(Severity::Info, code::CORE_INGEST, [2, day]);
        Ok(())
    }

    // ---- the query gateway ----------------------------------------------

    /// Run one gateway request under a `pds.request` span carrying the
    /// flash I/O delta and the RAM high-water mark of the request.
    fn traced_request<T>(
        &mut self,
        op: &str,
        f: impl FnOnce(&mut Self) -> Result<T, PdsError>,
    ) -> Result<T, PdsError> {
        let span =
            pds_obs::span!("pds.request", "pds.op" => op, "pds.owner" => self.owner.as_str());
        let ram = self.token.ram().clone();
        ram.reset_high_water();
        let io_before = self.token.flash().stats();
        let result = f(self);
        (self.token.flash().stats() - io_before).attach_to_span(&span);
        ram.attach_peak_to_span(&span);
        result
    }

    fn check(
        &mut self,
        ctx: &AccessContext,
        collection: Collection,
        action: Action,
        age_days: u32,
    ) -> Result<(), PdsError> {
        let span = pds_obs::span!("pds.policy", "pds.subject" => ctx.subject.as_str());
        let started = std::time::Instant::now();
        let target = match &collection {
            Collection::Documents => "documents".to_string(),
            Collection::Table(t) => t.clone(),
            Collection::All => "all".to_string(),
        };
        let ok = self
            .policy
            .permits(&ctx.subject, &collection, action, ctx.purpose, age_days);
        pds_obs::histogram("policy.decision_ns").observe(started.elapsed().as_nanos() as u64);
        span.set("policy.decision", if ok { "granted" } else { "denied" });
        pds_obs::counter(if ok {
            "policy.grants"
        } else {
            "policy.denials"
        })
        .inc();
        self.audit.record(
            &ctx.subject,
            action.label(),
            &target,
            if ok {
                Decision::Granted
            } else {
                Decision::Denied
            },
        );
        if ok {
            Ok(())
        } else {
            Err(PdsError::Denied {
                subject: ctx.subject.clone(),
                action: format!("{} on {target}", action.label()),
            })
        }
    }

    /// Policy-gated full-text search.
    pub fn search(
        &mut self,
        ctx: &AccessContext,
        keywords: &[&str],
        n: usize,
    ) -> Result<Vec<SearchHit>, PdsError> {
        self.traced_request("search", |pds| {
            pds.check(ctx, Collection::Documents, Action::Search, 0)?;
            Ok(pds.engine.search(keywords, n)?)
        })
    }

    /// [`search`](Self::search) plus the full [`pds_obs::QueryTrace`] of
    /// the request — the "explain" view the experiments check against the
    /// paper's I/O and RAM budgets.
    pub fn search_traced(
        &mut self,
        ctx: &AccessContext,
        keywords: &[&str],
        n: usize,
    ) -> (Result<Vec<SearchHit>, PdsError>, pds_obs::QueryTrace) {
        let (res, span) = pds_obs::trace::trace("pds.traced", || self.search(ctx, keywords, n));
        (res, pds_obs::QueryTrace::new(span))
    }

    /// Policy-gated document fetch.
    pub fn get_document(&mut self, ctx: &AccessContext, docid: u32) -> Result<Vec<u8>, PdsError> {
        self.traced_request("get_document", |pds| {
            pds.check(ctx, Collection::Documents, Action::Read, 0)?;
            Ok(pds.engine.get_document(docid)?)
        })
    }

    /// Policy-gated relational selection. Retention is enforced per row:
    /// rows older than the requester's grant are silently filtered — the
    /// requester cannot even learn they exist.
    pub fn select(
        &mut self,
        ctx: &AccessContext,
        table: &str,
        pred: &Predicate,
    ) -> Result<Vec<Row>, PdsError> {
        self.traced_request("select", |pds| {
            pds.check(ctx, Collection::Table(table.to_string()), Action::Read, 0)?;
            let rows = pds.db.select(table, pred)?;
            let clock = pds.clock_day;
            let policy = &pds.policy;
            let coll = Collection::Table(table.to_string());
            Ok(rows
                .into_iter()
                .map(|(_, row)| row)
                .filter(|row| {
                    let day = row[0].as_u64().unwrap_or(0);
                    let age = clock.saturating_sub(day) as u32;
                    policy.permits(&ctx.subject, &coll, Action::Read, ctx.purpose, age)
                })
                .collect())
        })
    }

    /// Owner-only maintenance: build a PBFilter summary index over
    /// `table.column`, turning future equality selects on that column
    /// from full table scans into summary scans.
    pub fn create_index(
        &mut self,
        ctx: &AccessContext,
        table: &str,
        column: &str,
    ) -> Result<(), PdsError> {
        self.traced_request("create_index", |pds| {
            if ctx.subject != pds.owner {
                return Err(PdsError::Denied {
                    subject: ctx.subject.clone(),
                    action: format!("create_index on {table}"),
                });
            }
            Ok(pds.db.create_index(table, column)?)
        })
    }

    /// [`select`](Self::select) plus the request's [`pds_obs::QueryTrace`].
    pub fn select_traced(
        &mut self,
        ctx: &AccessContext,
        table: &str,
        pred: &Predicate,
    ) -> (Result<Vec<Row>, PdsError>, pds_obs::QueryTrace) {
        let (res, span) = pds_obs::trace::trace("pds.traced", || self.select(ctx, table, pred));
        (res, pds_obs::QueryTrace::new(span))
    }

    /// Policy-gated local aggregation: `SUM(column)` over rows matching
    /// `pred` — the only thing a global query (Part III) ever extracts
    /// from a token.
    pub fn aggregate_sum(
        &mut self,
        ctx: &AccessContext,
        table: &str,
        column: &str,
        pred: Option<&Predicate>,
    ) -> Result<u64, PdsError> {
        self.traced_request("aggregate_sum", |pds| {
            pds.check(
                ctx,
                Collection::Table(table.to_string()),
                Action::Aggregate,
                0,
            )?;
            let t = pds.db.table(table)?;
            let c =
                t.schema()
                    .column_index(column)
                    .ok_or_else(|| pds_db::DbError::UnknownColumn {
                        table: table.to_string(),
                        column: column.to_string(),
                    })?;
            let mut sum = 0u64;
            match pred {
                None => {
                    t.scan(|_, row| {
                        sum += row[c].as_u64().unwrap_or(0);
                    })?;
                }
                Some(p) => {
                    for (_, row) in pds.db.select(table, p)? {
                        sum += row[c].as_u64().unwrap_or(0);
                    }
                }
            }
            Ok(sum)
        })
    }

    /// Value of one attribute for the global GROUP BY protocols: the
    /// grouping key and the aggregated measure of this individual.
    /// Policy-gated as an `Aggregate` action.
    pub fn group_contribution(
        &mut self,
        ctx: &AccessContext,
        table: &str,
        group_column: &str,
        measure_column: &str,
    ) -> Result<Vec<(String, u64)>, PdsError> {
        self.traced_request("group_contribution", |pds| {
            pds.check(
                ctx,
                Collection::Table(table.to_string()),
                Action::Aggregate,
                0,
            )?;
            let t = pds.db.table(table)?;
            let g = t.schema().column_index(group_column).ok_or_else(|| {
                pds_db::DbError::UnknownColumn {
                    table: table.to_string(),
                    column: group_column.to_string(),
                }
            })?;
            let m = t.schema().column_index(measure_column).ok_or_else(|| {
                pds_db::DbError::UnknownColumn {
                    table: table.to_string(),
                    column: measure_column.to_string(),
                }
            })?;
            let mut groups: std::collections::BTreeMap<String, u64> = Default::default();
            t.scan(|_, row| {
                let key = row[g].to_string();
                *groups.entry(key).or_insert(0) += row[m].as_u64().unwrap_or(0);
            })?;
            pds.note(
                Severity::Info,
                code::CORE_CONTRIBUTION,
                [groups.len() as u64, 0],
            );
            Ok(groups.into_iter().collect())
        })
    }

    /// Per-group record counts for global COUNT queries — same gate as
    /// [`group_contribution`](Self::group_contribution).
    pub fn group_count(
        &mut self,
        ctx: &AccessContext,
        table: &str,
        group_column: &str,
    ) -> Result<Vec<(String, u64)>, PdsError> {
        self.traced_request("group_count", |pds| {
            pds.check(
                ctx,
                Collection::Table(table.to_string()),
                Action::Aggregate,
                0,
            )?;
            let t = pds.db.table(table)?;
            let g = t.schema().column_index(group_column).ok_or_else(|| {
                pds_db::DbError::UnknownColumn {
                    table: table.to_string(),
                    column: group_column.to_string(),
                }
            })?;
            let mut groups: std::collections::BTreeMap<String, u64> = Default::default();
            t.scan(|_, row| {
                *groups.entry(row[g].to_string()).or_insert(0) += 1;
            })?;
            pds.note(
                Severity::Info,
                code::CORE_CONTRIBUTION,
                [groups.len() as u64, 0],
            );
            Ok(groups.into_iter().collect())
        })
    }

    /// Snapshot the whole PDS content (documents + tables) as plaintext
    /// bytes — input of the encrypted archive. Gated as an owner Export.
    pub fn snapshot(&mut self, ctx: &AccessContext) -> Result<Vec<u8>, PdsError> {
        self.traced_request("snapshot", |pds| {
            pds.check(ctx, Collection::All, Action::Export, 0)?;
            let mut out = Vec::new();
            // Documents.
            let n_docs = pds.engine.num_docs();
            out.extend_from_slice(&n_docs.to_le_bytes());
            for d in 0..n_docs {
                let doc = pds.engine.get_document(d)?;
                out.extend_from_slice(&(doc.len() as u32).to_le_bytes());
                out.extend_from_slice(&doc);
            }
            // Tables.
            for table in [EMAIL_TABLE, HEALTH_TABLE, BANK_TABLE] {
                let t = pds.db.table(table)?;
                out.extend_from_slice(&t.num_rows().to_le_bytes());
                t.scan(|_, row| {
                    let bytes = pds_db::value::encode_row(&row);
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(&bytes);
                })?;
            }
            Ok(out)
        })
    }

    /// Rebuild a PDS from a snapshot (disaster recovery onto a fresh
    /// token).
    pub fn restore(id: u64, owner: &str, snapshot: &[u8]) -> Result<Pds, PdsError> {
        let mut pds = Pds::for_tests(id, owner)?;
        let mut off = 0usize;
        let read_u32 = |buf: &[u8], off: &mut usize| -> Result<u32, PdsError> {
            let b: [u8; 4] = buf
                .get(*off..*off + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or(PdsError::ArchiveCorrupt("truncated length"))?;
            *off += 4;
            Ok(u32::from_le_bytes(b))
        };
        let n_docs = read_u32(snapshot, &mut off)?;
        for _ in 0..n_docs {
            let len = read_u32(snapshot, &mut off)? as usize;
            let bytes = snapshot
                .get(off..off + len)
                .ok_or(PdsError::ArchiveCorrupt("truncated document"))?;
            off += len;
            let text = String::from_utf8_lossy(bytes).into_owned();
            pds.engine.index_document(&text)?;
        }
        for table in [EMAIL_TABLE, HEALTH_TABLE, BANK_TABLE] {
            let n_rows = read_u32(snapshot, &mut off)?;
            for _ in 0..n_rows {
                let len = read_u32(snapshot, &mut off)? as usize;
                let bytes = snapshot
                    .get(off..off + len)
                    .ok_or(PdsError::ArchiveCorrupt("truncated row"))?;
                off += len;
                let row = pds_db::value::decode_row(bytes)
                    .ok_or(PdsError::ArchiveCorrupt("row encoding"))?;
                pds.db.insert(table, row)?;
            }
        }
        Ok(pds)
    }

    // ---- versions, snapshots & subscriptions ---------------------------

    /// Stamp everything ingested since the last commit with one HLC and
    /// append the change records to the durable log. Returns the stamp,
    /// or `None` if nothing changed. Ingestion between two commits forms
    /// one atomic unit in version space: snapshots and subscribers see
    /// all of it or none of it.
    pub fn commit(&mut self) -> Result<Option<Hlc>, PdsError> {
        let docs = self.engine.num_docs();
        let stamp = self.db.commit_with_docs(docs)?;
        if let Some(s) = stamp {
            pds_obs::counter("mvcc.commits").inc();
            self.note(Severity::Info, code::CORE_COMMIT, [s.counter, 0]);
        }
        Ok(stamp)
    }

    /// Pin a read snapshot at the current commit frontier. Queries run
    /// through [`select_at`](Self::select_at) / [`search_at`](Self::search_at)
    /// against this snapshot never observe later commits. Must be paired
    /// with [`release_snapshot`](Self::release_snapshot) so version GC
    /// can reclaim history.
    pub fn open_snapshot(&mut self) -> Result<Snapshot, PdsError> {
        Ok(self.db.snapshot()?)
    }

    /// Release a snapshot pin taken by [`open_snapshot`](Self::open_snapshot).
    pub fn release_snapshot(&mut self, snap: &Snapshot) {
        self.db.release(snap);
    }

    /// [`select`](Self::select) pinned to a snapshot: rows committed
    /// after `snap` was opened are invisible, on top of the same policy
    /// gate and per-row retention filter.
    pub fn select_at(
        &mut self,
        ctx: &AccessContext,
        snap: &Snapshot,
        table: &str,
        pred: &Predicate,
    ) -> Result<Vec<Row>, PdsError> {
        self.traced_request("select_at", |pds| {
            pds.check(ctx, Collection::Table(table.to_string()), Action::Read, 0)?;
            let rows = pds.db.select_at(snap, table, pred)?;
            let clock = pds.clock_day;
            let policy = &pds.policy;
            let coll = Collection::Table(table.to_string());
            Ok(rows
                .into_iter()
                .map(|(_, row)| row)
                .filter(|row| {
                    let day = row[0].as_u64().unwrap_or(0);
                    let age = clock.saturating_sub(day) as u32;
                    policy.permits(&ctx.subject, &coll, Action::Read, ctx.purpose, age)
                })
                .collect())
        })
    }

    /// [`search`](Self::search) pinned to a snapshot: only documents
    /// committed at or before `snap` are candidates. Ranking weights stay
    /// live-corpus (IDF is not versioned) but membership is pinned.
    pub fn search_at(
        &mut self,
        ctx: &AccessContext,
        snap: &Snapshot,
        keywords: &[&str],
        n: usize,
    ) -> Result<Vec<SearchHit>, PdsError> {
        self.traced_request("search_at", |pds| {
            pds.check(ctx, Collection::Documents, Action::Search, 0)?;
            let mvcc = pds.db.mvcc().ok_or(pds_db::DbError::MvccDisabled)?;
            let visible = mvcc.visible_at(snap, DOC_STORE);
            Ok(pds.engine.search_visible(keywords, n, visible)?)
        })
    }

    /// [`get_document`](Self::get_document) pinned to a snapshot: a
    /// docid committed after `snap` answers exactly like one that never
    /// existed.
    pub fn get_document_at(
        &mut self,
        ctx: &AccessContext,
        snap: &Snapshot,
        docid: u32,
    ) -> Result<Vec<u8>, PdsError> {
        self.traced_request("get_document_at", |pds| {
            pds.check(ctx, Collection::Documents, Action::Read, 0)?;
            let mvcc = pds.db.mvcc().ok_or(pds_db::DbError::MvccDisabled)?;
            if docid >= mvcc.visible_at(snap, DOC_STORE) {
                return Err(PdsError::Flash(FlashError::BadRecordAddr));
            }
            Ok(pds.engine.get_document(docid)?)
        })
    }

    /// Change records strictly after `since`, from the durable HLC log —
    /// the primitive delta sync and continuous queries are built on.
    pub fn changes_since(&self, since: Hlc) -> Result<Vec<ChangeRec>, PdsError> {
        Ok(self.db.changes_since(since)?)
    }

    /// Register a standing query: `pred` over `table`, starting at the
    /// current commit frontier. Returns the subscription id for
    /// [`poll_subscription`](Self::poll_subscription).
    pub fn subscribe(&mut self, table: &str, pred: Predicate) -> Result<u32, PdsError> {
        self.db.store_id(table)?;
        let cursor = self.db.mvcc().ok_or(pds_db::DbError::MvccDisabled)?.now();
        let id = self.next_sub;
        self.next_sub += 1;
        self.subs.insert(
            id,
            Subscription {
                table: table.to_string(),
                pred,
                cursor,
            },
        );
        pds_obs::counter("sub.registered").inc();
        Ok(id)
    }

    /// Deliver the subscription's delta: matching rows from every commit
    /// after its cursor, then advance the cursor past them. Each
    /// committed change is observed exactly once across polls — the
    /// cursor moves in whole commits, never mid-commit.
    pub fn poll_subscription(&mut self, id: u32) -> Result<Vec<(RowId, Row)>, PdsError> {
        let sub = self
            .subs
            .get(&id)
            .ok_or(PdsError::UnknownSubscription(id))?;
        let (table, pred, cursor) = (sub.table.clone(), sub.pred.clone(), sub.cursor);
        pds_obs::counter("sub.polls").inc();
        let recs = self.db.changes_since(cursor)?;
        let last = match recs.last() {
            Some(r) => Hlc::new(r.hlc, r.node),
            None => return Ok(Vec::new()),
        };
        let store = self.db.store_id(&table)?;
        let t = self.db.table(&table)?;
        let c = t.schema().column_index(pred.column()).ok_or_else(|| {
            pds_db::DbError::UnknownColumn {
                table: table.clone(),
                column: pred.column().to_string(),
            }
        })?;
        let mut out = Vec::new();
        for rec in recs {
            if rec.store != store || rec.kind != kind::ROW_INSERT {
                continue;
            }
            let row = t.get(rec.entity)?;
            if pred.matches(&row[c]) {
                out.push((rec.entity, row));
            }
        }
        if let Some(s) = self.subs.get_mut(&id) {
            s.cursor = last;
        }
        if !out.is_empty() {
            pds_obs::counter("sub.deltas").inc();
        }
        pds_obs::counter("sub.rows_delivered").add(out.len() as u64);
        Ok(out)
    }

    /// The registered subscriptions, by id.
    pub fn subscriptions(&self) -> &BTreeMap<u32, Subscription> {
        &self.subs
    }

    /// Reclaim version history: collapse marks and compact the change
    /// log up to the oldest open snapshot, never past the slowest
    /// subscription cursor (a subscriber must still be able to read
    /// every change it has not yet observed).
    pub fn gc_versions(&mut self) -> Result<GcReport, PdsError> {
        let keep = self.subs.values().map(|s| s.cursor).min();
        Ok(self.db.gc_versions(keep)?)
    }
}

/// After a power loss the HLC log recovers its durable prefix; a cursor
/// stamped beyond that prefix points at history that no longer exists.
/// Clamp it to the recovered frontier so the subscription resumes from
/// what actually survived.
fn clamp_cursors(
    mut subs: BTreeMap<u32, Subscription>,
    db: &Database,
) -> BTreeMap<u32, Subscription> {
    let now = db.mvcc().map_or(Hlc::ZERO, |m| m.now());
    for s in subs.values_mut() {
        if s.cursor > now {
            s.cursor = now;
        }
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_pds() -> Pds {
        let mut pds = Pds::for_tests(1, "alice").unwrap();
        pds.ingest_email(10, "dr.martin", "blood results", "all markers normal")
            .unwrap();
        pds.ingest_email(11, "bank", "statement", "monthly statement attached")
            .unwrap();
        pds.ingest_health(12, "blood-pressure", 120, "routine check normal")
            .unwrap();
        pds.ingest_bank(12, "salary", 250_000, "employer").unwrap();
        pds.ingest_bank(13, "groceries", 4_500, "shop-1").unwrap();
        pds
    }

    #[test]
    fn owner_can_search_and_read() {
        let mut pds = populated_pds();
        let ctx = AccessContext::new("alice", Purpose::PersonalUse);
        let hits = pds.search(&ctx, &["blood"], 5).unwrap();
        assert!(!hits.is_empty());
        let rows = pds
            .select(
                &ctx,
                BANK_TABLE,
                &Predicate::eq("category", Value::str("salary")),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][2], Value::U64(250_000));
    }

    #[test]
    fn stranger_is_denied_and_audited() {
        let mut pds = populated_pds();
        let ctx = AccessContext::new("insurer-x", Purpose::Marketing);
        let err = pds.search(&ctx, &["blood"], 5).unwrap_err();
        assert!(matches!(err, PdsError::Denied { .. }));
        assert_eq!(pds.audit().denials(), 1);
        assert!(pds.audit().verify());
    }

    #[test]
    fn granting_a_doctor_care_access_works_until_revoked() {
        let mut pds = populated_pds();
        pds.grant(Rule::allow(
            "dr.martin",
            Collection::Table(HEALTH_TABLE.into()),
            Action::Read,
            Some(Purpose::Care),
        ));
        let ctx = AccessContext::new("dr.martin", Purpose::Care);
        let rows = pds
            .select(
                &ctx,
                HEALTH_TABLE,
                &Predicate::eq("category", Value::str("blood-pressure")),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        // Purpose matters: the same doctor asking for marketing is denied.
        let bad_ctx = AccessContext::new("dr.martin", Purpose::Marketing);
        assert!(pds
            .select(
                &bad_ctx,
                HEALTH_TABLE,
                &Predicate::eq("category", Value::str("blood-pressure"))
            )
            .is_err());
        pds.revoke("dr.martin");
        assert!(pds
            .select(
                &ctx,
                HEALTH_TABLE,
                &Predicate::eq("category", Value::str("blood-pressure"))
            )
            .is_err());
    }

    #[test]
    fn retention_filters_old_rows_silently() {
        let mut pds = populated_pds();
        pds.set_clock(100);
        pds.grant(crate::policy::Rule {
            subject: crate::policy::SubjectPattern::Exact("auditor".into()),
            collection: Collection::Table(BANK_TABLE.into()),
            action: Action::Read,
            purpose: Some(Purpose::Care),
            policy: crate::policy::Policy::Allow,
            max_age_days: Some(88), // day 12 is 88 days old, day 13 is 87
        });
        let ctx = AccessContext::new("auditor", Purpose::Care);
        let rows = pds
            .select(
                &ctx,
                BANK_TABLE,
                &Predicate::eq("category", Value::str("salary")),
            )
            .unwrap();
        assert!(rows.len() <= 1);
        let groc = pds
            .select(
                &ctx,
                BANK_TABLE,
                &Predicate::eq("category", Value::str("groceries")),
            )
            .unwrap();
        assert_eq!(groc.len(), 1, "day-13 row is inside retention");
    }

    #[test]
    fn aggregate_for_statistics_allowed_read_denied() {
        let mut pds = populated_pds();
        let ctx = AccessContext::new("survey-77", Purpose::Statistics);
        let sum = pds
            .aggregate_sum(&ctx, BANK_TABLE, "amount_cents", None)
            .unwrap();
        assert_eq!(sum, 254_500);
        assert!(pds
            .select(
                &ctx,
                BANK_TABLE,
                &Predicate::eq("category", Value::str("salary"))
            )
            .is_err());
    }

    #[test]
    fn group_contribution_aggregates_by_key() {
        let mut pds = populated_pds();
        let ctx = AccessContext::new("survey", Purpose::Statistics);
        let groups = pds
            .group_contribution(&ctx, BANK_TABLE, "category", "amount_cents")
            .unwrap();
        assert!(groups.contains(&("salary".to_string(), 250_000)));
        assert!(groups.contains(&("groceries".to_string(), 4_500)));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut pds = populated_pds();
        let ctx = AccessContext::new("alice", Purpose::PersonalUse);
        let snap = pds.snapshot(&ctx).unwrap();
        let mut restored = Pds::restore(2, "alice", &snap).unwrap();
        let rows = restored
            .select(
                &ctx,
                BANK_TABLE,
                &Predicate::eq("category", Value::str("salary")),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        let hits = restored.search(&ctx, &["blood"], 5).unwrap();
        assert!(!hits.is_empty());
    }

    #[test]
    fn snapshot_requires_export_permission() {
        let mut pds = populated_pds();
        let ctx = AccessContext::new("mallory", Purpose::Marketing);
        assert!(pds.snapshot(&ctx).is_err());
    }

    #[test]
    fn snapshot_pins_selects_and_search() {
        let mut pds = populated_pds();
        pds.commit().unwrap();
        let ctx = AccessContext::new("alice", Purpose::PersonalUse);
        let snap = pds.open_snapshot().unwrap();
        // Writes after the snapshot: a new salary row and a new "blood" doc.
        pds.ingest_bank(14, "salary", 300_000, "employer").unwrap();
        pds.ingest_email(14, "dr.martin", "blood follow-up", "second blood panel")
            .unwrap();
        pds.commit().unwrap();
        let pred = Predicate::eq("category", Value::str("salary"));
        let live = pds.select(&ctx, BANK_TABLE, &pred).unwrap();
        assert_eq!(live.len(), 2, "live read sees the new commit");
        let pinned = pds.select_at(&ctx, &snap, BANK_TABLE, &pred).unwrap();
        assert_eq!(pinned.len(), 1, "snapshot read does not");
        let live_hits = pds.search(&ctx, &["blood"], 10).unwrap();
        let pinned_hits = pds.search_at(&ctx, &snap, &["blood"], 10).unwrap();
        assert!(pinned_hits.len() < live_hits.len());
        // The post-snapshot document is unreadable through the snapshot.
        let new_doc = live_hits.iter().map(|h| h.doc).max().unwrap();
        assert!(pds.get_document_at(&ctx, &snap, new_doc).is_err());
        assert!(pds.get_document(&ctx, new_doc).is_ok());
        pds.release_snapshot(&snap);
    }

    #[test]
    fn subscription_observes_each_commit_exactly_once() {
        let mut pds = populated_pds();
        pds.commit().unwrap();
        let id = pds
            .subscribe(BANK_TABLE, Predicate::eq("category", Value::str("salary")))
            .unwrap();
        // Pre-subscription history is not replayed.
        assert!(pds.poll_subscription(id).unwrap().is_empty());
        pds.ingest_bank(20, "salary", 260_000, "employer").unwrap();
        pds.ingest_bank(20, "groceries", 3_000, "shop-2").unwrap();
        pds.commit().unwrap();
        let delta = pds.poll_subscription(id).unwrap();
        assert_eq!(delta.len(), 1, "only the matching row is delivered");
        assert_eq!(delta[0].1[2], Value::U64(260_000));
        assert!(
            pds.poll_subscription(id).unwrap().is_empty(),
            "no re-delivery"
        );
        assert!(matches!(
            pds.poll_subscription(99),
            Err(PdsError::UnknownSubscription(99))
        ));
    }

    #[test]
    fn subscription_survives_hibernate_wake() {
        let mut pds = populated_pds();
        pds.commit().unwrap();
        let id = pds
            .subscribe(BANK_TABLE, Predicate::eq("category", Value::str("salary")))
            .unwrap();
        pds.ingest_bank(21, "salary", 270_000, "employer").unwrap();
        pds.commit().unwrap();
        let h = pds.hibernate().unwrap();
        let (mut pds, report) = Pds::wake(h).unwrap();
        assert_eq!(report.changes_dropped, 0);
        let delta = pds.poll_subscription(id).unwrap();
        assert_eq!(
            delta.len(),
            1,
            "commit from before the power-down is delivered once"
        );
        assert!(pds.poll_subscription(id).unwrap().is_empty());
    }

    #[test]
    fn reopen_reconstructs_the_precrash_timeline() {
        let mut pds = populated_pds();
        pds.commit().unwrap();
        pds.sync().unwrap();
        let n_durable = pds.blackbox().num_frames();
        assert!(n_durable >= 6, "5 ingests + 1 commit + 1 sync recorded");
        let (pds, report) = pds.reopen().unwrap();
        assert_eq!(report.docs_lost, 0);
        let f = pds.forensics().expect("reopen produces a post-mortem");
        assert_eq!(f.cause, crate::forensics::CrashCause::CleanShutdown);
        assert_eq!(f.frames_recovered, n_durable);
        assert!(f
            .timeline
            .iter()
            .any(|fr| fr.code == pds_obs::flight::code::CORE_COMMIT));
        // The post-recovery ring carries the reopen marker after the
        // pre-crash timeline.
        assert!(pds
            .blackbox()
            .frames()
            .iter()
            .any(|fr| fr.code == pds_obs::flight::code::RECOVERY_REOPEN));
    }

    #[test]
    fn hibernate_wake_round_trips_the_blackbox() {
        let mut pds = populated_pds();
        pds.commit().unwrap();
        let h = pds.hibernate().unwrap();
        let (pds, _) = Pds::wake(h).unwrap();
        let f = pds.forensics().unwrap();
        assert_eq!(f.cause, crate::forensics::CrashCause::CleanShutdown);
        assert!(f
            .timeline
            .iter()
            .any(|fr| fr.code == pds_obs::flight::code::CORE_HIBERNATE));
    }

    #[test]
    fn gc_never_outruns_a_subscription_cursor() {
        let mut pds = populated_pds();
        pds.commit().unwrap();
        let id = pds
            .subscribe(BANK_TABLE, Predicate::eq("category", Value::str("salary")))
            .unwrap();
        pds.ingest_bank(22, "salary", 280_000, "employer").unwrap();
        pds.commit().unwrap();
        pds.ingest_bank(23, "salary", 290_000, "employer").unwrap();
        pds.commit().unwrap();
        // GC with an unpolled subscriber must keep its unread changes.
        pds.gc_versions().unwrap();
        let delta = pds.poll_subscription(id).unwrap();
        assert_eq!(delta.len(), 2, "GC kept every unobserved change");
    }
}

//! Error type of the Personal Data Server.

use std::fmt;

/// Everything that can fail on a PDS.
#[derive(Debug)]
pub enum PdsError {
    /// The privacy policy denied the access; the denial is audited.
    Denied {
        /// Requesting subject.
        subject: String,
        /// What was attempted.
        action: String,
    },
    /// Embedded database failure.
    Db(pds_db::DbError),
    /// Embedded search failure.
    Search(pds_search::SearchError),
    /// Flash failure.
    Flash(pds_flash::FlashError),
    /// MCU RAM exhausted.
    Ram(pds_mcu::RamError),
    /// Archive integrity or authentication failure.
    ArchiveCorrupt(&'static str),
    /// No subscription registered under this id.
    UnknownSubscription(u32),
}

impl From<pds_db::DbError> for PdsError {
    fn from(e: pds_db::DbError) -> Self {
        PdsError::Db(e)
    }
}

impl From<pds_search::SearchError> for PdsError {
    fn from(e: pds_search::SearchError) -> Self {
        PdsError::Search(e)
    }
}

impl From<pds_flash::FlashError> for PdsError {
    fn from(e: pds_flash::FlashError) -> Self {
        PdsError::Flash(e)
    }
}

impl From<pds_mcu::RamError> for PdsError {
    fn from(e: pds_mcu::RamError) -> Self {
        PdsError::Ram(e)
    }
}

impl fmt::Display for PdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdsError::Denied { subject, action } => {
                write!(f, "access denied: {subject} attempted {action}")
            }
            PdsError::Db(e) => write!(f, "database: {e}"),
            PdsError::Search(e) => write!(f, "search: {e}"),
            PdsError::Flash(e) => write!(f, "flash: {e}"),
            PdsError::Ram(e) => write!(f, "ram: {e}"),
            PdsError::ArchiveCorrupt(what) => write!(f, "archive corrupt: {what}"),
            PdsError::UnknownSubscription(id) => write!(f, "unknown subscription id {id}"),
        }
    }
}

impl std::error::Error for PdsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denied_display_names_the_subject() {
        let e = PdsError::Denied {
            subject: "employer".into(),
            action: "search documents".into(),
        };
        let s = e.to_string();
        assert!(s.contains("employer") && s.contains("search"));
    }
}

//! # pds-core — the Personal Data Server
//!
//! The tutorial's central artifact: "a trusted, secure and decentralized
//! architecture for personal data management". One [`Pds`] is a secure
//! portable token (MCU + NAND, [`pds_mcu::Token`]) hosting:
//!
//! * **Data integration** — "aggregate user's data in a single location:
//!   better usage, privacy, value. Personal data is heterogeneous":
//!   emails, bank records, health records, free documents, each ingested
//!   into the embedded search engine ([`pds_search`]) and the embedded
//!   relational database ([`pds_db`]).
//! * **Privacy policies** — "intuitive, simple ways for users to define
//!   access control rules": subject × collection × action × purpose
//!   rules with retention limits, evaluated on *every* query. "A user
//!   does not have all the privileges over the data in her PDS" — rules
//!   can bind the owner too.
//! * **Secure usage and accountability** — a tamper-evident audit trail
//!   (hash-chained, [`pds_crypto::HashChain`]) of every access decision,
//!   so "users must not lose control over their data through data
//!   sharing".
//! * **Durability & availability** — the Trusted Cells pattern: an
//!   encrypted, integrity-protected archive of the token state pushed to
//!   an *untrusted* store ("using the cloud as a storage service for
//!   encrypted data"), restorable only with the owner's key.
//!
//! The query gateway computes **authorized results only**: query
//! functionality is embedded precisely so that raw data never leaves the
//! tamper-resistant boundary.

pub mod archive;
pub mod audit;
pub mod credentials;
pub mod data;
pub mod error;
pub mod forensics;
pub mod pds;
pub mod policy;

pub use crate::forensics::{CrashCause, ForensicsReport};
pub use crate::pds::{AccessContext, Pds, PdsHibernation, ReopenReport, Subscription};
pub use archive::{CloudStore, EncryptedArchive};
pub use audit::{AuditEntry, AuditLog, Decision};
pub use credentials::{Credential, HandshakeOutcome, Issuer, Role, VerificationKey};
pub use data::{BankCategory, HealthCategory};
pub use error::PdsError;
pub use policy::{Action, Collection, Policy, PolicySet, Purpose, Rule, SubjectPattern};
// The gateway vocabulary, re-exported so upper layers (the fleet
// runtime sits above pds-core, not above pds-db) can phrase snapshot
// reads and standing predicates without crossing the layering matrix.
pub use pds_db::{Hlc, Predicate, Row, RowId, Snapshot, Value};

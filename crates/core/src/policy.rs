//! Privacy policies: subject × collection × action × purpose rules.
//!
//! Part I requires "intuitive, simple ways for users to define access
//! control rules". The model here follows the purpose-based access
//! control of the Personal Data Server literature ([Allard et al.,
//! PVLDB'10]): a rule names *who* (subject), over *what* (collection),
//! doing *which operation* (action), *why* (purpose), and *for how long*
//! (retention). Deny rules dominate allow rules; absence of an allow is a
//! deny (closed world — the safe default for personal data).

/// What a subject wants to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Read tuples / fetch documents.
    Read,
    /// Full-text search over the document collection.
    Search,
    /// Contribute an aggregate (the only action the global protocols of
    /// Part III ever need — raw values never leave the token).
    Aggregate,
    /// Export data beyond the token boundary (sync, archive, sharing).
    Export,
}

impl Action {
    /// Human-readable label for audit entries.
    pub fn label(&self) -> &'static str {
        match self {
            Action::Read => "read",
            Action::Search => "search",
            Action::Aggregate => "aggregate",
            Action::Export => "export",
        }
    }
}

/// Why the subject wants to do it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Purpose {
    /// The owner's own use.
    PersonalUse,
    /// Medical care coordination (the social-medical folder scenario).
    Care,
    /// Participation in an anonymized global computation (Part III).
    Statistics,
    /// Commercial exploitation — what the tutorial's "new oil producers"
    /// want and the default policy refuses.
    Marketing,
}

/// Which data the rule covers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Collection {
    /// The free-text document store.
    Documents,
    /// One relational table, by name.
    Table(String),
    /// Everything on the token.
    All,
}

impl Collection {
    /// Does this collection designation cover `other`?
    pub fn covers(&self, other: &Collection) -> bool {
        match (self, other) {
            (Collection::All, _) => true,
            (a, b) => a == b,
        }
    }
}

/// Who the rule applies to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SubjectPattern {
    /// One named subject ("dr.martin", "daughter", "insurer-x").
    Exact(String),
    /// Any subject.
    Any,
}

impl SubjectPattern {
    fn matches(&self, subject: &str) -> bool {
        match self {
            SubjectPattern::Exact(s) => s == subject,
            SubjectPattern::Any => true,
        }
    }
}

/// Allow or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Grant the access.
    Allow,
    /// Refuse the access (dominates any allow).
    Deny,
}

/// One access-control rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Who.
    pub subject: SubjectPattern,
    /// Over what.
    pub collection: Collection,
    /// Doing what.
    pub action: Action,
    /// For which purpose (`None` = any purpose).
    pub purpose: Option<Purpose>,
    /// Allow or deny.
    pub policy: Policy,
    /// Maximum data age in days this rule grants access to (`None` =
    /// unlimited). Retention limitation is a core privacy principle the
    /// PDS enforces mechanically.
    pub max_age_days: Option<u32>,
}

impl Rule {
    /// Convenience allow-rule.
    pub fn allow(
        subject: &str,
        collection: Collection,
        action: Action,
        purpose: Option<Purpose>,
    ) -> Rule {
        Rule {
            subject: SubjectPattern::Exact(subject.to_string()),
            collection,
            action,
            purpose,
            policy: Policy::Allow,
            max_age_days: None,
        }
    }

    /// Convenience deny-rule matching any subject.
    pub fn deny_all(collection: Collection, action: Action, purpose: Option<Purpose>) -> Rule {
        Rule {
            subject: SubjectPattern::Any,
            collection,
            action,
            purpose,
            policy: Policy::Deny,
            max_age_days: None,
        }
    }

    fn matches(
        &self,
        subject: &str,
        collection: &Collection,
        action: Action,
        purpose: Purpose,
        age_days: u32,
    ) -> bool {
        self.subject.matches(subject)
            && self.collection.covers(collection)
            && self.action == action
            && self.purpose.is_none_or(|p| p == purpose)
            && match self.policy {
                // Retention bounds a *grant*: the allow covers data up to
                // `max_age_days` old and lapses beyond.
                Policy::Allow => self.max_age_days.is_none_or(|max| age_days <= max),
                // A deny must never lapse with age. Applying the same
                // bound here would make "deny for 90 days" silently stop
                // matching on day 91 — aged data would fall through to
                // any standing allow, turning a refusal into a grant.
                Policy::Deny => true,
            }
    }
}

/// An ordered set of rules with deny-overrides-allow semantics.
#[derive(Debug, Clone, Default)]
pub struct PolicySet {
    rules: Vec<Rule>,
}

impl PolicySet {
    /// An empty (deny-everything) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// The owner's default policy: the owner may do anything for
    /// personal use or care; everyone (owner included) may contribute
    /// anonymized aggregates for statistics; marketing is unreachable
    /// without an explicit grant.
    pub fn owner_default(owner: &str) -> Self {
        let mut p = PolicySet::new();
        for action in [Action::Read, Action::Search, Action::Export] {
            p.add(Rule {
                subject: SubjectPattern::Exact(owner.to_string()),
                collection: Collection::All,
                action,
                purpose: Some(Purpose::PersonalUse),
                policy: Policy::Allow,
                max_age_days: None,
            });
        }
        p.add(Rule {
            subject: SubjectPattern::Any,
            collection: Collection::All,
            action: Action::Aggregate,
            purpose: Some(Purpose::Statistics),
            policy: Policy::Allow,
            max_age_days: None,
        });
        p
    }

    /// Append a rule.
    pub fn add(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Remove every rule naming `subject` exactly (revocation).
    pub fn revoke_subject(&mut self, subject: &str) {
        self.rules
            .retain(|r| r.subject != SubjectPattern::Exact(subject.to_string()));
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rule exists (deny-everything).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluate an access request. `age_days` is the age of the oldest
    /// data the request would touch.
    pub fn permits(
        &self,
        subject: &str,
        collection: &Collection,
        action: Action,
        purpose: Purpose,
        age_days: u32,
    ) -> bool {
        let mut allowed = false;
        for r in &self.rules {
            if r.matches(subject, collection, action, purpose, age_days) {
                match r.policy {
                    Policy::Deny => return false,
                    Policy::Allow => allowed = true,
                }
            }
        }
        allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_world_denies_by_default() {
        let p = PolicySet::new();
        assert!(!p.permits(
            "anyone",
            &Collection::Documents,
            Action::Read,
            Purpose::PersonalUse,
            0
        ));
    }

    #[test]
    fn owner_default_grants_owner_but_not_others() {
        let p = PolicySet::owner_default("alice");
        assert!(p.permits(
            "alice",
            &Collection::Documents,
            Action::Search,
            Purpose::PersonalUse,
            10
        ));
        assert!(!p.permits(
            "bob",
            &Collection::Documents,
            Action::Search,
            Purpose::PersonalUse,
            10
        ));
        // Marketing is never granted by default — even to the owner.
        assert!(!p.permits(
            "alice",
            &Collection::All,
            Action::Export,
            Purpose::Marketing,
            0
        ));
    }

    #[test]
    fn aggregate_for_statistics_is_open_by_default() {
        let p = PolicySet::owner_default("alice");
        assert!(p.permits(
            "query-issuer-77",
            &Collection::Table("HEALTH".into()),
            Action::Aggregate,
            Purpose::Statistics,
            365
        ));
        assert!(!p.permits(
            "query-issuer-77",
            &Collection::Table("HEALTH".into()),
            Action::Read,
            Purpose::Statistics,
            365
        ));
    }

    #[test]
    fn deny_overrides_allow() {
        let mut p = PolicySet::owner_default("alice");
        p.add(Rule::allow(
            "dr.martin",
            Collection::Table("HEALTH".into()),
            Action::Read,
            Some(Purpose::Care),
        ));
        assert!(p.permits(
            "dr.martin",
            &Collection::Table("HEALTH".into()),
            Action::Read,
            Purpose::Care,
            0
        ));
        p.add(Rule::deny_all(
            Collection::Table("HEALTH".into()),
            Action::Read,
            None,
        ));
        assert!(!p.permits(
            "dr.martin",
            &Collection::Table("HEALTH".into()),
            Action::Read,
            Purpose::Care,
            0
        ));
    }

    #[test]
    fn retention_limits_old_data() {
        let mut p = PolicySet::new();
        p.add(Rule {
            subject: SubjectPattern::Exact("insurer".into()),
            collection: Collection::Table("BANK".into()),
            action: Action::Read,
            purpose: Some(Purpose::Care),
            policy: Policy::Allow,
            max_age_days: Some(90),
        });
        let coll = Collection::Table("BANK".into());
        assert!(p.permits("insurer", &coll, Action::Read, Purpose::Care, 30));
        assert!(!p.permits("insurer", &coll, Action::Read, Purpose::Care, 120));
    }

    #[test]
    fn deny_rules_are_not_retention_scoped() {
        // Regression: a deny carrying `max_age_days` used to cease
        // matching once the data aged past the bound, so the standing
        // allow below would win and old data leaked to the insurer.
        let mut p = PolicySet::new();
        p.add(Rule::allow(
            "insurer",
            Collection::Table("BANK".into()),
            Action::Read,
            Some(Purpose::Care),
        ));
        p.add(Rule {
            subject: SubjectPattern::Exact("insurer".into()),
            collection: Collection::Table("BANK".into()),
            action: Action::Read,
            purpose: Some(Purpose::Care),
            policy: Policy::Deny,
            max_age_days: Some(90),
        });
        let coll = Collection::Table("BANK".into());
        assert!(!p.permits("insurer", &coll, Action::Read, Purpose::Care, 30));
        // The deny still dominates for data older than its bound.
        assert!(!p.permits("insurer", &coll, Action::Read, Purpose::Care, 120));
    }

    #[test]
    fn revocation_removes_grants() {
        let mut p = PolicySet::new();
        p.add(Rule::allow(
            "ex-doctor",
            Collection::All,
            Action::Read,
            None,
        ));
        assert!(p.permits(
            "ex-doctor",
            &Collection::Documents,
            Action::Read,
            Purpose::Care,
            0
        ));
        p.revoke_subject("ex-doctor");
        assert!(!p.permits(
            "ex-doctor",
            &Collection::Documents,
            Action::Read,
            Purpose::Care,
            0
        ));
    }

    #[test]
    fn prop_policy_algebra() {
        use pds_obs::rng::{Rng, SeedableRng, StdRng};
        let subjects = ["alice", "bob", "carol"];
        let purposes = [Purpose::PersonalUse, Purpose::Care, Purpose::Statistics];
        let actions = [
            Action::Read,
            Action::Search,
            Action::Aggregate,
            Action::Export,
        ];
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0x9011C7 + case);
            let rules: Vec<Rule> = (0..rng.gen_range(0usize..12))
                .map(|_| {
                    let subj = rng.gen_range(0usize..4);
                    Rule {
                        subject: if subj == 3 {
                            SubjectPattern::Any
                        } else {
                            SubjectPattern::Exact(subjects[subj].to_string())
                        },
                        collection: match rng.gen_range(0usize..3) {
                            0 => Collection::Documents,
                            1 => Collection::Table("T".into()),
                            _ => Collection::All,
                        },
                        action: actions[rng.gen_range(0usize..4)],
                        purpose: if rng.gen_bool(0.5) {
                            Some(purposes[rng.gen_range(0usize..3)])
                        } else {
                            None
                        },
                        policy: if rng.gen_bool(0.5) {
                            Policy::Allow
                        } else {
                            Policy::Deny
                        },
                        max_age_days: None,
                    }
                })
                .collect();
            let mut set = PolicySet::new();
            for r in &rules {
                set.add(r.clone());
            }
            let q = (
                subjects[rng.gen_range(0usize..3)],
                Collection::Table("T".into()),
                actions[rng.gen_range(0usize..4)],
                purposes[rng.gen_range(0usize..3)],
            );
            let granted = set.permits(q.0, &q.1, q.2, q.3, 0);
            // 1. Deny dominance: if any matching deny exists, the
            // request is refused no matter what.
            let any_deny = rules
                .iter()
                .any(|r| r.policy == Policy::Deny && r.matches(q.0, &q.1, q.2, q.3, 0));
            if any_deny {
                assert!(!granted, "case {case}");
            }
            // 2. Closed world: no matching allow ⇒ refused.
            let any_allow = rules
                .iter()
                .any(|r| r.policy == Policy::Allow && r.matches(q.0, &q.1, q.2, q.3, 0));
            if !any_allow {
                assert!(!granted, "case {case}");
            }
            // 3. Adding a deny rule never grants anything new.
            let mut harder = set.clone();
            harder.add(Rule::deny_all(Collection::All, q.2, None));
            assert!(!harder.permits(q.0, &q.1, q.2, q.3, 0), "case {case}");
        }
    }

    #[test]
    fn collection_covering() {
        assert!(Collection::All.covers(&Collection::Documents));
        assert!(Collection::All.covers(&Collection::Table("X".into())));
        assert!(!Collection::Documents.covers(&Collection::All));
        assert!(Collection::Table("A".into()).covers(&Collection::Table("A".into())));
        assert!(!Collection::Table("A".into()).covers(&Collection::Table("B".into())));
    }
}

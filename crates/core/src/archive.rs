//! Encrypted archive on untrusted storage — the Trusted Cells pattern.
//!
//! Part I: "data must be made highly available, resilient to failure and
//! protected against confidentiality and integrity attacks" while
//! "cryptographic keys must be secured and only accessible by the user" —
//! exactly the weakness of Mydex/Personal.com, where "the cryptographic
//! keys are under the control of the service provider". Here the archive
//! is encrypted *inside* the token with the owner's key; the cloud
//! ([`CloudStore`]) only ever holds ciphertext and cannot alter it
//! undetected (authenticated encryption + Merkle chunk tree).

use pds_crypto::{MerkleTree, SymmetricKey};
use pds_obs::rng::RngCore;

use crate::error::PdsError;

/// Chunk size of the archive (one upload unit).
const CHUNK: usize = 1024;

/// An untrusted storage provider: stores opaque blobs by name. The
/// adversary model lets it read everything it holds and tamper at will —
/// the tests do both.
#[derive(Default)]
pub struct CloudStore {
    blobs: std::collections::HashMap<String, Vec<Vec<u8>>>,
}

impl CloudStore {
    /// An empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a chunked blob under `name` (overwrites).
    pub fn put(&mut self, name: &str, chunks: Vec<Vec<u8>>) {
        self.blobs.insert(name.to_string(), chunks);
    }

    /// Fetch a blob.
    pub fn get(&self, name: &str) -> Option<&Vec<Vec<u8>>> {
        self.blobs.get(name)
    }

    /// Adversary action: corrupt one byte of one chunk.
    pub fn tamper(&mut self, name: &str, chunk: usize, byte: usize) {
        if let Some(chunks) = self.blobs.get_mut(name) {
            if let Some(c) = chunks.get_mut(chunk) {
                if let Some(b) = c.get_mut(byte) {
                    *b ^= 0x01;
                }
            }
        }
    }

    /// Adversary action: drop a chunk (truncation attack).
    pub fn drop_chunk(&mut self, name: &str, chunk: usize) {
        if let Some(chunks) = self.blobs.get_mut(name) {
            if chunk < chunks.len() {
                chunks.remove(chunk);
            }
        }
    }

    /// What the provider can observe: total ciphertext bytes (and nothing
    /// else — measured by the privacy tests).
    pub fn observable_bytes(&self, name: &str) -> usize {
        self.blobs
            .get(name)
            .map_or(0, |c| c.iter().map(Vec::len).sum())
    }
}

/// An encrypted, integrity-committed archive of one PDS.
pub struct EncryptedArchive {
    /// Merkle root over the ciphertext chunks — the owner keeps this
    /// 32-byte commitment locally (it fits the token).
    root: [u8; 32],
    /// Number of chunks, pinned against truncation.
    num_chunks: usize,
    name: String,
}

impl EncryptedArchive {
    /// Encrypt `plaintext` chunk-by-chunk with the owner key and upload
    /// to the cloud under `name`. Returns the local commitment.
    pub fn publish(
        cloud: &mut CloudStore,
        name: &str,
        key: &SymmetricKey,
        plaintext: &[u8],
        rng: &mut impl RngCore,
    ) -> EncryptedArchive {
        let mut chunks = Vec::new();
        if plaintext.is_empty() {
            chunks.push(key.encrypt_prob(&[], rng).0);
        } else {
            for chunk in plaintext.chunks(CHUNK) {
                chunks.push(key.encrypt_prob(chunk, rng).0);
            }
        }
        let tree = MerkleTree::build(&chunks);
        let archive = EncryptedArchive {
            root: tree.root(),
            num_chunks: chunks.len(),
            name: name.to_string(),
        };
        cloud.put(name, chunks);
        archive
    }

    /// Download, verify (count + Merkle root + authenticated decryption)
    /// and decrypt the archive.
    pub fn restore(&self, cloud: &CloudStore, key: &SymmetricKey) -> Result<Vec<u8>, PdsError> {
        let chunks = cloud
            .get(&self.name)
            .ok_or(PdsError::ArchiveCorrupt("archive missing"))?;
        if chunks.len() != self.num_chunks {
            return Err(PdsError::ArchiveCorrupt("chunk count (truncation?)"));
        }
        let tree = MerkleTree::build(chunks);
        if tree.root() != self.root {
            return Err(PdsError::ArchiveCorrupt("merkle root mismatch"));
        }
        let mut out = Vec::new();
        for c in chunks {
            let plain = key
                .decrypt(&pds_crypto::Ciphertext(c.clone()))
                .ok_or(PdsError::ArchiveCorrupt("authentication failure"))?;
            out.extend_from_slice(&plain);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup() -> (CloudStore, SymmetricKey, StdRng) {
        (
            CloudStore::new(),
            SymmetricKey::from_seed(b"alice-archive"),
            StdRng::seed_from_u64(77),
        )
    }

    #[test]
    fn round_trip() {
        let (mut cloud, key, mut rng) = setup();
        let data: Vec<u8> = (0..5000u32).flat_map(|i| i.to_le_bytes()).collect();
        let archive = EncryptedArchive::publish(&mut cloud, "alice", &key, &data, &mut rng);
        assert_eq!(archive.restore(&cloud, &key).unwrap(), data);
    }

    #[test]
    fn provider_sees_only_ciphertext() {
        let (mut cloud, key, mut rng) = setup();
        let secret = b"diagnosis: hypertension".repeat(50);
        EncryptedArchive::publish(&mut cloud, "alice", &key, &secret, &mut rng);
        let stored: Vec<u8> = cloud
            .get("alice")
            .unwrap()
            .iter()
            .flatten()
            .copied()
            .collect();
        // The plaintext never appears in what the provider holds.
        assert!(!stored
            .windows(b"hypertension".len())
            .any(|w| w == b"hypertension"));
    }

    #[test]
    fn tampering_is_detected() {
        let (mut cloud, key, mut rng) = setup();
        let data = vec![7u8; 4000];
        let archive = EncryptedArchive::publish(&mut cloud, "alice", &key, &data, &mut rng);
        cloud.tamper("alice", 2, 10);
        assert!(matches!(
            archive.restore(&cloud, &key),
            Err(PdsError::ArchiveCorrupt(_))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let (mut cloud, key, mut rng) = setup();
        let data = vec![7u8; 4000];
        let archive = EncryptedArchive::publish(&mut cloud, "alice", &key, &data, &mut rng);
        cloud.drop_chunk("alice", 3);
        assert!(matches!(
            archive.restore(&cloud, &key),
            Err(PdsError::ArchiveCorrupt(_))
        ));
    }

    #[test]
    fn wrong_key_cannot_restore() {
        let (mut cloud, key, mut rng) = setup();
        let archive = EncryptedArchive::publish(&mut cloud, "alice", &key, b"secret", &mut rng);
        let other = SymmetricKey::from_seed(b"not-alice");
        assert!(archive.restore(&cloud, &other).is_err());
    }

    #[test]
    fn empty_payload_round_trips() {
        let (mut cloud, key, mut rng) = setup();
        let archive = EncryptedArchive::publish(&mut cloud, "alice", &key, &[], &mut rng);
        assert_eq!(archive.restore(&cloud, &key).unwrap(), Vec::<u8>::new());
    }
}

//! Post-mortem forensics: *what was the token doing when the lights
//! went out?*
//!
//! A [`ReopenReport`] says what a power loss cost; the recovered
//! flight-recorder ring ([`pds_flash::BlackBox`]) says what the token
//! was doing. [`ForensicsReport`] correlates the two into a single
//! explainable verdict: the pre-crash timeline, a classified
//! [`CrashCause`], and the recovery losses — rendered for a human
//! (`render()`) or serialized for tooling (`to_json()`). The timeline
//! is rebuilt purely from the durable ring, so it is bit-identical for
//! the same seed no matter how many fleet workers raced around the
//! crash.

use pds_flash::BlackboxRecovery;
use pds_obs::flight::{code, subsystem, EventFrame};
use pds_obs::json::ObjWriter;

use crate::pds::ReopenReport;

/// What the recovery evidence says brought the token down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashCause {
    /// Nothing was torn anywhere: the previous power-down was clean.
    CleanShutdown,
    /// The MVCC change log lost its tail — the crash hit mid-commit.
    TornChangelogTail,
    /// Documents or table rows were cut — the crash hit mid-ingest,
    /// before the data logs were flushed.
    TornDataTail,
    /// Only the flight recorder itself was torn: the data survived but
    /// the crash interrupted a recorder flush.
    TornRecorderTail,
    /// Evidence did not match any known signature (e.g. a digest from a
    /// newer firmware revision).
    Unknown,
}

impl CrashCause {
    /// Stable human name, used in renders and health counters.
    pub fn name(self) -> &'static str {
        match self {
            CrashCause::CleanShutdown => "clean_shutdown",
            CrashCause::TornChangelogTail => "torn_changelog_tail",
            CrashCause::TornDataTail => "torn_data_tail",
            CrashCause::TornRecorderTail => "torn_recorder_tail",
            CrashCause::Unknown => "unknown",
        }
    }

    /// One-byte wire code for the `PDF1` digest.
    pub fn code(self) -> u8 {
        match self {
            CrashCause::CleanShutdown => 0,
            CrashCause::TornChangelogTail => 1,
            CrashCause::TornDataTail => 2,
            CrashCause::TornRecorderTail => 3,
            CrashCause::Unknown => 0xFF,
        }
    }

    /// Inverse of [`CrashCause::code`]; unknown bytes map to `Unknown`.
    pub fn from_code(c: u8) -> CrashCause {
        match c {
            0 => CrashCause::CleanShutdown,
            1 => CrashCause::TornChangelogTail,
            2 => CrashCause::TornDataTail,
            3 => CrashCause::TornRecorderTail,
            _ => CrashCause::Unknown,
        }
    }
}

/// The correlated post-mortem of one reopen: pre-crash timeline +
/// classified cause + recovery losses.
#[derive(Debug, Clone)]
pub struct ForensicsReport {
    /// The token this report describes.
    pub token: u64,
    /// The recovered flight-recorder ring, oldest first — everything
    /// the token durably recorded before the cut.
    pub timeline: Vec<EventFrame>,
    /// Frames the recorder scan salvaged.
    pub frames_recovered: u64,
    /// Torn recorder pages discarded at the CRC cut.
    pub torn_pages_discarded: u64,
    /// 1 if a malformed/non-monotone frame cut the ring.
    pub malformed_dropped: u64,
    /// The classified cause.
    pub cause: CrashCause,
    /// What the data-side recovery found.
    pub recovery: ReopenReport,
}

impl ForensicsReport {
    /// Correlate the recorder scan with the data-side recovery. The
    /// classification is ordered by how much the evidence explains:
    /// a torn change log implies the crash hit mid-commit; torn data
    /// logs imply mid-ingest; a torn recorder alone means the data was
    /// safe and only the black box was mid-flush.
    pub fn correlate(
        token: u64,
        timeline: Vec<EventFrame>,
        scan: &BlackboxRecovery,
        recovery: ReopenReport,
    ) -> ForensicsReport {
        let rows_lost: u32 = recovery.rows_lost.iter().map(|(_, n)| n).sum();
        let cause = if recovery.changes_dropped > 0 {
            CrashCause::TornChangelogTail
        } else if recovery.docs_lost > 0 || rows_lost > 0 {
            CrashCause::TornDataTail
        } else if scan.truncated() {
            CrashCause::TornRecorderTail
        } else {
            CrashCause::CleanShutdown
        };
        ForensicsReport {
            token,
            timeline,
            frames_recovered: scan.frames_recovered,
            torn_pages_discarded: scan.torn_pages_discarded,
            malformed_dropped: scan.malformed_dropped,
            cause,
            recovery,
        }
    }

    /// The newest surviving frame — the last thing the token is known
    /// to have been doing.
    pub fn last_frame(&self) -> Option<&EventFrame> {
        self.timeline.last()
    }

    /// Tick of the newest surviving frame.
    pub fn crash_tick(&self) -> u64 {
        self.last_frame().map_or(0, |f| f.tick)
    }

    /// True when anything at all was lost or torn.
    pub fn crashed(&self) -> bool {
        self.cause != CrashCause::CleanShutdown
    }

    /// Human-readable post-mortem: verdict line, losses, then the tail
    /// of the pre-crash timeline (newest last).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "forensics: token {} cause={} frames={} torn_pages={}\n",
            self.token,
            self.cause.name(),
            self.frames_recovered,
            self.torn_pages_discarded,
        ));
        let rows_lost: u32 = self.recovery.rows_lost.iter().map(|(_, n)| n).sum();
        out.push_str(&format!(
            "  recovery: docs_lost={} rows_lost={} changes_dropped={} tombstones={}\n",
            self.recovery.docs_lost,
            rows_lost,
            self.recovery.changes_dropped,
            self.recovery.tombstones_applied,
        ));
        let tail_from = self.timeline.len().saturating_sub(16);
        if tail_from > 0 {
            out.push_str(&format!("  … {tail_from} earlier frames\n"));
        }
        for f in &self.timeline[tail_from..] {
            out.push_str("  ");
            out.push_str(&f.render());
            out.push('\n');
        }
        out
    }

    /// Machine-readable post-mortem — the `--forensics-json` artifact.
    pub fn to_json(&self) -> String {
        let mut frames = String::from("[");
        for (i, f) in self.timeline.iter().enumerate() {
            if i > 0 {
                frames.push(',');
            }
            frames.push_str(
                &ObjWriter::new()
                    .u64("tick", f.tick)
                    .str("severity", f.severity.name())
                    .str("subsystem", subsystem::name(f.subsystem))
                    .str(
                        "code",
                        &format!("{}.{}", subsystem::name(f.subsystem), code::name(f.code)),
                    )
                    .u64("arg0", f.args[0])
                    .u64("arg1", f.args[1])
                    .finish(),
            );
        }
        frames.push(']');
        let rows_lost: u32 = self.recovery.rows_lost.iter().map(|(_, n)| n).sum();
        ObjWriter::new()
            .u64("token", self.token)
            .str("cause", self.cause.name())
            .u64("crash_tick", self.crash_tick())
            .u64("frames_recovered", self.frames_recovered)
            .u64("torn_pages_discarded", self.torn_pages_discarded)
            .u64("malformed_dropped", self.malformed_dropped)
            .u64("docs_recovered", u64::from(self.recovery.docs_recovered))
            .u64("docs_lost", u64::from(self.recovery.docs_lost))
            .u64("rows_lost", u64::from(rows_lost))
            .u64("changes_dropped", self.recovery.changes_dropped)
            .raw("timeline", &frames)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::flight::Severity;

    fn clean_recovery() -> ReopenReport {
        ReopenReport {
            docs_recovered: 5,
            docs_lost: 0,
            tombstones_applied: 0,
            rows_lost: vec![("email".into(), 0)],
            changes_dropped: 0,
        }
    }

    fn frame(tick: u64, c: u16) -> EventFrame {
        let mut f = EventFrame::new(Severity::Info, subsystem::CORE, c, [tick, 0]);
        f.tick = tick;
        f
    }

    #[test]
    fn cause_classification_is_ordered_by_evidence() {
        let scan = BlackboxRecovery {
            frames_recovered: 3,
            torn_pages_discarded: 1,
            malformed_dropped: 0,
        };
        let mut rec = clean_recovery();
        rec.changes_dropped = 2;
        let r = ForensicsReport::correlate(7, vec![], &scan, rec);
        assert_eq!(r.cause, CrashCause::TornChangelogTail);

        let mut rec = clean_recovery();
        rec.rows_lost = vec![("bank".into(), 3)];
        let r = ForensicsReport::correlate(7, vec![], &scan, rec);
        assert_eq!(r.cause, CrashCause::TornDataTail);

        let r = ForensicsReport::correlate(7, vec![], &scan, clean_recovery());
        assert_eq!(r.cause, CrashCause::TornRecorderTail);

        let quiet = BlackboxRecovery::default();
        let r = ForensicsReport::correlate(7, vec![], &quiet, clean_recovery());
        assert_eq!(r.cause, CrashCause::CleanShutdown);
        assert!(!r.crashed());
    }

    #[test]
    fn cause_codes_round_trip() {
        for c in [
            CrashCause::CleanShutdown,
            CrashCause::TornChangelogTail,
            CrashCause::TornDataTail,
            CrashCause::TornRecorderTail,
            CrashCause::Unknown,
        ] {
            assert_eq!(CrashCause::from_code(c.code()), c);
        }
        assert_eq!(CrashCause::from_code(42), CrashCause::Unknown);
    }

    #[test]
    fn render_and_json_carry_the_timeline() {
        let scan = BlackboxRecovery {
            frames_recovered: 2,
            torn_pages_discarded: 1,
            malformed_dropped: 0,
        };
        let timeline = vec![frame(4, code::CORE_INGEST), frame(5, code::CORE_COMMIT)];
        let r = ForensicsReport::correlate(3, timeline, &scan, clean_recovery());
        assert_eq!(r.crash_tick(), 5);
        let text = r.render();
        assert!(text.contains("torn_recorder_tail"));
        assert!(text.contains("core.commit"));
        let json = pds_obs::json::parse(&r.to_json()).expect("valid json");
        assert_eq!(json.get("token").and_then(|j| j.as_u64()), Some(3));
        assert_eq!(
            json.get("cause").and_then(|j| j.as_str()),
            Some("torn_recorder_tail")
        );
        let tl = json.get("timeline").and_then(|j| j.as_arr()).unwrap();
        assert_eq!(tl.len(), 2);
        assert_eq!(
            tl[1].get("code").and_then(|j| j.as_str()),
            Some("core.commit")
        );
        assert_eq!(tl[1].get("tick").and_then(|j| j.as_u64()), Some(5));
    }
}

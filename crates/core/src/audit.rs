//! Tamper-evident audit trail.
//!
//! "Secure usage and accountability: users must not lose control over
//! their data through data sharing." Every access decision — grants and
//! denials alike — is appended to a hash-chained log. The chain head can
//! be published (e.g. alongside the encrypted cloud archive), making any
//! later rewriting or truncation of the trail detectable.

use pds_crypto::HashChain;

/// Outcome of an access request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The policy granted the access.
    Granted,
    /// The policy refused the access.
    Denied,
}

/// One audited event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Logical timestamp (the PDS event counter).
    pub seq: u64,
    /// Requesting subject.
    pub subject: String,
    /// Action label (see [`crate::policy::Action::label`]).
    pub action: String,
    /// Target collection description.
    pub target: String,
    /// Outcome.
    pub decision: Decision,
}

impl AuditEntry {
    fn canonical_bytes(&self) -> Vec<u8> {
        let d = match self.decision {
            Decision::Granted => "granted",
            Decision::Denied => "denied",
        };
        format!(
            "{}|{}|{}|{}|{}",
            self.seq, self.subject, self.action, self.target, d
        )
        .into_bytes()
    }
}

/// The audit log: entries + hash chain.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    chain: HashChain,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog {
            entries: Vec::new(),
            chain: HashChain::new(),
        }
    }

    /// Record one decision.
    pub fn record(&mut self, subject: &str, action: &str, target: &str, decision: Decision) {
        let entry = AuditEntry {
            seq: self.entries.len() as u64,
            subject: subject.to_string(),
            action: action.to_string(),
            target: target.to_string(),
            decision,
        };
        self.chain.append(&entry.canonical_bytes());
        self.entries.push(entry);
    }

    /// All entries (the user examining her trail).
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// The chain head — publish this to commit to the trail.
    pub fn head(&self) -> [u8; 32] {
        self.chain.head()
    }

    /// Verify that the stored entries still match the chain — fails if
    /// any entry was altered, reordered or removed.
    pub fn verify(&self) -> bool {
        let bytes: Vec<Vec<u8>> = self.entries.iter().map(|e| e.canonical_bytes()).collect();
        self.chain.verify_entries(&bytes)
    }

    /// Count of denials (a user-facing "who tried what" indicator).
    pub fn denials(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.decision == Decision::Denied)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_verifies() {
        let mut log = AuditLog::new();
        log.record("alice", "search", "documents", Decision::Granted);
        log.record("insurer", "read", "HEALTH", Decision::Denied);
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.denials(), 1);
        assert!(log.verify());
    }

    #[test]
    fn tampering_with_an_entry_is_detected() {
        let mut log = AuditLog::new();
        log.record("alice", "read", "BANK", Decision::Granted);
        log.record("mallory", "export", "ALL", Decision::Denied);
        let mut tampered = log.clone();
        tampered.entries[1].decision = Decision::Granted; // rewrite history
        assert!(!tampered.verify());
        let mut truncated = log.clone();
        truncated.entries.pop(); // hide the denial
        assert!(!truncated.verify());
    }

    #[test]
    fn head_changes_with_every_entry() {
        let mut log = AuditLog::new();
        let h0 = log.head();
        log.record("a", "read", "x", Decision::Granted);
        let h1 = log.head();
        log.record("a", "read", "x", Decision::Granted);
        assert_ne!(h0, h1);
        assert_ne!(h1, log.head());
    }
}

//! Distributed secure sharing: credentials and proofs of legitimacy.
//!
//! Part I's fourth global requirement: "Distributed secure sharing —
//! users must get a **proof of legitimacy for the credentials exposed by
//! the participants of a data exchange**." Two PDSs (or a PDS and a
//! practitioner token) that have never met must convince each other that
//! the peer is (a) a genuine, certified secure token and (b) entitled to
//! the claimed role, before any data flows.
//!
//! The trust anchor is the tutorial's manufacturing model: tokens carry
//! "certified code" and secrets provisioned at issuance. The issuer
//! (manufacturer / health authority) holds a master secret; every token
//! receives MAC-signed [`Credential`]s binding its identity to a role
//! with an expiry. Verification is a MAC check any token can do with the
//! issuer verification key — plus a freshness challenge so a credential
//! cannot be replayed by an eavesdropper who never held the token.

use pds_crypto::{hmac_sha256, verify_hmac};
use pds_mcu::TokenId;
use pds_obs::rng::RngCore;

/// Roles a credential can attest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A citizen's personal token.
    Individual,
    /// A certified medical practitioner.
    Practitioner,
    /// An accredited statistics institute (may issue global queries).
    StatisticsInstitute,
}

impl Role {
    fn tag(&self) -> u8 {
        match self {
            Role::Individual => 0,
            Role::Practitioner => 1,
            Role::StatisticsInstitute => 2,
        }
    }
}

/// A signed attestation: `(token, subject, role, expiry)` under the
/// issuer's key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// The token this credential is bound to.
    pub token: TokenId,
    /// The human subject.
    pub subject: String,
    /// The attested role.
    pub role: Role,
    /// Expiry day (device epoch).
    pub expires_day: u64,
    /// Issuer MAC over the fields above.
    tag: [u8; 32],
}

impl Credential {
    fn message(token: TokenId, subject: &str, role: Role, expires_day: u64) -> Vec<u8> {
        let mut m = Vec::with_capacity(32 + subject.len());
        m.extend_from_slice(b"pds-credential-v1|");
        m.extend_from_slice(&token.0.to_le_bytes());
        m.push(role.tag());
        m.extend_from_slice(&expires_day.to_le_bytes());
        m.extend_from_slice(subject.as_bytes());
        m
    }
}

/// The credential issuer (manufacturer / accrediting authority).
pub struct Issuer {
    master: [u8; 32],
}

impl Issuer {
    /// An issuer from seed material (held in certified infrastructure).
    pub fn new(seed: &[u8]) -> Self {
        Issuer {
            master: hmac_sha256(b"pds-issuer", seed),
        }
    }

    /// The verification key provisioned into every genuine token.
    ///
    /// In this symmetric instantiation the verification key equals the
    /// signing key, protected by the tokens' tamper resistance — the
    /// standard smart-card deployment the tutorial assumes. An asymmetric
    /// drop-in only changes this method.
    pub fn verification_key(&self) -> VerificationKey {
        VerificationKey { key: self.master }
    }

    /// Issue a credential.
    pub fn issue(&self, token: TokenId, subject: &str, role: Role, expires_day: u64) -> Credential {
        let tag = hmac_sha256(
            &self.master,
            &Credential::message(token, subject, role, expires_day),
        );
        Credential {
            token,
            subject: subject.to_string(),
            role,
            expires_day,
            tag,
        }
    }
}

/// The verification key held by every genuine token.
#[derive(Clone)]
pub struct VerificationKey {
    key: [u8; 32],
}

impl VerificationKey {
    /// Verify a credential's signature and expiry at day `today`.
    pub fn verify(&self, cred: &Credential, today: u64) -> bool {
        cred.expires_day >= today
            && verify_hmac(
                &self.key,
                &Credential::message(cred.token, &cred.subject, cred.role, cred.expires_day),
                &cred.tag,
            )
    }

    /// Challenge–response proof of possession: the verifier sends a
    /// nonce; the holder answers with `HMAC(vk, nonce ‖ token_id)` —
    /// something only a genuine token (holding `vk` inside its
    /// tamper-resistant boundary) can produce. This stops a passive
    /// eavesdropper from replaying an overheard credential.
    pub fn respond(&self, nonce: &[u8; 32], token: TokenId) -> [u8; 32] {
        let mut m = nonce.to_vec();
        m.extend_from_slice(&token.0.to_le_bytes());
        hmac_sha256(&self.key, &m)
    }

    /// Verify a challenge response.
    pub fn check_response(&self, nonce: &[u8; 32], token: TokenId, response: &[u8; 32]) -> bool {
        &self.respond(nonce, token) == response
    }
}

/// Outcome of a mutual handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeOutcome {
    /// Both credentials verified and both proofs of possession passed.
    Established,
    /// The peer's credential failed (expired, forged, wrong binding).
    BadCredential,
    /// The peer could not prove possession (replayed credential).
    BadProof,
}

/// Run the mutual legitimacy handshake between two parties, each holding
/// a credential and the verification key, at day `today`.
pub fn handshake(
    vk: &VerificationKey,
    a: &Credential,
    b: &Credential,
    today: u64,
    rng: &mut impl RngCore,
) -> HandshakeOutcome {
    // 1. Credential exchange and verification.
    if !vk.verify(a, today) || !vk.verify(b, today) {
        return HandshakeOutcome::BadCredential;
    }
    // 2. Mutual proof of possession.
    let mut nonce_a = [0u8; 32];
    let mut nonce_b = [0u8; 32];
    rng.fill_bytes(&mut nonce_a);
    rng.fill_bytes(&mut nonce_b);
    let resp_b = vk.respond(&nonce_a, b.token); // b answers a's challenge
    let resp_a = vk.respond(&nonce_b, a.token);
    if !vk.check_response(&nonce_a, b.token, &resp_b)
        || !vk.check_response(&nonce_b, a.token, &resp_a)
    {
        return HandshakeOutcome::BadProof;
    }
    HandshakeOutcome::Established
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    fn setup() -> (Issuer, VerificationKey) {
        let issuer = Issuer::new(b"national-health-authority");
        let vk = issuer.verification_key();
        (issuer, vk)
    }

    #[test]
    fn issued_credentials_verify_until_expiry() {
        let (issuer, vk) = setup();
        let cred = issuer.issue(TokenId(7), "dr.martin", Role::Practitioner, 1000);
        assert!(vk.verify(&cred, 0));
        assert!(vk.verify(&cred, 1000));
        assert!(!vk.verify(&cred, 1001), "expired");
    }

    #[test]
    fn any_field_tampering_invalidates() {
        let (issuer, vk) = setup();
        let cred = issuer.issue(TokenId(7), "dr.martin", Role::Practitioner, 1000);
        let mut c = cred.clone();
        c.subject = "dr.mallory".into();
        assert!(!vk.verify(&c, 0));
        let mut c = cred.clone();
        c.role = Role::StatisticsInstitute;
        assert!(!vk.verify(&c, 0), "role escalation");
        let mut c = cred.clone();
        c.token = TokenId(8);
        assert!(!vk.verify(&c, 0), "rebinding to another token");
        let mut c = cred.clone();
        c.expires_day = u64::MAX;
        assert!(!vk.verify(&c, 0), "expiry extension");
    }

    #[test]
    fn foreign_issuer_credentials_are_rejected() {
        let (_, vk) = setup();
        let rogue = Issuer::new(b"rogue-authority");
        let cred = rogue.issue(TokenId(7), "dr.martin", Role::Practitioner, 1000);
        assert!(!vk.verify(&cred, 0));
    }

    #[test]
    fn handshake_establishes_between_genuine_parties() {
        let (issuer, vk) = setup();
        let alice = issuer.issue(TokenId(1), "alice", Role::Individual, 500);
        let doctor = issuer.issue(TokenId(2), "dr.martin", Role::Practitioner, 500);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            handshake(&vk, &alice, &doctor, 100, &mut rng),
            HandshakeOutcome::Established
        );
    }

    #[test]
    fn handshake_rejects_expired_peer() {
        let (issuer, vk) = setup();
        let alice = issuer.issue(TokenId(1), "alice", Role::Individual, 500);
        let stale = issuer.issue(TokenId(2), "dr.old", Role::Practitioner, 50);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            handshake(&vk, &alice, &stale, 100, &mut rng),
            HandshakeOutcome::BadCredential
        );
    }

    #[test]
    fn replay_without_the_key_fails_the_possession_proof() {
        let (issuer, vk) = setup();
        let cred = issuer.issue(TokenId(9), "dr.martin", Role::Practitioner, 500);
        // An eavesdropper replays the (public) credential but cannot
        // answer a fresh challenge.
        let mut nonce = [0u8; 32];
        StdRng::seed_from_u64(3).fill_bytes(&mut nonce);
        let forged_response = [0u8; 32];
        assert!(vk.verify(&cred, 100), "the credential itself is valid…");
        assert!(
            !vk.check_response(&nonce, cred.token, &forged_response),
            "…but possession cannot be faked"
        );
    }
}

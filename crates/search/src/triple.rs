//! Index triples and their page layout.
//!
//! "Inverted index: stores triples (keyword, docid, weight)". The keyword
//! is stored as a 64-bit hash (collisions are negligible and a false merge
//! would only add a spurious score contribution); the weight is the term
//! frequency in the document (the `weight_{ti,doc}` factor of the
//! tutorial's TF-IDF formula).
//!
//! ## Bucket page layout (raw log page)
//!
//! ```text
//! [prev_page: u32]  index of the previous page of this bucket chain
//!                   within the index log, u32::MAX = end of chain
//! [count: u16]      number of triples
//! count × [term_hash: u64][docid: u32][tf: u16]
//! ```

/// Document identifier. "Document ids are generated in increasing order" —
/// the property the pipeline merge relies on.
pub type DocId = u32;

/// End-of-chain marker in a bucket page header.
pub const NO_PREV: u32 = u32::MAX;

/// Size of the bucket-page header.
pub const PAGE_HEADER: usize = 6;

/// One inverted-index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triple {
    /// FNV-1a hash of the term.
    pub term: u64,
    /// The document containing the term.
    pub doc: DocId,
    /// Term frequency in the document.
    pub tf: u16,
}

/// Bytes per serialized triple.
pub const TRIPLE_LEN: usize = 14;

impl Triple {
    /// Serialize into `buf` at `off`.
    pub fn write(&self, buf: &mut [u8], off: usize) {
        buf[off..off + 8].copy_from_slice(&self.term.to_le_bytes());
        buf[off + 8..off + 12].copy_from_slice(&self.doc.to_le_bytes());
        buf[off + 12..off + 14].copy_from_slice(&self.tf.to_le_bytes());
    }

    /// Deserialize from `buf` at `off`; `None` when the buffer is too
    /// short (a corrupt page must degrade into a failed query, never a
    /// panic on the unattended token).
    pub fn read(buf: &[u8], off: usize) -> Option<Triple> {
        let bytes = buf.get(off..off + TRIPLE_LEN)?;
        Some(Triple {
            term: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            doc: u32::from_le_bytes(bytes[8..12].try_into().ok()?),
            tf: u16::from_le_bytes(bytes[12..14].try_into().ok()?),
        })
    }
}

/// How many triples fit in one bucket page of `page_size` bytes.
pub fn triples_per_page(page_size: usize) -> usize {
    (page_size - PAGE_HEADER) / TRIPLE_LEN
}

/// Encode one bucket page.
pub fn encode_page(page_size: usize, prev: u32, triples: &[Triple]) -> Vec<u8> {
    debug_assert!(triples.len() <= triples_per_page(page_size));
    let mut buf = vec![0xFFu8; page_size];
    buf[0..4].copy_from_slice(&prev.to_le_bytes());
    buf[4..6].copy_from_slice(&(triples.len() as u16).to_le_bytes());
    for (i, t) in triples.iter().enumerate() {
        t.write(&mut buf, PAGE_HEADER + i * TRIPLE_LEN);
    }
    buf
}

/// Decode one bucket page into `(prev, triples)`; `None` on a short
/// buffer or a slot count pointing past the page (torn or corrupt
/// flash). The engine maps `None` to `SearchError::CorruptIndex`.
pub fn decode_page(buf: &[u8]) -> Option<(u32, Vec<Triple>)> {
    let prev = u32::from_le_bytes(buf.get(0..4)?.try_into().ok()?);
    let count = u16::from_le_bytes(buf.get(4..6)?.try_into().ok()?) as usize;
    let triples = (0..count)
        .map(|i| Triple::read(buf, PAGE_HEADER + i * TRIPLE_LEN))
        .collect::<Option<Vec<Triple>>>()?;
    Some((prev, triples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_round_trip() {
        let t = Triple {
            term: 0xDEADBEEFCAFEF00D,
            doc: 42,
            tf: 7,
        };
        let mut buf = vec![0u8; TRIPLE_LEN];
        t.write(&mut buf, 0);
        assert_eq!(Triple::read(&buf, 0), Some(t));
    }

    #[test]
    fn page_round_trip() {
        let triples: Vec<Triple> = (0..10)
            .map(|i| Triple {
                term: i as u64,
                doc: i * 3,
                tf: i as u16,
            })
            .collect();
        let page = encode_page(512, 77, &triples);
        assert_eq!(page.len(), 512);
        let (prev, back) = decode_page(&page).unwrap();
        assert_eq!(prev, 77);
        assert_eq!(back, triples);
    }

    #[test]
    fn capacity_matches_layout() {
        assert_eq!(triples_per_page(512), (512 - 6) / 14);
        let n = triples_per_page(512);
        let triples = vec![
            Triple {
                term: 1,
                doc: 2,
                tf: 3
            };
            n
        ];
        let page = encode_page(512, NO_PREV, &triples);
        let (prev, back) = decode_page(&page).unwrap();
        assert_eq!(prev, NO_PREV);
        assert_eq!(back.len(), n);
    }
}

//! The embedded search engine.
//!
//! Storage side: a RAM hash table of bucket heads over *chained hash
//! buckets* in flash (see [`crate::triple`] for the page layout), fed by a
//! small RAM insertion buffer. Query side: one backward chain cursor per
//! query keyword, merged on descending docid, scoring TF-IDF in pipeline
//! into a bounded top-N heap. RAM use is enforced end-to-end through
//! [`pds_mcu::RamBudget`].

use std::collections::HashMap;

use pds_flash::{Flash, FlashError, LogWriter};
use pds_mcu::{RamBudget, RamError, TopN};

use crate::docs::DocStore;
use crate::tokenize::{term_hash, tokenize};
use crate::triple::{decode_page, encode_page, triples_per_page, DocId, Triple, NO_PREV};

/// Errors of the search engine.
#[derive(Debug)]
pub enum SearchError {
    /// Underlying flash failure (exhaustion, corruption …).
    Flash(FlashError),
    /// The MCU RAM budget cannot accommodate the operation.
    Ram(RamError),
    /// An internal index invariant does not hold (empty bucket table,
    /// cursor consumed past its end). Surfaced as an error instead of a
    /// panic: on an unattended token a corrupt index must degrade into a
    /// failed query, never a crash.
    CorruptIndex(&'static str),
}

impl From<FlashError> for SearchError {
    fn from(e: FlashError) -> Self {
        SearchError::Flash(e)
    }
}

impl From<RamError> for SearchError {
    fn from(e: RamError) -> Self {
        SearchError::Ram(e)
    }
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Flash(e) => write!(f, "flash: {e}"),
            SearchError::Ram(e) => write!(f, "ram: {e}"),
            SearchError::CorruptIndex(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for SearchError {}

/// How the engine obtains per-term document frequencies for IDF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfStrategy {
    /// Count df with an extra backward walk of each query keyword's chain.
    /// Zero additional RAM; read I/O per query roughly doubles.
    TwoPass,
    /// Keep an exact `term → df` dictionary in RAM. One chain walk per
    /// query, but RAM grows with the vocabulary — untenable on the
    /// smallest devices, which is why the tutorial's framework favors the
    /// streaming alternative. Offered for the E3 ablation.
    RamDictionary,
}

/// Match semantics of a multi-keyword query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Rank every document containing *any* keyword (disjunctive TF-IDF,
    /// the tutorial's default).
    Any,
    /// Only documents containing *all* keywords qualify (conjunctive);
    /// qualifying documents still rank by their TF-IDF sum.
    All,
}

/// One query answer: a document and its TF-IDF score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matching document.
    pub doc: DocId,
    /// TF-IDF relevance.
    pub score: f64,
}

/// Score/doc pair with a total order for the bounded heap. Ties on score
/// break toward the larger docid (most recent document), deterministically
/// mirrored by the test oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f64,
    doc: DocId,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then(self.doc.cmp(&other.doc))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The embedded search engine.
pub struct SearchEngine {
    flash: Flash,
    ram: RamBudget,
    num_buckets: usize,
    /// Per-bucket head: index of the most recent chain page in `index`,
    /// `NO_PREV` when the bucket has no flash page yet.
    heads: Vec<u32>,
    /// The index log (raw bucket pages, append-only).
    index: LogWriter,
    /// Per-bucket RAM insertion buffers.
    pending: Vec<Vec<Triple>>,
    pending_total: usize,
    /// Maximum triples buffered in RAM before a flush.
    pending_cap: usize,
    _pending_reservation: pds_mcu::Reservation,
    docs: DocStore,
    df_strategy: DfStrategy,
    /// Exact df dictionary (only in `RamDictionary` mode).
    df: HashMap<u64, u32>,
    _df_reservation: Option<pds_mcu::Reservation>,
    /// Deleted docids (RAM mirror of the tombstone log; ~4 B each,
    /// charged to the budget). Deleted documents are filtered from every
    /// query and physically purged at the next reorganization.
    deleted: std::collections::HashSet<DocId>,
    tombstones: pds_flash::LogWriter,
    deleted_reservation: pds_mcu::Reservation,
}

/// Bytes budgeted per dictionary entry in `RamDictionary` mode.
const DICT_ENTRY_BYTES: usize = 16;

impl SearchEngine {
    /// Create an engine with `num_buckets` hash buckets and a RAM
    /// insertion buffer of `buffer_triples` triples.
    pub fn new(
        flash: &Flash,
        ram: &RamBudget,
        num_buckets: usize,
        buffer_triples: usize,
        df_strategy: DfStrategy,
    ) -> Result<Self, SearchError> {
        // pds-lint: allow(panic.assert) — construction-time shape check on
        // caller-chosen constants, not data-dependent; cannot fire at query time
        assert!(num_buckets > 0 && buffer_triples > 0);
        // Charge the permanent RAM residents: bucket heads + insertion
        // buffer. The df dictionary is charged as it grows.
        let head_bytes = num_buckets * 4;
        let buf_bytes = buffer_triples * std::mem::size_of::<Triple>();
        let reservation = ram.reserve(head_bytes + buf_bytes)?;
        Ok(SearchEngine {
            flash: flash.clone(),
            ram: ram.clone(),
            num_buckets,
            heads: vec![NO_PREV; num_buckets],
            index: flash.new_log(),
            pending: vec![Vec::new(); num_buckets],
            pending_total: 0,
            pending_cap: buffer_triples,
            _pending_reservation: reservation,
            docs: DocStore::new(flash),
            df_strategy,
            df: HashMap::new(),
            _df_reservation: match df_strategy {
                DfStrategy::RamDictionary => Some(ram.reserve(0)?),
                DfStrategy::TwoPass => None,
            },
            deleted: std::collections::HashSet::new(),
            tombstones: flash.new_log(),
            deleted_reservation: ram.reserve(0)?,
        })
    }

    fn bucket_of(&self, term: u64) -> usize {
        (term % self.num_buckets as u64) as usize
    }

    /// Number of indexed documents (live + deleted; docids are dense).
    pub fn num_docs(&self) -> u32 {
        self.docs.len() as u32
    }

    /// Number of live (non-deleted) documents — the `|{doc}|` of the
    /// TF-IDF formula.
    pub fn num_live_docs(&self) -> u32 {
        self.num_docs() - self.deleted.len() as u32
    }

    /// Pages currently in the index log.
    pub fn num_index_pages(&self) -> u32 {
        self.index.num_pages()
    }

    /// Retrieve a document's raw content (deleted documents are gone).
    pub fn get_document(&self, doc: DocId) -> Result<Vec<u8>, SearchError> {
        if self.deleted.contains(&doc) {
            return Err(SearchError::Flash(pds_flash::FlashError::BadRecordAddr));
        }
        Ok(self.docs.get(doc)?)
    }

    /// Delete a document: a tombstone is appended durably, the docid is
    /// filtered from every subsequent query, and the next
    /// [`reorganize`](Self::reorganize) purges its index triples
    /// physically. Idempotent.
    pub fn delete_document(&mut self, doc: DocId) -> Result<(), SearchError> {
        if doc >= self.num_docs() || self.deleted.contains(&doc) {
            return Ok(());
        }
        self.tombstones.append(&doc.to_le_bytes())?;
        self.note_deleted(doc)
    }

    /// Register `doc` as deleted in RAM state (deleted set + exact df
    /// dictionary) without touching the tombstone log — shared by
    /// [`delete_document`](Self::delete_document) (which appends the
    /// tombstone first) and crash recovery (which replays tombstones
    /// already on flash).
    fn note_deleted(&mut self, doc: DocId) -> Result<(), SearchError> {
        self.deleted_reservation.grow(4)?;
        if self.df_strategy == DfStrategy::RamDictionary {
            // Keep the exact dictionary exact: decrement df for the
            // document's distinct terms.
            let text = String::from_utf8_lossy(&self.docs.get(doc)?).into_owned();
            let mut distinct: Vec<u64> = tokenize(&text).iter().map(|t| term_hash(t)).collect();
            distinct.sort_unstable();
            distinct.dedup();
            for term in distinct {
                if let Some(c) = self.df.get_mut(&term) {
                    *c = c.saturating_sub(1);
                }
            }
        }
        self.deleted.insert(doc);
        Ok(())
    }

    /// Number of deleted (tombstoned, not yet purged) documents.
    pub fn num_deleted(&self) -> usize {
        self.deleted.len()
    }

    /// Index one document; returns its docid.
    pub fn index_document(&mut self, text: &str) -> Result<DocId, SearchError> {
        let doc = self.docs.append(text.as_bytes())?;
        self.index_text(doc, text)?;
        Ok(doc)
    }

    /// Build index triples for an already-stored document — the indexing
    /// half of [`index_document`](Self::index_document), reused by crash
    /// recovery to re-derive the inverted index from recovered documents
    /// without re-appending their content.
    fn index_text(&mut self, doc: DocId, text: &str) -> Result<(), SearchError> {
        // Per-document term-frequency aggregation: transient RAM
        // proportional to the document's distinct terms. BTreeMap, not
        // HashMap: triples must reach the bucket buffers in a stable
        // order, or the buffer-full flush point — and with it the page
        // packing and the flash IO counters — would vary per process
        // with the hash seed, breaking `report --check` baselines.
        let tokens = tokenize(text);
        let mut tf: std::collections::BTreeMap<u64, u16> = std::collections::BTreeMap::new();
        let _tf_guard = self
            .ram
            .reserve(tokens.len().min(1024) * DICT_ENTRY_BYTES)?;
        for tok in &tokens {
            let e = tf.entry(term_hash(tok)).or_insert(0);
            *e = e.saturating_add(1);
        }
        for (term, count) in tf {
            if self.df_strategy == DfStrategy::RamDictionary {
                let is_new = !self.df.contains_key(&term);
                *self.df.entry(term).or_insert(0) += 1;
                if is_new {
                    if let Some(r) = self._df_reservation.as_mut() {
                        r.grow(DICT_ENTRY_BYTES)?;
                    }
                }
            }
            let b = self.bucket_of(term);
            self.pending[b].push(Triple {
                term,
                doc,
                tf: count,
            });
            self.pending_total += 1;
            if self.pending_total >= self.pending_cap {
                self.flush_largest_bucket()?;
            }
        }
        Ok(())
    }

    /// Flush the bucket with the most pending triples to flash.
    fn flush_largest_bucket(&mut self) -> Result<(), SearchError> {
        let (b, _) = self
            .pending
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.len())
            .ok_or(SearchError::CorruptIndex("no buckets to flush"))?;
        self.flush_bucket(b)
    }

    fn flush_bucket(&mut self, b: usize) -> Result<(), SearchError> {
        if self.pending[b].is_empty() {
            return Ok(());
        }
        let triples = std::mem::take(&mut self.pending[b]);
        self.pending_total -= triples.len();
        let cap = triples_per_page(self.flash.geometry().page_size);
        for chunk in triples.chunks(cap) {
            let page = encode_page(self.flash.geometry().page_size, self.heads[b], chunk);
            let idx = self.index.append_raw_page(&page)?;
            self.heads[b] = idx;
        }
        Ok(())
    }

    /// Flush every pending triple and document chunk to flash.
    pub fn flush(&mut self) -> Result<(), SearchError> {
        for b in 0..self.num_buckets {
            self.flush_bucket(b)?;
        }
        self.docs.flush()?;
        // Tombstones too — a deletion the user was told about must not
        // evaporate in a crash.
        self.tombstones.flush()?;
        Ok(())
    }

    /// Document frequency of one term (two-pass strategy): walk the chain
    /// with a single reusable page buffer.
    fn count_df(&self, term: u64) -> Result<u32, SearchError> {
        let b = self.bucket_of(term);
        let live = |t: &&Triple| t.term == term && !self.deleted.contains(&t.doc);
        let mut df = self.pending[b].iter().filter(live).count() as u32;
        let _page_guard = self.ram.reserve(self.flash.geometry().page_size)?;
        let mut buf = vec![0u8; self.flash.geometry().page_size];
        let mut page = self.heads[b];
        while page != NO_PREV {
            let addr = self.index.page_addr(page)?;
            self.flash.read_page(addr, &mut buf)?;
            let (prev, triples) =
                decode_page(&buf).ok_or(SearchError::CorruptIndex("undecodable bucket page"))?;
            df += triples.iter().filter(live).count() as u32;
            page = prev;
        }
        Ok(df)
    }

    /// TF-IDF top-`n` search with disjunctive (ANY) semantics.
    ///
    /// RAM: one flash-page cursor per query keyword + the bounded top-N
    /// heap, all reserved from the budget up front; the query fails with
    /// [`SearchError::Ram`] if the device cannot afford it — exactly the
    /// failure a too-small MCU would hit.
    pub fn search(&self, keywords: &[&str], n: usize) -> Result<Vec<SearchHit>, SearchError> {
        self.search_mode(keywords, n, SearchMode::Any)
    }

    /// [`search`](Self::search) restricted to the docid prefix below
    /// `visible` — the snapshot-pinned read of the MVCC layer (docids
    /// are dense and increasing, so a snapshot's view of the corpus is
    /// a prefix). Ranking weights (IDF) still reflect the live corpus;
    /// only *membership* is pinned, which keeps the query at identical
    /// I/O cost. A top-`n` cannot be post-filtered from an unbounded
    /// search (later documents would evict visible ones from the heap),
    /// so the bound applies inside the merge.
    pub fn search_visible(
        &self,
        keywords: &[&str],
        n: usize,
        visible: DocId,
    ) -> Result<Vec<SearchHit>, SearchError> {
        self.search_bounded(keywords, n, SearchMode::Any, Some(visible))
    }

    /// TF-IDF top-`n` search with explicit match semantics. The pipeline
    /// is identical for both modes — conjunctive filtering happens for
    /// free at the merge point, where all of a document's triples are in
    /// RAM simultaneously.
    pub fn search_mode(
        &self,
        keywords: &[&str],
        n: usize,
        mode: SearchMode,
    ) -> Result<Vec<SearchHit>, SearchError> {
        self.search_bounded(keywords, n, mode, None)
    }

    fn search_bounded(
        &self,
        keywords: &[&str],
        n: usize,
        mode: SearchMode,
        visible: Option<DocId>,
    ) -> Result<Vec<SearchHit>, SearchError> {
        let span = pds_obs::span!(
            "search.query",
            "search.keywords" => keywords.len() as u64,
            "search.mode" => match mode {
                SearchMode::Any => "any",
                SearchMode::All => "all",
            },
        );
        let io_before = self.flash.stats();
        let num_docs = self.num_live_docs();
        if num_docs == 0 || keywords.is_empty() {
            return Ok(Vec::new());
        }
        // Resolve keyword → (term, idf), dropping terms with df = 0.
        let mut requested = 0usize;
        let mut terms: Vec<(u64, f64)> = Vec::new();
        for kw in keywords {
            let toks = tokenize(kw);
            for tok in &toks {
                requested += 1;
                let term = term_hash(tok);
                let df = match self.df_strategy {
                    DfStrategy::TwoPass => self.count_df(term)?,
                    DfStrategy::RamDictionary => self.df.get(&term).copied().unwrap_or(0),
                };
                if df > 0 {
                    let idf = (num_docs as f64 / df as f64).ln();
                    terms.push((term, idf));
                }
            }
        }
        terms.sort_by_key(|(t, _)| *t);
        terms.dedup_by_key(|(t, _)| *t);
        if terms.is_empty() {
            return Ok(Vec::new());
        }
        // Conjunctive semantics: a keyword absent from the corpus makes
        // the whole conjunction empty. (Duplicated query keywords only
        // need to match once, hence the dedup above.)
        let mut seen_req: Vec<u64> = keywords
            .iter()
            .flat_map(|kw| tokenize(kw))
            .map(|t| term_hash(&t))
            .collect();
        seen_req.sort_unstable();
        seen_req.dedup();
        let _ = requested;
        if mode == SearchMode::All && terms.len() < seen_req.len() {
            return Ok(Vec::new());
        }

        // One chain cursor (one RAM page) per keyword.
        let page_size = self.flash.geometry().page_size;
        let _cursor_guard = self.ram.reserve(terms.len() * page_size)?;
        // Validate the paper's "1 RAM page per query keyword" claim
        // against what was actually reserved for the cursors.
        let pages_per_kw = _cursor_guard.bytes().div_ceil(page_size) as u64 / terms.len() as u64;
        span.set("search.ram_pages_per_keyword", pages_per_kw);
        if pages_per_kw > pds_obs::budgets::RAM_PAGES_PER_QUERY_KEYWORD {
            pds_obs::counter("search.ram_claim_violations").inc();
        }
        let mut cursors: Vec<ChainCursor> = terms
            .iter()
            .map(|(term, idf)| ChainCursor::new(self, *term, *idf))
            .collect::<Result<_, _>>()?;

        let mut top: TopN<Scored> = TopN::new(&self.ram, n)?;
        // Pipeline merge on descending docid: triples with an equal docid
        // arrive at the same time, so each document's score completes
        // before the next document starts.
        while let Some(doc) = cursors.iter().filter_map(|c| c.current_doc()).max() {
            let mut score = 0.0;
            let mut matched_terms = 0usize;
            for c in &mut cursors {
                let mut cursor_matched = false;
                while c.current_doc() == Some(doc) {
                    let (tf, idf) = c.take()?;
                    score += tf as f64 * idf;
                    cursor_matched = true;
                }
                if cursor_matched {
                    matched_terms += 1;
                }
            }
            let in_view = visible.is_none_or(|v| doc < v);
            if in_view && (mode == SearchMode::Any || matched_terms == cursors.len()) {
                top.offer(Scored { score, doc });
            }
        }
        let hits: Vec<SearchHit> = top
            .into_sorted_desc()
            .into_iter()
            .map(|s| SearchHit {
                doc: s.doc,
                score: s.score,
            })
            .collect();
        span.set("search.hits", hits.len() as u64);
        (self.flash.stats() - io_before).attach_to_span(&span);
        Ok(hits)
    }

    /// Reorganize the index: rewrite every bucket chain into densely
    /// packed pages in a fresh log, then reclaim the old log wholesale.
    ///
    /// The chain of a bucket is already globally sorted by docid (pages
    /// are flushed in docid order and docids only grow), so the rewrite is
    /// a single forward pass with two RAM pages — the "reorganization
    /// process only uses log structures" rule of the tutorial, and it is
    /// interruptible: the old index stays valid until the swap.
    pub fn reorganize(&mut self) -> Result<(), SearchError> {
        // Stabilize RAM state first.
        self.flush()?;
        let page_size = self.flash.geometry().page_size;
        let cap = triples_per_page(page_size);
        let mut new_log = self.flash.new_log();
        let mut new_heads = vec![NO_PREV; self.num_buckets];
        let _guard = self.ram.reserve(2 * page_size)?;
        let mut buf = vec![0u8; page_size];
        for (b, new_head) in new_heads.iter_mut().enumerate() {
            // Collect the chain page indexes (newest → oldest).
            let mut chain = Vec::new();
            let mut page = self.heads[b];
            while page != NO_PREV {
                chain.push(page);
                let addr = self.index.page_addr(page)?;
                self.flash.read_page(addr, &mut buf)?;
                let (prev, _) = decode_page(&buf)
                    .ok_or(SearchError::CorruptIndex("undecodable bucket page"))?;
                page = prev;
            }
            // Re-read oldest → newest, repacking into full pages.
            let mut packing: Vec<Triple> = Vec::with_capacity(cap);
            for &p in chain.iter().rev() {
                let addr = self.index.page_addr(p)?;
                self.flash.read_page(addr, &mut buf)?;
                let (_, triples) = decode_page(&buf)
                    .ok_or(SearchError::CorruptIndex("undecodable bucket page"))?;
                for t in triples {
                    if self.deleted.contains(&t.doc) {
                        continue; // physical purge of tombstoned documents
                    }
                    packing.push(t);
                    if packing.len() == cap {
                        let pg = encode_page(page_size, *new_head, &packing);
                        *new_head = new_log.append_raw_page(&pg)?;
                        packing.clear();
                    }
                }
            }
            if !packing.is_empty() {
                let pg = encode_page(page_size, *new_head, &packing);
                *new_head = new_log.append_raw_page(&pg)?;
            }
        }
        // Atomic swap, then block-grain reclamation of the old index.
        let old = std::mem::replace(&mut self.index, new_log);
        old.discard();
        self.heads = new_heads;
        Ok(())
    }

    /// The engine's durable identity, to be persisted by the layer above
    /// (a real token keeps it in a catalog log) and handed to
    /// [`recover`](Self::recover) after a power loss.
    pub fn manifest(&self) -> EngineManifest {
        EngineManifest {
            doc_blocks: self.docs.blocks(),
            doc_directory: self.docs.directory().to_vec(),
            tombstone_blocks: self.tombstones.blocks().to_vec(),
            index_blocks: self.index.blocks().to_vec(),
            num_buckets: self.num_buckets,
            buffer_triples: self.pending_cap,
            df_strategy: self.df_strategy,
        }
    }

    /// Rebuild an engine after a power loss.
    ///
    /// The document store and the tombstone log are record logs and
    /// recover via [`LogWriter::recover`] — every document durably on
    /// flash before the cut comes back. The inverted index is *derived*
    /// state: its bucket heads lived in controller RAM and died with the
    /// power, and its chain pages are raw (no record framing), so the old
    /// index blocks are returned to the pool and the index is re-derived
    /// by replaying every recovered document through the indexing path.
    /// Tombstones are re-applied last, so deletions survive the crash.
    pub fn recover(
        flash: &Flash,
        ram: &RamBudget,
        m: &EngineManifest,
    ) -> Result<(SearchEngine, EngineRecovery), SearchError> {
        let (docs, docs_lost) = DocStore::recover(flash, &m.doc_blocks, &m.doc_directory)?;
        let (tombstones, _) = LogWriter::recover(flash, &m.tombstone_blocks)?;
        let mut tombstoned: Vec<DocId> = Vec::new();
        for page in 0..tombstones.num_pages() {
            for rec in tombstones.read_page_records(page)? {
                if let Ok(b) = <[u8; 4]>::try_from(rec.as_slice()) {
                    tombstoned.push(DocId::from_le_bytes(b));
                }
            }
        }
        // Drop the stale index blocks (claim first so a block the reboot
        // scan classified as free is not double-inserted).
        for b in &m.index_blocks {
            let _ = flash.claim_block(*b);
            flash.free_block(*b);
        }
        let mut engine =
            SearchEngine::new(flash, ram, m.num_buckets, m.buffer_triples, m.df_strategy)?;
        engine.docs = docs;
        engine.tombstones = tombstones;
        for doc in 0..engine.docs.len() as DocId {
            let text = String::from_utf8_lossy(&engine.docs.get(doc)?).into_owned();
            engine.index_text(doc, &text)?;
        }
        let mut tombstones_applied = 0u64;
        for doc in tombstoned {
            // Tombstones for documents the crash destroyed are moot, and
            // duplicates (recovery after recovery) apply once.
            if (doc as usize) < engine.docs.len() && !engine.deleted.contains(&doc) {
                engine.note_deleted(doc)?;
                tombstones_applied += 1;
            }
        }
        let report = EngineRecovery {
            docs_recovered: engine.docs.len() as u32,
            docs_lost,
            tombstones_applied,
            index_blocks_dropped: m.index_blocks.len(),
        };
        Ok((engine, report))
    }
}

/// Durable identity of a [`SearchEngine`] across a power cycle: block
/// lists of its three logs, the chunk directory, and the sizing knobs.
/// A real token persists this in a catalog log; the simulation carries it
/// across the reboot in RAM.
#[derive(Debug, Clone)]
pub struct EngineManifest {
    /// Blocks of the document log.
    pub doc_blocks: Vec<pds_flash::BlockId>,
    /// docid → chunk addresses.
    pub doc_directory: Vec<Vec<pds_flash::RecordAddr>>,
    /// Blocks of the tombstone log.
    pub tombstone_blocks: Vec<pds_flash::BlockId>,
    /// Blocks of the (derived, rebuilt-on-recovery) index log.
    pub index_blocks: Vec<pds_flash::BlockId>,
    /// Hash bucket count.
    pub num_buckets: usize,
    /// RAM insertion-buffer capacity in triples.
    pub buffer_triples: usize,
    /// df strategy.
    pub df_strategy: DfStrategy,
}

/// What [`SearchEngine::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRecovery {
    /// Documents intact after the crash.
    pub docs_recovered: u32,
    /// Documents lost to the crash (suffix of the docid space).
    pub docs_lost: u32,
    /// Tombstones re-applied from the recovered tombstone log.
    pub tombstones_applied: u64,
    /// Stale index blocks returned to the pool before the rebuild.
    pub index_blocks_dropped: usize,
}

/// Backward cursor over one term's bucket chain, holding exactly one
/// decoded flash page (plus the term's pending RAM triples, visited
/// first — they are the most recent).
struct ChainCursor<'a> {
    engine: &'a SearchEngine,
    term: u64,
    idf: f64,
    /// Triples of the current page (or pending buffer) that match the
    /// term, ordered ascending; consumed from the back.
    current: Vec<(DocId, u16)>,
    /// Next chain page to load, `NO_PREV` when exhausted.
    next_page: u32,
}

impl<'a> ChainCursor<'a> {
    fn new(engine: &'a SearchEngine, term: u64, idf: f64) -> Result<Self, SearchError> {
        let b = engine.bucket_of(term);
        let current: Vec<(DocId, u16)> = engine.pending[b]
            .iter()
            .filter(|t| t.term == term && !engine.deleted.contains(&t.doc))
            .map(|t| (t.doc, t.tf))
            .collect();
        let mut c = ChainCursor {
            engine,
            term,
            idf,
            current,
            next_page: engine.heads[b],
        };
        c.refill()?;
        Ok(c)
    }

    fn refill(&mut self) -> Result<(), SearchError> {
        while self.current.is_empty() && self.next_page != NO_PREV {
            let addr = self.engine.index.page_addr(self.next_page)?;
            let mut buf = vec![0u8; self.engine.flash.geometry().page_size];
            self.engine.flash.read_page(addr, &mut buf)?;
            let (prev, triples) =
                decode_page(&buf).ok_or(SearchError::CorruptIndex("undecodable bucket page"))?;
            self.current = triples
                .into_iter()
                .filter(|t| t.term == self.term && !self.engine.deleted.contains(&t.doc))
                .map(|t| (t.doc, t.tf))
                .collect();
            self.next_page = prev;
        }
        Ok(())
    }

    /// Docid this cursor currently points at (descending over time).
    fn current_doc(&self) -> Option<DocId> {
        self.current.last().map(|(d, _)| *d)
    }

    /// Consume the current triple, returning `(tf, idf)`.
    fn take(&mut self) -> Result<(u16, f64), SearchError> {
        let (_, tf) = self
            .current
            .pop()
            .ok_or(SearchError::CorruptIndex("take() on exhausted cursor"))?;
        self.refill()?;
        Ok((tf, self.idf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NaiveSearch;
    use pds_mcu::HardwareProfile;

    fn setup(df: DfStrategy) -> (Flash, RamBudget, SearchEngine) {
        let profile = HardwareProfile::test_profile();
        let flash = Flash::new(profile.flash);
        let ram = RamBudget::new(profile.ram_bytes);
        let engine = SearchEngine::new(&flash, &ram, 16, 64, df).unwrap();
        (flash, ram, engine)
    }

    const CORPUS: &[&str] = &[
        "medical record blood pressure normal",
        "bank statement monthly salary deposit",
        "email about blood test results pending",
        "photo album summer holidays",
        "blood donation appointment tuesday",
        "insurance claim car accident report",
        "email salary negotiation meeting",
        "prescription blood pressure medication dosage",
    ];

    fn engine_with_corpus(df: DfStrategy) -> (Flash, RamBudget, SearchEngine) {
        let (f, r, mut e) = setup(df);
        for doc in CORPUS {
            e.index_document(doc).unwrap();
        }
        (f, r, e)
    }

    #[test]
    fn single_keyword_matches_oracle() {
        for df in [DfStrategy::TwoPass, DfStrategy::RamDictionary] {
            let (_f, _r, e) = engine_with_corpus(df);
            let mut oracle = NaiveSearch::new();
            for doc in CORPUS {
                oracle.index(doc);
            }
            let hits = e.search(&["blood"], 10).unwrap();
            let expected = oracle.search(&["blood"], 10);
            assert_eq!(
                hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
                expected.iter().map(|h| h.doc).collect::<Vec<_>>(),
                "{df:?}"
            );
            for (h, o) in hits.iter().zip(&expected) {
                assert!((h.score - o.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multi_keyword_scores_accumulate() {
        let (_f, _r, e) = engine_with_corpus(DfStrategy::TwoPass);
        let mut oracle = NaiveSearch::new();
        for doc in CORPUS {
            oracle.index(doc);
        }
        let hits = e.search(&["blood", "pressure"], 3).unwrap();
        let expected = oracle.search(&["blood", "pressure"], 3);
        assert_eq!(
            hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            expected.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
        // Doc 0 and doc 7 contain both terms; they must outrank
        // single-term matches.
        assert!(hits[0].doc == 0 || hits[0].doc == 7);
    }

    #[test]
    fn search_visible_pins_the_docid_prefix() {
        let (_f, _r, e) = engine_with_corpus(DfStrategy::TwoPass);
        // Docs 0, 2, 4, 7 contain "blood"; a snapshot over the first
        // three documents only sees docs 0 and 2.
        let hits = e.search_visible(&["blood"], 10, 3).unwrap();
        let mut docs: Vec<_> = hits.iter().map(|h| h.doc).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![0, 2]);
        // A top-1 under the bound must come from the prefix even though
        // a later document scores at least as high unbounded.
        let top1 = e.search_visible(&["blood"], 1, 3).unwrap();
        assert_eq!(top1.len(), 1);
        assert!(top1[0].doc < 3);
        // Bound at the full corpus = unbounded search.
        let all = e.search(&["blood"], 10).unwrap();
        let bounded = e.search_visible(&["blood"], 10, 8).unwrap();
        assert_eq!(
            all.iter().map(|h| h.doc).collect::<Vec<_>>(),
            bounded.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
        // An empty view sees nothing.
        assert!(e.search_visible(&["blood"], 10, 0).unwrap().is_empty());
    }

    #[test]
    fn unknown_keyword_yields_nothing() {
        let (_f, _r, e) = engine_with_corpus(DfStrategy::TwoPass);
        assert!(e.search(&["zzzunknown"], 5).unwrap().is_empty());
        assert!(e.search(&[], 5).unwrap().is_empty());
    }

    #[test]
    fn search_spanning_flash_and_pending() {
        // Small buffer forces some triples to flash while others remain
        // pending; results must be identical to the oracle regardless.
        let profile = HardwareProfile::test_profile();
        let flash = Flash::new(profile.flash);
        let ram = RamBudget::new(profile.ram_bytes);
        let mut e = SearchEngine::new(&flash, &ram, 4, 8, DfStrategy::TwoPass).unwrap();
        let mut oracle = NaiveSearch::new();
        for doc in CORPUS {
            e.index_document(doc).unwrap();
            oracle.index(doc);
        }
        assert!(e.num_index_pages() > 0, "buffer must have spilled");
        let hits = e.search(&["email", "salary"], 5).unwrap();
        let expected = oracle.search(&["email", "salary"], 5);
        assert_eq!(
            hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            expected.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reorganization_preserves_results_and_packs_pages() {
        let profile = HardwareProfile::test_profile();
        let flash = Flash::new(profile.flash);
        let ram = RamBudget::new(profile.ram_bytes);
        let mut e = SearchEngine::new(&flash, &ram, 4, 8, DfStrategy::TwoPass).unwrap();
        for i in 0..50 {
            e.index_document(&format!(
                "record number {i} category c{} blood sample",
                i % 5
            ))
            .unwrap();
        }
        let before_hits = e.search(&["blood"], 10).unwrap();
        let before_pages = e.num_index_pages();
        e.reorganize().unwrap();
        let after_hits = e.search(&["blood"], 10).unwrap();
        assert_eq!(
            before_hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            after_hits.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
        assert!(
            e.num_index_pages() <= before_pages,
            "reorganization must not grow the index"
        );
    }

    #[test]
    fn query_ram_is_one_page_per_keyword_plus_topn() {
        let (_f, ram, e) = engine_with_corpus(DfStrategy::TwoPass);
        let baseline = ram.used();
        ram.reset_high_water();
        e.search(&["blood", "pressure", "salary"], 5).unwrap();
        let peak = ram.high_water() - baseline;
        let page = e.flash.geometry().page_size;
        // 3 cursors + df page + top-N heap + slack.
        assert!(
            peak <= 4 * page + 5 * 16 + 256,
            "query peak RAM {peak} B exceeds the pipeline bound"
        );
        assert_eq!(ram.used(), baseline, "query RAM fully released");
    }

    #[test]
    fn query_fails_cleanly_when_ram_too_small() {
        let flash = Flash::small(256);
        let ram = RamBudget::new(2048); // engine residents eat most of this
        let mut e = SearchEngine::new(&flash, &ram, 8, 64, DfStrategy::TwoPass).unwrap();
        e.index_document("alpha beta gamma").unwrap();
        // 3 cursors need 3 × 512 B; only ~1 KB remains.
        let err = e.search(&["alpha", "beta", "gamma"], 5).unwrap_err();
        assert!(matches!(err, SearchError::Ram(_)));
    }

    #[test]
    fn deleted_documents_vanish_from_queries_and_fetches() {
        let (_f, _r, mut e) = engine_with_corpus(DfStrategy::TwoPass);
        let mut oracle = NaiveSearch::new();
        for doc in CORPUS {
            oracle.index(doc);
        }
        // Doc 4 ("blood donation appointment tuesday") is deleted.
        e.delete_document(4).unwrap();
        oracle.delete(4);
        let hits = e.search(&["blood"], 10).unwrap();
        assert!(hits.iter().all(|h| h.doc != 4));
        let expected = oracle.search(&["blood"], 10);
        assert_eq!(
            hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            expected.iter().map(|h| h.doc).collect::<Vec<_>>(),
            "idf must reflect the live corpus"
        );
        assert!(e.get_document(4).is_err());
        assert_eq!(e.num_deleted(), 1);
        assert_eq!(e.num_live_docs(), CORPUS.len() as u32 - 1);
        // Idempotent, and out-of-range is a no-op.
        e.delete_document(4).unwrap();
        e.delete_document(999).unwrap();
        assert_eq!(e.num_deleted(), 1);
    }

    #[test]
    fn reorganize_purges_deleted_triples_physically() {
        let profile = HardwareProfile::test_profile();
        let flash = Flash::new(profile.flash);
        let ram = RamBudget::new(profile.ram_bytes);
        let mut e = SearchEngine::new(&flash, &ram, 4, 16, DfStrategy::TwoPass).unwrap();
        for i in 0..60 {
            e.index_document(&format!("record {i} blood marker"))
                .unwrap();
        }
        for doc in 0..30 {
            e.delete_document(doc).unwrap();
        }
        let before = {
            e.flush().unwrap();
            e.num_index_pages()
        };
        e.reorganize().unwrap();
        assert!(
            e.num_index_pages() < before,
            "purging half the corpus must shrink the index: {} -> {}",
            before,
            e.num_index_pages()
        );
        let hits = e.search(&["blood"], 60).unwrap();
        assert_eq!(hits.len(), 30);
        assert!(hits.iter().all(|h| h.doc >= 30));
    }

    #[test]
    fn deletion_works_in_ram_dictionary_mode_too() {
        let (_f, _r, mut e) = engine_with_corpus(DfStrategy::RamDictionary);
        let mut oracle = NaiveSearch::new();
        for doc in CORPUS {
            oracle.index(doc);
        }
        e.delete_document(0).unwrap();
        e.delete_document(7).unwrap();
        oracle.delete(0);
        oracle.delete(7);
        let hits = e.search(&["blood", "pressure"], 10).unwrap();
        let expected = oracle.search(&["blood", "pressure"], 10);
        assert_eq!(
            hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            expected.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
    }

    #[test]
    fn conjunctive_mode_filters_to_all_keywords() {
        let (_f, _r, e) = engine_with_corpus(DfStrategy::TwoPass);
        let mut oracle = NaiveSearch::new();
        for doc in CORPUS {
            oracle.index(doc);
        }
        let all = e
            .search_mode(&["blood", "pressure"], 10, SearchMode::All)
            .unwrap();
        let expected = oracle.search_all(&["blood", "pressure"], 10);
        assert_eq!(
            all.iter().map(|h| h.doc).collect::<Vec<_>>(),
            expected.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
        // Only docs 0 and 7 contain both words.
        let mut docs: Vec<u32> = all.iter().map(|h| h.doc).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![0, 7]);
        // ANY mode returns strictly more.
        let any = e.search(&["blood", "pressure"], 10).unwrap();
        assert!(any.len() > all.len());
        // A keyword absent from the corpus empties the conjunction.
        assert!(e
            .search_mode(&["blood", "zzznothing"], 10, SearchMode::All)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn conjunctive_matches_oracle_on_larger_corpus() {
        let profile = HardwareProfile::test_profile();
        let flash = Flash::new(profile.flash);
        let ram = RamBudget::new(profile.ram_bytes);
        let mut e = SearchEngine::new(&flash, &ram, 32, 128, DfStrategy::TwoPass).unwrap();
        let mut oracle = NaiveSearch::new();
        for i in 0..200 {
            let text = format!("item {i} t{} u{} shared", i % 5, i % 8);
            e.index_document(&text).unwrap();
            oracle.index(&text);
        }
        for query in [vec!["t3", "u5"], vec!["shared", "t1"], vec!["t0", "u0"]] {
            let got = e.search_mode(&query, 15, SearchMode::All).unwrap();
            let expected = oracle.search_all(&query, 15);
            assert_eq!(
                got.iter().map(|h| h.doc).collect::<Vec<_>>(),
                expected.iter().map(|h| h.doc).collect::<Vec<_>>(),
                "query {query:?}"
            );
        }
    }

    #[test]
    fn recover_rebuilds_index_and_reapplies_tombstones() {
        let (flash, ram, mut e) = setup(DfStrategy::TwoPass);
        for text in CORPUS {
            e.index_document(text).unwrap();
        }
        e.delete_document(1).unwrap();
        e.flush().unwrap();
        let manifest = e.manifest();
        let before = e.search(&["blood"], 10).unwrap();
        drop(e);

        let rebooted = flash.reboot();
        let ram2 = RamBudget::new(ram.capacity());
        let (recovered, report) = SearchEngine::recover(&rebooted, &ram2, &manifest).unwrap();
        assert_eq!(report.docs_recovered as usize, CORPUS.len());
        assert_eq!(report.docs_lost, 0);
        assert_eq!(report.tombstones_applied, 1);
        assert_eq!(recovered.num_deleted(), 1);
        let after = recovered.search(&["blood"], 10).unwrap();
        assert_eq!(
            after.iter().map(|h| h.doc).collect::<Vec<_>>(),
            before.iter().map(|h| h.doc).collect::<Vec<_>>(),
        );
        // Document bytes survived verbatim (doc 1 is tombstoned).
        for (i, text) in CORPUS.iter().enumerate() {
            if i == 1 {
                assert!(recovered.get_document(1).is_err());
            } else {
                assert_eq!(recovered.get_document(i as DocId).unwrap(), text.as_bytes());
            }
        }
    }

    #[test]
    fn many_documents_exact_top_n() {
        let profile = HardwareProfile::test_profile();
        let flash = Flash::new(profile.flash);
        let ram = RamBudget::new(profile.ram_bytes);
        let mut e = SearchEngine::new(&flash, &ram, 32, 128, DfStrategy::TwoPass).unwrap();
        let mut oracle = NaiveSearch::new();
        for i in 0..300 {
            let text = format!(
                "entry {i} topic t{} keyword k{} shared common",
                i % 7,
                i % 13
            );
            e.index_document(&text).unwrap();
            oracle.index(&text);
        }
        for query in [vec!["shared"], vec!["t3", "k5"], vec!["common", "t1"]] {
            let hits = e.search(&query, 10).unwrap();
            let expected = oracle.search(&query, 10);
            assert_eq!(
                hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
                expected.iter().map(|h| h.doc).collect::<Vec<_>>(),
                "query {query:?}"
            );
        }
    }
}

//! # pds-search — embedded full-text search engine
//!
//! Part II's first illustration: answer IR queries ("for a set of query
//! keywords, produce the N most relevant documents according to TF-IDF")
//! on a secure MCU with tiny RAM and a NAND flash store. The classical
//! search algorithm allocates "one container per retrieved docid" in RAM —
//! "too much!" for the token — so the tutorial's design is:
//!
//! * **Sequential inverted index** — triples `(term, docid, weight)` are
//!   appended to *chained hash buckets* in flash: a small RAM hash table
//!   maps each bucket to the address of its most recent page; every page
//!   points back to the previous page of the same bucket. Pages are only
//!   ever appended — pure log writes, legal NAND by construction.
//! * **Docids generated in increasing order** — so a backward walk of a
//!   bucket chain yields docids in *descending* order, and the chains of
//!   the query keywords can be **merged in pipeline**: "triples with an
//!   equal docid arrive in RAM at the same time … and the TF-IDF score of
//!   each docid can be computed in pipeline".
//! * **One RAM page per query keyword** plus a bounded top-N heap — the
//!   entire RAM footprint of a query, enforced here through
//!   [`pds_mcu::RamBudget`].
//!
//! Exact TF-IDF needs each keyword's document frequency. Two strategies
//! are provided (and compared in the E3 ablation bench): a two-pass scan
//! that counts df in a first chain walk (RAM-free, 2× read I/O) and a
//! RAM-resident term dictionary (1× I/O, RAM grows with the vocabulary —
//! exactly the trade-off that rules it out on the smallest devices).

pub mod docs;
pub mod engine;
pub mod gen;
pub mod oracle;
pub mod tokenize;
pub mod triple;

pub use docs::DocStore;
pub use engine::{
    DfStrategy, EngineManifest, EngineRecovery, SearchEngine, SearchError, SearchHit, SearchMode,
};
pub use oracle::NaiveSearch;
pub use tokenize::tokenize;
pub use triple::{DocId, Triple};

//! Document store: raw document bytes in an append-only log.
//!
//! Documents (emails, notes, records of interactions with e-services) are
//! chunked to fit log records; a compact directory maps each docid to its
//! chunk addresses. The directory costs ~10 bytes per document and lives
//! with the RAM hash table of the engine (on real hardware it is paged
//! from a directory log; the I/O accounting here charges the data pages,
//! which dominate).

use pds_flash::{BlockId, Flash, FlashError, LogWriter, RecordAddr};

use crate::triple::DocId;

/// Append-only store of documents on flash.
pub struct DocStore {
    log: LogWriter,
    /// chunks[docid] = record addresses of the document's chunks.
    directory: Vec<Vec<RecordAddr>>,
}

impl DocStore {
    /// An empty store on `flash`.
    pub fn new(flash: &Flash) -> Self {
        DocStore {
            log: flash.new_log(),
            directory: Vec::new(),
        }
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True if no document is stored.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Append a document, returning its docid. Docids are dense and
    /// strictly increasing — the invariant the pipeline merge of the
    /// search engine relies on.
    pub fn append(&mut self, content: &[u8]) -> Result<DocId, FlashError> {
        let chunk_size = self.log.max_record_len();
        let mut addrs = Vec::new();
        if content.is_empty() {
            addrs.push(self.log.append(&[])?);
        } else {
            for chunk in content.chunks(chunk_size) {
                addrs.push(self.log.append(chunk)?);
            }
        }
        self.directory.push(addrs);
        Ok(self.directory.len() as DocId - 1)
    }

    /// Fetch a document (one page I/O per chunk).
    pub fn get(&self, doc: DocId) -> Result<Vec<u8>, FlashError> {
        let addrs = self
            .directory
            .get(doc as usize)
            .ok_or(FlashError::BadRecordAddr)?;
        let mut out = Vec::new();
        for a in addrs {
            out.extend_from_slice(&self.log.get(*a)?);
        }
        Ok(out)
    }

    /// Durably flush pending chunks.
    pub fn flush(&mut self) -> Result<(), FlashError> {
        self.log.flush()
    }

    /// The store's erase blocks — half of its durable identity (see
    /// [`recover`](Self::recover)).
    pub fn blocks(&self) -> Vec<BlockId> {
        self.log.blocks().to_vec()
    }

    /// The chunk directory — the other half of the durable identity.
    pub fn directory(&self) -> &[Vec<RecordAddr>] {
        &self.directory
    }

    /// Rebuild a store after a power loss from its durable identity
    /// (block list + chunk directory; a real token persists both in a
    /// catalog log — the simulation carries them across the reboot in
    /// RAM). Returns the store and the number of documents lost.
    ///
    /// Docids are dense and chunks are appended in docid order, so
    /// whatever the crash destroyed is a *suffix*: the directory is
    /// truncated at the first document with a chunk beyond the recovered
    /// pages, and every earlier document is intact.
    pub fn recover(
        flash: &Flash,
        blocks: &[BlockId],
        directory: &[Vec<RecordAddr>],
    ) -> Result<(Self, u32), FlashError> {
        let (log, report) = LogWriter::recover(flash, blocks)?;
        let chunk_ok = |a: &RecordAddr| {
            (a.page as usize) < report.slots_per_page.len()
                && a.slot < report.slots_per_page[a.page as usize]
        };
        let keep = directory
            .iter()
            .take_while(|addrs| addrs.iter().all(chunk_ok))
            .count();
        let lost = (directory.len() - keep) as u32;
        pds_obs::counter("recovery.docs_lost").add(lost as u64);
        Ok((
            DocStore {
                log,
                directory: directory[..keep].to_vec(),
            },
            lost,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_flash::Flash;

    #[test]
    fn docids_are_dense_and_increasing() {
        let f = Flash::small(16);
        let mut s = DocStore::new(&f);
        for i in 0..10 {
            let id = s.append(format!("doc {i}").as_bytes()).unwrap();
            assert_eq!(id, i);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn round_trips_small_and_large() {
        let f = Flash::small(64);
        let mut s = DocStore::new(&f);
        let small = b"hello".to_vec();
        let large: Vec<u8> = (0..3000u32).flat_map(|i| i.to_le_bytes()).collect();
        let a = s.append(&small).unwrap();
        let b = s.append(&large).unwrap();
        let c = s.append(b"").unwrap();
        assert_eq!(s.get(a).unwrap(), small);
        assert_eq!(s.get(b).unwrap(), large);
        assert_eq!(s.get(c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn unknown_doc_is_an_error() {
        let f = Flash::small(4);
        let s = DocStore::new(&f);
        assert!(s.get(3).is_err());
    }
}
